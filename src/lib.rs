//! # iotls-repro
//!
//! Umbrella crate for the reproduction of *IoTLS: Understanding TLS
//! Usage in Consumer IoT Devices* (Paracha, Dubois,
//! Vallina-Rodriguez, Choffnes — ACM IMC 2021).
//!
//! Re-exports every workspace crate under one roof and hosts the
//! runnable examples (`examples/`) and the cross-crate integration
//! tests (`tests/`). See `README.md` for the quickstart, `DESIGN.md`
//! for the system inventory and substitution rationale, and
//! `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! [`cli`] is the one piece of code living here rather than in a
//! workspace crate: the flag-parsing helper the examples share.

pub mod cli;

pub use iotls as core;
pub use iotls_analysis as analysis;
pub use iotls_capture as capture;
pub use iotls_crypto as crypto;
pub use iotls_devices as devices;
pub use iotls_obs as obs;
pub use iotls_rootstore as rootstore;
pub use iotls_simnet as simnet;
pub use iotls_tls as tls;
pub use iotls_x509 as x509;
