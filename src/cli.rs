//! Shared command-line plumbing for the runnable examples.
//!
//! Every example accepts the same flags and resolves them into one
//! [`ExperimentCtx`], so the knobs PRs 1–4 threaded through the
//! engines (fault plans, thread pools, metrics) are reachable from
//! every binary without per-example flag parsing:
//!
//! * `--seed N` — override the example's canonical seed (decimal or
//!   `0x`-prefixed hex);
//! * `--threads N` — worker-count override (beats `IOTLS_THREADS`);
//! * `--faults PM` — inject a uniform chaos plan at `PM` per-mille;
//! * `--metrics` — force the observability registry live even without
//!   an `IOTLS_METRICS` sink path.
//!
//! Gateway examples additionally understand:
//!
//! * `--ticks N` — accept-loop ticks before shutdown begins;
//! * `--load N` — mean session arrivals per tick;
//! * `--drain-at N` — begin draining at tick `N` (mid-stream
//!   shutdown; the default runs the full soak).
//!
//! Passive-pipeline examples additionally understand the store flags:
//!
//! * `--store PATH` — persist the generated columnar dataset to a
//!   store file at `PATH` after the run;
//! * `--from-store PATH` — skip generation and analyze the persisted
//!   store at `PATH` instead (frames stream off disk in bounded
//!   memory); a directory is opened as a segmented store, a file as
//!   a single-file store;
//! * `--append` — extend the segmented store at `--store PATH` with
//!   this run's dataset as a new batch instead of recreating it
//!   (requires `--store`).
//!
//! Environment knobs (`IOTLS_THREADS`, `IOTLS_METRICS`) still apply
//! through [`ExperimentCtx`]'s builder; flags win where both are set.

use crate::core::{ExperimentCtx, FaultStats, GatewayConfig};
use crate::simnet::FaultPlan;

/// Parsed example flags; see the module docs for the grammar.
#[derive(Debug, Clone, Default)]
pub struct ExampleArgs {
    /// `--seed` override, if given.
    pub seed: Option<u64>,
    /// `--threads` override, if given.
    pub threads: Option<usize>,
    /// `--faults` per-mille rate, if given.
    pub faults: Option<u16>,
    /// `--metrics` was passed.
    pub metrics: bool,
    /// `--ticks` override for gateway soaks, if given.
    pub ticks: Option<u64>,
    /// `--load` override for gateway soaks, if given.
    pub load: Option<u32>,
    /// `--drain-at` shutdown tick for gateway soaks, if given.
    pub drain_at: Option<u64>,
    /// `--store` output path for the columnar store, if given.
    pub store: Option<String>,
    /// `--from-store` input path replacing generation, if given.
    pub from_store: Option<String>,
    /// `--append` was passed (extend the `--store` segmented store).
    pub append: bool,
}

impl ExampleArgs {
    /// Parses `std::env::args()`, exiting with a usage message on an
    /// unknown or malformed flag.
    pub fn parse() -> ExampleArgs {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        match Self::parse_from(&argv) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("error: {msg}");
                eprintln!(
                    "usage: [--seed N] [--threads N] [--faults PM] [--metrics] \
                     [--ticks N] [--load N] [--drain-at N] \
                     [--store PATH] [--from-store PATH] [--append]"
                );
                std::process::exit(2);
            }
        }
    }

    /// Flag parsing proper, separated from process exit for testing.
    pub fn parse_from(argv: &[String]) -> Result<ExampleArgs, String> {
        let mut args = ExampleArgs::default();
        let mut it = argv.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next().ok_or_else(|| format!("{name} needs a value"))
            };
            match flag.as_str() {
                "--seed" => {
                    let v = value("--seed")?;
                    args.seed = Some(parse_u64(v).ok_or_else(|| format!("bad --seed {v:?}"))?);
                }
                "--threads" => {
                    let v = value("--threads")?;
                    args.threads = Some(
                        v.parse::<usize>()
                            .ok()
                            .filter(|&n| n > 0)
                            .ok_or_else(|| format!("bad --threads {v:?}"))?,
                    );
                }
                "--faults" => {
                    let v = value("--faults")?;
                    args.faults = Some(
                        v.parse::<u16>()
                            .ok()
                            .filter(|&pm| pm <= 1000)
                            .ok_or_else(|| format!("bad --faults {v:?} (per-mille, 0-1000)"))?,
                    );
                }
                "--metrics" => args.metrics = true,
                "--ticks" => {
                    let v = value("--ticks")?;
                    args.ticks = Some(
                        v.parse::<u64>()
                            .ok()
                            .filter(|&n| n > 0)
                            .ok_or_else(|| format!("bad --ticks {v:?}"))?,
                    );
                }
                "--load" => {
                    let v = value("--load")?;
                    args.load = Some(
                        v.parse::<u32>()
                            .ok()
                            .filter(|&n| n > 0)
                            .ok_or_else(|| format!("bad --load {v:?}"))?,
                    );
                }
                "--drain-at" => {
                    let v = value("--drain-at")?;
                    args.drain_at = Some(
                        v.parse::<u64>()
                            .map_err(|_| format!("bad --drain-at {v:?}"))?,
                    );
                }
                "--store" => args.store = Some(value("--store")?.clone()),
                "--from-store" => args.from_store = Some(value("--from-store")?.clone()),
                "--append" => args.append = true,
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        if args.append && args.store.is_none() {
            return Err("--append requires --store PATH (the store directory to extend)".into());
        }
        Ok(args)
    }

    /// Builds the example's [`ExperimentCtx`]: `default_seed` unless
    /// `--seed` was given, flags layered over the env-resolved knobs.
    /// Env values the builder rejected are echoed to stderr.
    pub fn ctx(&self, default_seed: u64) -> ExperimentCtx {
        let seed = self.seed.unwrap_or(default_seed);
        let mut b = ExperimentCtx::builder().seed(seed);
        if let Some(t) = self.threads {
            b = b.threads(t);
        }
        if let Some(pm) = self.faults {
            b = b.plan(FaultPlan::uniform(seed, pm));
        }
        if self.metrics {
            b = b.metrics(true);
        }
        let ctx = b.build();
        for w in ctx.warnings() {
            eprintln!("warning: {w}");
        }
        ctx
    }

    /// Layers the gateway flags over a base [`GatewayConfig`]:
    /// `--ticks` and `--load` replace the base values, `--drain-at`
    /// schedules a mid-stream shutdown.
    pub fn gateway_config(&self, base: GatewayConfig) -> GatewayConfig {
        GatewayConfig {
            ticks: self.ticks.unwrap_or(base.ticks),
            load: self.load.unwrap_or(base.load),
            drain_at: self.drain_at.or(base.drain_at),
            ..base
        }
    }

    /// End-of-run housekeeping: writes the `IOTLS_METRICS` sink if
    /// one is configured and says so on stderr.
    pub fn finish(&self, ctx: &ExperimentCtx) {
        if let Some(path) = ctx.metrics_sink() {
            ctx.write_metrics_sink().expect("write IOTLS_METRICS file");
            eprintln!("metrics written to {path}");
        }
    }
}

/// Parses a decimal or `0x`-prefixed hex integer.
fn parse_u64(s: &str) -> Option<u64> {
    match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

/// One-line human rendering of a [`FaultStats`] — the examples report
/// injected-fault counters even on clean runs (all zeros).
pub fn fault_stats_line(stats: &FaultStats) -> String {
    format!(
        "faults injected: {} (resets {}, garbles {}, stalls {}, power cycles {}, \
         dns failures {}); retries {} inline / {} reconnects; \
         {} recovered, {} unrecovered",
        stats.injected_total(),
        stats.resets,
        stats.garbles,
        stats.stalls,
        stats.power_cycles,
        stats.dns_failures,
        stats.inline_retries,
        stats.reconnects,
        stats.recovered,
        stats.unrecovered,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|v| v.to_string()).collect()
    }

    #[test]
    fn parses_every_flag() {
        let args = ExampleArgs::parse_from(&argv(&[
            "--seed", "0x7AB1E7", "--threads", "4", "--faults", "40", "--metrics",
            "--ticks", "128", "--load", "500", "--drain-at", "64",
        ]))
        .unwrap();
        assert_eq!(args.seed, Some(0x7AB1E7));
        assert_eq!(args.threads, Some(4));
        assert_eq!(args.faults, Some(40));
        assert!(args.metrics);
        assert_eq!(args.ticks, Some(128));
        assert_eq!(args.load, Some(500));
        assert_eq!(args.drain_at, Some(64));
    }

    #[test]
    fn parses_store_flags() {
        let args = ExampleArgs::parse_from(&argv(&[
            "--store", "target/out.iotls", "--from-store", "target/in.iotls",
        ]))
        .unwrap();
        assert_eq!(args.store.as_deref(), Some("target/out.iotls"));
        assert_eq!(args.from_store.as_deref(), Some("target/in.iotls"));
        assert!(ExampleArgs::parse_from(&argv(&["--store"])).is_err());
        assert!(ExampleArgs::parse_from(&argv(&["--from-store"])).is_err());
    }

    #[test]
    fn append_requires_a_store_path() {
        let args =
            ExampleArgs::parse_from(&argv(&["--store", "target/days", "--append"])).unwrap();
        assert!(args.append);
        assert_eq!(args.store.as_deref(), Some("target/days"));
        let bare = ExampleArgs::parse_from(&argv(&["--append"]));
        assert!(bare.is_err(), "--append without --store must be rejected");
    }

    #[test]
    fn rejects_malformed_flags() {
        assert!(ExampleArgs::parse_from(&argv(&["--seed", "zzz"])).is_err());
        assert!(ExampleArgs::parse_from(&argv(&["--threads", "0"])).is_err());
        assert!(ExampleArgs::parse_from(&argv(&["--faults", "2000"])).is_err());
        assert!(ExampleArgs::parse_from(&argv(&["--wat"])).is_err());
        assert!(ExampleArgs::parse_from(&argv(&["--seed"])).is_err());
        assert!(ExampleArgs::parse_from(&argv(&["--ticks", "0"])).is_err());
        assert!(ExampleArgs::parse_from(&argv(&["--load", "x"])).is_err());
        assert!(ExampleArgs::parse_from(&argv(&["--drain-at", "-3"])).is_err());
    }

    #[test]
    fn gateway_flags_layer_onto_the_config() {
        let args =
            ExampleArgs::parse_from(&argv(&["--ticks", "96", "--drain-at", "48"])).unwrap();
        let cfg = args.gateway_config(GatewayConfig::default());
        assert_eq!(cfg.ticks, 96);
        assert_eq!(cfg.load, GatewayConfig::default().load, "unset flag keeps the base");
        assert_eq!(cfg.drain_at, Some(48));
        let plain = ExampleArgs::default().gateway_config(GatewayConfig::default());
        assert_eq!(plain.drain_at, None);
    }

    #[test]
    fn flags_layer_onto_the_ctx() {
        let args = ExampleArgs::parse_from(&argv(&["--threads", "3", "--faults", "40"])).unwrap();
        let ctx = args.ctx(0xDE7);
        assert_eq!(ctx.seed(), 0xDE7);
        assert_eq!(ctx.threads(), 3);
        assert!(!ctx.plan().is_none());
        let clean = ExampleArgs::default().ctx(1);
        assert!(clean.plan().is_none());
    }

    #[test]
    fn fault_stats_line_reports_zeros_on_clean_runs() {
        let line = fault_stats_line(&FaultStats::default());
        assert!(line.starts_with("faults injected: 0"), "{line}");
    }
}
