#!/usr/bin/env sh
# Perf regression gate: compares BENCH_current.json against
# BENCH_baseline.json and fails if any workload present in both got
# more than 15% slower. Workloads only in one file are reported but
# not failed (new workloads have no baseline yet).
#
#   scripts/bench_check.sh [current.json] [baseline.json]
#
# Wired as an optional tier-1 step: IOTLS_BENCH_CHECK=1 scripts/tier1.sh
set -eu

cd "$(dirname "$0")/.."

CURRENT="${1:-BENCH_current.json}"
BASELINE="${2:-BENCH_baseline.json}"

for f in "$CURRENT" "$BASELINE"; do
    if [ ! -f "$f" ]; then
        echo "bench_check: missing $f (run scripts/bench.sh first)" >&2
        exit 2
    fi
done

# Extract "workload seconds" pairs from the one-entry-per-line JSON the
# bench harness writes.
pairs() {
    sed -n 's/.*"workload": *"\([^"]*\)".*"seconds": *\([0-9.]*\).*/\1 \2/p' "$1"
}

pairs "$CURRENT" | {
    fail=0
    while read -r name cur; do
        base=$(pairs "$BASELINE" | awk -v n="$name" '$1 == n { print $2; exit }')
        if [ -z "$base" ]; then
            echo "bench_check: $name: new workload (no baseline), current ${cur}s"
            continue
        fi
        # tier1_tests measures the test *suite*, whose duration grows
        # with coverage (every PR adds tests); report it but don't
        # gate on it — the workload entries below are the perf signal.
        if [ "$name" = "tier1_tests" ]; then
            echo "bench_check: $name: ${cur}s vs baseline ${base}s (informational: suite size tracks coverage)"
            continue
        fi
        # Fail when cur > base * 1.15 (guard against a zero baseline).
        verdict=$(awk -v c="$cur" -v b="$base" 'BEGIN {
            if (b <= 0) { print "skip"; exit }
            ratio = c / b
            if (ratio > 1.15) printf "FAIL %.0f%%", (ratio - 1) * 100
            else printf "ok %+.0f%%", (ratio - 1) * 100
        }')
        echo "bench_check: $name: ${cur}s vs baseline ${base}s ($verdict)"
        case "$verdict" in
            FAIL*) fail=1 ;;
        esac
    done
    if [ "$fail" -ne 0 ]; then
        echo "bench_check: FAILED (>15% regression)" >&2
        exit 1
    fi
}

# --- Throughput gate: rows/sec ---------------------------------------
# Workloads that report a "rows_per_sec" figure (the store-reload path)
# are additionally gated on throughput: losing more than 15% of the
# baseline's rows/sec fails even if wall-clock noise masks it above.
rps_pairs() {
    sed -n 's/.*"workload": *"\([^"]*\)".*"rows_per_sec": *\([0-9.]*\).*/\1 \2/p' "$1"
}

rps_pairs "$CURRENT" | {
    fail=0
    while read -r name cur; do
        base=$(rps_pairs "$BASELINE" | awk -v n="$name" '$1 == n { print $2; exit }')
        if [ -z "$base" ]; then
            echo "bench_check: $name: new workload (no baseline), current ${cur} rows/sec"
            continue
        fi
        # Fail when cur < base * 0.85 (guard against a zero baseline).
        verdict=$(awk -v c="$cur" -v b="$base" 'BEGIN {
            if (b <= 0) { print "skip"; exit }
            ratio = c / b
            if (ratio < 0.85) printf "FAIL -%.0f%%", (1 - ratio) * 100
            else printf "ok %+.0f%%", (ratio - 1) * 100
        }')
        echo "bench_check: $name: ${cur} rows/sec vs baseline ${base} ($verdict)"
        case "$verdict" in
            FAIL*) fail=1 ;;
        esac
    done
    if [ "$fail" -ne 0 ]; then
        echo "bench_check: FAILED (>15% rows/sec throughput drop)" >&2
        exit 1
    fi
}

# --- Pruning gate: bytes_read_ratio ----------------------------------
# Workloads that report a "bytes_read_ratio" figure (the segmented
# partial-reanalysis path) are gated on how much of the corpus the
# pruned slice actually reads: a ratio more than 15% above the
# baseline means segment/chunk pruning got leakier — a correctness
# smell even when rows/sec still looks fine.
ratio_pairs() {
    sed -n 's/.*"workload": *"\([^"]*\)".*"bytes_read_ratio": *\([0-9.]*\).*/\1 \2/p' "$1"
}

ratio_pairs "$CURRENT" | {
    fail=0
    while read -r name cur; do
        base=$(ratio_pairs "$BASELINE" | awk -v n="$name" '$1 == n { print $2; exit }')
        if [ -z "$base" ]; then
            echo "bench_check: $name: new workload (no baseline), current bytes-read ratio ${cur}"
            continue
        fi
        # Fail when cur > base * 1.15 (guard against a zero baseline).
        verdict=$(awk -v c="$cur" -v b="$base" 'BEGIN {
            if (b <= 0) { print "skip"; exit }
            ratio = c / b
            if (ratio > 1.15) printf "FAIL +%.0f%%", (ratio - 1) * 100
            else printf "ok %+.0f%%", (ratio - 1) * 100
        }')
        echo "bench_check: $name: bytes-read ratio ${cur} vs baseline ${base} ($verdict)"
        case "$verdict" in
            FAIL*) fail=1 ;;
        esac
    done
    if [ "$fail" -ne 0 ]; then
        echo "bench_check: FAILED (>15% more of the corpus read per pruned slice)" >&2
        exit 1
    fi
}

# --- Allocation gate: allocs_per_session -----------------------------
# The steady_replay workload counts heap allocations per replayed
# session on the gateway hot path (counting global allocator in the
# bench binary). The sans-IO rework drove it to zero; any nonzero
# value means a per-session allocation crept back in. Absolute gate,
# no baseline needed.
alloc_pairs() {
    sed -n 's/.*"workload": *"\([^"]*\)".*"allocs_per_session": *\([0-9]*\).*/\1 \2/p' "$1"
}

alloc_pairs "$CURRENT" | {
    fail=0
    while read -r name allocs; do
        if [ "$allocs" -ne 0 ]; then
            echo "bench_check: $name: $allocs allocs/session (must stay 0)"
            fail=1
        else
            echo "bench_check: $name: 0 allocs/session (ok)"
        fi
    done
    if [ "$fail" -ne 0 ]; then
        echo "bench_check: FAILED (per-session allocation reintroduced)" >&2
        exit 1
    fi
}

# --- Behavior gate: counter snapshots --------------------------------
# scripts/bench.sh writes the deterministic observability registry of
# the bench workloads next to each timing report. Derived ratios (cache
# hit rates, pool dedup rates, chunk pruning) drifting more than five
# points is a behavioral regression even before it shows up in wall
# clock — a cache that stopped hitting, a pruner that stopped pruning.
CUR_METRICS="${CURRENT%.json}_metrics.json"
BASE_METRICS="${BASELINE%.json}_metrics.json"

# counter FILE NAME -> value, empty when absent. The registry JSON is
# one line; split on commas/braces, then match the quoted key.
counter() {
    tr ',{}' '\n\n\n' < "$1" | sed -n "s/^\"$2\":\\([0-9][0-9]*\\)\$/\\1/p" | head -n 1
}

# rate FILE A B -> A/(A+B) to 4 places; "n/a" when the counters are
# present but sum to zero (a fresh workload with no events to rate —
# never a division), empty when either counter is absent.
rate() {
    a=$(counter "$1" "$2")
    b=$(counter "$1" "$3")
    [ -n "$a" ] && [ -n "$b" ] || return 0
    awk -v a="$a" -v b="$b" 'BEGIN {
        if (a + b > 0) printf "%.4f", a / (a + b)
        else printf "n/a"
    }'
}

if [ ! -f "$CUR_METRICS" ] || [ ! -f "$BASE_METRICS" ]; then
    echo "bench_check: counter snapshot missing ($CUR_METRICS or $BASE_METRICS), skipping behavior gate"
else
    fail=0
    for spec in \
        "x509_cache_hit_rate x509.cache.hits x509.cache.misses" \
        "pool_u16_dedup_rate capture.lane.pool.u16.dedup_hits capture.lane.pool.u16.appends" \
        "pool_u8_dedup_rate capture.lane.pool.u8.dedup_hits capture.lane.pool.u8.appends" \
        "chunk_prune_rate capture.merge.chunks.pruned capture.merge.chunks.scanned"
    do
        set -- $spec
        cur=$(rate "$CUR_METRICS" "$2" "$3")
        base=$(rate "$BASE_METRICS" "$2" "$3")
        if [ -z "$cur" ] || [ -z "$base" ]; then
            echo "bench_check: $1: counters absent from a snapshot, skipping"
            continue
        fi
        if [ "$cur" = "n/a" ] || [ "$base" = "n/a" ]; then
            echo "bench_check: $1: n/a (zero baseline counter), skipping"
            continue
        fi
        verdict=$(awk -v c="$cur" -v b="$base" 'BEGIN {
            d = c - b; if (d < 0) d = -d
            if (d > 0.05) printf "FAIL drift %.3f", d
            else printf "ok drift %.3f", d
        }')
        echo "bench_check: $1: $cur vs baseline $base ($verdict)"
        case "$verdict" in
            FAIL*) fail=1 ;;
        esac
    done
    if [ "$fail" -ne 0 ]; then
        echo "bench_check: FAILED (counter ratio drift >0.05)" >&2
        exit 1
    fi
fi

echo "bench_check: OK"
