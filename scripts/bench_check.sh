#!/usr/bin/env sh
# Perf regression gate: compares BENCH_current.json against
# BENCH_baseline.json and fails if any workload present in both got
# more than 15% slower. Workloads only in one file are reported but
# not failed (new workloads have no baseline yet).
#
#   scripts/bench_check.sh [current.json] [baseline.json]
#
# Wired as an optional tier-1 step: IOTLS_BENCH_CHECK=1 scripts/tier1.sh
set -eu

cd "$(dirname "$0")/.."

CURRENT="${1:-BENCH_current.json}"
BASELINE="${2:-BENCH_baseline.json}"

for f in "$CURRENT" "$BASELINE"; do
    if [ ! -f "$f" ]; then
        echo "bench_check: missing $f (run scripts/bench.sh first)" >&2
        exit 2
    fi
done

# Extract "workload seconds" pairs from the one-entry-per-line JSON the
# bench harness writes.
pairs() {
    sed -n 's/.*"workload": *"\([^"]*\)".*"seconds": *\([0-9.]*\).*/\1 \2/p' "$1"
}

pairs "$CURRENT" | {
    fail=0
    while read -r name cur; do
        base=$(pairs "$BASELINE" | awk -v n="$name" '$1 == n { print $2; exit }')
        if [ -z "$base" ]; then
            echo "bench_check: $name: no baseline entry (current ${cur}s), skipping"
            continue
        fi
        # Fail when cur > base * 1.15 (guard against a zero baseline).
        verdict=$(awk -v c="$cur" -v b="$base" 'BEGIN {
            if (b <= 0) { print "skip"; exit }
            ratio = c / b
            if (ratio > 1.15) printf "FAIL %.0f%%", (ratio - 1) * 100
            else printf "ok %+.0f%%", (ratio - 1) * 100
        }')
        echo "bench_check: $name: ${cur}s vs baseline ${base}s ($verdict)"
        case "$verdict" in
            FAIL*) fail=1 ;;
        esac
    done
    if [ "$fail" -ne 0 ]; then
        echo "bench_check: FAILED (>15% regression)" >&2
        exit 1
    fi
    echo "bench_check: OK"
}
