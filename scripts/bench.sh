#!/usr/bin/env sh
# Perf baseline harness: times the tier-1 suite (a real scripts/tier1.sh
# run) plus the headline workloads (passive generate, full active
# sweep, rootprobe sweep, paper-scale passive_10m — also pinned at 4
# and 8 workers as passive_10m_t4/_t8, the persist-and-reload
# passive_reload with rows/sec, and gateway_soak with >=1M multiplexed
# sessions) and writes a JSON report. Every entry records wall seconds
# AND peak RSS in MB.
#
#   scripts/bench.sh            -> BENCH_current.json
#   scripts/bench.sh baseline   -> BENCH_baseline.json  (legacy-shape
#                                  passive_10m: materialized row vector,
#                                  one scan per table)
#
# Thread count comes from IOTLS_THREADS (default: all cores), and is
# recorded per entry so speedups are attributable.
set -eu

cd "$(dirname "$0")/.."

case "${1:-current}" in
    baseline) OUT=BENCH_baseline.json; export IOTLS_BENCH_LEGACY=1 ;;
    current)  OUT=BENCH_current.json ;;
    *)        OUT="$1" ;;
esac

THREADS="${IOTLS_THREADS:-$(nproc 2>/dev/null || echo 1)}"

cargo build --release --offline --workspace
cargo build --release --offline --example bench_workloads

# tier1_tests: wall time and child peak RSS of an actual tier1.sh run.
# python3's RUSAGE_CHILDREN maxrss covers the whole cargo process tree;
# without python3 the RSS column degrades to 0.
if command -v python3 >/dev/null 2>&1; then
    TIER1_LINE=$(python3 - "$THREADS" <<'EOF'
import resource, subprocess, sys, time
threads = sys.argv[1]
t0 = time.time()
subprocess.run(["scripts/tier1.sh"], check=True, stdout=sys.stderr)
secs = time.time() - t0
rss_mb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss / 1024.0
print(f'  {{"workload": "tier1_tests", "seconds": {secs:.3f}, '
      f'"threads": {threads}, "rss_mb": {rss_mb:.1f}}},')
EOF
)
else
    T0=$(date +%s)
    ./scripts/tier1.sh >&2
    T1=$(date +%s)
    TIER1_LINE=$(printf '  {"workload": "tier1_tests", "seconds": %d.0, "threads": %s, "rss_mb": 0.0},' "$((T1 - T0))" "$THREADS")
fi

# Counter snapshot: the deterministic observability registry for the
# workloads, written next to the timing report so bench_check.sh can
# flag behavioral regressions (cache hit rates, dedup/pruning ratios).
METRICS="${OUT%.json}_metrics.json"
WORKLOADS=$(IOTLS_METRICS="$METRICS" ./target/release/examples/bench_workloads)

{
    echo "["
    printf '%s\n' "$TIER1_LINE"
    printf '%s\n' "$WORKLOADS"
    echo "]"
} > "$OUT"

echo "bench: wrote $OUT (counters: $METRICS)"
cat "$OUT"
