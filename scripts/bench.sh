#!/usr/bin/env sh
# Perf baseline harness: times the tier-1 test suite plus the three
# headline workloads (passive generate, full active sweep, rootprobe
# sweep) and writes a JSON report.
#
#   scripts/bench.sh            -> BENCH_current.json
#   scripts/bench.sh baseline   -> BENCH_baseline.json
#
# Thread count comes from IOTLS_THREADS (default: all cores), and is
# recorded per entry so speedups are attributable.
set -eu

cd "$(dirname "$0")/.."

case "${1:-current}" in
    baseline) OUT=BENCH_baseline.json ;;
    current)  OUT=BENCH_current.json ;;
    *)        OUT="$1" ;;
esac

THREADS="${IOTLS_THREADS:-$(nproc 2>/dev/null || echo 1)}"

cargo build --release --offline --workspace
cargo build --release --offline --example bench_workloads

T0=$(date +%s)
cargo test -q --offline --workspace >/dev/null
T1=$(date +%s)
TIER1=$((T1 - T0))

WORKLOADS=$(./target/release/examples/bench_workloads)

{
    echo "["
    printf '  {"workload": "tier1_tests", "seconds": %d.0, "threads": %s},\n' "$TIER1" "$THREADS"
    printf '%s\n' "$WORKLOADS"
    echo "]"
} > "$OUT"

echo "bench: wrote $OUT"
cat "$OUT"
