#!/usr/bin/env sh
# Tier-1 gate: offline release build, lint gate, and the full workspace
# test suite (which already includes the chaos fault-injection
# experiments under tests/). Run from the repo root.
set -eu

cd "$(dirname "$0")/.."

start=$(date +%s)

cargo build --release --offline --workspace
cargo clippy --offline --workspace -- -D warnings
cargo test -q --offline --workspace

end=$(date +%s)
echo "tier1: OK ($((end - start))s)"
