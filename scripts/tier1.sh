#!/usr/bin/env sh
# Tier-1 gate: offline release build, lint gate, and the full workspace
# test suite (which already includes the chaos fault-injection
# experiments under tests/). Run from the repo root.
set -eu

cd "$(dirname "$0")/.."

start=$(date +%s)

cargo build --release --offline --workspace
cargo clippy --offline --workspace -- -D warnings
cargo test -q --offline --workspace
# Golden-snapshot suite: every exported paper artifact (Tables 4-9,
# Figures 1-5, §5.1 summary) pinned against tests/golden/ fixtures.
# Part of the workspace run above; repeated by name so a fixture drift
# is called out explicitly in the tier-1 log.
cargo test -q --offline --test golden_artifacts
# Gateway robustness suite: the drain invariant (admitted == completed
# + rejected + aborted under mid-stream shutdown), worker-count
# byte-identity, breaker behavior, panic isolation, and the 0%/100%
# fault-plan extremes. Also in the workspace run; repeated by name so
# a gateway regression is called out explicitly.
cargo test -q --offline --test gateway_service
cargo test -q --offline --test chaos_experiments gateway_survives_fault_plan_extremes
# On-disk columnar store suite: roundtrip byte-fidelity, directory
# pruning, and the corruption sweeps (truncation at every offset and
# every single-bit flip must surface as typed errors, never a panic).
# Also in the workspace run; repeated by name so a persistence
# regression is called out explicitly.
cargo test -q --offline --test store_persistence
# Segmented store suite: arbitrary segment splits vs the single-file
# oracle, incremental append vs one-shot build, pruning soundness
# against a brute-force row filter, and the read-counting proof that
# skipped segments are never touched. Also in the workspace run;
# repeated by name so a segmented-store regression is called out
# explicitly.
cargo test -q --offline --test segmented_store

# Docs gate: rustdoc warnings (broken intra-doc links, bad code
# fences) fail tier-1, same as clippy warnings do.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace

# Allocation-discipline gate: the source regions bracketed by
# "ALLOC-FREE: begin/end" markers (the tls record write path and the
# simnet drive loop) are the per-session hot path; the sans-IO rework
# made them allocation-free and the counting-allocator tests prove it
# at runtime. Fail fast here if an allocating call is reintroduced
# textually, so the regression is caught before any bench runs.
if ! awk '
    /ALLOC-FREE: begin/ { inside = 1; next }
    /ALLOC-FREE: end/   { inside = 0; next }
    inside && /to_vec\(\)|Vec::new\(\)|\.clone\(\)/ {
        printf "%s:%d: %s\n", FILENAME, FNR, $0; found = 1
    }
    END { exit found }
' crates/tls/src/record.rs crates/simnet/src/driver.rs; then
    echo "tier1: FAILED (allocating call inside an ALLOC-FREE region)" >&2
    exit 1
fi

# API-surface gate: the per-engine `_with`/`_metered` variant matrix
# was collapsed into ExperimentCtx; fail if a new variant sneaks back
# into the engine crate.
if grep -rnE 'fn [a-z_]+_(with|metered)\(' crates/core/src; then
    echo "tier1: FAILED (_with/_metered engine variant reintroduced in crates/core/src)" >&2
    exit 1
fi

end=$(date +%s)
echo "tier1: OK ($((end - start))s)"

# Optional perf gate: compare BENCH_current.json to BENCH_baseline.json
# and fail on >15% regressions. Off by default because the bench files
# are refreshed by scripts/bench.sh, not by every tier-1 run.
if [ "${IOTLS_BENCH_CHECK:-0}" = "1" ]; then
    ./scripts/bench_check.sh
fi
