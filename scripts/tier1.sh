#!/usr/bin/env sh
# Tier-1 gate: offline release build, the full workspace test suite,
# and the chaos (fault-injection) experiments. Run from the repo root.
set -eu

cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo test -q --offline --test chaos_experiments

echo "tier1: OK"
