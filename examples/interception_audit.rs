//! The full interception audit: regenerates Table 7 (and the §4.2
//! TrafficPassthrough statistic) by attacking every active device
//! with the Table 2 policies.
//!
//! Run with: `cargo run --release --example interception_audit`
//!
//! Flags: `--seed N --threads N --faults PM --metrics` (see
//! `iotls_repro::cli`).

use iotls_repro::analysis::tables;
use iotls_repro::cli::{fault_stats_line, ExampleArgs};
use iotls_repro::core::{Experiment, InterceptionAudit};
use iotls_repro::devices::Testbed;

fn main() {
    println!("== IoTLS interception audit (Tables 2 & 7) ==\n");
    println!("{}", tables::table2_attacks());

    let args = ExampleArgs::parse();
    let ctx = args.ctx(0x7AB1E7);

    let report = InterceptionAudit.run(Testbed::global(), &ctx);
    println!("{}", tables::table7_interception(&report));

    println!("Sensitive data recovered from compromised connections:");
    for row in report.leaky_devices() {
        println!("  {:<20} {:?}", row.device, row.sensitive_leaks);
    }
    println!(
        "\nResponsible-disclosure summary: {} devices vulnerable; \
         {} of them leak sensitive first-party data.",
        report.vulnerable_rows().len(),
        report.leaky_devices().len(),
    );
    println!("\n{}", fault_stats_line(&report.fault_stats));

    args.finish(&ctx);
}
