//! The TLS fingerprint survey: reboots every active device, extracts
//! JA3-shaped fingerprints, matches them against the labeled database,
//! and prints the Figure 5 sharing graph.
//!
//! Run with: `cargo run --release --example fingerprint_survey`
//!
//! Flags: `--seed N --threads N --faults PM --metrics` (see
//! `iotls_repro::cli`).

use iotls_repro::analysis::{FingerprintDb, SharingGraph};
use iotls_repro::cli::{fault_stats_line, ExampleArgs};
use iotls_repro::core::{Experiment, FingerprintSurveyor};
use iotls_repro::devices::Testbed;

fn main() {
    println!("== IoTLS fingerprint survey (§5.3, Figure 5) ==\n");

    let args = ExampleArgs::parse();
    let ctx = args.ctx(0x5075);

    let survey = FingerprintSurveyor.run(Testbed::global(), &ctx);
    println!(
        "{} active devices surveyed; {} distinct fingerprints observed",
        survey.by_device.len(),
        survey.by_fingerprint.len(),
    );

    let multi = survey.devices_with_multiple_instances();
    println!(
        "\nDevices with more than one TLS instance ({}/{}):",
        multi.len(),
        survey.by_device.len()
    );
    for d in &multi {
        println!("  {:<22} {} fingerprints", d, survey.by_device[*d].len());
    }

    let db = FingerprintDb::build(0xDB);
    println!("\nMatching against the labeled database ({} entries)…", db.len());
    let graph = SharingGraph::build(&survey, &db);
    println!(
        "{} devices share at least one fingerprint with other devices and/or applications\n",
        graph.devices().len()
    );

    println!("Application matches:");
    for (device, apps) in graph.devices_matching_applications() {
        println!("  {:<22} {:?}", device, apps.iter().collect::<Vec<_>>());
    }

    println!("\nFigure 5 (text form):\n{}", graph.render());
    println!("{}", fault_stats_line(&survey.fault_stats));

    args.finish(&ctx);
}
