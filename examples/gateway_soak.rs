//! The resident audit gateway, soaked end-to-end: record the flow
//! roster, multiplex a seeded arrival stream through the bounded
//! worker pool, and print the final drain snapshot — admission
//! verdicts, breaker activity, per-class throttling, and the drain
//! invariant (admitted == completed + rejected + aborted).
//!
//! Run with: `cargo run --release --example gateway_soak`
//!
//! Flags: `--seed N --threads N --faults PM --metrics` plus the
//! gateway knobs `--ticks N --load N --drain-at N` (see
//! `iotls_repro::cli`). Try:
//!
//! ```sh
//! # the canonical soak (the golden fixture's configuration)
//! cargo run --release --example gateway_soak
//! # a mid-stream shutdown under 10% chaos
//! cargo run --release --example gateway_soak -- --faults 100 --drain-at 24
//! # a heavier, longer soak
//! cargo run --release --example gateway_soak -- --ticks 256 --load 640
//! ```

use iotls_repro::cli::{fault_stats_line, ExampleArgs};
use iotls_repro::core::{ExperimentKind, Gateway, GatewayConfig};
use iotls_repro::devices::Testbed;

fn main() {
    println!("== IoTLS resident gateway soak ==\n");

    let args = ExampleArgs::parse();
    let ctx = args.ctx(ExperimentKind::GatewayService.canonical_seed());
    let cfg = args.gateway_config(GatewayConfig::default());

    let tb = Testbed::global();
    let gateway = Gateway::new(tb, &ctx, cfg);
    println!(
        "roster: {} recorded flows across {} endpoints; \
         {} workers, seed {:#x}\n",
        gateway.flow_count(),
        gateway.endpoint_count(),
        ctx.threads(),
        ctx.seed(),
    );

    let report = gateway.run();
    println!("{}", report.render());
    println!("{}", fault_stats_line(&report.fault_stats));
    assert!(
        report.invariant_holds(),
        "drain invariant violated — a session was silently lost"
    );

    args.finish(&ctx);
}
