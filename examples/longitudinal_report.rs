//! The two-year passive analysis: generates the 27-month dataset,
//! renders Figures 1–3 as heatmaps, Table 8, the §5.1 summary
//! statistics, and the prior-work comparison.
//!
//! Run with: `cargo run --release --example longitudinal_report`

use iotls_repro::analysis::{figures, tables};
use iotls_repro::capture::global_dataset;
use iotls_repro::core::{
    cipher_series, passive_summary, revocation_summary, version_series, version_transitions,
};

fn main() {
    println!("== IoTLS longitudinal analysis (Figures 1-3, Table 8, §5.1) ==\n");

    let ds = global_dataset();
    let stats = ds.stats();
    println!(
        "Dataset: {} TLS connections from {} devices (mean {:.0}K / median {:.0}K per device)\n",
        stats.total_connections,
        stats.per_device.len(),
        stats.mean_per_device / 1000.0,
        stats.median_per_device as f64 / 1000.0,
    );

    let summary = passive_summary(ds);
    let versions = version_series(ds);
    let ciphers = cipher_series(ds);

    println!("{}", figures::fig1_versions(ds, &versions, &summary.fig1_devices));
    println!("{}", figures::fig2_insecure(ds, &ciphers));
    println!("{}", figures::fig3_strong(ds, &ciphers));

    println!("Detected protocol-version upgrades:");
    for t in version_transitions(ds) {
        println!("  {:<20} {} -> {} ({})", t.device, t.from, t.to, t.month);
    }

    println!("\n§5.1 summary:");
    println!(
        "  TLS 1.2-exclusive devices:        {}",
        summary.tls12_exclusive_devices.len()
    );
    println!(
        "  devices advertising insecure:     {}",
        summary.devices_advertising_insecure.len()
    );
    println!(
        "  devices establishing insecure:    {} ({:?})",
        summary.devices_establishing_insecure.len(),
        summary.devices_establishing_insecure
    );
    println!(
        "  devices advertising PFS:          {}",
        summary.devices_advertising_fs.len()
    );
    println!(
        "  devices mostly without PFS:       {}",
        summary.devices_mostly_without_fs.len()
    );
    println!("  NULL/ANON suites ever seen:       {}", summary.null_anon_seen);
    println!(
        "\nPrior-work comparison: {:.1}% of connections advertise TLS 1.3 \
         (web ≈60%); {:.1}% advertise RC4 (web ≈10%)\n",
        summary.pct_connections_tls13, summary.pct_connections_rc4,
    );

    let revocation = revocation_summary(ds);
    println!("{}", tables::table8_revocation(&revocation, &ds.device_names()));
}
