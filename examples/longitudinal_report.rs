//! The two-year passive analysis: generates the 27-month dataset,
//! renders Figures 1–3 as heatmaps, Table 8, the §5.1 summary
//! statistics, and the prior-work comparison — then sweeps the whole
//! active-experiment registry through one [`Orchestrator`] pass and
//! prints every golden artifact the reports back.
//!
//! Everything below the dataset line comes from ONE pass over the
//! columnar chunk stream (`analyze_columnar`), not repeated scans of
//! a materialized row vector.
//!
//! Run with: `cargo run --release --example longitudinal_report`
//!
//! Set `IOTLS_METRICS=path.json` to also write the run's observability
//! registry (passive.* counters plus wall-clock timings) as JSON.
//! Flags: `--seed N --threads N --faults PM --metrics`, plus
//! `--store PATH` to persist the columnar dataset as an on-disk store
//! and `--from-store PATH` to analyze a previously persisted store
//! instead of generating (see `iotls_repro::cli`). A `--store` path
//! ending in `.iotls` writes the single-file format; any other path
//! is a **segmented store directory**, and `--append` extends it
//! with this run's dataset as a new batch (multi-day ingestion) —
//! the analysis then covers the whole store, all batches included.
//! `--from-store` auto-detects the layout (directory = segmented).

use iotls_repro::analysis::{experiment_artifacts, figures, tables};
use iotls_repro::capture::{global_columnar, ColumnarStore, SegmentedStore, SegmentedWriter};
use iotls_repro::cli::ExampleArgs;
use iotls_repro::core::{analyze_columnar, analyze_store, Orchestrator, Report};
use iotls_repro::devices::Testbed;
use iotls_repro::obs::Span;
use std::path::Path;

/// Seed for the labeled fingerprint database Figure 5 joins against.
const FPDB_SEED: u64 = 0xDB;

/// Store errors are expected operator input (a bad path, a corrupt
/// file) — report and exit instead of panicking with a backtrace.
fn fail(msg: &str) -> ! {
    eprintln!("longitudinal_report: {msg}");
    std::process::exit(2);
}

fn main() {
    println!("== IoTLS longitudinal analysis (Figures 1-3, Table 8, §5.1) ==\n");

    let args = ExampleArgs::parse();
    let ctx = args.ctx(iotls_repro::capture::DEFAULT_SEED);

    let span = Span::start("passive.analyze");
    let (a, rows, chunks) = match args.from_store.as_deref() {
        // Analyze a persisted store: frames stream off disk in
        // bounded memory; no generation happens at all. A directory
        // is a segmented store, a file the single-file format.
        Some(path) if Path::new(path).is_dir() => {
            let store = SegmentedStore::open(Path::new(path))
                .unwrap_or_else(|e| fail(&format!("open store {path}: {e}")));
            eprintln!(
                "segmented store: {} segments, {} orphans",
                store.segment_count(),
                store.orphan_segments()
            );
            let a = analyze_store(&store, &ctx)
                .unwrap_or_else(|e| fail(&format!("analyze store {path}: {e}")));
            (a, store.total_rows(), store.chunk_count())
        }
        Some(path) => {
            let store = ColumnarStore::open(Path::new(path))
                .unwrap_or_else(|e| fail(&format!("open store {path}: {e}")));
            let a = analyze_store(&store, &ctx)
                .unwrap_or_else(|e| fail(&format!("analyze store {path}: {e}")));
            (a, store.total_rows(), store.chunk_count())
        }
        None => {
            let ds = global_columnar();
            match args.store.as_deref() {
                // Segmented store directory: create or (--append)
                // extend it with this dataset as one batch, then
                // analyze the whole store — previous batches included.
                Some(path) if args.append || !path.ends_with(".iotls") => {
                    let dir = Path::new(path);
                    let mut w = if args.append {
                        SegmentedWriter::append(dir)
                            .unwrap_or_else(|e| fail(&format!("reopen store {path}: {e}")))
                    } else {
                        SegmentedWriter::create(dir)
                            .unwrap_or_else(|e| fail(&format!("create store {path}: {e}")))
                    };
                    w.append_columnar(ds, 0)
                        .unwrap_or_else(|e| fail(&format!("append to store {path}: {e}")));
                    w.finish_batch()
                        .unwrap_or_else(|e| fail(&format!("publish store {path}: {e}")));
                    let store = SegmentedStore::open(dir)
                        .unwrap_or_else(|e| fail(&format!("reopen store {path}: {e}")));
                    eprintln!(
                        "segmented store {} at {path} ({} segments)",
                        if args.append { "extended" } else { "written" },
                        store.segment_count()
                    );
                    let a = analyze_store(&store, &ctx)
                        .unwrap_or_else(|e| fail(&format!("analyze store {path}: {e}")));
                    (a, store.total_rows(), store.chunk_count())
                }
                Some(path) => {
                    ds.write_to(Path::new(path))
                        .unwrap_or_else(|e| fail(&format!("write store {path}: {e}")));
                    eprintln!("columnar store written to {path}");
                    (analyze_columnar(ds, &ctx), ds.total_rows() as u64, ds.chunks.len())
                }
                None => {
                    (analyze_columnar(ds, &ctx), ds.total_rows() as u64, ds.chunks.len())
                }
            }
        }
    };
    ctx.metrics().with(|reg| reg.record(span));
    println!(
        "Dataset: {} TLS connections from {} devices ({} columnar rows in {} chunks)\n",
        a.total_connections,
        a.device_names.len(),
        rows,
        chunks,
    );

    let summary = &a.summary;
    println!(
        "{}",
        figures::fig1_versions(&a.month_axis, &a.version_series, &summary.fig1_devices)
    );
    println!("{}", figures::fig2_insecure(&a.month_axis, &a.cipher_series));
    println!("{}", figures::fig3_strong(&a.month_axis, &a.cipher_series));

    println!("Detected protocol-version upgrades:");
    for t in &a.transitions {
        println!("  {:<20} {} -> {} ({})", t.device, t.from, t.to, t.month);
    }

    println!("\n§5.1 summary:");
    println!(
        "  TLS 1.2-exclusive devices:        {}",
        summary.tls12_exclusive_devices.len()
    );
    println!(
        "  devices advertising insecure:     {}",
        summary.devices_advertising_insecure.len()
    );
    println!(
        "  devices establishing insecure:    {} ({:?})",
        summary.devices_establishing_insecure.len(),
        summary.devices_establishing_insecure
    );
    println!(
        "  devices advertising PFS:          {}",
        summary.devices_advertising_fs.len()
    );
    println!(
        "  devices mostly without PFS:       {}",
        summary.devices_mostly_without_fs.len()
    );
    println!("  NULL/ANON suites ever seen:       {}", summary.null_anon_seen);
    println!(
        "\nPrior-work comparison: {:.1}% of connections advertise TLS 1.3 \
         (web ≈60%); {:.1}% advertise RC4 (web ≈10%)\n",
        summary.pct_connections_tls13, summary.pct_connections_rc4,
    );

    println!(
        "{}",
        tables::table8_revocation(&a.revocation, &a.device_names)
    );

    // The full active registry, one orchestrator pass: every
    // experiment at its canonical paper seed, sharing this run's
    // fault plan, thread policy, cache scope, and metrics shard.
    let testbed = Testbed::global();
    println!("== Active experiment registry (one orchestrator pass) ==\n");
    for run in Orchestrator::new(testbed, &ctx).canonical_seeds().run_all() {
        match &run.result {
            Ok(report) => {
                let artifacts = experiment_artifacts(testbed, report, FPDB_SEED);
                println!(
                    "{}: ok ({} fixture artifact{})",
                    run.kind.name(),
                    artifacts.len(),
                    if artifacts.len() == 1 { "" } else { "s" },
                );
                for (name, text) in artifacts {
                    println!("\n-- {name} --\n{text}");
                }
                if let Some(stats) = report.fault_stats() {
                    println!("  {}", iotls_repro::cli::fault_stats_line(stats));
                }
            }
            Err(e) => println!("{}: FAILED ({e})", run.kind.name()),
        }
    }

    args.finish(&ctx);
}
