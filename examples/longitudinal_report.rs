//! The two-year passive analysis: generates the 27-month dataset,
//! renders Figures 1–3 as heatmaps, Table 8, the §5.1 summary
//! statistics, and the prior-work comparison.
//!
//! Everything below the dataset line comes from ONE pass over the
//! columnar chunk stream (`analyze_columnar`), not repeated scans of
//! a materialized row vector.
//!
//! Run with: `cargo run --release --example longitudinal_report`
//!
//! Set `IOTLS_METRICS=path.json` to also write the run's observability
//! registry (passive.* counters plus wall-clock timings) as JSON.

use iotls_repro::analysis::{figures, tables};
use iotls_repro::capture::global_columnar;
use iotls_repro::core::analyze_columnar_metered;
use iotls_repro::obs::{Registry, Span};

fn main() {
    println!("== IoTLS longitudinal analysis (Figures 1-3, Table 8, §5.1) ==\n");

    let mut reg = Registry::new();
    let ds = global_columnar();
    let span = Span::start("passive.analyze");
    let a = analyze_columnar_metered(ds, &mut reg);
    reg.record(span);
    println!(
        "Dataset: {} TLS connections from {} devices ({} columnar rows in {} chunks)\n",
        a.total_connections,
        a.device_names.len(),
        ds.total_rows(),
        ds.chunks.len(),
    );

    let summary = &a.summary;
    println!(
        "{}",
        figures::fig1_versions(&a.month_axis, &a.version_series, &summary.fig1_devices)
    );
    println!("{}", figures::fig2_insecure(&a.month_axis, &a.cipher_series));
    println!("{}", figures::fig3_strong(&a.month_axis, &a.cipher_series));

    println!("Detected protocol-version upgrades:");
    for t in &a.transitions {
        println!("  {:<20} {} -> {} ({})", t.device, t.from, t.to, t.month);
    }

    println!("\n§5.1 summary:");
    println!(
        "  TLS 1.2-exclusive devices:        {}",
        summary.tls12_exclusive_devices.len()
    );
    println!(
        "  devices advertising insecure:     {}",
        summary.devices_advertising_insecure.len()
    );
    println!(
        "  devices establishing insecure:    {} ({:?})",
        summary.devices_establishing_insecure.len(),
        summary.devices_establishing_insecure
    );
    println!(
        "  devices advertising PFS:          {}",
        summary.devices_advertising_fs.len()
    );
    println!(
        "  devices mostly without PFS:       {}",
        summary.devices_mostly_without_fs.len()
    );
    println!("  NULL/ANON suites ever seen:       {}", summary.null_anon_seen);
    println!(
        "\nPrior-work comparison: {:.1}% of connections advertise TLS 1.3 \
         (web ≈60%); {:.1}% advertise RC4 (web ≈10%)\n",
        summary.pct_connections_tls13, summary.pct_connections_rc4,
    );

    println!(
        "{}",
        tables::table8_revocation(&a.revocation, &a.device_names)
    );

    if let Ok(path) = std::env::var("IOTLS_METRICS") {
        std::fs::write(&path, reg.to_json()).expect("write IOTLS_METRICS file");
        eprintln!("metrics written to {path}");
    }
}
