//! The paper's §6 recommendations, demonstrated end-to-end: the
//! vendor auditing service grades every device's TLS instances, the
//! SPIN-style guardian gateway pauses insecure connections, and
//! certificate pinning (leaf vs root) is shown against a
//! compromised-CA MITM.
//!
//! Run with: `cargo run --release --example mitigations`
//!
//! Flags: `--seed N --threads N --faults PM --metrics` (see
//! `iotls_repro::cli`).

use iotls_repro::capture::global_dataset;
use iotls_repro::cli::{fault_stats_line, ExampleArgs};
use iotls_repro::core::{
    guardian_verdict, AuditService, Experiment, Grade, GuardianAction,
};
use iotls_repro::devices::Testbed;

fn main() {
    println!("== IoTLS §6 mitigations ==\n");

    let args = ExampleArgs::parse();
    let ctx = args.ctx(0xA0D1);

    // 1. The auditing service: devices phone in at reboot, the
    //    service grades their hellos and alerts manufacturers.
    let report = AuditService.run(Testbed::global(), &ctx);
    println!("Auditing service report (32 active devices):\n");
    for grade in [Grade::Critical, Grade::NeedsAttention, Grade::Good] {
        let devices: Vec<&iotls_repro::core::DeviceAudit> =
            report.audits.iter().filter(|a| a.grade() == grade).collect();
        println!("{grade:?} ({}):", devices.len());
        for a in devices {
            let worst = a
                .instances
                .iter()
                .max_by_key(|i| i.grade)
                .expect("instances non-empty");
            let issues: Vec<String> = worst.issues.iter().map(|i| i.to_string()).collect();
            println!("  {:<22} {}", a.device, issues.join("; "));
        }
        println!();
    }
    println!("{}\n", fault_stats_line(&report.fault_stats));

    // 2. The guardian gateway over one month of passive traffic.
    let ds = global_dataset();
    let mut paused: u64 = 0;
    let mut allowed: u64 = 0;
    let mut paused_devices = std::collections::BTreeSet::new();
    for w in &ds.observations {
        match guardian_verdict(&w.observation) {
            GuardianAction::Allow => allowed += w.count,
            GuardianAction::PauseAndAsk(_) => {
                paused += w.count;
                paused_devices.insert(w.observation.device.clone());
            }
        }
    }
    println!(
        "Guardian gateway over the two-year capture: {} connections allowed, \
         {} paused for user confirmation ({} devices affected):",
        allowed, paused, paused_devices.len()
    );
    for d in &paused_devices {
        println!("  {d}");
    }
    println!(
        "\n(Pinning demonstrations live in crates/tls/tests/mitigations.rs: a leaf\n\
         pin defeats interception even for a non-validating client, while a root\n\
         pin does not survive a compromised CA — the paper's §6 caveat.)"
    );

    args.finish(&ctx);
}
