//! Quickstart: build the simulated smart-home testbed, drive one real
//! TLS handshake through the gateway tap, and try one interception.
//!
//! Run with: `cargo run --release --example quickstart`

use iotls_repro::core::{ActiveLab, InterceptPolicy};
use iotls_repro::devices::Testbed;

fn main() {
    println!("== IoTLS reproduction quickstart ==\n");

    // The testbed: 40 devices (Table 1), their cloud endpoints, and a
    // full synthetic PKI. Built once, deterministic.
    let testbed = Testbed::global();
    println!(
        "Testbed ready: {} devices, {} cloud endpoints, {} CAs\n",
        testbed.devices.len(),
        testbed.cloud().len(),
        testbed.pki.universe.len(),
    );
    println!("{}", iotls_repro::analysis::tables::table1_roster(testbed));

    // A benign connection: the D-Link camera phones home while the
    // gateway passively observes.
    let mut lab = ActiveLab::new(testbed, 1);
    let camera = testbed.device("D-Link Camera");
    let dest = camera.spec.destinations[0].clone();
    let outcome = lab.connect(camera, &dest, None);
    let obs = outcome.result.observation.as_ref().expect("tapped");
    println!(
        "Passive observation: {} -> {} | negotiated {} with {} | fingerprint {}",
        obs.device,
        obs.destination,
        obs.negotiated_version.map(|v| v.to_string()).unwrap_or_default(),
        obs.negotiated_suite
            .and_then(iotls_repro::tls::ciphersuite::by_id)
            .map(|s| s.name)
            .unwrap_or("?"),
        obs.fingerprint,
    );
    assert!(outcome.result.established);

    // The same connection under a NoValidation attack: the strict
    // camera refuses (and we see exactly which alert it sends).
    let outcome = lab.connect(camera, &dest, Some(&InterceptPolicy::SelfSigned));
    println!(
        "Self-signed interception of {}: established = {}, client alerts = {:?}",
        dest.hostname,
        outcome.result.established,
        outcome
            .result
            .observation
            .map(|o| o.alerts_from_client)
            .unwrap_or_default(),
    );

    // And against a device that never validates, the attacker reads
    // the plaintext.
    let zmodo = testbed.device("Zmodo Doorbell");
    let dest = zmodo.spec.destinations[0].clone();
    let outcome = lab.connect(zmodo, &dest, Some(&InterceptPolicy::SelfSigned));
    println!(
        "Self-signed interception of {}: established = {}, exfiltrated = {:?}",
        dest.hostname,
        outcome.result.established,
        String::from_utf8_lossy(&outcome.result.server_received),
    );
}
