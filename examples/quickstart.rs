//! Quickstart: build the simulated smart-home testbed, drive one real
//! TLS handshake through the gateway tap, and try one interception.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! Flags: `--seed N --threads N --faults PM --metrics` (see
//! `iotls_repro::cli`). With `--faults`, the fault-stats line at the
//! end shows the injected chaos and the lab's recovery work.

use iotls_repro::cli::{fault_stats_line, ExampleArgs};
use iotls_repro::core::{ActiveLab, InterceptPolicy};
use iotls_repro::devices::Testbed;

fn main() {
    println!("== IoTLS reproduction quickstart ==\n");

    let args = ExampleArgs::parse();
    let ctx = args.ctx(1);

    // The testbed: 40 devices (Table 1), their cloud endpoints, and a
    // full synthetic PKI. Built once, deterministic.
    let testbed = Testbed::global();
    println!(
        "Testbed ready: {} devices, {} cloud endpoints, {} CAs\n",
        testbed.devices.len(),
        testbed.cloud().len(),
        testbed.pki.universe.len(),
    );
    println!("{}", iotls_repro::analysis::tables::table1_roster(testbed));

    // A benign connection: the D-Link camera phones home while the
    // gateway passively observes. The lab borrows the ctx, so the
    // fault plan and verification cache follow the flags.
    let mut lab = ActiveLab::with_ctx(testbed, &ctx, ctx.seed());
    let camera = testbed.device("D-Link Camera");
    let dest = camera.spec.destinations[0].clone();
    let outcome = lab.connect(camera, &dest, None);
    let obs = outcome.result.observation.as_ref().expect("tapped");
    println!(
        "Passive observation: {} -> {} | negotiated {} with {} | fingerprint {}",
        obs.device,
        obs.destination,
        obs.negotiated_version.map(|v| v.to_string()).unwrap_or_default(),
        obs.negotiated_suite
            .and_then(iotls_repro::tls::ciphersuite::by_id)
            .map(|s| s.name)
            .unwrap_or("?"),
        obs.fingerprint,
    );
    assert!(outcome.result.established);

    // The same connection under a NoValidation attack: the strict
    // camera refuses (and we see exactly which alert it sends).
    let outcome = lab.connect(camera, &dest, Some(&InterceptPolicy::SelfSigned));
    println!(
        "Self-signed interception of {}: established = {}, client alerts = {:?}",
        dest.hostname,
        outcome.result.established,
        outcome
            .result
            .observation
            .map(|o| o.alerts_from_client)
            .unwrap_or_default(),
    );

    // And against a device that never validates, the attacker reads
    // the plaintext.
    let zmodo = testbed.device("Zmodo Doorbell");
    let dest = zmodo.spec.destinations[0].clone();
    let outcome = lab.connect(zmodo, &dest, Some(&InterceptPolicy::SelfSigned));
    println!(
        "Self-signed interception of {}: established = {}, exfiltrated = {:?}",
        dest.hostname,
        outcome.result.established,
        String::from_utf8_lossy(&outcome.result.server_received),
    );

    println!("\n{}", fault_stats_line(&lab.fault_stats()));
    args.finish(&ctx);
}
