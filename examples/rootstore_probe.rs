//! The root-store exploration: validates the alert side channel
//! against the six library profiles (Table 4), then probes every
//! rebootable, validating device with spoofed CAs (Table 9) and
//! reports the staleness of what it finds (Figure 4).
//!
//! Run with: `cargo run --release --example rootstore_probe`
//!
//! Flags: `--seed N --threads N --faults PM --metrics` (see
//! `iotls_repro::cli`).

use iotls_repro::analysis::{figures, tables};
use iotls_repro::cli::{fault_stats_line, ExampleArgs};
use iotls_repro::core::{library_alert_matrix, Experiment, RootProbe};
use iotls_repro::devices::Testbed;

fn main() {
    println!("== IoTLS root-store exploration (Tables 3, 4, 9; Figure 4) ==\n");
    println!("{}", tables::table3_platforms());
    println!("{}", tables::table4_library_alerts(&library_alert_matrix()));

    let args = ExampleArgs::parse();
    let ctx = args.ctx(0x6007);

    let testbed = Testbed::global();
    println!(
        "Probe sets from the platform histories: {} common, {} deprecated certificates\n",
        testbed.pki.common.len(),
        testbed.pki.deprecated.len(),
    );

    let report = RootProbe.run(testbed, &ctx);
    println!("{}", tables::table9_rootstores(&report));
    println!("{}", figures::fig4_staleness(testbed.pki, &report));

    // §5.2's closing question, answered with measurements.
    let utilization = iotls_repro::analysis::root_store_utilization(
        iotls_repro::capture::global_dataset(),
        &report,
    );
    println!("{}", iotls_repro::analysis::render_utilization(&utilization));

    // The distrusted-CA headline.
    let distrusted: Vec<_> = testbed.pki.universe.distrusted_ids();
    println!("Explicitly distrusted CAs still trusted by probed devices:");
    for row in report.amenable_rows() {
        let present = row.deprecated_present_ids();
        let names: Vec<&str> = distrusted
            .iter()
            .filter(|id| present.contains(id))
            .map(|id| testbed.pki.universe.get(*id).name.common_name.as_str())
            .collect();
        println!("  {:<20} {}", row.device, names.join(", "));
    }
    println!("\n{}", fault_stats_line(&report.fault_stats));

    args.finish(&ctx);
}
