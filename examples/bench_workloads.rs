//! Perf harness: times the headline workloads and emits one JSON
//! entry per workload on stdout
//! (`{workload, seconds, threads, rss_mb, ...}`).
//!
//! `scripts/bench.sh` wraps this with the tier-1 test-suite timing and
//! writes `BENCH_baseline.json` / `BENCH_current.json`, so the perf
//! trajectory of the repo is measured the same way in every PR.
//! `scripts/bench_check.sh` diffs the two and fails on regressions.
//!
//! The `passive_10m` workload generates and analyzes the paper-scale
//! dataset — every simulated connection as its own row, ≥10M rows —
//! and records throughput and peak RSS; `passive_10m_t4`/`_t8` rerun
//! it pinned at 4 and 8 workers (byte-identical output, scaling curve
//! only). `passive_reload` persists the same corpus to an on-disk
//! columnar store, then times reopening it and re-running the full
//! analysis straight off disk (rows/sec). `passive_100m` ingests six
//! time-shifted study epochs (≥100M rows) into a segmented store
//! directory, and `partial_reanalysis` re-analyzes a one-month ×
//! one-device slice of it through the pruning directory, reporting
//! rows/sec and bytes-read vs bytes-total. The `gateway_soak` workload
//! multiplexes ≥1M sessions through the resident gateway runtime and
//! records sessions/sec alongside peak RSS. With `IOTLS_BENCH_LEGACY=1`
//! it instead runs the pre-streaming shape of that pipeline
//! (materialize the full `String`-laden row vector, then one full
//! scan per table), which is what `bench.sh baseline` records.
//!
//! Set `IOTLS_METRICS=path.json` to also write the run's
//! observability registry (deterministic counters + wall timings) as
//! JSON; `bench.sh` stores it next to each timing snapshot so
//! `bench_check.sh` can flag behavioral regressions (cache hit rates,
//! dedup/pruning ratios) alongside wall-clock ones.
//!
//! Run with: `cargo run --release --example bench_workloads`
//!
//! All workloads run from one [`ExperimentCtx`] (re-seeded per
//! workload), so `--threads`/`IOTLS_THREADS` and the metrics sink are
//! resolved once, up front. Flags: `--seed N --threads N --faults PM
//! --metrics` (see `iotls_repro::cli`).

use iotls_repro::capture::{
    generate, ColumnarStore, RevRow, SegmentedStore, SegmentedWriter, StoreWriter, DEFAULT_SEED,
};
use iotls_repro::cli::ExampleArgs;
use iotls_repro::core::{
    analyze_store, analyze_store_slice, analyze_streamed, cipher_series, passive_summary,
    revocation_summary, version_series, version_transitions, Experiment, ExperimentCtx, Gateway,
    GatewayConfig, InterceptionAudit, RootProbe,
};
use iotls_repro::crypto::drbg::Drbg;
use iotls_repro::crypto::rsa::RsaPrivateKey;
use iotls_repro::devices::Testbed;
use iotls_repro::simnet::{
    replay_flow_with, sessions_driven, ReplayScratch, SessionFaults, SessionFlow,
};
use iotls_repro::tls::client::{ClientConfig, ClientConnection};
use iotls_repro::tls::server::{ServerConfig, ServerConnection};
use iotls_repro::x509::{CertifiedKey, DistinguishedName, IssueParams, Month, RootStore, Timestamp};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counting shim over the system allocator, backing the
/// `steady_replay` workload's `allocs_per_session` field (gated at 0
/// by `bench_check.sh`). One relaxed atomic add per allocation —
/// unmeasurable against the workloads it rides along with.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Resets the kernel's peak-RSS watermark for this process so each
/// workload's `VmHWM` reading is its own (Linux ≥ 4.0; a failed write
/// degrades to a whole-process high-water mark).
fn reset_peak_rss() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

/// Peak resident set size in MiB, from `/proc/self/status`.
fn peak_rss_mb() -> f64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: f64 = rest
                .split_whitespace()
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0.0);
            return kb / 1024.0;
        }
    }
    0.0
}

/// Times one workload, capturing wall seconds and its peak RSS.
/// `f` returns extra JSON fields (e.g. row counts), empty for none.
fn timed(name: &str, threads: usize, f: impl FnOnce() -> String) -> String {
    reset_peak_rss();
    let start = Instant::now();
    let extra = f();
    let seconds = start.elapsed().as_secs_f64();
    let rss = peak_rss_mb();
    eprintln!("bench: {name} finished in {seconds:.2}s (peak RSS {rss:.0} MB)");
    format!(
        "  {{\"workload\": \"{name}\", \"seconds\": {seconds:.3}, \"threads\": {threads}, \
         \"rss_mb\": {rss:.1}{extra}}}"
    )
}

/// Allocation-discipline probe: records one clean session tape, then
/// replays it through the gateway's hot path ([`replay_flow_with`]
/// with a warm [`ReplayScratch`]) and reports heap allocations per
/// replayed session — **zero** since the sans-IO rework, and
/// `bench_check.sh` fails the run if it ever climbs back above zero.
/// Also reports replay throughput, the gateway's per-worker ceiling.
fn steady_replay() -> String {
    let key = RsaPrivateKey::generate(512, &mut Drbg::from_seed(0xA110C));
    let root = CertifiedKey::self_signed(
        IssueParams::ca(
            DistinguishedName::new("Bench Root", "SimCA", "US"),
            1,
            Timestamp::from_ymd(2015, 1, 1),
            7300,
        ),
        key,
    );
    let leaf_key = RsaPrivateKey::generate(512, &mut Drbg::from_seed(0xA110D));
    let leaf = root.issue(
        IssueParams::leaf("cloud.example.com", 2, Timestamp::from_ymd(2020, 6, 1), 500),
        &leaf_key,
    );
    let client = ClientConnection::new(
        ClientConfig::modern(RootStore::from_certs([root.cert.clone()])),
        "cloud.example.com",
        Timestamp::from_ymd(2021, 3, 1),
        Drbg::from_seed(1),
    );
    let server = ServerConnection::new(ServerConfig::typical(vec![leaf], leaf_key), Drbg::from_seed(2));
    let flow = SessionFlow::record(client, server, Some(b"ping"), Some(b"ok"));
    assert!(flow.established, "bench tape must establish");

    let mut scratch = ReplayScratch::new();
    black_box(replay_flow_with(&flow, SessionFaults::none(), 64, &mut scratch)); // warmup

    const SESSIONS: u64 = 200_000;
    let alloc_before = ALLOCATIONS.load(Ordering::Relaxed);
    let start = Instant::now();
    for _ in 0..SESSIONS {
        let outcome = replay_flow_with(&flow, SessionFaults::none(), 64, &mut scratch);
        debug_assert!(outcome.established);
        black_box(&outcome);
    }
    let seconds = start.elapsed().as_secs_f64();
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - alloc_before;
    let per_session = allocs / SESSIONS;
    let rate = SESSIONS as f64 / seconds.max(1e-9);
    format!(
        ", \"sessions\": {SESSIONS}, \"sessions_per_sec\": {rate:.0}, \
         \"allocs_per_session\": {per_session}"
    )
}

/// Paper-scale passive run: ≥10M connections, one row each, streamed
/// through the single-pass accumulator. Memory stays bounded at one
/// open chunk plus the integer cells.
fn passive_10m_streamed(ctx: &ExperimentCtx) -> String {
    let a = analyze_streamed(Testbed::global(), ctx, 1);
    assert!(
        a.total_connections >= 10_000_000,
        "paper scale means >=10M connections, got {}",
        a.total_connections
    );
    assert!(!a.summary.fig1_devices.is_empty());
    let rows = a.total_connections; // one row per connection
    black_box(&a);
    format!(", \"rows\": {rows}, \"connections\": {}", a.total_connections)
}

/// The pre-streaming shape of the same workload: materialize every
/// row as a `String`-carrying observation, then run one full scan per
/// deliverable (Figures 1–3 series, transitions, summary, Table 8),
/// the way the row-vector pipeline did.
fn passive_10m_legacy(ctx: &ExperimentCtx) -> String {
    let mut chunks = Vec::new();
    let capture = ctx.capture_ctx();
    let mut cds = capture.generate_streamed(Testbed::global(), 1, &mut |c| chunks.push(c));
    cds.chunks = chunks;
    let ds = cds.to_rows();
    drop(cds);
    let connections = ds.total_connections();
    assert!(connections >= 10_000_000);
    black_box(version_series(&ds));
    black_box(cipher_series(&ds));
    black_box(version_transitions(&ds));
    black_box(passive_summary(&ds));
    black_box(revocation_summary(&ds));
    let rows = ds.observations.len();
    format!(", \"rows\": {rows}, \"connections\": {connections}")
}

/// Gateway soak at bench scale: ≥1M multiplexed sessions through the
/// resident runtime, sized so nothing is rejected (the bench measures
/// session throughput, not admission control). Reports sessions/sec;
/// peak RSS comes from the shared `timed` wrapper.
fn gateway_soak(ctx: &ExperimentCtx) -> String {
    let cfg = GatewayConfig {
        ticks: 520,
        load: 2048,
        load_spread: 64,
        queue_capacity: 8192,
        pool_capacity: 4096,
        bucket_capacity: 4096,
        bucket_refill: 2048,
        ..GatewayConfig::default()
    };
    let start = Instant::now();
    let report = Gateway::new(Testbed::global(), ctx, cfg).run();
    let seconds = start.elapsed().as_secs_f64();
    assert!(
        report.completed >= 1_000_000,
        "bench scale means >=1M completed sessions, got {}",
        report.completed
    );
    assert!(report.invariant_holds());
    let rate = report.completed as f64 / seconds.max(1e-9);
    black_box(&report);
    format!(
        ", \"sessions\": {}, \"sessions_per_sec\": {rate:.0}",
        report.completed
    )
}

/// Persist-then-reload: streams the paper-scale corpus into an
/// on-disk columnar store (untimed setup), then times opening the
/// store and re-running the full passive analysis straight off disk.
/// Frames `pread` one at a time, so peak RSS stays near the streamed
/// path's. Reports rows/sec; the corpus file is removed afterwards.
fn passive_reload(ctx: &ExperimentCtx, tb: &Testbed) -> String {
    let path = Path::new("target/bench_corpus.iotls");
    let capture = ctx.capture_ctx();
    let mut writer = StoreWriter::create(path).expect("create bench corpus");
    let tail = capture.generate_streamed(tb, 1, &mut |c| {
        writer.add_chunk(&c).expect("write bench corpus chunk");
    });
    writer
        .finish(&tail.strings, &tail.fps, &tail.revocation_flows, tail.truncated)
        .expect("finish bench corpus");
    let entry = timed("passive_reload", ctx.threads(), || {
        let start = Instant::now();
        let store = ColumnarStore::open(path).expect("open bench corpus");
        let a = analyze_store(&store, ctx).expect("analyze bench corpus");
        let seconds = start.elapsed().as_secs_f64();
        assert!(a.total_connections >= 10_000_000);
        let rows = store.total_rows();
        let rate = rows as f64 / seconds.max(1e-9);
        black_box(&a);
        format!(", \"rows\": {rows}, \"rows_per_sec\": {rate:.0}")
    });
    let _ = std::fs::remove_file(path);
    entry
}

/// Directory of the segmented bench corpus `passive_100m` builds and
/// `partial_reanalysis` slices; removed when the latter finishes.
const SEG_DIR: &str = "target/bench_corpus_seg";

/// Builds the ≥100M-row segmented corpus: six 27-month study epochs,
/// each the paper-scale stream time-shifted three years past the
/// previous one, appended into one segmented store (one sealed
/// segment boundary per epoch, default chunk roll inside). This is
/// the "2 years of pcap at the gateway" ingestion shape: chunks flow
/// straight from the generator into immutable segment files, memory
/// stays bounded at one open chunk, and the manifest publishes once.
fn passive_100m(ctx: &ExperimentCtx, tb: &Testbed) -> String {
    let dir = Path::new(SEG_DIR);
    let _ = std::fs::remove_dir_all(dir);
    timed("passive_100m", ctx.threads(), || {
        let span = Month::new(2021, 1).start().0 - Month::new(2018, 1).start().0;
        let capture = ctx.capture_ctx();
        let mut writer = SegmentedWriter::create(dir).expect("create segmented corpus");
        let mut rows = 0u64;
        let mut flows: Vec<RevRow> = Vec::new();
        let mut truncated = 0u64;
        let mut tables = None;
        for epoch in 0..6i64 {
            let dt = epoch * span;
            let tail = capture.generate_streamed(tb, 1, &mut |c| {
                rows += c.len() as u64;
                writer.add_chunk(&c.shifted(dt)).expect("write segment chunk");
            });
            writer.seal_segment();
            flows.extend(
                tail.revocation_flows
                    .iter()
                    .map(|f| RevRow { time: f.time + dt, ..*f }),
            );
            truncated += tail.truncated;
            tables = Some((tail.strings, tail.fps));
        }
        let (strings, fps) = tables.expect("at least one epoch");
        writer
            .finish(&strings, &fps, &flows, truncated)
            .expect("publish segmented corpus");
        assert!(rows >= 100_000_000, "bench scale means >=100M rows, got {rows}");
        let store = SegmentedStore::open(dir).expect("reopen segmented corpus");
        assert_eq!(store.total_rows(), rows);
        format!(", \"rows\": {rows}, \"segments\": {}", store.segment_count())
    })
}

/// Pruned-slice re-analysis over the `passive_100m` corpus: one month
/// × one device, selected through the two-level pruning directory, so
/// only the segments that can contain the slice are ever read.
/// Reports rows/sec over the folded slice and bytes-read vs
/// bytes-total (the pruning ratio `bench_check.sh` gates). The
/// corpus directory is removed afterwards.
fn partial_reanalysis(ctx: &ExperimentCtx) -> String {
    let dir = Path::new(SEG_DIR);
    let month = Month::new(2019, 6);
    let (from, to) = (month.start().0, month.end().0);
    // Pick the slice device off the corpus itself (the first device
    // with traffic inside the window) so the workload never chases a
    // device the timeline had not yet activated. Probe reads happen
    // on a throwaway open; the timed run starts with clean counters.
    let device = {
        let probe = SegmentedStore::open(dir).expect("open segmented corpus");
        let mut found = None;
        'probe: for ci in probe.select_chunks(from, to, None) {
            let chunk = probe.read_chunk(ci).expect("probe corpus chunk");
            for i in 0..chunk.len() {
                let row = chunk.row(i);
                if row.time() >= from && row.time() <= to {
                    found = Some(probe.strings().resolve(row.device()).to_string());
                    break 'probe;
                }
            }
        }
        found.expect("bench window must contain traffic")
    };
    let entry = timed("partial_reanalysis", ctx.threads(), || {
        let start = Instant::now();
        let store = SegmentedStore::open(dir).expect("open segmented corpus");
        let a = analyze_store_slice(&store, from, to, Some(&device), ctx)
            .expect("analyze corpus slice");
        let seconds = start.elapsed().as_secs_f64();
        // The corpus expands one row per connection, so the folded
        // slice's connection total IS its row count.
        let rows = a.total_connections;
        assert!(rows > 0, "slice must contain traffic");
        let bytes_read = store.frame_bytes_read();
        let bytes_total = store.frame_bytes_total();
        assert!(
            bytes_read < bytes_total / 4,
            "pruning must skip most of the corpus ({bytes_read} of {bytes_total} read)"
        );
        let rate = rows as f64 / seconds.max(1e-9);
        let ratio = bytes_read as f64 / bytes_total.max(1) as f64;
        black_box(&a);
        format!(
            ", \"rows\": {rows}, \"rows_per_sec\": {rate:.0}, \"bytes_read\": {bytes_read}, \
             \"bytes_total\": {bytes_total}, \"bytes_read_ratio\": {ratio:.5}"
        )
    });
    let _ = std::fs::remove_dir_all(dir);
    entry
}

fn main() {
    let args = ExampleArgs::parse();
    let ctx = args.ctx(DEFAULT_SEED);
    let threads = ctx.threads();
    let legacy = std::env::var("IOTLS_BENCH_LEGACY").is_ok_and(|v| v == "1");
    // Testbed/PKI construction is shared setup, not a workload. The
    // workloads pin their historical seeds (re-seeding the shared
    // ctx) so bench snapshots stay comparable across runs.
    let tb = Testbed::global();

    let mut entries = vec![
        timed("passive_generate", threads, || {
            let ds = generate(tb, 0xCAFE);
            assert!(ds.total_connections() > 0);
            String::new()
        }),
        timed("active_sweep", threads, || {
            let driven_before = sessions_driven();
            let start = Instant::now();
            let report = InterceptionAudit.run(tb, &ctx.with_seed(0x7AB1E7));
            let seconds = start.elapsed().as_secs_f64();
            assert!(!report.rows.is_empty());
            let driven = sessions_driven() - driven_before;
            let rate = driven as f64 / seconds.max(1e-9);
            format!(", \"sessions\": {driven}, \"sessions_per_sec\": {rate:.0}")
        }),
        timed("rootprobe_sweep", threads, || {
            let driven_before = sessions_driven();
            let start = Instant::now();
            let report = RootProbe.run(tb, &ctx.with_seed(0x6007));
            let seconds = start.elapsed().as_secs_f64();
            assert!(!report.rows.is_empty());
            let driven = sessions_driven() - driven_before;
            let rate = driven as f64 / seconds.max(1e-9);
            format!(", \"sessions\": {driven}, \"sessions_per_sec\": {rate:.0}")
        }),
        timed("steady_replay", 1, steady_replay),
        timed("passive_10m", threads, || {
            let passive = ctx.with_seed(DEFAULT_SEED);
            if legacy {
                passive_10m_legacy(&passive)
            } else {
                passive_10m_streamed(&passive)
            }
        }),
    ];
    if !legacy {
        // The same paper-scale workload pinned at higher worker
        // counts: output is byte-identical by construction (sharded
        // lanes merged in roster order), so these entries track the
        // scaling curve, not correctness.
        for t in [4usize, 8] {
            entries.push(timed(&format!("passive_10m_t{t}"), t, || {
                passive_10m_streamed(&ctx.with_seed(DEFAULT_SEED).with_threads(t))
            }));
        }
        entries.push(passive_reload(&ctx.with_seed(DEFAULT_SEED), tb));
        entries.push(passive_100m(&ctx.with_seed(DEFAULT_SEED), tb));
        entries.push(partial_reanalysis(&ctx.with_seed(DEFAULT_SEED)));
    }
    entries.push(timed("gateway_soak", threads, || {
        gateway_soak(&ctx.with_seed(0x6A7E))
    }));
    println!("{}", entries.join(",\n"));

    args.finish(&ctx);
}
