//! Perf harness: times the three headline workloads and emits one
//! JSON entry per workload on stdout (`{workload, seconds, threads}`).
//!
//! `scripts/bench.sh` wraps this with the tier-1 test-suite timing and
//! writes `BENCH_baseline.json` / `BENCH_current.json`, so the perf
//! trajectory of the repo is measured the same way in every PR.
//!
//! Run with: `cargo run --release --example bench_workloads`

use iotls_repro::capture::generate;
use iotls_repro::core::{run_interception_audit, run_root_probe};
use iotls_repro::devices::Testbed;
use std::time::Instant;

/// Worker count the engine will use: `IOTLS_THREADS` when set,
/// otherwise the machine's available parallelism.
fn threads() -> usize {
    std::env::var("IOTLS_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

fn timed(name: &str, threads: usize, f: impl FnOnce()) -> String {
    let start = Instant::now();
    f();
    let seconds = start.elapsed().as_secs_f64();
    eprintln!("bench: {name} finished in {seconds:.2}s");
    format!(
        "  {{\"workload\": \"{name}\", \"seconds\": {seconds:.3}, \"threads\": {threads}}}"
    )
}

fn main() {
    let threads = threads();
    // Testbed/PKI construction is shared setup, not a workload.
    let tb = Testbed::global();

    let entries = [
        timed("passive_generate", threads, || {
            let ds = generate(tb, 0xCAFE);
            assert!(ds.total_connections() > 0);
        }),
        timed("active_sweep", threads, || {
            let report = run_interception_audit(tb, 0x7AB1E7);
            assert!(!report.rows.is_empty());
        }),
        timed("rootprobe_sweep", threads, || {
            let report = run_root_probe(tb, 0x6007);
            assert!(!report.rows.is_empty());
        }),
    ];
    println!("{}", entries.join(",\n"));
}
