//! Chaos suite: the full measurement pipeline under deterministic
//! injected faults.
//!
//! A fixed-seed [`FaultPlan`] subjects every experiment to ~5%
//! connection resets, DNS flaps, and a sprinkling of garbled
//! fragments, stalls, and mid-handshake power cycles. The retry and
//! recovery machinery in the measurement core must absorb all of it:
//! every table and headline count asserted here is compared
//! field-by-field against a fault-free run of the same seed.

use iotls_repro::core::{
    run_downgrade_probe, run_interception_audit, run_old_version_scan, run_root_probe, ActiveLab,
    DowngradeProbe, Experiment, ExperimentCtx, FaultStats, InterceptPolicy, InterceptionAudit,
    OldVersionScan, RootProbe,
};
use iotls_repro::devices::{client_config, Testbed};
use iotls_repro::simnet::{
    drive_session_faulted, FailureCause, FaultOp, FaultPlan, LinkConditioner, SessionFaults,
    SessionParams,
};
use iotls_repro::tls::client::ClientConnection;
use iotls_repro::tls::server::ServerConnection;
use iotls_repro::crypto::drbg::Drbg;

/// The canonical chaos schedule: ~5% resets, ~5% DNS flaps, plus
/// lower-rate garbles, stalls, and power cycles.
fn chaos_plan() -> FaultPlan {
    FaultPlan {
        seed: 0xC4A05,
        reset_pm: 50,
        garble_pm: 20,
        stall_pm: 10,
        dns_fail_pm: 50,
        power_cycle_pm: 15,
    }
}

/// A context carrying the chaos schedule for `seed`.
fn chaos_ctx(seed: u64) -> ExperimentCtx {
    ExperimentCtx::builder().seed(seed).plan(chaos_plan()).build()
}

#[test]
fn interception_audit_is_identical_under_chaos() {
    let tb = Testbed::global();
    let clean = run_interception_audit(tb, 0x7AB1E7);
    let chaos = InterceptionAudit.run(tb, &chaos_ctx(0x7AB1E7));

    assert_eq!(chaos.vulnerable_rows().len(), 11);
    assert_eq!(chaos.leaky_devices().len(), 7);
    assert_eq!(clean.rows.len(), chaos.rows.len());
    for (a, b) in clean.rows.iter().zip(&chaos.rows) {
        assert_eq!(a.device, b.device);
        assert_eq!(a.no_validation, b.no_validation, "{}", a.device);
        assert_eq!(
            a.invalid_basic_constraints, b.invalid_basic_constraints,
            "{}",
            a.device
        );
        assert_eq!(a.wrong_hostname, b.wrong_hostname, "{}", a.device);
        assert_eq!(
            a.vulnerable_destinations, b.vulnerable_destinations,
            "{}",
            a.device
        );
        assert_eq!(a.total_destinations, b.total_destinations, "{}", a.device);
        assert_eq!(a.sensitive_leaks, b.sensitive_leaks, "{}", a.device);
    }
    assert_eq!(
        clean.passthrough_extra_hostnames_pct,
        chaos.passthrough_extra_hostnames_pct
    );

    // The run was not trivially clean: faults fired and were healed.
    let s = chaos.fault_stats;
    assert!(s.injected_total() > 0, "no faults fired: {s:?}");
    assert!(s.dns_failures > 0, "no DNS flaps fired: {s:?}");
    assert!(s.recovered > 0, "nothing recovered: {s:?}");
    assert_eq!(clean.fault_stats, FaultStats::default());
    println!("audit fault/recovery report: {s:?}");
}

#[test]
fn downgrade_and_old_version_tables_are_identical_under_chaos() {
    let tb = Testbed::global();
    let clean = run_downgrade_probe(tb, 0xD0E6);
    let report = DowngradeProbe.run(tb, &chaos_ctx(0xD0E6));
    let (chaos, stats) = (report.rows, report.fault_stats);
    assert_eq!(chaos.len(), 7);
    assert_eq!(clean.len(), chaos.len());
    for (a, b) in clean.iter().zip(&chaos) {
        assert_eq!(a.device, b.device);
        assert_eq!(a.on_failed_handshake, b.on_failed_handshake, "{}", a.device);
        assert_eq!(
            a.on_incomplete_handshake, b.on_incomplete_handshake,
            "{}",
            a.device
        );
        assert_eq!(a.kind, b.kind, "{}", a.device);
        assert_eq!(
            a.downgraded_destinations, b.downgraded_destinations,
            "{}",
            a.device
        );
        assert_eq!(a.total_destinations, b.total_destinations, "{}", a.device);
    }
    assert!(stats.injected_total() > 0, "{stats:?}");
    println!("downgrade fault/recovery report: {stats:?}");

    let clean_old = run_old_version_scan(tb, 0x01DE);
    let old_report = OldVersionScan.run(tb, &chaos_ctx(0x01DE));
    let (chaos_old, old_stats) = (old_report.rows, old_report.fault_stats);
    assert_eq!(chaos_old.len(), 18);
    assert_eq!(clean_old.len(), chaos_old.len());
    for (a, b) in clean_old.iter().zip(&chaos_old) {
        assert_eq!((a.device.as_str(), a.tls10, a.tls11), (b.device.as_str(), b.tls10, b.tls11));
    }
    assert!(old_stats.injected_total() > 0, "{old_stats:?}");
}

#[test]
fn root_probe_table9_is_identical_under_chaos() {
    let tb = Testbed::global();
    let clean = run_root_probe(tb, 0x6007);
    let chaos = RootProbe.run(tb, &chaos_ctx(0x6007));

    assert_eq!(clean.excluded_reboot_unsafe, chaos.excluded_reboot_unsafe);
    assert_eq!(clean.excluded_no_validation, chaos.excluded_no_validation);
    assert_eq!(chaos.amenable_rows().len(), 8);
    assert_eq!(clean.rows.len(), chaos.rows.len());
    for (a, b) in clean.rows.iter().zip(&chaos.rows) {
        assert_eq!(a.device, b.device);
        assert_eq!(a.amenable, b.amenable, "{}", a.device);
        assert_eq!(a.common, b.common, "{} common verdicts", a.device);
        assert_eq!(a.deprecated, b.deprecated, "{} deprecated verdicts", a.device);
    }

    let s = chaos.fault_stats;
    assert!(s.injected_total() > 0, "no faults fired: {s:?}");
    assert!(s.recovered > 0, "nothing recovered: {s:?}");
    // The verdict pass lost probes to faults and re-probed them back.
    assert!(chaos.reprobed_verdicts > 0, "no verdicts re-probed");
    assert_eq!(clean.reprobed_verdicts, 0);
    println!(
        "root-probe fault/recovery report: {s:?}, reprobed {} verdicts",
        chaos.reprobed_verdicts
    );
}

#[test]
fn chaos_runs_are_deterministic() {
    // Same FaultPlan seed ⇒ identical fault schedule, identical
    // outcomes, identical retry counts — run twice, compare.
    let tb = Testbed::global();
    let run = || {
        let mut lab = ActiveLab::with_faults(tb, 0xDE7, chaos_plan());
        let dev = tb.device("Amazon Echo Dot");
        let mut log = Vec::new();
        for _ in 0..6 {
            for o in lab.boot_and_connect(dev, Some(&InterceptPolicy::SelfSigned)) {
                log.push((
                    o.destination.clone(),
                    o.result.established,
                    o.result.faults.clone(),
                ));
            }
        }
        (log, lab.fault_stats())
    };
    let (log_a, stats_a) = run();
    let (log_b, stats_b) = run();
    assert_eq!(log_a, log_b);
    assert_eq!(stats_a, stats_b);
    assert!(stats_a.injected_total() > 0, "plan never fired: {stats_a:?}");

    // And the schedule itself is a pure function of (seed, key).
    let plan = chaos_plan();
    for i in 0..50 {
        let key = format!("conn/dev/host/0/false/try{i}");
        assert_eq!(plan.session_faults(&key), plan.session_faults(&key));
    }
}

#[test]
fn stalled_peer_is_reported_wedged_not_rejected() {
    // Regression: a session that stops making progress must surface
    // as FailureCause::Wedged, not as a TLS-level rejection by either
    // endpoint.
    let tb = Testbed::global();
    let dev = tb.device("D-Link Camera");
    let dest = dev.spec.destinations[0].clone();
    let now = iotls_repro::rootstore::probe_time();
    let spec = dev.spec.instances_at(now.month())[0].clone();
    let cfg = client_config(&spec, dev.truth.store.clone());
    let server_cfg = tb.server_config(&dest);
    let client_rng = Drbg::from_seed(0x57A11).fork("client");
    let server_rng = client_rng.fork("server");
    let client = ClientConnection::new(cfg, &dest.hostname, now, client_rng);
    let server = ServerConnection::new(server_cfg, server_rng);
    let mut conditioner = LinkConditioner::new(SessionFaults {
        ops: vec![FaultOp::Stall { after_round: 0 }],
        dns: None,
    });
    let result = drive_session_faulted(
        client,
        server,
        SessionParams::tapped(now, &dev.spec.name, &dest.hostname),
        &mut conditioner,
    );
    assert!(!result.established);
    assert_eq!(result.failure, Some(FailureCause::Wedged));
    assert!(
        result.client_summary.failure.is_none(),
        "wedge misreported as a TLS rejection: {:?}",
        result.client_summary.failure
    );
    assert!(result.tainted());
}

#[test]
fn fault_counters_exactly_match_the_injected_schedule() {
    // The observability layer counts faults twice, independently: the
    // link conditioner's injections land in `sim.faults.injected.*`
    // (per session result, at the tap) and the lab's recovery
    // machinery tallies the same events into `FaultStats` (exported as
    // `core.faults.*`). Both views must agree *exactly* with the
    // engine's own fault report — a higher metric would mean a fault
    // double-counted, a lower one a fault silently swallowed.
    let tb = Testbed::global();
    for (name, reg, stats) in [
        {
            let ctx = ExperimentCtx::builder()
                .seed(0x7AB1E7)
                .plan(chaos_plan())
                .metrics(true)
                .build();
            let report = InterceptionAudit.run(tb, &ctx);
            ("audit", ctx.metrics_snapshot(), report.fault_stats)
        },
        {
            let ctx = ExperimentCtx::builder()
                .seed(0x6007)
                .plan(chaos_plan())
                .metrics(true)
                .build();
            let report = RootProbe.run(tb, &ctx);
            ("rootprobe", ctx.metrics_snapshot(), report.fault_stats)
        },
    ] {
        assert!(stats.injected_total() > 0, "{name}: plan never fired");
        for (counter, want) in [
            ("sim.faults.injected.reset", stats.resets),
            ("sim.faults.injected.garble", stats.garbles),
            ("sim.faults.injected.stall", stats.stalls),
            ("sim.faults.injected.power_cycle", stats.power_cycles),
            ("sim.faults.injected.dns", stats.dns_failures),
            ("core.faults.resets", stats.resets),
            ("core.faults.garbles", stats.garbles),
            ("core.faults.stalls", stats.stalls),
            ("core.faults.power_cycles", stats.power_cycles),
            ("core.faults.dns_failures", stats.dns_failures),
            ("core.retries.inline", stats.inline_retries),
            ("core.recovered", stats.recovered),
            ("core.unrecovered", stats.unrecovered),
        ] {
            assert_eq!(
                reg.counter(counter),
                want,
                "{name}: `{counter}` diverges from the engine's FaultStats {stats:?}"
            );
        }
        let injected_metric: u64 = reg
            .counters()
            .filter(|(k, _)| k.starts_with("sim.faults.injected."))
            .map(|(_, v)| v)
            .sum();
        assert_eq!(injected_metric, stats.injected_total(), "{name}");
    }
}

#[test]
fn gateway_survives_fault_plan_extremes() {
    use iotls_repro::core::{Gateway, GatewayConfig, GatewayService};

    let tb = Testbed::global();
    let run = |pm: u16| {
        let ctx = ExperimentCtx::builder()
            .seed(0x6A7E)
            .plan(FaultPlan::uniform(0x6A7E, pm))
            .threads(4)
            .build();
        Gateway::new(tb, &ctx, GatewayConfig::default()).run()
    };

    // 0% fault rate: the hot path. No panics, no faults, no failure
    // verdicts — and still every admitted session accounted for.
    let clean = run(0);
    assert!(clean.invariant_holds(), "{}", clean.render());
    assert_eq!(clean.panicked, 0);
    assert_eq!(clean.fault_stats, FaultStats::default());
    assert_eq!(clean.failed_total(), 0);
    assert_eq!(clean.deadline_exceeded, 0);
    assert_eq!(
        clean.established + clean.handshake_failed,
        clean.completed,
        "every clean session must carry a terminal verdict"
    );
    assert!(clean.established > 0);

    // 100% fault rate: every try of every session faults. Still no
    // panics, and every completed session lands on a *typed* verdict —
    // a FailureCause bucket, a deadline overrun, or a clean-link
    // decline; nothing unclassified.
    let storm = run(1000);
    assert!(storm.invariant_holds(), "{}", storm.render());
    assert_eq!(storm.panicked, 0, "fault storms must not panic the pool");
    assert_eq!(storm.established, 0, "nothing survives a 100% fault rate");
    assert_eq!(
        storm.failed_total() + storm.deadline_exceeded + storm.handshake_failed,
        storm.completed,
        "unclassified sessions under 100% faults: {}",
        storm.render()
    );
    assert!(storm.failed_total() > 0);

    // FaultStats totals must equal the injected-fault counters the
    // same run exported — one event, two independent tallies.
    let s = storm.fault_stats;
    assert!(s.injected_total() > 0);
    let injected_metric: u64 = storm
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("gateway.faults.injected."))
        .map(|(_, v)| *v)
        .sum();
    assert_eq!(injected_metric, s.injected_total());
    for (counter, want) in [
        ("gateway.faults.injected.reset", s.resets),
        ("gateway.faults.injected.garble", s.garbles),
        ("gateway.faults.injected.stall", s.stalls),
        ("gateway.faults.injected.power_cycle", s.power_cycles),
        ("gateway.faults.injected.dns", s.dns_failures),
    ] {
        let got = storm
            .counters
            .iter()
            .find(|(k, _)| *k == counter)
            .map(|(_, v)| *v)
            .unwrap_or(0);
        assert_eq!(got, want, "`{counter}` diverges from FaultStats {s:?}");
    }

    // The registered engine path absorbs the chaos ctx the same way.
    let report = GatewayService.run(tb, &chaos_ctx(0x6A7E));
    assert!(report.invariant_holds());
    assert!(report.fault_stats.injected_total() > 0);
}

#[test]
fn passive_dataset_is_identical_under_chaos_and_counts_truncations() {
    use iotls_repro::capture::{generate, CaptureCtx};
    let tb = Testbed::global();
    let clean = generate(tb, 0xCAFE);
    let chaos = CaptureCtx::new(0xCAFE).with_plan(chaos_plan()).generate(tb);
    assert_eq!(clean.total_connections(), chaos.total_connections());
    assert_eq!(clean.observations.len(), chaos.observations.len());
    assert_eq!(
        clean.revocation_flows.len(),
        chaos.revocation_flows.len()
    );
    // Truncated captures were counted, not silently dropped.
    assert!(chaos.truncated > 0, "no truncated captures recorded");
    assert_eq!(clean.truncated, 0);
    println!("passive chaos: {} truncated captures re-driven", chaos.truncated);
}
