//! Thread-count invariance of the observability layer.
//!
//! The recording discipline (`DESIGN.md` §11): parallel workers record
//! into per-device/per-lane `Registry` shards which the engine merges
//! in roster order, and every engine-level tally happens in the
//! sequential merge loop. The contract under test: the deterministic
//! snapshot (`Registry::counters_json()` — counters, gauges,
//! histograms; wall-clock timings excluded) is *byte-identical* at any
//! `IOTLS_THREADS`, for every instrumented pipeline.

use iotls_repro::core::{
    analyze_streamed, Experiment, ExperimentCtx, InterceptionAudit, RootProbe,
};
use iotls_repro::devices::Testbed;
use iotls_repro::obs::Registry;
use iotls_repro::simnet::par::THREADS_ENV;
use iotls_repro::simnet::FaultPlan;
use std::sync::Mutex;

/// Tests in this binary mutate `IOTLS_THREADS`; the harness runs them
/// on concurrent threads, so the env var is serialized here.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// A live-metrics context (thread policy resolved from the env at
/// construction — call under the lock, after setting `IOTLS_THREADS`).
fn metered_ctx(seed: u64, plan: FaultPlan) -> ExperimentCtx {
    ExperimentCtx::builder()
        .seed(seed)
        .plan(plan)
        .metrics(true)
        .build()
}

/// The deterministic counter snapshots of every instrumented pipeline,
/// as comparable bytes.
fn snapshots(testbed: &'static Testbed) -> Vec<(&'static str, String)> {
    let plan = FaultPlan::uniform(0xDE7, 40);

    let audit_ctx = metered_ctx(0x4E9D, plan);
    InterceptionAudit.run(testbed, &audit_ctx);

    let probe_ctx = metered_ctx(0x4E9D, plan);
    RootProbe.run(testbed, &probe_ctx);

    let passive_ctx = metered_ctx(0x10AD, FaultPlan::none());
    analyze_streamed(testbed, &passive_ctx, u64::MAX);

    vec![
        ("audit", audit_ctx.metrics_snapshot().counters_json()),
        ("rootprobe", probe_ctx.metrics_snapshot().counters_json()),
        (
            "passive_streamed",
            passive_ctx.metrics_snapshot().counters_json(),
        ),
    ]
}

#[test]
fn counter_sections_byte_identical_across_thread_counts() {
    let _env = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let testbed = Testbed::global();

    std::env::set_var(THREADS_ENV, "1");
    let sequential = snapshots(testbed);

    std::env::set_var(THREADS_ENV, "8");
    let parallel = snapshots(testbed);
    std::env::remove_var(THREADS_ENV);

    for ((name, seq), (_, par)) in sequential.iter().zip(&parallel) {
        assert_eq!(seq, par, "{name}: counter snapshot diverges across thread counts");
    }

    // The snapshots carry real work: sessions were driven, faults
    // fired, the cache was exercised, rows flowed through the
    // columnar pipeline.
    let audit = &sequential[0].1;
    assert!(audit.contains("\"sim.sessions.driven\":"), "{audit}");
    assert!(audit.contains("\"sim.faults.injected.reset\":"), "{audit}");
    assert!(audit.contains("\"audit.devices.audited\":32"), "{audit}");
    let probe = &sequential[1].1;
    assert!(probe.contains("\"x509.cache.hits\":"), "{probe}");
    assert!(probe.contains("\"rootprobe.verdicts.present\":"), "{probe}");
    let passive = &sequential[2].1;
    assert!(passive.contains("\"capture.lane.rows.written\":"), "{passive}");
    assert!(passive.contains("\"passive.connections\":"), "{passive}");
}

#[test]
fn timings_are_excluded_from_the_deterministic_snapshot() {
    use iotls_repro::obs::Span;
    let mut reg = Registry::new();
    reg.inc("work.done");
    reg.record(Span::start("work.wall_clock"));
    let deterministic = reg.counters_json();
    assert!(deterministic.contains("\"work.done\":1"));
    assert!(!deterministic.contains("timings"), "{deterministic}");
    let full = reg.to_json();
    assert!(full.contains("\"timings\""), "{full}");
    assert!(full.contains("work.wall_clock"), "{full}");
}
