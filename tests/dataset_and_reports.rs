//! Dataset serialization on real generated data, and smoke coverage
//! that every table/figure renderer produces the expected artifacts.

use iotls_repro::analysis::{figures, tables, FingerprintDb, SharingGraph};
use iotls_repro::capture::{from_json, global_dataset, to_json};
use iotls_repro::core::{
    cipher_series, library_alert_matrix, passive_summary, revocation_summary,
    run_downgrade_probe, run_fingerprint_survey, run_interception_audit, run_old_version_scan,
    run_root_probe, version_series,
};
use iotls_repro::devices::Testbed;

#[test]
fn full_dataset_json_roundtrip() {
    let ds = global_dataset();
    let json = to_json(ds);
    assert!(json.len() > 100_000, "dataset JSON suspiciously small");
    let back = from_json(&json).expect("roundtrip parses");
    assert_eq!(back.observations.len(), ds.observations.len());
    assert_eq!(back.total_connections(), ds.total_connections());
    assert_eq!(back.revocation_flows.len(), ds.revocation_flows.len());
    // Spot-check structural equality of a few records.
    for i in [0usize, 7, 1000 % ds.observations.len()] {
        let a = &ds.observations[i];
        let b = &back.observations[i];
        assert_eq!(a.count, b.count);
        assert_eq!(a.observation.device, b.observation.device);
        assert_eq!(a.observation.fingerprint, b.observation.fingerprint);
        assert_eq!(a.observation.offered_suites, b.observation.offered_suites);
    }
}

#[test]
fn every_table_renders_with_expected_rows() {
    let testbed = Testbed::global();
    let t1 = tables::table1_roster(testbed);
    assert!(t1.contains("Appliances (n = 7)"));

    let t2 = tables::table2_attacks();
    assert!(t2.contains("InvalidBasicConstraints"));

    let t3 = tables::table3_platforms();
    assert!(t3.contains("Microsoft"));

    let t4 = tables::table4_library_alerts(&library_alert_matrix());
    assert!(t4.contains("WolfSSL (v4.1.0)"));

    let t5 = tables::table5_downgrades(&run_downgrade_probe(testbed, 0x4E9D));
    assert!(t5.contains("Falls back to using SSL 3.0"));
    assert!(t5.contains("Roku TV"));
    assert!(t5.contains("5 / 5"));

    let t6 = tables::table6_old_versions(&run_old_version_scan(testbed, 0x4E9D));
    assert!(t6.contains("18 devices"));
    assert!(t6.contains("Wemo Plug"));

    let audit = run_interception_audit(testbed, 0x4E9D);
    let t7 = tables::table7_interception(&audit);
    assert!(t7.contains("Zmodo Doorbell"));
    assert!(t7.contains("1 / 21"));

    let ds = global_dataset();
    let t8 = tables::table8_revocation(&revocation_summary(ds), &ds.device_names());
    assert!(t8.contains("OCSP Stapling"));
    assert!(t8.contains("Samsung TV"));

    let probe = run_root_probe(testbed, 0x4E9D);
    let t9 = tables::table9_rootstores(&probe);
    assert!(t9.contains("Google Home Mini"));
    assert!(t9.contains("(119/119)"));
}

#[test]
fn every_figure_renders() {
    let testbed = Testbed::global();
    let ds = global_dataset();
    let summary = passive_summary(ds);
    let axis = figures::month_axis(ds);
    let f1 = figures::fig1_versions(&axis, &version_series(ds), &summary.fig1_devices);
    assert!(f1.contains("Wemo Plug"));
    let f2 = figures::fig2_insecure(&axis, &cipher_series(ds));
    assert!(f2.contains("advertising insecure"));
    let f3 = figures::fig3_strong(&axis, &cipher_series(ds));
    assert!(f3.contains("forward-secret"));
    let probe = run_root_probe(testbed, 0x4E9D);
    let f4 = figures::fig4_staleness(testbed.pki, &probe);
    assert!(f4.contains("LG TV"));
    let survey = run_fingerprint_survey(testbed, 0x4E9D);
    let graph = SharingGraph::build(&survey, &FingerprintDb::build(0xDB));
    let f5 = graph.render();
    assert!(f5.contains("fingerprint"));
    assert_eq!(graph.devices().len(), 19);
}

#[test]
fn experiments_are_reproducible_across_runs() {
    let testbed = Testbed::global();
    let a = run_interception_audit(testbed, 0x5EED);
    let b = run_interception_audit(testbed, 0x5EED);
    assert_eq!(a.vulnerable_rows().len(), b.vulnerable_rows().len());
    for (ra, rb) in a.rows.iter().zip(&b.rows) {
        assert_eq!(ra.device, rb.device);
        assert_eq!(ra.vulnerable_destinations, rb.vulnerable_destinations);
        assert_eq!(ra.total_destinations, rb.total_destinations);
    }
    let pa = run_root_probe(testbed, 0x5EED);
    let pb = run_root_probe(testbed, 0x5EED);
    for (ra, rb) in pa.rows.iter().zip(&pb.rows) {
        assert_eq!(ra.amenable, rb.amenable);
        assert_eq!(ra.common_ratio(), rb.common_ratio());
        assert_eq!(ra.deprecated_ratio(), rb.deprecated_ratio());
    }
}
