//! Gateway-runtime suite: drain semantics, worker-count
//! byte-identity, circuit-breaker behavior, and panic isolation.
//!
//! Every test runs entirely on virtual time with builder-pinned
//! worker counts, so nothing here reads `IOTLS_THREADS` or races the
//! environment.

use iotls_repro::core::{
    Experiment, ExperimentCtx, Gateway, GatewayConfig, GatewayService, Report,
};
use iotls_repro::devices::Testbed;
use iotls_repro::simnet::FaultPlan;

/// ~10% fault rate across every class — the drain-test regime the
/// acceptance criteria pin.
fn tenpct_plan(seed: u64) -> FaultPlan {
    FaultPlan::uniform(seed, 100)
}

#[test]
fn drain_mid_stream_loses_no_sessions() {
    // Shutdown fires mid-stream while the ingress queue is deep
    // (offered load far above pool capacity) under ~10% faults. The
    // drain invariant must account for every admitted session:
    // completed, rejected, or aborted — none silently lost.
    let tb = Testbed::global();
    let ctx = ExperimentCtx::builder()
        .seed(0xD8A1)
        .plan(tenpct_plan(0xD8A1))
        .threads(4)
        .build();
    let cfg = GatewayConfig {
        ticks: 40,
        drain_at: Some(12),
        drain_grace: 2,
        pool_capacity: 40,
        queue_capacity: 400,
        ..GatewayConfig::default()
    };
    let report = Gateway::new(tb, &ctx, cfg).run();

    assert!(report.invariant_holds(), "{}", report.render());
    assert!(
        report.aborted > 0,
        "drain must catch queued sessions mid-stream: {}",
        report.render()
    );
    assert!(report.completed > 0);
    assert!(report.established > 0);
    assert!(
        report.fault_stats.injected_total() > 0,
        "the 10% plan never fired"
    );
    // The report exposes the same invariant the counters do.
    let aborted = report
        .counters
        .iter()
        .find(|(k, _)| k == "gateway.drain.aborted")
        .map(|(_, v)| *v)
        .unwrap_or(0);
    assert_eq!(aborted, report.aborted);
}

#[test]
fn report_is_byte_identical_across_worker_counts() {
    // The acceptance bar: same seed, IOTLS_THREADS=1 vs 8 (pinned via
    // the builder so the test itself is env-independent), identical
    // GatewayReport — counters section included — byte for byte.
    let tb = Testbed::global();
    let run = |threads: usize| {
        let ctx = ExperimentCtx::builder()
            .seed(0x6A7E)
            .plan(tenpct_plan(0x6A7E))
            .threads(threads)
            .build();
        let report = Gateway::new(tb, &ctx, GatewayConfig::default()).run();
        (report.render(), report.to_json().encode())
    };
    let (text_1, json_1) = run(1);
    let (text_8, json_8) = run(8);
    assert_eq!(text_1, text_8, "rendered report diverged across threads");
    assert_eq!(json_1, json_8, "JSON report diverged across threads");
}

#[test]
fn breakers_trip_probe_and_shed_load_when_endpoints_wedge() {
    // A stall-only plan at 100%: every replay overruns its deadline,
    // so every endpoint fails every session. Breakers must trip,
    // schedule half-open probes, and shed admitted load as
    // circuit-open rejections — and stalls must surface as
    // DeadlineExceeded, not burn the old 64-round wedge budget.
    let tb = Testbed::global();
    let plan = FaultPlan {
        seed: 0x57A11,
        reset_pm: 0,
        garble_pm: 0,
        stall_pm: 1000,
        dns_fail_pm: 0,
        power_cycle_pm: 0,
    };
    let ctx = ExperimentCtx::builder()
        .seed(0x57A11)
        .plan(plan)
        .threads(4)
        .build();
    let report = Gateway::new(tb, &ctx, GatewayConfig::default()).run();

    assert!(report.invariant_holds(), "{}", report.render());
    // A stall drawn past a short tape's end legitimately lets the
    // session finish, so some sessions still establish — but every
    // one that wedged must surface as a deadline overrun, not burn
    // the old 64-round budget, and long-tape endpoints (which wedge
    // on every draw) must trip their breakers.
    assert!(report.deadline_exceeded > 0, "stalls must become deadline overruns");
    assert!(
        report.established < report.completed,
        "100% stalls cannot be a clean run"
    );
    assert_eq!(report.failed_total(), 0, "stalls are overruns, not failures");
    assert_eq!(
        report.established + report.handshake_failed + report.deadline_exceeded,
        report.completed,
        "every completed session needs a terminal verdict: {}",
        report.render()
    );
    assert!(report.breakers_opened > 0, "breakers never tripped");
    assert!(report.breaker_probes > 0, "no half-open probes scheduled");
    assert!(
        report.rejected_circuit_open > 0,
        "open breakers never shed load"
    );
}

#[test]
fn poisoned_sessions_are_isolated_and_counted() {
    // poison_pm = 1000: every driven session panics inside the worker
    // pool. The pool must survive all of them, classify each as
    // Panicked, and keep the drain invariant intact.
    let tb = Testbed::global();
    let ctx = ExperimentCtx::builder().seed(0xBAD).threads(4).build();
    let cfg = GatewayConfig {
        ticks: 4,
        load: 8,
        load_spread: 2,
        queue_capacity: 64,
        pool_capacity: 16,
        bucket_capacity: 64,
        bucket_refill: 32,
        poison_pm: 1000,
        ..GatewayConfig::default()
    };
    let report = Gateway::new(tb, &ctx, cfg).run();

    assert!(report.invariant_holds(), "{}", report.render());
    assert!(report.completed > 0);
    assert_eq!(
        report.panicked, report.completed,
        "every session must panic and be isolated: {}",
        report.render()
    );
    assert_eq!(report.established, 0);
    let panicked = report
        .counters
        .iter()
        .find(|(k, _)| k == "gateway.sessions.panicked")
        .map(|(_, v)| *v)
        .unwrap_or(0);
    assert_eq!(panicked, report.panicked);
}

#[test]
fn gateway_runs_as_a_registered_experiment() {
    // The registry path: GatewayService::run with the canonical
    // default config produces a fixture-backed report whose name and
    // fixture list agree with the experiment registry.
    let tb = Testbed::global();
    let ctx = ExperimentCtx::new(0x6A7E);
    let report = GatewayService.run(tb, &ctx);
    assert_eq!(GatewayService.name(), "gateway_service");
    assert_eq!(report.fixtures(), &["gateway_service"]);
    assert!(report.invariant_holds());
    assert!(report.established > 0);
    assert!(report.fault_stats().is_some());
}
