//! The on-disk columnar store: roundtrip fidelity, directory-level
//! pruning, and corruption behavior.
//!
//! The contract under test: [`ColumnarDataset::write_to`] followed by
//! any of the open paths (`ColumnarDataset::open`,
//! `ColumnarStore::open`, `ColumnarStore::open_mmap`) reproduces the
//! dataset byte-for-byte; chunk pruning works entirely off the footer
//! directory; and *no* corrupt input — truncated at any offset,
//! bit-flipped at any position — ever panics. Corruption is a typed
//! [`StoreError`], nothing else.
//!
//! All scratch files live under `target/test_store/`.

use iotls_repro::capture::{
    global_columnar, to_json_columnar, ColumnarDataset, ColumnarStore, DatasetBuilder,
    RevocationFlow, RevocationKind, SegmentedStore, SegmentedWriter, StoreError,
};
use iotls_repro::core::{analyze_columnar, analyze_store, ExperimentCtx};
use iotls_repro::simnet::TlsObservation;
use iotls_repro::tls::alert::AlertDescription;
use iotls_repro::tls::fingerprint::FingerprintId;
use iotls_repro::tls::version::ProtocolVersion;
use iotls_repro::x509::Month;
use std::path::PathBuf;

/// A scratch path under `target/test_store/`, unique per test.
fn scratch(name: &str) -> PathBuf {
    let dir = PathBuf::from("target/test_store");
    std::fs::create_dir_all(&dir).expect("create target/test_store");
    dir.join(name)
}

fn obs(device: &str, month: Month, dest: &str, fp: u8) -> TlsObservation {
    TlsObservation {
        time: month.start().plus_days(10),
        device: device.into(),
        destination: dest.into(),
        sni: Some(dest.into()),
        advertised_versions: vec![ProtocolVersion::Tls11, ProtocolVersion::Tls12],
        max_advertised: ProtocolVersion::Tls12,
        offered_suites: vec![0xc02f, 0x0005],
        requested_ocsp: true,
        fingerprint: FingerprintId([fp; 16]),
        negotiated_version: Some(ProtocolVersion::Tls12),
        negotiated_suite: Some(0xc02f),
        ocsp_stapled: fp % 2 == 0,
        leaf_issuer: Some("SimTrust Root".into()),
        established: true,
        alerts_from_client: vec![AlertDescription::CloseNotify],
        alerts_from_server: vec![],
    }
}

/// A deliberately small dataset with TWO sealed chunks (forced by
/// flushing mid-stream), distinct devices per chunk (so the bitmap
/// pruning has something to distinguish), flows, and a truncation
/// tail — every footer section populated, total file ≈2 KB, small
/// enough to sweep corruption over every byte.
fn small_dataset() -> ColumnarDataset {
    let mut b = DatasetBuilder::new();
    let mut chunks = Vec::new();
    for (i, dest) in ["cloud-a.example", "cloud-b.example"].iter().enumerate() {
        b.push_obs(
            &obs("Cam A", Month::new(2018, 1 + i as u8), dest, 7),
            3 + i as u64,
            &mut |c| chunks.push(c),
        );
    }
    b.flush(&mut |c| chunks.push(c)); // seal chunk 0: Cam A, Jan-Feb
    for (i, dest) in ["cloud-b.example", "cloud-c.example"].iter().enumerate() {
        b.push_obs(
            &obs("Hub B", Month::new(2019, 5 + i as u8), dest, 9),
            2,
            &mut |c| chunks.push(c),
        );
    }
    b.flush(&mut |c| chunks.push(c)); // seal chunk 1: Hub B, May-Jun
    b.push_flow(&RevocationFlow {
        time: Month::new(2018, 1).start().plus_days(3),
        device: "Hub B".into(),
        kind: RevocationKind::CrlFetch,
        url: "http://crl.example/x.crl".into(),
        count: 4,
    });
    b.truncated = 3;
    let ds = b.into_dataset(chunks);
    assert_eq!(ds.chunks.len(), 2, "fixture must span two chunks");
    ds
}

/// Opens a store and materializes everything — the deepest read path,
/// used by the corruption sweeps so a flip anywhere (header, any
/// frame, footer) must surface.
fn open_fully(path: &std::path::Path) -> Result<ColumnarDataset, StoreError> {
    ColumnarStore::open(path)?.to_dataset()
}

#[test]
fn roundtrip_reproduces_the_dataset_exactly() {
    let ds = small_dataset();
    let path = scratch("roundtrip.iotls");
    ds.write_to(&path).expect("write store");

    // All three open paths, byte-compared through the JSON export
    // (which resolves every symbol, span, flag, and tail).
    let want = to_json_columnar(&ds);
    let via_dataset = ColumnarDataset::open(&path).expect("dataset open");
    assert_eq!(to_json_columnar(&via_dataset), want);
    let via_pread = ColumnarStore::open(&path)
        .expect("pread open")
        .to_dataset()
        .expect("pread materialize");
    assert_eq!(to_json_columnar(&via_pread), want);

    // Chunk-level metadata survives the trip too.
    let store = ColumnarStore::open(&path).expect("reopen");
    assert_eq!(store.chunk_count(), ds.chunks.len());
    assert_eq!(store.total_rows(), ds.total_rows() as u64);
    assert_eq!(store.total_connections(), ds.total_connections());
    assert_eq!(store.truncated(), ds.truncated);
    assert_eq!(
        format!("{:?}", store.revocation_flows()),
        format!("{:?}", ds.revocation_flows),
    );
    for (i, chunk) in ds.chunks.iter().enumerate() {
        assert_eq!(store.chunk_rows(i), chunk.len());
        let got = store.read_chunk(i).expect("read chunk");
        assert_eq!(got.min_time(), chunk.min_time());
        assert_eq!(got.max_time(), chunk.max_time());
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn mmap_and_pread_backings_agree() {
    let ds = small_dataset();
    let path = scratch("backing.iotls");
    ds.write_to(&path).expect("write store");
    let pread = ColumnarStore::open(&path).expect("pread open");
    let mapped = ColumnarStore::open_mmap(&path).expect("mmap open");
    assert_eq!(
        to_json_columnar(&pread.to_dataset().expect("pread")),
        to_json_columnar(&mapped.to_dataset().expect("mmap")),
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn seed_scale_store_analysis_matches_in_memory() {
    let ds = global_columnar();
    let path = scratch("seed_scale.iotls");
    ds.write_to(&path).expect("write store");
    let store = ColumnarStore::open(&path).expect("open");

    let ctx = ExperimentCtx::new(0x10AD);
    let from_disk = analyze_store(&store, &ctx).expect("analyze store");
    assert_eq!(from_disk, analyze_columnar(ds, &ctx));
    assert!(from_disk.total_connections > 0);
    std::fs::remove_file(&path).ok();
}

/// A corpus with one sealed chunk per study month — realistic shape
/// for the pruning directory: distinct time ranges per chunk, devices
/// rotating through the chunks.
fn monthly_corpus() -> ColumnarDataset {
    let devices = ["Cam A", "Hub B", "Plug C"];
    let mut b = DatasetBuilder::new();
    let mut chunks = Vec::new();
    for m in 0..12u8 {
        let month = Month::new(2019, m + 1);
        // Two devices per month, rotating, so device bitmaps differ
        // across chunks.
        for k in 0..2usize {
            let device = devices[(m as usize + k) % devices.len()];
            b.push_obs(&obs(device, month, "cloud.example", 7), 5, &mut |c| {
                chunks.push(c)
            });
        }
        b.flush(&mut |c| chunks.push(c));
    }
    b.into_dataset(chunks)
}

#[test]
fn directory_pruning_matches_the_in_memory_chunk_walk() {
    let ds = monthly_corpus();
    assert_eq!(ds.chunks.len(), 12);
    let path = scratch("pruning.iotls");
    ds.write_to(&path).expect("write store");
    let store = ColumnarStore::open(&path).expect("open");

    // A mid-study window plus one device, the way a longitudinal
    // slice queries: directory-only selection must agree with the
    // in-memory per-chunk metadata tests.
    let (from, to) = (
        Month::new(2019, 3).start().0,
        Month::new(2019, 8).start().plus_days(27).0,
    );
    let device = store.strings().lookup("Cam A").expect("known device");
    for dev in [None, Some(device)] {
        let selected = store.select_chunks(from, to, dev);
        let expected: Vec<usize> = ds
            .chunks
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                c.overlaps(from, to)
                    && match dev {
                        None => true,
                        Some(d) => c.has_device(d),
                    }
            })
            .map(|(i, _)| i)
            .collect();
        assert_eq!(selected, expected, "device filter {dev:?}");
        assert!(
            !selected.is_empty() && selected.len() < store.chunk_count(),
            "window should prune some chunks and keep some ({}/{})",
            selected.len(),
            store.chunk_count()
        );
    }

    // An empty window and an impossible device prune everything.
    assert!(store.select_chunks(i64::MAX - 1, i64::MAX, None).is_empty());
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncation_at_every_offset_is_a_typed_error() {
    let ds = small_dataset();
    let path = scratch("trunc_full.iotls");
    ds.write_to(&path).expect("write store");
    let bytes = std::fs::read(&path).expect("read back");
    std::fs::remove_file(&path).ok();
    assert!(bytes.len() < 16 * 1024, "fixture meant to be small");

    let cut_path = scratch("trunc_cut.iotls");
    for cut in 0..bytes.len() {
        std::fs::write(&cut_path, &bytes[..cut]).expect("write truncated");
        assert!(
            open_fully(&cut_path).is_err(),
            "truncation at byte {cut}/{} must error",
            bytes.len()
        );
    }
    // Sanity: the untruncated bytes still open.
    std::fs::write(&cut_path, &bytes).expect("write full");
    open_fully(&cut_path).expect("full file opens");
    std::fs::remove_file(&cut_path).ok();
}

#[test]
fn every_single_bit_flip_is_caught() {
    let ds = small_dataset();
    let path = scratch("flip_full.iotls");
    ds.write_to(&path).expect("write store");
    let bytes = std::fs::read(&path).expect("read back");
    std::fs::remove_file(&path).ok();

    // One flip per byte position (rotating which bit) covers the
    // header, every frame, and the whole footer; the format has no
    // padding, so every position is load-bearing.
    let flip_path = scratch("flip_cut.iotls");
    for i in 0..bytes.len() {
        let mut corrupt = bytes.clone();
        corrupt[i] ^= 1u8 << (i % 8);
        std::fs::write(&flip_path, &corrupt).expect("write flipped");
        assert!(
            open_fully(&flip_path).is_err(),
            "bit flip at byte {i} must error"
        );
    }
    std::fs::remove_file(&flip_path).ok();
}

#[test]
fn corruption_errors_are_specific() {
    let ds = small_dataset();
    let path = scratch("typed.iotls");
    ds.write_to(&path).expect("write store");
    let bytes = std::fs::read(&path).expect("read back");
    let case = scratch("typed_case.iotls");

    // Wrong magic.
    let mut b = bytes.clone();
    b[0] = b'X';
    std::fs::write(&case, &b).unwrap();
    assert!(matches!(open_fully(&case), Err(StoreError::BadMagic)));

    // Future version.
    let mut b = bytes.clone();
    b[8..12].copy_from_slice(&99u32.to_le_bytes());
    std::fs::write(&case, &b).unwrap();
    assert!(matches!(
        open_fully(&case),
        Err(StoreError::UnsupportedVersion(99))
    ));

    // Empty file.
    std::fs::write(&case, []).unwrap();
    assert!(matches!(
        open_fully(&case),
        Err(StoreError::Truncated { .. })
    ));

    // A flip inside the first frame: the footer still validates, the
    // store opens, and the damage surfaces as that chunk's checksum.
    let mut b = bytes.clone();
    b[24] ^= 0x10; // past the 20-byte header, inside chunk 0
    std::fs::write(&case, &b).unwrap();
    let store = ColumnarStore::open(&case).expect("directory still intact");
    assert!(matches!(
        store.read_chunk(0),
        Err(StoreError::ChecksumMismatch { chunk: Some(0), .. })
    ));

    // A flip in the footer CRC itself.
    let mut b = bytes.clone();
    let last = b.len() - 1;
    b[last] ^= 0x01;
    std::fs::write(&case, &b).unwrap();
    assert!(matches!(
        open_fully(&case),
        Err(StoreError::ChecksumMismatch { chunk: None, .. })
    ));

    // Errors render and chain like real errors.
    let err = open_fully(&case).unwrap_err();
    assert!(!err.to_string().is_empty());
    let io: StoreError = std::io::Error::other("disk fell off").into();
    assert!(std::error::Error::source(&io).is_some());

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&case).ok();
}

// ── Segmented store: torn writes, stale directories, attribution ────
//
// The segmented layout adds two new places a crash can land: inside
// the MANIFEST (published by rename, so only full rewrites should
// ever be visible) and inside a segment file written by a batch that
// never published. The sweeps below hold the same line as the
// single-file ones: every corruption is a typed `StoreError` or a
// clean recovery to the last sealed state — never a panic, never
// silently wrong data.

/// A scratch segmented-store directory, wiped before use.
fn scratch_dir(name: &str) -> PathBuf {
    let dir = scratch(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The monthly corpus as a segmented store: 12 chunks at 3 per
/// segment = 4 segment files plus the manifest.
fn small_segmented(name: &str) -> PathBuf {
    let dir = scratch_dir(name);
    let ds = monthly_corpus();
    let mut w = SegmentedWriter::create(&dir)
        .expect("create segmented store")
        .with_chunk_limit(3);
    w.append_columnar(&ds, 0).expect("ingest corpus");
    w.finish_batch().expect("publish");
    let store = SegmentedStore::open(&dir).expect("fixture opens");
    assert_eq!(store.segment_count(), 4, "fixture must span four segments");
    dir
}

#[test]
fn manifest_truncation_at_every_offset_is_a_typed_error() {
    let dir = small_segmented("seg_manifest_trunc");
    let manifest = dir.join("MANIFEST");
    let bytes = std::fs::read(&manifest).expect("read manifest");
    assert!(bytes.len() < 4096, "manifest meant to be small");
    for cut in 0..bytes.len() {
        std::fs::write(&manifest, &bytes[..cut]).expect("write truncated manifest");
        assert!(
            SegmentedStore::open(&dir).is_err(),
            "manifest truncated at byte {cut}/{} must error",
            bytes.len()
        );
    }
    std::fs::write(&manifest, &bytes).expect("restore manifest");
    SegmentedStore::open(&dir).expect("restored manifest opens");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn manifest_bit_flips_are_caught() {
    let dir = small_segmented("seg_manifest_flip");
    let manifest = dir.join("MANIFEST");
    let bytes = std::fs::read(&manifest).expect("read manifest");
    for i in 0..bytes.len() {
        let mut corrupt = bytes.clone();
        corrupt[i] ^= 1u8 << (i % 8);
        std::fs::write(&manifest, &corrupt).expect("write flipped manifest");
        assert!(
            SegmentedStore::open(&dir).is_err(),
            "manifest bit flip at byte {i} must error"
        );
    }
    std::fs::write(&manifest, &bytes).expect("restore manifest");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn segment_truncation_at_every_offset_is_a_typed_error() {
    let dir = small_segmented("seg_file_trunc");
    let seg = dir.join("seg-000001.seg");
    let bytes = std::fs::read(&seg).expect("read segment");
    assert!(bytes.len() < 64 * 1024, "segment meant to be small");
    for cut in 0..bytes.len() {
        std::fs::write(&seg, &bytes[..cut]).expect("write truncated segment");
        let result = SegmentedStore::open(&dir).and_then(|s| s.to_dataset());
        assert!(
            result.is_err(),
            "segment truncated at byte {cut}/{} must error",
            bytes.len()
        );
    }
    std::fs::write(&seg, &bytes).expect("restore segment");
    SegmentedStore::open(&dir).expect("restored segment opens");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_append_recovers_to_the_last_sealed_batch() {
    let dir = small_segmented("seg_torn_append");
    let before = SegmentedStore::open(&dir).expect("open sealed store");
    let want = to_json_columnar(&before.to_dataset().expect("materialize"));
    let rows_before = before.total_rows();
    let segments_before = before.segment_count();
    drop(before);

    // A batch that crashed before its manifest rename leaves segment
    // files in arbitrary states of completeness — and possibly a torn
    // MANIFEST.tmp. None of it is named by the published manifest.
    std::fs::write(dir.join("seg-000099.seg"), b"IOTLSCS1 half a segment").expect("orphan");
    std::fs::write(dir.join("seg-000100.seg"), b"").expect("empty orphan");
    std::fs::write(dir.join("MANIFEST.tmp"), b"torn temp manifest").expect("tmp");

    let after = SegmentedStore::open(&dir).expect("store must reopen cleanly");
    assert_eq!(after.segment_count(), segments_before, "sealed segments only");
    assert_eq!(after.total_rows(), rows_before, "no silent data change");
    assert_eq!(after.orphan_segments(), 2, "strays are counted, not read");
    assert_eq!(
        to_json_columnar(&after.to_dataset().expect("materialize")),
        want,
        "recovered store is byte-identical to the last sealed state"
    );
    drop(after);

    // The next real append numbers PAST the orphans — it never
    // overwrites a file a crashed batch may still own.
    let mut w = SegmentedWriter::append(&dir).expect("append after crash");
    w.append_columnar(&monthly_corpus(), 366 * 24 * 3600).expect("ingest day 2");
    w.finish_batch().expect("publish day 2");
    assert!(
        dir.join("seg-000101.seg").exists(),
        "new segments must number past every file on disk"
    );
    let grown = SegmentedStore::open(&dir).expect("reopen grown store");
    assert_eq!(grown.total_rows(), rows_before * 2);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncation_messages_name_the_file_and_offset() {
    // Segment path + offset: a manifest-listed segment cut to zero.
    let dir = small_segmented("seg_msg_shape");
    let seg = dir.join("seg-000000.seg");
    std::fs::write(&seg, b"").expect("truncate segment");
    let msg = SegmentedStore::open(&dir).expect_err("must error").to_string();
    assert_eq!(
        msg,
        format!(
            "store truncated reading segment file at byte 0 of {}",
            seg.display()
        ),
        "the message shape is load-bearing for multi-file attribution"
    );
    std::fs::remove_dir_all(&dir).ok();

    // Single-file stores carry their path too.
    let path = scratch("msg_shape.iotls");
    small_dataset().write_to(&path).expect("write store");
    let bytes = std::fs::read(&path).expect("read back");
    std::fs::write(&path, &bytes[..10]).expect("truncate");
    let err = ColumnarStore::open(&path).expect_err("must error");
    assert!(matches!(err, StoreError::Truncated { .. }));
    let msg = err.to_string();
    assert!(msg.starts_with("store truncated reading "), "{msg}");
    assert!(msg.contains(" at byte "), "{msg}");
    assert!(msg.ends_with(&format!(" of {}", path.display())), "{msg}");

    // And the manifest names itself on a torn read.
    let dir = small_segmented("seg_msg_manifest");
    let manifest = dir.join("MANIFEST");
    std::fs::write(&manifest, b"IO").expect("tear manifest");
    let msg = SegmentedStore::open(&dir).expect_err("must error").to_string();
    assert!(msg.contains("manifest"), "{msg}");
    assert!(msg.ends_with(&format!(" of {}", manifest.display())), "{msg}");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_file(&path).ok();
}
