//! The segmented store end to end: arbitrary segment splits vs the
//! single-file oracle, incremental append vs one-shot build, pruning
//! soundness against a brute-force row filter, and the read-counting
//! proof that skipped segments are never touched.
//!
//! The contract under test: HOW a chunk stream is cut into segment
//! files and batches is invisible to analysis — `analyze_store` over
//! any segmented layout is byte-identical (analysis, JSON export,
//! and `passive.*`/`capture.*` counter sections) to the same chunks
//! in one file, at any `IOTLS_THREADS`; and a `(window, device)`
//! slice through `analyze_store_slice` equals re-analyzing a
//! brute-force row-filtered copy of the corpus while provably never
//! reading a pruned segment.
//!
//! All scratch stores live under `target/test_segstore/`.

use iotls_repro::capture::{
    to_json_columnar, ColumnarDataset, ColumnarStore, DatasetBuilder, RevocationFlow,
    RevocationKind, SegmentedStore, SegmentedWriter,
};
use iotls_repro::core::{
    analyze_columnar, analyze_store, analyze_store_slice, ExperimentCtx, PassiveAnalysis,
};
use iotls_repro::crypto::drbg::Drbg;
use iotls_repro::simnet::TlsObservation;
use iotls_repro::tls::alert::AlertDescription;
use iotls_repro::tls::fingerprint::FingerprintId;
use iotls_repro::tls::version::ProtocolVersion;
use iotls_repro::x509::Month;
use std::path::{Path, PathBuf};

/// A scratch path under `target/test_segstore/`, wiped per test.
fn scratch(name: &str) -> PathBuf {
    let dir = PathBuf::from("target/test_segstore");
    std::fs::create_dir_all(&dir).expect("create target/test_segstore");
    let path = dir.join(name);
    let _ = std::fs::remove_dir_all(&path);
    let _ = std::fs::remove_file(&path);
    path
}

const DEVICES: [&str; 3] = ["Cam A", "Hub B", "Plug C"];

/// The `n`th month of the synthetic study (0 = January 2018).
fn month_n(n: u32) -> Month {
    let mut m = Month::new(2018, 1);
    for _ in 0..n {
        m = m.next();
    }
    m
}

fn obs(rng: &mut Drbg, device: &str, month: Month, dest: &str) -> TlsObservation {
    let fp = rng.below(4) as u8;
    let negotiated = rng.chance(0.9);
    TlsObservation {
        time: month.start().plus_days(rng.below(27) as i64),
        device: device.into(),
        destination: dest.into(),
        sni: if rng.chance(0.8) { Some(dest.into()) } else { None },
        advertised_versions: vec![ProtocolVersion::Tls11, ProtocolVersion::Tls12],
        max_advertised: ProtocolVersion::Tls12,
        offered_suites: vec![0xc02f, 0x0005],
        requested_ocsp: rng.chance(0.5),
        fingerprint: FingerprintId([fp; 16]),
        negotiated_version: negotiated.then_some(ProtocolVersion::Tls12),
        negotiated_suite: negotiated.then_some(0xc02f),
        ocsp_stapled: fp % 2 == 0,
        leaf_issuer: negotiated.then(|| "SimTrust Root".into()),
        established: negotiated,
        alerts_from_client: vec![AlertDescription::CloseNotify],
        alerts_from_server: vec![],
    }
}

/// A multi-month corpus: one sealed chunk per month (so segment
/// splits land on meaningful time boundaries), every device active
/// every month with Drbg-varied handshakes, plus revocation flows
/// spread across the window. Deterministic per seed.
fn corpus(seed: u64, months: u8) -> ColumnarDataset {
    let mut rng = Drbg::from_seed(seed);
    let mut b = DatasetBuilder::new();
    let mut chunks = Vec::new();
    for m in 0..months {
        let month = month_n(m as u32);
        for device in DEVICES {
            for dest in ["cloud-a.example", "cloud-b.example"] {
                b.push_obs(&obs(&mut rng, device, month, dest), 1 + rng.below(4), &mut |c| {
                    chunks.push(c)
                });
            }
        }
        if m % 3 == 0 {
            b.push_flow(&RevocationFlow {
                time: month.start().plus_days(2),
                device: DEVICES[m as usize % DEVICES.len()].into(),
                kind: if m % 2 == 0 { RevocationKind::CrlFetch } else { RevocationKind::OcspQuery },
                url: "http://crl.example/x.crl".into(),
                count: 2,
            });
        }
        b.flush(&mut |c| chunks.push(c));
    }
    b.truncated = 5;
    let ds = b.into_dataset(chunks);
    assert_eq!(ds.chunks.len(), months as usize, "one chunk per month");
    ds
}

/// The `passive.*`/`capture.*` counter sections of a ctx's metrics
/// snapshot, rendered to comparable text.
fn counter_sections(ctx: &ExperimentCtx) -> String {
    ctx.metrics_snapshot()
        .counters()
        .filter(|(name, _)| name.starts_with("passive.") || name.starts_with("capture."))
        .map(|(name, v)| format!("{name}={v}\n"))
        .collect()
}

fn metered_ctx(threads: usize) -> ExperimentCtx {
    ExperimentCtx::builder().seed(0x10AD).metrics(true).threads(threads).build()
}

/// Analyzes a segmented store, returning the analysis, the counter
/// section, and the JSON export of its materialized dataset.
fn footprint(dir: &Path, threads: usize) -> (PassiveAnalysis, String, String) {
    let store = SegmentedStore::open(dir).expect("open segmented store");
    let ctx = metered_ctx(threads);
    let a = analyze_store(&store, &ctx).expect("analyze segmented store");
    let export = to_json_columnar(&store.to_dataset().expect("materialize"));
    (a, counter_sections(&ctx), export)
}

#[test]
fn arbitrary_segment_splits_match_the_single_file_oracle() {
    let ds = corpus(0x5E6, 12);

    // Oracle: the same chunks in one self-contained file.
    let oracle_path = scratch("oracle.iotls");
    ds.write_to(&oracle_path).expect("write oracle");
    let oracle_store = ColumnarStore::open(&oracle_path).expect("open oracle");
    let oracle_ctx = metered_ctx(1);
    let oracle = analyze_store(&oracle_store, &oracle_ctx).expect("analyze oracle");
    let oracle_counters = counter_sections(&oracle_ctx);
    let oracle_export = to_json_columnar(&ds);

    let mut multi_segment_trials = 0;
    let mut multi_batch_trials = 0;
    let mut rng = Drbg::from_seed(0xA5B1).fork("splits");
    for trial in 0..8u32 {
        let dir = scratch(&format!("split_{trial}"));
        // Random cut of the chunk stream into segments (seal_segment)
        // and into separately published batches (finish + append).
        let mut w = SegmentedWriter::create(&dir).expect("create").with_chunk_limit(64);
        let mut batches = 1;
        for chunk in &ds.chunks {
            w.add_chunk(chunk).expect("add chunk");
            if rng.chance(0.35) {
                w.seal_segment();
            }
            if rng.chance(0.2) {
                // Publish a mid-stream batch (tables, no tails yet)
                // and reopen — the incremental-ingest path.
                w.finish(&ds.strings, &ds.fps, &[], 0).expect("publish batch");
                w = SegmentedWriter::append(&dir).expect("reopen for append");
                batches += 1;
            }
        }
        // The final batch carries the tails.
        w.finish(&ds.strings, &ds.fps, &ds.revocation_flows, ds.truncated)
            .expect("publish final batch");

        let store = SegmentedStore::open(&dir).expect("open split store");
        if store.segment_count() > 1 {
            multi_segment_trials += 1;
        }
        if batches > 1 {
            multi_batch_trials += 1;
        }
        let (a, counters, export) = footprint(&dir, 1 + (trial as usize % 8));
        assert_eq!(a, oracle, "trial {trial}: analysis must match the oracle");
        assert_eq!(counters, oracle_counters, "trial {trial}: counters must match");
        assert_eq!(export, oracle_export, "trial {trial}: export must be byte-identical");
        std::fs::remove_dir_all(&dir).ok();
    }
    assert!(multi_segment_trials >= 4, "splits must actually exercise multi-segment layouts");
    assert!(multi_batch_trials >= 2, "splits must actually exercise multi-batch appends");
    std::fs::remove_file(&oracle_path).ok();
}

#[test]
fn append_then_reopen_equals_one_shot_build_at_any_thread_count() {
    let ds = corpus(0xAB3, 9);

    // One shot: every chunk in a single published batch.
    let one_shot = scratch("oneshot.segdir");
    let mut w = SegmentedWriter::create(&one_shot).expect("create").with_chunk_limit(2);
    for chunk in &ds.chunks {
        w.add_chunk(chunk).expect("add chunk");
    }
    w.finish(&ds.strings, &ds.fps, &ds.revocation_flows, ds.truncated).expect("publish");

    // Incremental: three batches of three chunks, each one a
    // create-or-append followed by a full manifest publish.
    let appended = scratch("appended.segdir");
    for (i, batch) in ds.chunks.chunks(3).enumerate() {
        let mut w = if i == 0 {
            SegmentedWriter::create(&appended).expect("create")
        } else {
            SegmentedWriter::append(&appended).expect("append")
        }
        .with_chunk_limit(2);
        for chunk in batch {
            w.add_chunk(chunk).expect("add chunk");
        }
        let last = (i + 1) * 3 >= ds.chunks.len();
        let (flows, truncated): (&[_], u64) =
            if last { (&ds.revocation_flows, ds.truncated) } else { (&[], 0) };
        w.finish(&ds.strings, &ds.fps, flows, truncated).expect("publish batch");
    }

    let mut prev: Option<(PassiveAnalysis, String, String)> = None;
    for threads in [1usize, 8] {
        let one = footprint(&one_shot, threads);
        let multi = footprint(&appended, threads);
        assert_eq!(one, multi, "one-shot vs appended at {threads} threads");
        if let Some(p) = &prev {
            assert_eq!(*p, one, "thread-count invariance");
        }
        prev = Some(one);
    }
    let (a, counters, _) = prev.expect("ran");
    assert!(a.total_connections > 0);
    assert!(counters.contains("passive.rows.analyzed="));
    std::fs::remove_dir_all(&one_shot).ok();
    std::fs::remove_dir_all(&appended).ok();
}

/// Brute force: rebuild a corpus containing ONLY the rows (and
/// flows) inside the slice, then analyze it in memory.
fn brute_force_slice(
    ds: &ColumnarDataset,
    from: i64,
    to: i64,
    device: Option<&str>,
) -> PassiveAnalysis {
    let rows = ds.to_rows();
    let mut b = DatasetBuilder::new();
    let mut chunks = Vec::new();
    for w in &rows.observations {
        let t = w.observation.time.0;
        if t >= from && t <= to && device.is_none_or(|d| d == w.observation.device) {
            b.push_obs(&w.observation, w.count, &mut |c| chunks.push(c));
        }
    }
    for f in &rows.revocation_flows {
        if f.time.0 >= from && f.time.0 <= to && device.is_none_or(|d| d == f.device) {
            b.push_flow(f);
        }
    }
    b.flush(&mut |c| chunks.push(c));
    let filtered = b.into_dataset(chunks);
    analyze_columnar(&filtered, &ExperimentCtx::new(0x10AD))
}

#[test]
fn every_window_device_slice_matches_the_brute_force_filter() {
    let ds = corpus(0xF17, 8);
    let dir = scratch("slices.segdir");
    let mut w = SegmentedWriter::create(&dir).expect("create").with_chunk_limit(2);
    for chunk in &ds.chunks {
        w.add_chunk(chunk).expect("add chunk");
    }
    w.finish(&ds.strings, &ds.fps, &ds.revocation_flows, ds.truncated).expect("publish");
    let store = SegmentedStore::open(&dir).expect("open");
    assert!(store.segment_count() >= 4, "slice corpus must span several segments");

    let mut nonempty = 0;
    for lo in 0..8u32 {
        for hi in lo..8u32 {
            let from = month_n(lo).start().0;
            let to = month_n(hi).end().0;
            for device in std::iter::once(None).chain(DEVICES.iter().map(|d| Some(*d))) {
                let ctx = metered_ctx(2);
                let got = analyze_store_slice(&store, from, to, device, &ctx)
                    .expect("analyze slice");
                let want = brute_force_slice(&ds, from, to, device);
                assert_eq!(got, want, "slice months {lo}..={hi} device {device:?}");
                if got.total_connections > 0 {
                    nonempty += 1;
                }
            }
        }
    }
    assert!(nonempty > 50, "the sweep must exercise real slices, got {nonempty}");

    // A device the corpus never saw is an empty slice, not an error.
    let ctx = metered_ctx(1);
    let ghost = analyze_store_slice(&store, 0, i64::MAX, Some("No Such Device"), &ctx)
        .expect("unknown device slice");
    assert_eq!(ghost.total_connections, 0);
    assert!(ghost.device_names.is_empty());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn skipped_segments_are_provably_never_read() {
    let ds = corpus(0x9D0, 12);
    let dir = scratch("skipped.segdir");
    let mut w = SegmentedWriter::create(&dir).expect("create").with_chunk_limit(2);
    for chunk in &ds.chunks {
        w.add_chunk(chunk).expect("add chunk");
    }
    w.finish(&ds.strings, &ds.fps, &ds.revocation_flows, ds.truncated).expect("publish");

    // A fresh open has clean read counters; slice one early month.
    let store = SegmentedStore::open(&dir).expect("open");
    assert_eq!(store.frame_bytes_read(), 0, "no frames read before the slice");
    let month = Month::new(2018, 2);
    let (from, to) = (month.start().0, month.end().0);
    let touched: std::collections::BTreeSet<usize> = store
        .select_chunks(from, to, None)
        .into_iter()
        .map(|i| store.segment_of(i))
        .collect();
    assert!(
        !touched.is_empty() && touched.len() < store.segment_count(),
        "the window must keep some segments and skip others ({}/{})",
        touched.len(),
        store.segment_count()
    );

    let ctx = metered_ctx(2);
    let a = analyze_store_slice(&store, from, to, None, &ctx).expect("analyze slice");
    assert!(a.total_connections > 0);

    // The per-segment read counters are the witness: pruned segments
    // transferred zero frame bytes, scanned ones transferred some,
    // and the counters agree with the registry's account.
    let mut read_total = 0;
    for seg in 0..store.segment_count() {
        let bytes = store.segment_bytes_read(seg);
        if touched.contains(&seg) {
            assert!(bytes > 0, "segment {seg} was selected but never read");
        } else {
            assert_eq!(bytes, 0, "segment {seg} was pruned yet read {bytes} bytes");
        }
        read_total += bytes;
    }
    assert_eq!(read_total, store.frame_bytes_read());
    let snap = ctx.metrics_snapshot();
    assert_eq!(snap.counter("capture.store.segments_scanned"), touched.len() as u64);
    assert_eq!(
        snap.counter("capture.store.segments_skipped"),
        (store.segment_count() - touched.len()) as u64
    );
    assert_eq!(snap.counter("capture.store.bytes.read"), read_total);
    assert_eq!(snap.counter("capture.store.bytes.total"), store.frame_bytes_total());
    assert!(read_total < store.frame_bytes_total());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn append_interns_against_the_existing_symbol_tables() {
    // Batch 1 and batch 2 are built with INDEPENDENT interners (their
    // symbol numbering disagrees); append_columnar must remap batch 2
    // onto the store's tables, growing them append-only.
    let day1 = corpus(0x0D1, 3);
    let mut rng = Drbg::from_seed(0x0D2);
    let mut b = DatasetBuilder::new();
    let mut chunks = Vec::new();
    for m in 0..3u8 {
        let month = month_n(3 + m as u32);
        // New device first, so its standalone numbering collides with
        // day 1's, plus one shared device.
        for device in ["Sensor D", "Hub B"] {
            b.push_obs(&obs(&mut rng, device, month, "cloud-c.example"), 2, &mut |c| {
                chunks.push(c)
            });
        }
        b.flush(&mut |c| chunks.push(c));
    }
    let day2 = b.into_dataset(chunks);

    let dir = scratch("interning.segdir");
    let mut w = SegmentedWriter::create(&dir).expect("create");
    w.append_columnar(&day1, 0).expect("ingest day 1");
    w.finish_batch().expect("publish day 1");
    let tables_after_day1: Vec<String> = {
        let store = SegmentedStore::open(&dir).expect("open after day 1");
        store.strings().iter().map(|s| s.to_string()).collect()
    };

    let mut w = SegmentedWriter::append(&dir).expect("reopen");
    w.append_columnar(&day2, 0).expect("ingest day 2");
    w.finish_batch().expect("publish day 2");

    let store = SegmentedStore::open(&dir).expect("open combined");
    let combined: Vec<String> = store.strings().iter().map(|s| s.to_string()).collect();
    assert_eq!(
        &combined[..tables_after_day1.len()],
        &tables_after_day1[..],
        "append must extend the string table, never renumber it"
    );
    assert!(store.strings().lookup("Sensor D").is_some(), "new symbols interned");
    assert_eq!(
        store.total_rows(),
        day1.total_rows() as u64 + day2.total_rows() as u64
    );

    // The combined analysis equals analyzing the concatenated rows.
    let mut both = day1.to_rows();
    let more = day2.to_rows();
    both.observations.extend(more.observations);
    both.revocation_flows.extend(more.revocation_flows);
    let mut b = DatasetBuilder::new();
    let mut chunks = Vec::new();
    for w in &both.observations {
        b.push_obs(&w.observation, w.count, &mut |c| chunks.push(c));
    }
    for f in &both.revocation_flows {
        b.push_flow(f);
    }
    b.truncated = both.truncated;
    b.flush(&mut |c| chunks.push(c));
    let merged = b.into_dataset(chunks);
    let ctx = ExperimentCtx::new(0x10AD);
    let from_store = analyze_store(&store, &ctx).expect("analyze combined");
    assert_eq!(from_store, analyze_columnar(&merged, &ctx));
    std::fs::remove_dir_all(&dir).ok();
}
