//! Cross-crate end-to-end test: runs the complete IoTLS experiment
//! suite through the public API and asserts the paper's headline
//! findings (the abstract's numbers).

use iotls_repro::capture::global_dataset;
use iotls_repro::core::{
    library_alert_matrix, passive_summary, run_downgrade_probe, run_interception_audit,
    run_old_version_scan, run_root_probe,
};
use iotls_repro::devices::Testbed;

#[test]
fn abstract_headline_findings() {
    let testbed = Testbed::global();

    // "11/32 devices are vulnerable to TLS interception attacks."
    let audit = run_interception_audit(testbed, 0xE2E);
    assert_eq!(audit.rows.len(), 32);
    assert_eq!(audit.vulnerable_rows().len(), 11);

    // "TLS connections from 7 vulnerable devices contained sensitive
    // data."
    assert_eq!(audit.leaky_devices().len(), 7);

    // "7 devices downgrade to deprecated protocol versions or old
    // ciphersuites in the face of an active on-path attacker."
    let downgrades = run_downgrade_probe(testbed, 0xE2E);
    assert_eq!(downgrades.len(), 7);

    // Table 6: 18 devices accept old TLS versions.
    let old = run_old_version_scan(testbed, 0xE2E);
    assert_eq!(old.len(), 18);

    // "At least 8 IoT devices still include distrusted certificates
    // in their root stores" — 8 amenable devices, each trusting at
    // least one deprecated (and at least one distrusted) root.
    let probe = run_root_probe(testbed, 0xE2E);
    let amenable = probe.amenable_rows();
    assert_eq!(amenable.len(), 8);
    let distrusted: std::collections::BTreeSet<_> =
        testbed.pki.universe.distrusted_ids().into_iter().collect();
    for row in &amenable {
        let present = row.deprecated_present_ids();
        assert!(!present.is_empty(), "{} has no deprecated roots", row.device);
        assert!(
            present.iter().any(|id| distrusted.contains(id)),
            "{} trusts no explicitly distrusted CA",
            row.device
        );
    }

    // Table 4: exactly MbedTLS and OpenSSL are amenable.
    let amenable_libs: Vec<_> = library_alert_matrix()
        .into_iter()
        .filter(|r| r.amenable())
        .map(|r| r.library)
        .collect();
    assert_eq!(amenable_libs.len(), 2);
}

#[test]
fn passive_headlines_match_paper() {
    let summary = passive_summary(global_dataset());

    // "A large majority of the devices (28/40) use TLS 1.2
    // exclusively."
    assert_eq!(summary.tls12_exclusive_devices.len(), 28);

    // "Devices never support (ANON, NULL) ciphersuites."
    assert!(!summary.null_anon_seen);

    // "34 devices advertised insecure ciphersuites but only 2 ever
    // established connections using those."
    assert_eq!(summary.devices_advertising_insecure.len(), 34);
    assert_eq!(summary.devices_establishing_insecure.len(), 2);

    // "33 devices advertise support for forward secrecy."
    assert_eq!(summary.devices_advertising_fs.len(), 33);
}

#[test]
fn dataset_scale_matches_section_4_1() {
    let stats = global_dataset().stats();
    // ≈17M total connections, mean ≈422K, median ≈138K — same order
    // and same mean>median skew.
    assert!(
        (12_000_000..=22_000_000).contains(&stats.total_connections),
        "{}",
        stats.total_connections
    );
    assert!(stats.mean_per_device > stats.median_per_device as f64);
    assert_eq!(stats.per_device.len(), 40);
}
