//! Thread-count invariance of the parallel experiment engine.
//!
//! Every driver fans per-device work out over `IOTLS_THREADS` workers
//! and merges results in device-roster order; the contract is that the
//! rendered tables, the fault/cache counters, and the passive dataset
//! are *byte-identical* at any worker count. This test runs the full
//! active sweep plus the passive generator at 1 and at 8 workers and
//! compares everything.

use iotls_repro::analysis::{figures, tables};
use iotls_repro::capture::{
    generate, generate_columnar, to_json, to_json_columnar, ColumnarStore, StoreWriter,
};
use iotls_repro::core::{
    analyze_columnar, analyze_store, analyze_streamed, cipher_series, passive_summary,
    revocation_summary, run_fingerprint_survey, version_series, DowngradeProbe, Experiment,
    ExperimentCtx, ExperimentError, InterceptionAudit, OldVersionScan, PassiveAnalysis, RootProbe,
    METRICS_ENV,
};
use iotls_repro::crypto::sha256::sha256;
use iotls_repro::devices::Testbed;
use iotls_repro::simnet::par::THREADS_ENV;
use iotls_repro::simnet::FaultPlan;
use std::sync::Mutex;

/// Both tests in this binary mutate `IOTLS_THREADS`; the harness runs
/// them on concurrent threads, so the env var is serialized here.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Everything a sweep produces, flattened to comparable bytes.
#[derive(Debug, PartialEq)]
struct SweepFootprint {
    table5: String,
    table6: String,
    table7: String,
    table9: String,
    fingerprints: Vec<(String, usize)>,
    audit_fault_stats: String,
    audit_cache_stats: String,
    probe_fault_stats: String,
    probe_cache_stats: String,
    dataset_digest: [u8; 32],
    dataset_truncated: u64,
}

fn run_sweep(testbed: &'static Testbed) -> SweepFootprint {
    // Built after the caller pins IOTLS_THREADS: the ctx resolves its
    // thread policy from the env exactly once, here.
    let ctx = ExperimentCtx::builder()
        .seed(0x4E9D)
        .plan(FaultPlan::uniform(0xDE7, 40))
        .build();
    let audit = InterceptionAudit.run(testbed, &ctx);
    let probe = RootProbe.run(testbed, &ctx);
    let down_rows = DowngradeProbe.run(testbed, &ctx).rows;
    let old_rows = OldVersionScan.run(testbed, &ctx).rows;
    let survey = run_fingerprint_survey(testbed, 0x5075);
    let dataset = generate(testbed, 0x10AD);
    SweepFootprint {
        table5: tables::table5_downgrades(&down_rows),
        table6: tables::table6_old_versions(&old_rows),
        table7: tables::table7_interception(&audit),
        table9: tables::table9_rootstores(&probe),
        fingerprints: survey
            .by_device
            .iter()
            .map(|(d, fps)| (d.clone(), fps.len()))
            .collect(),
        audit_fault_stats: format!("{:?}", audit.fault_stats),
        audit_cache_stats: format!("{:?}", audit.verify_cache_stats),
        probe_fault_stats: format!("{:?}", probe.fault_stats),
        probe_cache_stats: format!("{:?}", probe.verify_cache_stats),
        dataset_digest: sha256(to_json(&dataset).as_bytes()),
        dataset_truncated: dataset.truncated,
    }
}

#[test]
fn one_worker_and_eight_workers_produce_identical_bytes() {
    let _env = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let testbed = Testbed::global();

    std::env::set_var(THREADS_ENV, "1");
    let sequential = run_sweep(testbed);

    std::env::set_var(THREADS_ENV, "8");
    let parallel = run_sweep(testbed);
    std::env::remove_var(THREADS_ENV);

    assert_eq!(sequential, parallel);
    // The footprint carries real work, not empty strings.
    assert!(sequential.table7.contains("Zmodo Doorbell"));
    assert!(!sequential.fingerprints.is_empty());
    assert_ne!(sequential.dataset_digest, [0u8; 32]);
    // Chaos plan actually fired, so the FaultStats comparison above is
    // comparing non-trivial counters.
    assert_ne!(sequential.audit_fault_stats, format!("{:?}", iotls_repro::core::FaultStats::default()));
    assert_ne!(sequential.audit_cache_stats, "CacheStats { hits: 0, misses: 0 }");
}

/// The rendered passive deliverables, flattened to comparable bytes.
#[derive(Debug, PartialEq)]
struct PassiveFootprint {
    fig1: String,
    fig2: String,
    fig3: String,
    table8: String,
    export_digest: [u8; 32],
}

/// Renders every passive table/figure plus the JSON export through the
/// streaming accumulator, asserting along the way that the legacy
/// row-scanning path produces the same bytes.
fn run_passive(testbed: &'static Testbed) -> PassiveFootprint {
    let cds = generate_columnar(testbed, 0x10AD);
    let rows = cds.to_rows();

    // Single-pass streamed analysis (chunks dropped as they are
    // folded) vs the in-memory chunk walk vs the legacy row scans.
    let ctx = ExperimentCtx::new(0x10AD);
    let streamed = analyze_streamed(testbed, &ctx, u64::MAX);
    assert_eq!(streamed, analyze_columnar(&cds, &ctx));
    assert_eq!(streamed.version_series, version_series(&rows));
    assert_eq!(streamed.cipher_series, cipher_series(&rows));
    assert_eq!(streamed.summary, passive_summary(&rows));
    assert_eq!(streamed.revocation, revocation_summary(&rows));
    assert_eq!(streamed.month_axis, figures::month_axis(&rows));
    assert_eq!(streamed.device_names, rows.device_names());

    // Exported dataset: columnar encoder vs the row-vector encoder.
    let export = to_json_columnar(&cds);
    assert_eq!(export, to_json(&rows));

    PassiveFootprint {
        fig1: figures::fig1_versions(
            &streamed.month_axis,
            &streamed.version_series,
            &streamed.summary.fig1_devices,
        ),
        fig2: figures::fig2_insecure(&streamed.month_axis, &streamed.cipher_series),
        fig3: figures::fig3_strong(&streamed.month_axis, &streamed.cipher_series),
        table8: tables::table8_revocation(&streamed.revocation, &streamed.device_names),
        export_digest: sha256(export.as_bytes()),
    }
}

#[test]
fn streamed_pipeline_is_byte_identical_at_any_thread_count() {
    let _env = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let testbed = Testbed::global();

    std::env::set_var(THREADS_ENV, "1");
    let sequential = run_passive(testbed);

    std::env::set_var(THREADS_ENV, "8");
    let parallel = run_passive(testbed);
    std::env::remove_var(THREADS_ENV);

    assert_eq!(sequential, parallel);
    assert!(sequential.fig1.contains("Wemo Plug"));
    assert!(sequential.fig3.contains("Blink Hub"));
    assert!(sequential.table8.contains("OCSP Stapling"));
}

/// The `passive.*` and `capture.*` counter sections of a ctx's
/// metrics snapshot, rendered to comparable text (counter storage is
/// a BTreeMap, so the rendering is deterministic by construction).
fn counter_sections(ctx: &ExperimentCtx) -> String {
    ctx.metrics_snapshot()
        .counters()
        .filter(|(name, _)| name.starts_with("passive.") || name.starts_with("capture."))
        .map(|(name, v)| format!("{name}={v}\n"))
        .collect()
}

/// Runs the passive pipeline twice at the current `IOTLS_THREADS`:
/// once fully streamed (generator → accumulator, nothing persisted),
/// once through the on-disk store (generator → `StoreWriter` sink →
/// reopen → `analyze_store`). Returns both analyses plus each run's
/// `passive.*`/`capture.*` counter section.
fn run_store_passive(
    testbed: &'static Testbed,
    path: &std::path::Path,
) -> (PassiveAnalysis, PassiveAnalysis, String, String) {
    let streamed_ctx = ExperimentCtx::builder().seed(0x10AD).metrics(true).build();
    let streamed = analyze_streamed(testbed, &streamed_ctx, u64::MAX);

    let disk_ctx = ExperimentCtx::builder().seed(0x10AD).metrics(true).build();
    let capture = disk_ctx.capture_ctx();
    let mut writer = StoreWriter::create(path).expect("create store");
    let tail = capture.generate_streamed(testbed, u64::MAX, &mut |c| {
        writer.add_chunk(&c).expect("persist chunk");
    });
    writer
        .finish(&tail.strings, &tail.fps, &tail.revocation_flows, tail.truncated)
        .expect("finish store");
    let store = ColumnarStore::open(path).expect("open store");
    let from_disk = analyze_store(&store, &disk_ctx).expect("analyze store");

    (
        streamed,
        from_disk,
        counter_sections(&streamed_ctx),
        counter_sections(&disk_ctx),
    )
}

#[test]
fn store_backed_analysis_is_byte_identical_at_any_thread_count() {
    let _env = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let testbed = Testbed::global();
    std::fs::create_dir_all("target/test_store").expect("create target/test_store");
    let path = std::path::Path::new("target/test_store/determinism.iotls");

    std::env::set_var(THREADS_ENV, "1");
    let (streamed_1, disk_1, streamed_counters_1, disk_counters_1) =
        run_store_passive(testbed, path);

    std::env::set_var(THREADS_ENV, "8");
    let (streamed_8, disk_8, streamed_counters_8, disk_counters_8) =
        run_store_passive(testbed, path);
    std::env::remove_var(THREADS_ENV);
    std::fs::remove_file(path).ok();

    // Streamed vs file-backed, at each worker count.
    assert_eq!(streamed_1, disk_1, "streamed vs store-backed at 1 worker");
    assert_eq!(streamed_8, disk_8, "streamed vs store-backed at 8 workers");
    // And across worker counts.
    assert_eq!(streamed_1, streamed_8, "streamed at 1 vs 8 workers");
    assert_eq!(disk_1, disk_8, "store-backed at 1 vs 8 workers");

    // The `passive.*`/`capture.*` counter sections are equally
    // invariant: same names, same values, whichever path and
    // whichever worker count produced them.
    assert_eq!(streamed_counters_1, disk_counters_1);
    assert_eq!(streamed_counters_1, streamed_counters_8);
    assert_eq!(disk_counters_1, disk_counters_8);
    // ... and they carry real work.
    assert!(streamed_counters_1.contains("passive.connections="));
    assert!(streamed_counters_1.contains("passive.rows.analyzed="));
    assert!(streamed_counters_1.contains("capture.rows.weighted="));
    assert!(streamed_1.total_connections > 0);
}

#[test]
fn bad_env_values_fall_back_and_are_recorded() {
    let _env = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());

    // Non-numeric and zero thread counts fall back to the default
    // parallelism, warn, and bump the ctx.env.threads.invalid counter.
    for bad in ["notanumber", "0", "-3"] {
        std::env::set_var(THREADS_ENV, bad);
        let ctx = ExperimentCtx::builder().seed(1).metrics(true).build();
        assert!(ctx.threads() >= 1, "{bad}: threads {}", ctx.threads());
        assert!(
            ctx.warnings().iter().any(|w| matches!(
                w,
                ExperimentError::InvalidEnv { var, value }
                    if *var == THREADS_ENV && value == bad
            )),
            "{bad}: warnings {:?}",
            ctx.warnings()
        );
        assert_eq!(
            ctx.metrics_snapshot().counter("ctx.env.threads.invalid"),
            1,
            "{bad}"
        );
    }
    std::env::remove_var(THREADS_ENV);

    // A *valid* value produces no warning and no counter.
    std::env::set_var(THREADS_ENV, "2");
    let ctx = ExperimentCtx::builder().seed(1).metrics(true).build();
    assert_eq!(ctx.threads(), 2);
    assert!(ctx.warnings().is_empty(), "{:?}", ctx.warnings());
    std::env::remove_var(THREADS_ENV);

    // An empty IOTLS_METRICS path is unusable: warn, no sink, and the
    // metrics shard stays a no-op unless explicitly forced live.
    std::env::set_var(METRICS_ENV, "");
    let ctx = ExperimentCtx::builder().seed(1).build();
    assert!(ctx.metrics_sink().is_none());
    assert!(!ctx.metrics().is_live());
    assert!(
        ctx.warnings().iter().any(|w| matches!(
            w,
            ExperimentError::InvalidEnv { var, .. } if *var == METRICS_ENV
        )),
        "{:?}",
        ctx.warnings()
    );
    std::env::remove_var(METRICS_ENV);

    // Explicit builder knobs win over the environment entirely.
    std::env::set_var(THREADS_ENV, "notanumber");
    let ctx = ExperimentCtx::builder().seed(1).threads(3).build();
    assert_eq!(ctx.threads(), 3);
    assert!(ctx.warnings().is_empty(), "{:?}", ctx.warnings());
    std::env::remove_var(THREADS_ENV);
}
