//! Thread-count invariance of the parallel experiment engine.
//!
//! Every driver fans per-device work out over `IOTLS_THREADS` workers
//! and merges results in device-roster order; the contract is that the
//! rendered tables, the fault/cache counters, and the passive dataset
//! are *byte-identical* at any worker count. This test runs the full
//! active sweep plus the passive generator at 1 and at 8 workers and
//! compares everything.

use iotls_repro::analysis::tables;
use iotls_repro::capture::{generate, to_json};
use iotls_repro::core::{
    run_downgrade_probe_with, run_fingerprint_survey, run_interception_audit_with,
    run_old_version_scan_with, run_root_probe_with,
};
use iotls_repro::crypto::sha256::sha256;
use iotls_repro::devices::Testbed;
use iotls_repro::simnet::par::THREADS_ENV;
use iotls_repro::simnet::FaultPlan;

/// Everything a sweep produces, flattened to comparable bytes.
#[derive(Debug, PartialEq)]
struct SweepFootprint {
    table5: String,
    table6: String,
    table7: String,
    table9: String,
    fingerprints: Vec<(String, usize)>,
    audit_fault_stats: String,
    audit_cache_stats: String,
    probe_fault_stats: String,
    probe_cache_stats: String,
    dataset_digest: [u8; 32],
    dataset_truncated: u64,
}

fn run_sweep(testbed: &'static Testbed) -> SweepFootprint {
    let plan = FaultPlan::uniform(0xDE7, 40);
    let audit = run_interception_audit_with(testbed, 0x4E9D, plan);
    let probe = run_root_probe_with(testbed, 0x4E9D, plan);
    let (down_rows, _) = run_downgrade_probe_with(testbed, 0x4E9D, plan);
    let (old_rows, _) = run_old_version_scan_with(testbed, 0x4E9D, plan);
    let survey = run_fingerprint_survey(testbed, 0x5075);
    let dataset = generate(testbed, 0x10AD);
    SweepFootprint {
        table5: tables::table5_downgrades(&down_rows),
        table6: tables::table6_old_versions(&old_rows),
        table7: tables::table7_interception(&audit),
        table9: tables::table9_rootstores(&probe),
        fingerprints: survey
            .by_device
            .iter()
            .map(|(d, fps)| (d.clone(), fps.len()))
            .collect(),
        audit_fault_stats: format!("{:?}", audit.fault_stats),
        audit_cache_stats: format!("{:?}", audit.verify_cache_stats),
        probe_fault_stats: format!("{:?}", probe.fault_stats),
        probe_cache_stats: format!("{:?}", probe.verify_cache_stats),
        dataset_digest: sha256(to_json(&dataset).as_bytes()),
        dataset_truncated: dataset.truncated,
    }
}

#[test]
fn one_worker_and_eight_workers_produce_identical_bytes() {
    let testbed = Testbed::global();

    std::env::set_var(THREADS_ENV, "1");
    let sequential = run_sweep(testbed);

    std::env::set_var(THREADS_ENV, "8");
    let parallel = run_sweep(testbed);
    std::env::remove_var(THREADS_ENV);

    assert_eq!(sequential, parallel);
    // The footprint carries real work, not empty strings.
    assert!(sequential.table7.contains("Zmodo Doorbell"));
    assert!(!sequential.fingerprints.is_empty());
    assert_ne!(sequential.dataset_digest, [0u8; 32]);
    // Chaos plan actually fired, so the FaultStats comparison above is
    // comparing non-trivial counters.
    assert_ne!(sequential.audit_fault_stats, format!("{:?}", iotls_repro::core::FaultStats::default()));
    assert_ne!(sequential.audit_cache_stats, "CacheStats { hits: 0, misses: 0 }");
}
