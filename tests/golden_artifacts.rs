//! Golden-snapshot suite: every exported paper artifact — Tables 1–9,
//! Figures 1–5, and the §5.1 summary statistics — serialized to
//! canonical JSON and pinned byte-for-byte against fixtures under
//! `tests/golden/`.
//!
//! A failure here means an artifact changed. If the change is
//! intentional (a renderer edit, a deliberate model change),
//! regenerate the fixtures and review the diff before committing:
//!
//! ```sh
//! IOTLS_BLESS=1 cargo test -q --offline --test golden_artifacts
//! git diff tests/golden/
//! ```
//!
//! Fixtures are canonical JSON (sorted behavior comes from the
//! renderers themselves being deterministic; the JSON encoder keeps
//! insertion order and emits no whitespace). Floats are serialized as
//! fixed-precision strings so the files stay byte-stable across
//! formatting changes.

use iotls_repro::analysis::{experiment_artifacts, figures, tables};
use iotls_repro::capture::json::Json;
use iotls_repro::capture::global_dataset;
use iotls_repro::core::{
    cipher_series, library_alert_matrix, passive_summary, revocation_summary, version_series,
    ExperimentCtx, ExperimentKind, Orchestrator, Report,
};
use iotls_repro::devices::Testbed;
use std::path::PathBuf;

/// Seed for the labeled application fingerprint database Figure 5
/// joins against (the experiment seeds themselves are canonical:
/// [`ExperimentKind::canonical_seed`]).
const FPDB_SEED: u64 = 0xDB;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.json"))
}

/// Compares (or, under `IOTLS_BLESS=1`, rewrites) one artifact's
/// fixture.
fn check(name: &str, artifact: Json) {
    let encoded = artifact.encode() + "\n";
    let path = fixture_path(name);
    if std::env::var("IOTLS_BLESS").is_ok_and(|v| v == "1") {
        std::fs::write(&path, &encoded)
            .unwrap_or_else(|e| panic!("bless {}: {e}", path.display()));
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing fixture {} — regenerate with IOTLS_BLESS=1 (see module docs)",
            path.display()
        )
    });
    assert_eq!(
        want, encoded,
        "artifact `{name}` drifted from its golden fixture; if intentional, \
         rebless with IOTLS_BLESS=1 and review the diff"
    );
}

/// Wraps a rendered table/figure in the canonical artifact envelope.
fn text_artifact(name: &str, text: String) -> Json {
    Json::Obj(vec![
        ("artifact".into(), Json::Str(name.into())),
        ("text".into(), Json::Str(text)),
    ])
}

fn str_arr(items: &[String]) -> Json {
    Json::Arr(items.iter().map(|s| Json::Str(s.clone())).collect())
}

#[test]
fn golden_static_tables() {
    check(
        "table1_roster",
        text_artifact("table1_roster", tables::table1_roster(Testbed::global())),
    );
    check(
        "table2_attacks",
        text_artifact("table2_attacks", tables::table2_attacks()),
    );
    check(
        "table3_platforms",
        text_artifact("table3_platforms", tables::table3_platforms()),
    );
    check(
        "table4_library_alerts",
        text_artifact(
            "table4_library_alerts",
            tables::table4_library_alerts(&library_alert_matrix()),
        ),
    );
}

#[test]
fn golden_experiment_registry() {
    // One orchestrator pass over the whole registry at the canonical
    // seeds covers every experiment-backed fixture: Tables 5, 6, 7, 9,
    // Figures 4 and 5, and the gateway drain snapshot. The audit
    // service backs no fixture but still runs, so a panic in any
    // engine fails this test.
    let testbed = Testbed::global();
    let ctx = ExperimentCtx::new(0);
    let runs = Orchestrator::new(testbed, &ctx).canonical_seeds().run_all();
    assert_eq!(runs.len(), ExperimentKind::ALL.len());
    let mut checked = 0;
    for run in &runs {
        let report = run
            .result
            .as_ref()
            .unwrap_or_else(|e| panic!("{}: {e}", run.kind.name()));
        let rendered = experiment_artifacts(testbed, report, FPDB_SEED);
        let names: Vec<&str> = rendered.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, report.fixtures(), "{}", run.kind.name());
        for (name, text) in rendered {
            check(name, text_artifact(name, text));
            checked += 1;
        }
    }
    assert_eq!(checked, 7, "fixture coverage shrank");
}

#[test]
fn golden_table8_revocation() {
    let ds = global_dataset();
    check(
        "table8_revocation",
        text_artifact(
            "table8_revocation",
            tables::table8_revocation(&revocation_summary(ds), &ds.device_names()),
        ),
    );
}

#[test]
fn golden_longitudinal_figures() {
    let ds = global_dataset();
    let summary = passive_summary(ds);
    let axis = figures::month_axis(ds);
    check(
        "fig1_versions",
        text_artifact(
            "fig1_versions",
            figures::fig1_versions(&axis, &version_series(ds), &summary.fig1_devices),
        ),
    );
    check(
        "fig2_insecure",
        text_artifact("fig2_insecure", figures::fig2_insecure(&axis, &cipher_series(ds))),
    );
    check(
        "fig3_strong",
        text_artifact("fig3_strong", figures::fig3_strong(&axis, &cipher_series(ds))),
    );
}

#[test]
fn golden_section51_summary() {
    let s = passive_summary(global_dataset());
    check(
        "section51_summary",
        Json::Obj(vec![
            ("artifact".into(), Json::Str("section51_summary".into())),
            (
                "tls12_exclusive_devices".into(),
                str_arr(&s.tls12_exclusive_devices),
            ),
            ("fig1_devices".into(), str_arr(&s.fig1_devices)),
            ("null_anon_seen".into(), Json::Bool(s.null_anon_seen)),
            (
                "devices_advertising_insecure".into(),
                str_arr(&s.devices_advertising_insecure),
            ),
            (
                "devices_establishing_insecure".into(),
                str_arr(&s.devices_establishing_insecure),
            ),
            (
                "devices_advertising_fs".into(),
                str_arr(&s.devices_advertising_fs),
            ),
            (
                "devices_mostly_without_fs".into(),
                str_arr(&s.devices_mostly_without_fs),
            ),
            (
                "pct_connections_tls13".into(),
                Json::Str(format!("{:.4}", s.pct_connections_tls13)),
            ),
            (
                "pct_connections_rc4".into(),
                Json::Str(format!("{:.4}", s.pct_connections_rc4)),
            ),
        ]),
    );
}
