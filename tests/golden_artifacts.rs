//! Golden-snapshot suite: every exported paper artifact — Tables 1–9,
//! Figures 1–5, and the §5.1 summary statistics — serialized to
//! canonical JSON and pinned byte-for-byte against fixtures under
//! `tests/golden/`.
//!
//! A failure here means an artifact changed. If the change is
//! intentional (a renderer edit, a deliberate model change),
//! regenerate the fixtures and review the diff before committing:
//!
//! ```sh
//! IOTLS_BLESS=1 cargo test -q --offline --test golden_artifacts
//! git diff tests/golden/
//! ```
//!
//! Fixtures are canonical JSON (sorted behavior comes from the
//! renderers themselves being deterministic; the JSON encoder keeps
//! insertion order and emits no whitespace). Floats are serialized as
//! fixed-precision strings so the files stay byte-stable across
//! formatting changes.

use iotls_repro::analysis::{figures, tables, FingerprintDb, SharingGraph};
use iotls_repro::capture::json::Json;
use iotls_repro::capture::global_dataset;
use iotls_repro::core::{
    cipher_series, library_alert_matrix, passive_summary, revocation_summary,
    run_downgrade_probe, run_fingerprint_survey, run_interception_audit, run_old_version_scan,
    run_root_probe, version_series,
};
use iotls_repro::devices::Testbed;
use std::path::PathBuf;

/// The canonical seeds the examples and module tests pin their
/// paper-number assertions to; the fixtures are blessed from the same
/// runs so one source of truth covers both.
const AUDIT_SEED: u64 = 0x7AB1E7;
const ROOTPROBE_SEED: u64 = 0x6007;
const DOWNGRADE_SEED: u64 = 0xD0E6;
const OLDVERSION_SEED: u64 = 0x01DE;
const FINGERPRINT_SEED: u64 = 0x5075;
const FPDB_SEED: u64 = 0xDB;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.json"))
}

/// Compares (or, under `IOTLS_BLESS=1`, rewrites) one artifact's
/// fixture.
fn check(name: &str, artifact: Json) {
    let encoded = artifact.encode() + "\n";
    let path = fixture_path(name);
    if std::env::var("IOTLS_BLESS").is_ok_and(|v| v == "1") {
        std::fs::write(&path, &encoded)
            .unwrap_or_else(|e| panic!("bless {}: {e}", path.display()));
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing fixture {} — regenerate with IOTLS_BLESS=1 (see module docs)",
            path.display()
        )
    });
    assert_eq!(
        want, encoded,
        "artifact `{name}` drifted from its golden fixture; if intentional, \
         rebless with IOTLS_BLESS=1 and review the diff"
    );
}

/// Wraps a rendered table/figure in the canonical artifact envelope.
fn text_artifact(name: &str, text: String) -> Json {
    Json::Obj(vec![
        ("artifact".into(), Json::Str(name.into())),
        ("text".into(), Json::Str(text)),
    ])
}

fn str_arr(items: &[String]) -> Json {
    Json::Arr(items.iter().map(|s| Json::Str(s.clone())).collect())
}

#[test]
fn golden_static_tables() {
    check(
        "table1_roster",
        text_artifact("table1_roster", tables::table1_roster(Testbed::global())),
    );
    check(
        "table2_attacks",
        text_artifact("table2_attacks", tables::table2_attacks()),
    );
    check(
        "table3_platforms",
        text_artifact("table3_platforms", tables::table3_platforms()),
    );
    check(
        "table4_library_alerts",
        text_artifact(
            "table4_library_alerts",
            tables::table4_library_alerts(&library_alert_matrix()),
        ),
    );
}

#[test]
fn golden_table5_downgrades() {
    let rows = run_downgrade_probe(Testbed::global(), DOWNGRADE_SEED);
    check(
        "table5_downgrades",
        text_artifact("table5_downgrades", tables::table5_downgrades(&rows)),
    );
}

#[test]
fn golden_table6_old_versions() {
    let rows = run_old_version_scan(Testbed::global(), OLDVERSION_SEED);
    check(
        "table6_old_versions",
        text_artifact("table6_old_versions", tables::table6_old_versions(&rows)),
    );
}

#[test]
fn golden_table7_interception() {
    let report = run_interception_audit(Testbed::global(), AUDIT_SEED);
    check(
        "table7_interception",
        text_artifact("table7_interception", tables::table7_interception(&report)),
    );
}

#[test]
fn golden_table8_revocation() {
    let ds = global_dataset();
    check(
        "table8_revocation",
        text_artifact(
            "table8_revocation",
            tables::table8_revocation(&revocation_summary(ds), &ds.device_names()),
        ),
    );
}

#[test]
fn golden_table9_rootstores_and_fig4() {
    let testbed = Testbed::global();
    let report = run_root_probe(testbed, ROOTPROBE_SEED);
    check(
        "table9_rootstores",
        text_artifact("table9_rootstores", tables::table9_rootstores(&report)),
    );
    check(
        "fig4_staleness",
        text_artifact("fig4_staleness", figures::fig4_staleness(testbed.pki, &report)),
    );
}

#[test]
fn golden_longitudinal_figures() {
    let ds = global_dataset();
    let summary = passive_summary(ds);
    let axis = figures::month_axis(ds);
    check(
        "fig1_versions",
        text_artifact(
            "fig1_versions",
            figures::fig1_versions(&axis, &version_series(ds), &summary.fig1_devices),
        ),
    );
    check(
        "fig2_insecure",
        text_artifact("fig2_insecure", figures::fig2_insecure(&axis, &cipher_series(ds))),
    );
    check(
        "fig3_strong",
        text_artifact("fig3_strong", figures::fig3_strong(&axis, &cipher_series(ds))),
    );
}

#[test]
fn golden_fig5_sharing_graph() {
    let survey = run_fingerprint_survey(Testbed::global(), FINGERPRINT_SEED);
    let graph = SharingGraph::build(&survey, &FingerprintDb::build(FPDB_SEED));
    check(
        "fig5_sharing_graph",
        text_artifact("fig5_sharing_graph", graph.render()),
    );
}

#[test]
fn golden_section51_summary() {
    let s = passive_summary(global_dataset());
    check(
        "section51_summary",
        Json::Obj(vec![
            ("artifact".into(), Json::Str("section51_summary".into())),
            (
                "tls12_exclusive_devices".into(),
                str_arr(&s.tls12_exclusive_devices),
            ),
            ("fig1_devices".into(), str_arr(&s.fig1_devices)),
            ("null_anon_seen".into(), Json::Bool(s.null_anon_seen)),
            (
                "devices_advertising_insecure".into(),
                str_arr(&s.devices_advertising_insecure),
            ),
            (
                "devices_establishing_insecure".into(),
                str_arr(&s.devices_establishing_insecure),
            ),
            (
                "devices_advertising_fs".into(),
                str_arr(&s.devices_advertising_fs),
            ),
            (
                "devices_mostly_without_fs".into(),
                str_arr(&s.devices_mostly_without_fs),
            ),
            (
                "pct_connections_tls13".into(),
                Json::Str(format!("{:.4}", s.pct_connections_tls13)),
            ),
            (
                "pct_connections_rc4".into(),
                Json::Str(format!("{:.4}", s.pct_connections_rc4)),
            ),
        ]),
    );
}
