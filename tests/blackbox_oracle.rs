//! The measurement system is blackbox; these tests compare what it
//! *measured* against the hidden ground truth, as an oracle — every
//! conclusive claim the prober makes must be correct.

use iotls_repro::core::{run_interception_audit, run_root_probe, ProbeVerdict};
use iotls_repro::devices::Testbed;
use iotls_repro::x509::ValidationPolicy;

#[test]
fn interception_verdicts_agree_with_validation_policies() {
    let testbed = Testbed::global();
    let audit = run_interception_audit(testbed, 0x0AC1E);
    for row in &audit.rows {
        let device = testbed.device(&row.device);
        let has_quirk = device.spec.disable_validation_after_failures.is_some();
        let truth_vulnerable = has_quirk
            || device.spec.instances_now().iter().enumerate().any(|(i, inst)| {
                let used = device.spec.destinations.iter().any(|d| d.instance == i);
                used && (inst.validation.is_no_validation() || !inst.validation.check_hostname)
            });
        assert_eq!(
            row.is_vulnerable(),
            truth_vulnerable,
            "{}: measured {} vs truth {}",
            row.device,
            row.is_vulnerable(),
            truth_vulnerable
        );
    }
}

#[test]
fn no_validation_findings_are_exactly_the_no_validation_devices() {
    let testbed = Testbed::global();
    let audit = run_interception_audit(testbed, 0x0AC1E);
    for row in &audit.rows {
        let device = testbed.device(&row.device);
        let truth = device.spec.disable_validation_after_failures.is_some()
            || device.spec.instances_now().iter().enumerate().any(|(i, inst)| {
                let used = device.spec.destinations.iter().any(|d| d.instance == i);
                used && inst.validation.is_no_validation()
            });
        assert_eq!(row.no_validation, truth, "{}", row.device);
    }
}

#[test]
fn probe_has_no_false_verdicts() {
    let testbed = Testbed::global();
    let probe = run_root_probe(testbed, 0x0AC1E);
    let mut conclusive = 0usize;
    for row in probe.amenable_rows() {
        let truth = &testbed.device(&row.device).truth;
        for (id, verdict) in row.common.iter().chain(row.deprecated.iter()) {
            let in_store = truth.common_present.contains(id)
                || truth.deprecated_present.contains(id);
            match verdict {
                ProbeVerdict::Present => {
                    conclusive += 1;
                    assert!(in_store, "{} false positive on {:?}", row.device, id);
                }
                ProbeVerdict::Absent => {
                    conclusive += 1;
                    assert!(!in_store, "{} false negative on {:?}", row.device, id);
                }
                ProbeVerdict::Inconclusive => {}
            }
        }
    }
    // Sanity: the probe actually decided something (8 devices × most
    // of 209 certs).
    assert!(conclusive > 1_200, "only {conclusive} conclusive verdicts");
}

#[test]
fn amenability_matches_first_instance_library() {
    let testbed = Testbed::global();
    let probe = run_root_probe(testbed, 0x0AC1E);
    for row in &probe.rows {
        let device = testbed.device(&row.device);
        let first_instance_idx = device
            .spec
            .boot_destinations()
            .first()
            .map(|d| d.instance)
            .unwrap_or(0);
        let inst = &device.spec.instances_now()[first_instance_idx];
        let truth_amenable =
            inst.library.is_amenable_to_root_probe() && !inst.validation.is_no_validation();
        assert_eq!(
            row.amenable, truth_amenable,
            "{}: measured {} vs truth {}",
            row.device, row.amenable, truth_amenable
        );
    }
}

#[test]
fn legitimate_infrastructure_validates_everywhere() {
    // The testbed invariant behind everything: every device accepts
    // its own cloud with strict validation (so any interception
    // failure is the attack's doing, not a broken PKI).
    let testbed = Testbed::global();
    let now = iotls_repro::rootstore::probe_time();
    for device in &testbed.devices {
        for dest in &device.spec.destinations {
            let ep = testbed.cloud().endpoint(&dest.hostname).unwrap();
            assert_eq!(
                iotls_repro::x509::validate_chain(
                    &ep.chain,
                    &device.truth.store,
                    &dest.hostname,
                    now,
                    &ValidationPolicy::strict(),
                ),
                Ok(()),
                "{} -> {}",
                device.spec.name,
                dest.hostname
            );
        }
    }
}
