//! The study timeline as discrete events.
//!
//! The paper's study is a sequence of real-world events — devices
//! joining the testbed, monthly capture rolls, firmware updates,
//! devices breaking. This module materializes that schedule through
//! the simulator's [`EventQueue`], and the workload generator drives
//! capture from it (rather than from ad-hoc nested loops), keeping
//! the simulation genuinely event-driven.

use iotls_devices::Testbed;
use iotls_simnet::{EventQueue, SimClock};
use iotls_x509::{Month, Timestamp};

/// One event in the study.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StudyEvent {
    /// A device starts generating traffic.
    DeviceJoined {
        /// Device name.
        device: String,
    },
    /// One device-month of passive capture closes (the analyzer's
    /// monthly aggregation boundary).
    CaptureRoll {
        /// Device name.
        device: String,
        /// The month that just completed.
        month: Month,
    },
    /// A firmware update changes the device's TLS instances (a phase
    /// boundary in the spec).
    FirmwareUpdate {
        /// Device name.
        device: String,
        /// First month of the new configuration.
        month: Month,
    },
    /// The device breaks / leaves the study.
    DeviceRetired {
        /// Device name.
        device: String,
    },
}

/// Builds the full chronological study timeline for a testbed.
pub fn build_timeline(testbed: &Testbed) -> Vec<(Timestamp, StudyEvent)> {
    let mut queue: EventQueue<StudyEvent> = EventQueue::new();
    for device in &testbed.devices {
        let spec = &device.spec;
        queue.schedule(
            spec.passive_from.start(),
            StudyEvent::DeviceJoined {
                device: spec.name.clone(),
            },
        );
        for month in spec.passive_from.through(spec.passive_to) {
            // The roll fires at month end.
            queue.schedule(
                month.end().plus_secs(-1),
                StudyEvent::CaptureRoll {
                    device: spec.name.clone(),
                    month,
                },
            );
        }
        for phase in spec.phases.iter().skip(1) {
            if phase.start >= spec.passive_from && phase.start <= spec.passive_to {
                queue.schedule(
                    phase.start.start(),
                    StudyEvent::FirmwareUpdate {
                        device: spec.name.clone(),
                        month: phase.start,
                    },
                );
            }
        }
        queue.schedule(
            spec.passive_to.end(),
            StudyEvent::DeviceRetired {
                device: spec.name.clone(),
            },
        );
    }

    // Drain in causal order, advancing a virtual clock as we go (the
    // clock enforces monotonicity; a backwards event would panic).
    let mut clock = SimClock::new(Timestamp(i64::MIN / 2));
    let mut out = Vec::with_capacity(queue.len());
    while let Some((at, event)) = queue.pop_next() {
        clock.advance_to(at);
        out.push((at, event));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timeline() -> Vec<(Timestamp, StudyEvent)> {
        build_timeline(Testbed::global())
    }

    #[test]
    fn timeline_is_chronological() {
        let t = timeline();
        for w in t.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        assert!(!t.is_empty());
    }

    #[test]
    fn every_device_joins_and_retires_once() {
        let t = timeline();
        for name in ["Wemo Plug", "Samsung TV", "Google Home Mini"] {
            let joins = t
                .iter()
                .filter(|(_, e)| matches!(e, StudyEvent::DeviceJoined { device } if device == name))
                .count();
            let retires = t
                .iter()
                .filter(
                    |(_, e)| matches!(e, StudyEvent::DeviceRetired { device } if device == name),
                )
                .count();
            assert_eq!((joins, retires), (1, 1), "{name}");
        }
    }

    #[test]
    fn capture_rolls_cover_every_active_month() {
        let t = timeline();
        let tb = Testbed::global();
        for device in &tb.devices {
            let expected =
                device.spec.passive_from.months_until(device.spec.passive_to) + 1;
            let rolls = t
                .iter()
                .filter(|(_, e)| {
                    matches!(e, StudyEvent::CaptureRoll { device: d, .. } if *d == device.spec.name)
                })
                .count();
            assert_eq!(rolls as i32, expected, "{}", device.spec.name);
        }
    }

    #[test]
    fn firmware_updates_match_phase_boundaries() {
        let t = timeline();
        // Google Home Mini updates once (TLS 1.3 in 5/2019).
        let ghm: Vec<&Month> = t
            .iter()
            .filter_map(|(_, e)| match e {
                StudyEvent::FirmwareUpdate { device, month } if device == "Google Home Mini" => {
                    Some(month)
                }
                _ => None,
            })
            .collect();
        assert_eq!(ghm, vec![&Month::new(2019, 5)]);
        // Apple TV updates three times (10/2018, 3/2019, 5/2019).
        let atv = t
            .iter()
            .filter(|(_, e)| {
                matches!(e, StudyEvent::FirmwareUpdate { device, .. } if device == "Apple TV")
            })
            .count();
        assert_eq!(atv, 3);
    }

    #[test]
    fn rolls_fall_inside_their_month() {
        for (at, e) in timeline() {
            if let StudyEvent::CaptureRoll { month, .. } = e {
                assert!(month.start() <= at && at < month.end());
            }
        }
    }
}
