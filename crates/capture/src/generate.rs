//! The workload generator: replays the 27-month study schedule.
//!
//! The schedule itself comes from the event-driven study timeline
//! ([`crate::timeline`]): the generator pops `CaptureRoll` events in
//! causal order, and for each device-month drives one *real*
//! byte-level handshake per destination between the device's TLS
//! instance (as configured in that month's phase) and the
//! destination's legitimate server, tapped by the passive gateway —
//! then weights the resulting observation by the destination's
//! (jittered) monthly connection rate. Identical (device,
//! destination, phase) combinations reuse the driven handshake, which
//! is metadata-identical, keeping the full two-year dataset fast to
//! generate.
//!
//! Output is columnar from the start: each parallel lane interns its
//! strings and fingerprints locally and appends rows to a lane-local
//! [`DatasetBuilder`]; the sequential merge walks events in timeline
//! order, remaps lane symbols into the shared tables, and streams
//! sealed [`ObsChunk`]s to the caller's sink.
//! [`CaptureCtx::generate_streamed`]
//! can additionally split each weighted row into many physical rows
//! (`max_count_per_row`), which is how the `passive_10m` bench
//! materializes a paper-scale (≥10M-connection) row stream from the
//! seed schedule while holding only one open chunk in memory.

use crate::columnar::{
    ChunkWriter, ColumnarDataset, ColumnarStats, DatasetBuilder, ObsChunk, RevRow, RowView,
    CHUNK_ROWS,
};
use iotls_obs::{Registry, SharedRegistry};
use crate::dataset::{PassiveDataset, RevocationKind};
use crate::intern::{DigestInterner, Interner, Symbol};
use crate::timeline::{build_timeline, StudyEvent};
use iotls_crypto::drbg::Drbg;
use iotls_devices::{DeviceSetup, Testbed};
use iotls_simnet::{
    drive_session_reusing, record_session_metrics, DriveScratch, FaultPlan, GatewayTap,
    LinkConditioner, SessionFaults, SessionParams, SessionResult, TlsObservation,
};
use iotls_tls::client::ClientConnection;
use iotls_tls::server::ServerConnection;
use iotls_x509::Month;
use std::collections::HashMap;

/// How many times a faulted capture drive is re-driven before the
/// generator gives up and keeps whatever the tap managed to see.
const CAPTURE_RETRIES: usize = 6;

/// Everything a generation run needs beyond the testbed: the seed,
/// the fault schedule, the worker-count policy, and a metrics handle.
///
/// The context replaces the old `generate_with_faults` /
/// `generate_streamed_metered` variant matrix: construct one
/// [`CaptureCtx`], set the knobs that differ from the defaults, and
/// call [`CaptureCtx::generate`] (or the columnar/streamed shapes).
/// The thread count is resolved once at construction — from
/// `IOTLS_THREADS` via [`iotls_simnet::worker_count`] — instead of
/// deep inside every fan-out.
#[derive(Debug, Clone)]
pub struct CaptureCtx {
    seed: u64,
    plan: FaultPlan,
    threads: usize,
    metrics: SharedRegistry,
}

impl CaptureCtx {
    /// A context with default knobs: no faults, env-resolved worker
    /// count, no-op metrics.
    pub fn new(seed: u64) -> CaptureCtx {
        CaptureCtx {
            seed,
            plan: FaultPlan::none(),
            threads: iotls_simnet::worker_count(),
            metrics: SharedRegistry::noop(),
        }
    }

    /// Replaces the fault schedule.
    pub fn with_plan(mut self, plan: FaultPlan) -> CaptureCtx {
        self.plan = plan;
        self
    }

    /// Replaces the worker-count policy (`0`/`1` mean inline).
    pub fn with_threads(mut self, threads: usize) -> CaptureCtx {
        self.threads = threads;
        self
    }

    /// Replaces the metrics handle.
    pub fn with_metrics(mut self, metrics: SharedRegistry) -> CaptureCtx {
        self.metrics = metrics;
        self
    }

    /// The generation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The injected-fault schedule.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// The resolved worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The metrics handle recordings merge into.
    pub fn metrics(&self) -> &SharedRegistry {
        &self.metrics
    }

    /// Generates the row-oriented passive dataset.
    pub fn generate(&self, testbed: &Testbed) -> PassiveDataset {
        self.generate_columnar(testbed).to_rows()
    }

    /// Generates the columnar passive dataset, keeping every chunk in
    /// memory.
    pub fn generate_columnar(&self, testbed: &Testbed) -> ColumnarDataset {
        let mut chunks = Vec::new();
        let mut ds = self.generate_streamed(testbed, u64::MAX, &mut |c| chunks.push(c));
        ds.chunks = chunks;
        ds
    }

    /// Generates the dataset as a stream of sealed columnar chunks in
    /// bounded memory.
    ///
    /// Every weighted row is split into
    /// `count.div_ceil(max_count_per_row)` physical rows whose counts
    /// sum exactly to the original (`u64::MAX` reproduces the seed
    /// row stream verbatim); sealed chunks are handed to `sink` as
    /// they fill, and the returned dataset carries the intern tables,
    /// revocation flows, and truncation tally but **no chunks** — the
    /// sink saw them all. Faulted drives are retried and truncated
    /// captures counted, so the output is byte-identical to a
    /// fault-free run of the same seed.
    pub fn generate_streamed(
        &self,
        testbed: &Testbed,
        max_count_per_row: u64,
        sink: &mut dyn FnMut(ObsChunk),
    ) -> ColumnarDataset {
        self.generate_folded(testbed, max_count_per_row, &|c| c, &mut |c| sink(c))
    }

    /// [`generate_streamed`](Self::generate_streamed) with a
    /// chunk-fold stage fused into the parallel builders: `fold` runs
    /// **on the worker that sealed the chunk** (so per-chunk analysis
    /// parallelizes with construction), and the folded values reach
    /// `emit` sequentially in chunk order. At most
    /// `threads` folded-but-unemitted chunks are in flight, keeping a
    /// streaming consumer's memory bounded. `generate_streamed` is
    /// the identity-fold special case.
    pub fn generate_folded<A: Send>(
        &self,
        testbed: &Testbed,
        max_count_per_row: u64,
        fold: &(dyn Fn(ObsChunk) -> A + Sync),
        emit: &mut dyn FnMut(A),
    ) -> ColumnarDataset {
        let mut local = Registry::new();
        let ds = streamed(self, testbed, max_count_per_row, fold, emit, &mut local);
        self.metrics.merge(&local);
        ds
    }
}

/// Generates the passive dataset for the whole testbed, driven by
/// the event timeline. Default-knob convenience for
/// [`CaptureCtx::generate`].
pub fn generate(testbed: &Testbed, seed: u64) -> PassiveDataset {
    CaptureCtx::new(seed).generate(testbed)
}

/// Generates the columnar passive dataset (no faults). Default-knob
/// convenience for [`CaptureCtx::generate_columnar`].
pub fn generate_columnar(testbed: &Testbed, seed: u64) -> ColumnarDataset {
    CaptureCtx::new(seed).generate_columnar(testbed)
}

/// One capture roll's output, as ranges into its lane's rows/flows.
struct EventOut {
    idx: usize,
    rows: (u32, u32),
    flows: (u32, u32),
    truncated: u64,
}

/// Everything one per-device lane produced: a lane-local columnar
/// dataset, per-event ranges for the timeline-order merge, and a
/// lane-local metrics shard (merged into the caller's registry in
/// roster order, so the totals are thread-count independent).
struct LaneOut {
    ds: ColumnarDataset,
    events: Vec<EventOut>,
    obs: Registry,
}

/// One weighted merged row, remapped into the shared tables and
/// pinned to its global expanded-row offset — the unit of work for
/// the parallel chunk builders of phase 2. The row's `count` field is
/// a placeholder; physical row `j` of the task carries
/// `base + (j < rem) as u64` so the splits sum exactly to the
/// weighted count.
struct Task<'a> {
    /// Global expanded-row offset of the task's first physical row.
    start: u64,
    /// Physical rows the task expands into (≥ 1).
    n: u64,
    /// Per-row count floor.
    base: u64,
    /// How many leading rows get `base + 1`.
    rem: u64,
    /// The remapped row (borrowing its lane's pools).
    row: RowView<'a>,
}

/// Lazily-built symbol translation from one lane's tables into the
/// shared output tables.
struct Remap {
    strings: Vec<u32>,
    fps: Vec<u32>,
}

const UNMAPPED: u32 = u32::MAX;

impl Remap {
    fn for_lane(lane: &LaneOut) -> Remap {
        Remap {
            strings: vec![UNMAPPED; lane.ds.strings.len()],
            fps: vec![UNMAPPED; lane.ds.fps.len()],
        }
    }

    fn sym(&mut self, from: &Interner, to: &mut Interner, s: Symbol) -> Symbol {
        let slot = &mut self.strings[s.index()];
        if *slot == UNMAPPED {
            *slot = to.intern(from.resolve(s)).0;
        }
        Symbol(*slot)
    }

    fn fp(&mut self, from: &DigestInterner, to: &mut DigestInterner, id: u32) -> u32 {
        let slot = &mut self.fps[id as usize];
        if *slot == UNMAPPED {
            *slot = to.intern(from.resolve(id));
        }
        *slot
    }
}

/// Looks up row `i` of a lane's chunk sequence.
fn lane_row(chunks: &[ObsChunk], mut i: usize) -> crate::columnar::RawRow<'_> {
    for c in chunks {
        if i < c.len() {
            return c.row(i);
        }
        i -= c.len();
    }
    unreachable!("row index out of lane range")
}

/// The streamed generator behind [`CaptureCtx::generate_streamed`].
///
/// The conditioner sits between the endpoints and the gateway tap, so
/// a session cut before a parseable ClientHello yields no observation;
/// the generator *counts* those truncated captures (rather than
/// silently dropping them, as a naive analyzer would) and re-drives
/// the faulted session — with the same handshake randomness but a
/// fresh fault draw — until a clean capture lands. DNS faults are an
/// active-lab concern; the generator only exercises link faults.
///
/// Every weighted row is split into `count.div_ceil(max_count_per_row)`
/// physical rows whose counts sum exactly to the original, so
/// `u64::MAX` reproduces the seed row stream verbatim while small
/// values materialize a paper-scale row volume. Sealed chunks are
/// handed to `sink` as they fill; the returned dataset carries the
/// intern tables, revocation flows, and truncation tally but **no
/// chunks** — the sink saw them all.
///
/// Metrics: each lane records its driven sessions (`sim.*`) and
/// builder counters into a lane-local [`Registry`] shard; shards
/// merge into `reg` in roster order, then the merge phase adds
/// `capture.*` counters (rows weighted/expanded, chunks streamed,
/// pool dedup, truncations) and intern-table-size gauges — all
/// byte-identical at any worker count.
///
/// The merge itself runs in two phases. Phase 1 walks the ordered
/// events **sequentially**, performing every intern-table remap in
/// timeline order (so the shared tables are byte-identical to the old
/// one-writer merge) and recording each weighted row as a [`Task`]
/// pinned to its global expanded-row offset. Phase 2 builds the
/// sealed chunks **in parallel**: chunk `k` covers the fixed global
/// row range `[k·CHUNK_ROWS, (k+1)·CHUNK_ROWS)`, and because
/// [`ChunkWriter::take`] resets the dedup maps at every seal, a
/// chunk's bytes and stats depend only on its own rows — per-chunk
/// construction with a fresh writer is byte- and counter-identical to
/// one writer pushing row by row, at any worker count.
fn streamed<A: Send>(
    ctx: &CaptureCtx,
    testbed: &Testbed,
    max_count_per_row: u64,
    fold: &(dyn Fn(ObsChunk) -> A + Sync),
    emit: &mut dyn FnMut(A),
    reg: &mut Registry,
) -> ColumnarDataset {
    let plan = ctx.plan;
    let root_rng = Drbg::from_seed(ctx.seed);

    // Split the timeline's capture rolls into per-device lanes. Every
    // RNG draw is forked per (device, month) and the handshake cache is
    // keyed per device, so lanes are independent; each lane walks its
    // own months in timeline order, and the per-event outputs are
    // re-merged by global event index below — byte-identical to the
    // sequential interleaving at any worker count.
    let mut lanes: Vec<(String, Vec<(usize, Month)>)> = Vec::new();
    let mut lane_of: HashMap<String, usize> = HashMap::new();
    for (idx, (_at, event)) in build_timeline(testbed).into_iter().enumerate() {
        let StudyEvent::CaptureRoll { device, month } = event else {
            continue; // joins/retirements/updates need no capture action
        };
        let lane = *lane_of.entry(device.clone()).or_insert_with(|| {
            lanes.push((device.clone(), Vec::new()));
            lanes.len() - 1
        });
        lanes[lane].1.push((idx, month));
    }

    let lane_outs = iotls_simnet::ordered_map_with(ctx.threads, lanes, |(device_name, months)| {
        let device = testbed.device(&device_name);
        // Cache of driven handshakes keyed by (dest index, phase
        // start) — the observation metadata is identical within a
        // phase. One reusable tap serves every drive in the lane.
        let mut cache: HashMap<(usize, Month), Option<TlsObservation>> = HashMap::new();
        let mut tap = GatewayTap::new();
        let mut scratch = DriveScratch::new();
        let mut obs_reg = Registry::new();
        let mut b = DatasetBuilder::new();
        let mut chunks = Vec::new();
        let mut row_n = 0u32;
        let mut events = Vec::with_capacity(months.len());
        for (idx, month) in months {
            let mut truncated = 0u64;
            let row_start = row_n;
            let flow_start = b.revocation_flows.len() as u32;
            let mut rng = root_rng.fork(&format!("capture/{}/{}", device.spec.name, month));
            let phase_start = device
                .spec
                .phases
                .iter()
                .filter(|p| p.start <= month)
                .map(|p| p.start)
                .next_back()
                .unwrap_or(device.spec.phases[0].start);
            for (dest_idx, dest) in device.spec.destinations.iter().enumerate() {
                let observation = cache.entry((dest_idx, phase_start)).or_insert_with(|| {
                    let mut tries = 0;
                    loop {
                        let fault_key = format!(
                            "capture/{}/{}/{}/try{}",
                            device.spec.name,
                            device.spec.destinations[dest_idx].hostname,
                            month,
                            tries
                        );
                        let faults = plan.session_faults(&fault_key);
                        let result = drive_one(
                            testbed, device, dest_idx, month, &mut rng, &faults, &mut tap,
                            &mut scratch,
                        );
                        record_session_metrics(&mut obs_reg, &result);
                        if result.observation.is_none() {
                            // Cut before a parseable ClientHello:
                            // count it, don't just drop it.
                            truncated += 1;
                        }
                        if result.tainted() && tries + 1 < CAPTURE_RETRIES {
                            obs_reg.inc("capture.captures.retried");
                            tries += 1;
                            continue;
                        }
                        break result.observation;
                    }
                });
                let Some(obs) = observation else {
                    continue;
                };
                let base_rate = match dest.boost {
                    Some((from, to, boosted)) if from <= month && month <= to => boosted,
                    _ => dest.monthly_connections,
                };
                // ±20% deterministic jitter so months differ.
                let jitter = 80 + rng.below(41); // 80..=120 percent
                let count = (base_rate as u64 * jitter) / 100;
                if count == 0 {
                    continue;
                }
                // Stamp the month (mid-month noon keeps it inside the
                // bucket regardless of month length).
                let mut stamped = obs.clone();
                stamped.time = month.start().plus_days(14).plus_secs(12 * 3600);
                b.push_obs(&stamped, count, &mut |c| chunks.push(c));
                row_n += 1;
            }

            // Revocation endpoint flows (Table 8's CRL/OCSP columns).
            if device.spec.revocation.crl {
                let dev = b.strings.intern(&device.spec.name);
                let url = b.strings.intern("http://crl.simtrust.example/latest.crl");
                b.revocation_flows.push(RevRow {
                    time: month.start().plus_days(3).0,
                    device: dev,
                    kind: RevocationKind::CrlFetch,
                    url,
                    count: 2 + rng.below(5),
                });
            }
            if device.spec.revocation.ocsp {
                let dev = b.strings.intern(&device.spec.name);
                let url = b.strings.intern("http://ocsp.simtrust.example");
                b.revocation_flows.push(RevRow {
                    time: month.start().plus_days(5).0,
                    device: dev,
                    kind: RevocationKind::OcspQuery,
                    url,
                    count: 10 + rng.below(30),
                });
            }
            events.push(EventOut {
                idx,
                rows: (row_start, row_n),
                flows: (flow_start, b.revocation_flows.len() as u32),
                truncated,
            });
        }
        b.flush(&mut |c| chunks.push(c));
        b.stats().export(&mut obs_reg, "capture.lane");
        LaneOut {
            ds: b.into_dataset(chunks),
            events,
            obs: obs_reg,
        }
    });
    for lane in &lane_outs {
        reg.merge(&lane.obs);
    }

    // Phase 1 — sequential remap in global timeline order: lane
    // symbols translate into the shared tables (every intern call in
    // the exact order the one-writer merge made them), and each
    // weighted row becomes a `Task` pinned to its global
    // expanded-row offset.
    let mut remaps: Vec<Remap> = lane_outs.iter().map(Remap::for_lane).collect();
    let mut ordered: Vec<(usize, &EventOut)> = lane_outs
        .iter()
        .enumerate()
        .flat_map(|(lane_i, lane)| lane.events.iter().map(move |e| (lane_i, e)))
        .collect();
    ordered.sort_by_key(|(_, e)| e.idx);

    let mut out = DatasetBuilder::new();
    let mut tasks: Vec<Task<'_>> = Vec::new();
    let mut total_rows = 0u64;
    for (lane_i, ev) in ordered {
        let lane = &lane_outs[lane_i];
        let remap = &mut remaps[lane_i];
        for i in ev.rows.0..ev.rows.1 {
            let raw = lane_row(&lane.ds.chunks, i as usize);
            let row = RowView {
                time: raw.time(),
                device: remap.sym(&lane.ds.strings, &mut out.strings, raw.device()),
                destination: remap.sym(&lane.ds.strings, &mut out.strings, raw.destination()),
                sni: raw
                    .sni()
                    .map(|s| remap.sym(&lane.ds.strings, &mut out.strings, s)),
                fingerprint: remap.fp(&lane.ds.fps, &mut out.fps, raw.fingerprint_id()),
                advertised_wire: raw.advertised_wire(),
                max_advertised_wire: raw.max_advertised_wire(),
                suites: raw.suites(),
                negotiated_version_wire: raw.negotiated_version_wire(),
                negotiated_suite: raw.negotiated_suite(),
                leaf_issuer: raw
                    .leaf_issuer()
                    .map(|s| remap.sym(&lane.ds.strings, &mut out.strings, s)),
                alerts_c2s: raw.alerts_c2s(),
                alerts_s2c: raw.alerts_s2c(),
                requested_ocsp: raw.requested_ocsp(),
                ocsp_stapled: raw.ocsp_stapled(),
                established: raw.established(),
                count: 0, // per-split count set by the chunk builders
            };
            // Split into n physical rows whose counts sum exactly to
            // the weighted count.
            let count = raw.count();
            let n = count.div_ceil(max_count_per_row.max(1));
            let (base, rem) = (count / n, count % n);
            reg.inc("capture.rows.weighted");
            reg.add("capture.rows.expanded", n);
            reg.add("capture.connections", count);
            tasks.push(Task {
                start: total_rows,
                n,
                base,
                rem,
                row,
            });
            total_rows += n;
        }
        for fi in ev.flows.0..ev.flows.1 {
            let f = lane.ds.revocation_flows[fi as usize];
            let device = remap.sym(&lane.ds.strings, &mut out.strings, f.device);
            let url = remap.sym(&lane.ds.strings, &mut out.strings, f.url);
            out.revocation_flows.push(RevRow { device, url, ..f });
        }
        out.truncated += ev.truncated;
    }

    // Phase 2 — parallel chunk construction over fixed global row
    // ranges. Tasks have strictly increasing starts and n ≥ 1, so the
    // first task overlapping a range is found by binary search; a
    // task's rows keep their `base + 1` (first `rem`) / `base` counts
    // wherever the chunk boundaries fall. Chunks are built in batches
    // of `threads` so at most that many sealed chunks are in memory,
    // then folded values are emitted in chunk order.
    let starts: Vec<u64> = tasks.iter().map(|t| t.start).collect();
    let chunk_rows = CHUNK_ROWS as u64;
    let chunk_count = total_rows.div_ceil(chunk_rows) as usize;
    let build = |k: usize| {
        let lo = k as u64 * chunk_rows;
        let hi = (lo + chunk_rows).min(total_rows);
        let mut w = ChunkWriter::new();
        let mut ti = starts.partition_point(|&s| s <= lo) - 1;
        let mut pos = lo;
        while pos < hi {
            let t = &tasks[ti];
            let end = (t.start + t.n).min(hi);
            let (j0, j1) = (pos - t.start, end - t.start);
            let boosted = j1.min(t.rem) - j0.min(t.rem);
            if boosted > 0 {
                let split = RowView {
                    count: t.base + 1,
                    ..t.row
                };
                w.push_repeated(&split, boosted as usize);
            }
            let rest = (j1 - j0) - boosted;
            if rest > 0 {
                let split = RowView {
                    count: t.base,
                    ..t.row
                };
                w.push_repeated(&split, rest as usize);
            }
            pos = end;
            ti += 1;
        }
        let chunk = w.take();
        (fold(chunk), w.stats())
    };
    let mut merge_stats = ColumnarStats::default();
    let mut next = 0usize;
    while next < chunk_count {
        let batch: Vec<usize> = (next..(next + ctx.threads.max(1)).min(chunk_count)).collect();
        next += batch.len();
        for (folded, stats) in iotls_simnet::ordered_map_with(ctx.threads, batch, build) {
            merge_stats.merge(&stats);
            emit(folded);
        }
    }
    reg.add("capture.captures.truncated", out.truncated);
    merge_stats.export(reg, "capture.merge");
    reg.set_gauge("capture.strings.interned", out.strings.len() as i64);
    reg.set_gauge("capture.fingerprints.interned", out.fps.len() as i64);
    out.into_dataset(Vec::new())
}

/// Drives one real handshake for (device, destination) in `month`,
/// through a link conditioner applying `faults`, observing through
/// the lane's reusable `tap`. The handshake randomness is keyed by
/// (hostname, month) only, so re-drives of a faulted session replay
/// identical bytes.
#[allow(clippy::too_many_arguments)]
fn drive_one(
    testbed: &Testbed,
    device: &DeviceSetup,
    dest_idx: usize,
    month: Month,
    rng: &mut Drbg,
    faults: &SessionFaults,
    tap: &mut GatewayTap,
    scratch: &mut DriveScratch,
) -> SessionResult {
    let dest = &device.spec.destinations[dest_idx];
    let client_cfg = testbed.client_config_for(device, dest, month);
    let server_cfg = testbed.server_config(dest);
    let now = month.start().plus_days(14);
    let client = ClientConnection::with_scratch(
        client_cfg,
        &dest.hostname,
        now,
        rng.fork(&format!("client/{}/{}", dest.hostname, month)),
        scratch.take_client(),
    );
    let server = ServerConnection::with_scratch(
        server_cfg,
        rng.fork(&format!("server/{}/{}", dest.hostname, month)),
        scratch.take_server(),
    );
    let payload = dest.payload.clone().unwrap_or_else(|| "ping".into());
    let mut conditioner = LinkConditioner::new(SessionFaults {
        ops: faults.ops.clone(),
        dns: None,
    });
    drive_session_reusing(
        client,
        server,
        SessionParams {
            client_payload: Some(payload.as_bytes()),
            server_payload: Some(b"ok"),
            tap: true,
            time: now,
            device: &device.spec.name,
            destination: &dest.hostname,
        },
        &mut conditioner,
        Some(tap),
        scratch,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::RevocationKind;
    use iotls_tls::version::ProtocolVersion;
    use std::sync::OnceLock;

    fn dataset() -> &'static PassiveDataset {
        static DS: OnceLock<PassiveDataset> = OnceLock::new();
        DS.get_or_init(|| generate(Testbed::global(), 0xCAFE))
    }

    #[test]
    fn dataset_covers_all_40_devices() {
        assert_eq!(dataset().device_names().len(), 40);
    }

    #[test]
    fn total_connections_in_paper_range() {
        // §4.1: ≈17M connections.
        let total = dataset().total_connections();
        assert!(
            (14_000_000..=20_000_000).contains(&total),
            "total {total} outside the ≈17M target band"
        );
    }

    #[test]
    fn per_device_minimum_activity() {
        // Every device generated traffic for at least 6 months.
        for name in dataset().device_names() {
            let months: std::collections::BTreeSet<_> = dataset()
                .device_observations(&name)
                .iter()
                .map(|o| o.observation.time.month())
                .collect();
            assert!(months.len() >= 6, "{name}: {} months", months.len());
        }
    }

    #[test]
    fn most_connections_establish() {
        let total = dataset().total_connections();
        let established: u64 = dataset()
            .observations
            .iter()
            .filter(|o| o.observation.established)
            .map(|o| o.count)
            .sum();
        assert!(
            established * 10 >= total * 9,
            "only {established}/{total} established"
        );
    }

    #[test]
    fn wemo_always_advertises_deprecated_version() {
        // Fig. 1's one all-deprecated device.
        for o in dataset().device_observations("Wemo Plug") {
            assert_eq!(o.observation.max_advertised, ProtocolVersion::Tls10);
        }
    }

    #[test]
    fn google_home_mini_transitions_to_tls13_in_may_2019() {
        let before: Vec<_> = dataset()
            .device_observations("Google Home Mini")
            .into_iter()
            .filter(|o| o.observation.time.month() < Month::new(2019, 5))
            .collect();
        let after: Vec<_> = dataset()
            .device_observations("Google Home Mini")
            .into_iter()
            .filter(|o| o.observation.time.month() >= Month::new(2019, 5))
            .collect();
        assert!(!before.is_empty() && !after.is_empty());
        assert!(before
            .iter()
            .all(|o| o.observation.max_advertised == ProtocolVersion::Tls12));
        assert!(after
            .iter()
            .all(|o| o.observation.max_advertised == ProtocolVersion::Tls13));
    }

    #[test]
    fn samsung_washer_advertises_tls12_but_establishes_tls11() {
        for o in dataset().device_observations("Samsung Washer") {
            assert_eq!(o.observation.max_advertised, ProtocolVersion::Tls12);
            assert_eq!(
                o.observation.negotiated_version,
                Some(ProtocolVersion::Tls11)
            );
        }
    }

    #[test]
    fn revocation_flows_only_from_crl_ocsp_devices() {
        let crl_devices: std::collections::BTreeSet<_> = dataset()
            .revocation_flows
            .iter()
            .filter(|f| f.kind == RevocationKind::CrlFetch)
            .map(|f| f.device.clone())
            .collect();
        assert_eq!(
            crl_devices.into_iter().collect::<Vec<_>>(),
            vec!["Samsung TV".to_string()]
        );
        let ocsp_devices: std::collections::BTreeSet<_> = dataset()
            .revocation_flows
            .iter()
            .filter(|f| f.kind == RevocationKind::OcspQuery)
            .map(|f| f.device.clone())
            .collect();
        assert_eq!(ocsp_devices.len(), 3);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(Testbed::global(), 7);
        let b = generate(Testbed::global(), 7);
        assert_eq!(a.total_connections(), b.total_connections());
        assert_eq!(a.observations.len(), b.observations.len());
        let c = generate(Testbed::global(), 8);
        assert_ne!(a.total_connections(), c.total_connections());
    }

    #[test]
    fn insteon_boost_window_shifts_traffic_share() {
        // The Fig. 1 anomaly: the legacy destination dominates during
        // the boost window.
        let ds = dataset();
        let share = |month: Month| -> f64 {
            let obs = ds
                .device_observations("Insteon Hub")
                .into_iter()
                .filter(|o| o.observation.time.month() == month)
                .collect::<Vec<_>>();
            let total: u64 = obs.iter().map(|o| o.count).sum();
            let legacy: u64 = obs
                .iter()
                .filter(|o| o.observation.destination.starts_with("alert."))
                .map(|o| o.count)
                .sum();
            legacy as f64 / total.max(1) as f64
        };
        assert!(share(Month::new(2019, 1)) > 0.3, "boosted month");
        assert!(share(Month::new(2019, 10)) < 0.3, "after upgrade");
    }

    #[test]
    fn streamed_chunks_match_in_memory_columnar() {
        let col = generate_columnar(Testbed::global(), 0xCAFE);
        let mut streamed = Vec::new();
        let tail = CaptureCtx::new(0xCAFE)
            .generate_streamed(Testbed::global(), u64::MAX, &mut |c| streamed.push(c));
        assert!(tail.chunks.is_empty());
        let total: usize = streamed.iter().map(ObsChunk::len).sum();
        assert_eq!(total, col.total_rows());
        assert_eq!(tail.truncated, col.truncated);
        assert_eq!(tail.revocation_flows.len(), col.revocation_flows.len());
    }

    #[test]
    fn row_splitting_preserves_connection_totals() {
        let col = generate_columnar(Testbed::global(), 0xCAFE);
        let ctx = CaptureCtx::new(0xCAFE);
        let mut split_rows = 0usize;
        let mut split_conns = 0u64;
        ctx.generate_streamed(Testbed::global(), 1_000, &mut |c| {
            split_rows += c.len();
            split_conns += c.connections();
        });
        assert_eq!(split_conns, col.total_connections());
        assert!(split_rows > col.total_rows());
        // Every split row respects the cap.
        let mut checked = false;
        ctx.generate_streamed(Testbed::global(), 1_000, &mut |c| {
            checked = true;
            assert!(c.rows().all(|r| r.count() <= 1_000 && r.count() > 0));
        });
        assert!(checked);
    }

    #[test]
    fn ctx_threads_and_metrics_knobs_do_not_change_the_dataset() {
        let baseline = generate(Testbed::global(), 0xCAFE);
        let metrics = SharedRegistry::live();
        let ctx = CaptureCtx::new(0xCAFE).with_threads(3).with_metrics(metrics.clone());
        let ds = ctx.generate(Testbed::global());
        assert_eq!(ds.total_connections(), baseline.total_connections());
        assert_eq!(ds.observations.len(), baseline.observations.len());
        let snap = metrics.snapshot();
        assert!(snap.counter("capture.rows.weighted") > 0);
        assert_eq!(snap.counter("capture.connections"), ds.total_connections());
    }
}
