//! The workload generator: replays the 27-month study schedule.
//!
//! The schedule itself comes from the event-driven study timeline
//! ([`crate::timeline`]): the generator pops `CaptureRoll` events in
//! causal order, and for each device-month drives one *real*
//! byte-level handshake per destination between the device's TLS
//! instance (as configured in that month's phase) and the
//! destination's legitimate server, tapped by the passive gateway —
//! then weights the resulting observation by the destination's
//! (jittered) monthly connection rate. Identical (device,
//! destination, phase) combinations reuse the driven handshake, which
//! is metadata-identical, keeping the full two-year dataset fast to
//! generate.

use crate::dataset::{PassiveDataset, RevocationFlow, RevocationKind, WeightedObservation};
use crate::timeline::{build_timeline, StudyEvent};
use iotls_crypto::drbg::Drbg;
use iotls_devices::{DeviceSetup, Testbed};
use iotls_simnet::{
    drive_session_faulted, FaultPlan, LinkConditioner, SessionFaults, SessionParams, SessionResult,
};
use iotls_tls::client::ClientConnection;
use iotls_tls::server::ServerConnection;
use iotls_simnet::TlsObservation;
use iotls_x509::Month;
use std::collections::HashMap;

/// How many times a faulted capture drive is re-driven before the
/// generator gives up and keeps whatever the tap managed to see.
const CAPTURE_RETRIES: usize = 6;

/// Generates the passive dataset for the whole testbed, driven by
/// the event timeline.
pub fn generate(testbed: &Testbed, seed: u64) -> PassiveDataset {
    generate_with_faults(testbed, seed, FaultPlan::none())
}

/// Generates the passive dataset under an injected-fault schedule.
///
/// The conditioner sits between the endpoints and the gateway tap, so
/// a session cut before a parseable ClientHello yields no observation;
/// the generator *counts* those truncated captures (rather than
/// silently dropping them, as a naive analyzer would) and re-drives
/// the faulted session — with the same handshake randomness but a
/// fresh fault draw — until a clean capture lands. DNS faults are an
/// active-lab concern; the generator only exercises link faults.
pub fn generate_with_faults(testbed: &Testbed, seed: u64, plan: FaultPlan) -> PassiveDataset {
    let mut dataset = PassiveDataset::default();
    let root_rng = Drbg::from_seed(seed);

    // Split the timeline's capture rolls into per-device lanes. Every
    // RNG draw is forked per (device, month) and the handshake cache is
    // keyed per device, so lanes are independent; each lane walks its
    // own months in timeline order, and the per-event outputs are
    // re-merged by global event index below — byte-identical to the
    // sequential interleaving at any worker count.
    let mut lanes: Vec<(String, Vec<(usize, Month)>)> = Vec::new();
    let mut lane_of: HashMap<String, usize> = HashMap::new();
    for (idx, (_at, event)) in build_timeline(testbed).into_iter().enumerate() {
        let StudyEvent::CaptureRoll { device, month } = event else {
            continue; // joins/retirements/updates need no capture action
        };
        let lane = *lane_of.entry(device.clone()).or_insert_with(|| {
            lanes.push((device.clone(), Vec::new()));
            lanes.len() - 1
        });
        lanes[lane].1.push((idx, month));
    }

    /// One capture roll's output, tagged with its timeline position.
    struct EventOut {
        idx: usize,
        observations: Vec<WeightedObservation>,
        flows: Vec<RevocationFlow>,
        truncated: u64,
    }

    let per_lane = iotls_simnet::ordered_map(lanes, |(device_name, months)| {
        let device = testbed.device(&device_name);
        // Cache of driven handshakes keyed by (device, dest index,
        // phase start) — the observation metadata is identical within
        // a phase.
        let mut cache: HashMap<(String, usize, Month), Option<TlsObservation>> = HashMap::new();
        let mut outs = Vec::with_capacity(months.len());
        for (idx, month) in months {
            let mut truncated = 0u64;
            let mut observations = Vec::new();
            let mut flows = Vec::new();
            let mut rng = root_rng.fork(&format!("capture/{}/{}", device.spec.name, month));
            {
            let phase_start = device
                .spec
                .phases
                .iter()
                .filter(|p| p.start <= month)
                .map(|p| p.start)
                .next_back()
                .unwrap_or(device.spec.phases[0].start);
            for (dest_idx, dest) in device.spec.destinations.iter().enumerate() {
                let key = (device.spec.name.clone(), dest_idx, phase_start);
                let observation = cache
                    .entry(key)
                    .or_insert_with(|| {
                        let mut tries = 0;
                        loop {
                            let fault_key = format!(
                                "capture/{}/{}/{}/try{}",
                                device.spec.name,
                                device.spec.destinations[dest_idx].hostname,
                                month,
                                tries
                            );
                            let faults = plan.session_faults(&fault_key);
                            let result =
                                drive_one(testbed, device, dest_idx, month, &mut rng, &faults);
                            if result.observation.is_none() {
                                // Cut before a parseable ClientHello:
                                // count it, don't just drop it.
                                truncated += 1;
                            }
                            if result.tainted() && tries + 1 < CAPTURE_RETRIES {
                                tries += 1;
                                continue;
                            }
                            break result.observation;
                        }
                    })
                    .clone();
                let Some(mut obs) = observation else {
                    continue;
                };
                // Stamp the month (mid-month noon keeps it inside the
                // bucket regardless of month length).
                obs.time = month.start().plus_days(14).plus_secs(12 * 3600);
                let base_rate = match dest.boost {
                    Some((from, to, boosted)) if from <= month && month <= to => boosted,
                    _ => dest.monthly_connections,
                };
                // ±20% deterministic jitter so months differ.
                let jitter = 80 + rng.below(41); // 80..=120 percent
                let count = (base_rate as u64 * jitter) / 100;
                if count == 0 {
                    continue;
                }
                observations.push(WeightedObservation {
                    observation: obs,
                    count,
                });
            }

            // Revocation endpoint flows (Table 8's CRL/OCSP columns).
            if device.spec.revocation.crl {
                flows.push(RevocationFlow {
                    time: month.start().plus_days(3),
                    device: device.spec.name.clone(),
                    kind: RevocationKind::CrlFetch,
                    url: "http://crl.simtrust.example/latest.crl".into(),
                    count: 2 + rng.below(5),
                });
            }
            if device.spec.revocation.ocsp {
                flows.push(RevocationFlow {
                    time: month.start().plus_days(5),
                    device: device.spec.name.clone(),
                    kind: RevocationKind::OcspQuery,
                    url: "http://ocsp.simtrust.example".into(),
                    count: 10 + rng.below(30),
                });
            }
            }
            outs.push(EventOut { idx, observations, flows, truncated });
        }
        outs
    });

    let mut events: Vec<EventOut> = per_lane.into_iter().flatten().collect();
    events.sort_by_key(|e| e.idx);
    for e in events {
        dataset.observations.extend(e.observations);
        dataset.revocation_flows.extend(e.flows);
        dataset.truncated += e.truncated;
    }
    dataset
}

/// Drives one real handshake for (device, destination) in `month`,
/// through a link conditioner applying `faults`. The handshake
/// randomness is keyed by (hostname, month) only, so re-drives of a
/// faulted session replay identical bytes.
fn drive_one(
    testbed: &Testbed,
    device: &DeviceSetup,
    dest_idx: usize,
    month: Month,
    rng: &mut Drbg,
    faults: &SessionFaults,
) -> SessionResult {
    let dest = &device.spec.destinations[dest_idx];
    let client_cfg = testbed.client_config_for(device, dest, month);
    let server_cfg = testbed.server_config(dest);
    let now = month.start().plus_days(14);
    let client = ClientConnection::new(
        client_cfg,
        &dest.hostname,
        now,
        rng.fork(&format!("client/{}/{}", dest.hostname, month)),
    );
    let server = ServerConnection::new(
        server_cfg,
        rng.fork(&format!("server/{}/{}", dest.hostname, month)),
    );
    let payload = dest.payload.clone().unwrap_or_else(|| "ping".into());
    let mut conditioner = LinkConditioner::new(SessionFaults {
        ops: faults.ops.clone(),
        dns: None,
    });
    drive_session_faulted(
        client,
        server,
        SessionParams {
            client_payload: Some(payload.as_bytes()),
            server_payload: Some(b"ok"),
            tap: true,
            time: now,
            device: &device.spec.name,
            destination: &dest.hostname,
        },
        &mut conditioner,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotls_tls::version::ProtocolVersion;
    use std::sync::OnceLock;

    fn dataset() -> &'static PassiveDataset {
        static DS: OnceLock<PassiveDataset> = OnceLock::new();
        DS.get_or_init(|| generate(Testbed::global(), 0xCAFE))
    }

    #[test]
    fn dataset_covers_all_40_devices() {
        assert_eq!(dataset().device_names().len(), 40);
    }

    #[test]
    fn total_connections_in_paper_range() {
        // §4.1: ≈17M connections.
        let total = dataset().total_connections();
        assert!(
            (14_000_000..=20_000_000).contains(&total),
            "total {total} outside the ≈17M target band"
        );
    }

    #[test]
    fn per_device_minimum_activity() {
        // Every device generated traffic for at least 6 months.
        for name in dataset().device_names() {
            let months: std::collections::BTreeSet<_> = dataset()
                .device_observations(&name)
                .iter()
                .map(|o| o.observation.time.month())
                .collect();
            assert!(months.len() >= 6, "{name}: {} months", months.len());
        }
    }

    #[test]
    fn most_connections_establish() {
        let total = dataset().total_connections();
        let established: u64 = dataset()
            .observations
            .iter()
            .filter(|o| o.observation.established)
            .map(|o| o.count)
            .sum();
        assert!(
            established * 10 >= total * 9,
            "only {established}/{total} established"
        );
    }

    #[test]
    fn wemo_always_advertises_deprecated_version() {
        // Fig. 1's one all-deprecated device.
        for o in dataset().device_observations("Wemo Plug") {
            assert_eq!(o.observation.max_advertised, ProtocolVersion::Tls10);
        }
    }

    #[test]
    fn google_home_mini_transitions_to_tls13_in_may_2019() {
        let before: Vec<_> = dataset()
            .device_observations("Google Home Mini")
            .into_iter()
            .filter(|o| o.observation.time.month() < Month::new(2019, 5))
            .collect();
        let after: Vec<_> = dataset()
            .device_observations("Google Home Mini")
            .into_iter()
            .filter(|o| o.observation.time.month() >= Month::new(2019, 5))
            .collect();
        assert!(!before.is_empty() && !after.is_empty());
        assert!(before
            .iter()
            .all(|o| o.observation.max_advertised == ProtocolVersion::Tls12));
        assert!(after
            .iter()
            .all(|o| o.observation.max_advertised == ProtocolVersion::Tls13));
    }

    #[test]
    fn samsung_washer_advertises_tls12_but_establishes_tls11() {
        for o in dataset().device_observations("Samsung Washer") {
            assert_eq!(o.observation.max_advertised, ProtocolVersion::Tls12);
            assert_eq!(
                o.observation.negotiated_version,
                Some(ProtocolVersion::Tls11)
            );
        }
    }

    #[test]
    fn revocation_flows_only_from_crl_ocsp_devices() {
        let crl_devices: std::collections::BTreeSet<_> = dataset()
            .revocation_flows
            .iter()
            .filter(|f| f.kind == RevocationKind::CrlFetch)
            .map(|f| f.device.clone())
            .collect();
        assert_eq!(
            crl_devices.into_iter().collect::<Vec<_>>(),
            vec!["Samsung TV".to_string()]
        );
        let ocsp_devices: std::collections::BTreeSet<_> = dataset()
            .revocation_flows
            .iter()
            .filter(|f| f.kind == RevocationKind::OcspQuery)
            .map(|f| f.device.clone())
            .collect();
        assert_eq!(ocsp_devices.len(), 3);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(Testbed::global(), 7);
        let b = generate(Testbed::global(), 7);
        assert_eq!(a.total_connections(), b.total_connections());
        assert_eq!(a.observations.len(), b.observations.len());
        let c = generate(Testbed::global(), 8);
        assert_ne!(a.total_connections(), c.total_connections());
    }

    #[test]
    fn insteon_boost_window_shifts_traffic_share() {
        // The Fig. 1 anomaly: the legacy destination dominates during
        // the boost window.
        let ds = dataset();
        let share = |month: Month| -> f64 {
            let obs = ds
                .device_observations("Insteon Hub")
                .into_iter()
                .filter(|o| o.observation.time.month() == month)
                .collect::<Vec<_>>();
            let total: u64 = obs.iter().map(|o| o.count).sum();
            let legacy: u64 = obs
                .iter()
                .filter(|o| o.observation.destination.starts_with("alert."))
                .map(|o| o.count)
                .sum();
            legacy as f64 / total.max(1) as f64
        };
        assert!(share(Month::new(2019, 1)) > 0.3, "boosted month");
        assert!(share(Month::new(2019, 10)) < 0.3, "after upgrade");
    }
}
