//! Persistent on-disk form of the columnar dataset.
//!
//! A store file is a length-prefixed frame sequence: a fixed 20-byte
//! header, the sealed chunk frames back to back, and a footer holding
//! the chunk directory (offset, length, row count, CRC-32C, and the
//! per-chunk pruning metadata — min/max time plus the device bitmap),
//! the intern tables, the revocation flows, and the dataset tails.
//! Everything is little-endian with **no padding bytes**, so every
//! byte of the file is covered by either the per-frame CRC-32C or the
//! footer CRC-32C (the header is covered by its own field checks).
//!
//! ```text
//! header   magic "IOTLSCS1" ·· version u32 ·· footer_off u64
//! frames   chunk 0 payload | chunk 1 payload | …
//!          (payload = columns in schema order: time, the five u32
//!          symbol columns, the three u16 columns, flags, count, the
//!          four span columns as offsets-then-lengths, then the two
//!          length-prefixed dedup pools)
//! footer   chunk_count u64
//!          per chunk: offset u64 · len u64 · rows u32 · crc u32
//!                     · min_time i64 · max_time i64
//!                     · words u32 · device_bits words×u64
//!          strings:   count u32 · per string (len u32 · bytes)
//!          digests:   count u32 · 16 bytes each
//!          flows:     count u32 · per flow (time i64 · device u32
//!                     · kind u8 · url u32 · count u64)
//!          truncated u64 · total_rows u64 · total_connections u64
//!          footer crc32 u32
//! ```
//!
//! [`StoreWriter`] streams chunks to disk as they seal (usable as a
//! `generate_streamed` sink, so a paper-scale corpus is written in
//! bounded memory); [`ColumnarStore`] reads the directory and tables
//! eagerly but materializes chunk frames lazily — with
//! [`select_chunks`](ColumnarStore::select_chunks) pruning straight
//! off the directory, a time/device slice never touches the skipped
//! frames at all. [`ColumnarStore::open`] reads frames on demand
//! (`pread`, bounded memory); [`ColumnarStore::open_mmap`] maps the
//! whole file (falling back to one buffered read when `mmap` is
//! unavailable) for repeated random access.
//!
//! Corruption never panics: truncations, bit flips, and structurally
//! impossible values all surface as typed [`StoreError`]s. Decoded
//! chunks are validated — span columns must land inside their pools
//! and symbol columns inside the intern tables — so even a
//! CRC-correct but hostile file cannot push an out-of-bounds index
//! into the row accessors.

use crate::columnar::{ColumnarDataset, ObsChunk};
use crate::dataset::RevocationKind;
use crate::intern::{DigestInterner, Interner, Symbol};
use crate::RevRow;
use iotls_tls::fingerprint::FingerprintId;
use std::fs::File;
use std::io::{self, BufWriter, Seek, SeekFrom, Write};
use std::path::Path;

/// File magic: "IOTLS" + "CS" (columnar store) + format generation.
const MAGIC: [u8; 8] = *b"IOTLSCS1";

/// Current format version.
const VERSION: u32 = 1;

/// Header bytes: magic + version + footer offset.
const HEADER_LEN: u64 = 8 + 4 + 8;

/// Fixed bytes per row in a chunk frame (the non-pool columns).
const ROW_BYTES: u64 = 8 + 4 * 5 + 2 * 3 + 1 + 8 + (4 + 2) * 4;

/// Sentinel for "absent" in optional symbol columns (mirrors
/// `columnar::NO_SYM`, which is crate-private by design).
pub(crate) const NO_SYM: u32 = u32::MAX;

// ── CRC-32C ─────────────────────────────────────────────────────────

/// CRC-32C lookup tables (Castagnoli polynomial `0x82F6_3B78`), built
/// at compile time. Eight tables for the slicing-by-8 software
/// kernel: every frame of the paper-scale store (~1 GB) is
/// checksummed on open, so the classic byte-at-a-time loop would
/// dominate the reload path. Castagnoli (not IEEE) because x86_64
/// ships a dedicated `crc32` instruction for exactly this polynomial
/// — on SSE4.2 hardware the checksum costs roughly a memory read.
static CRC_TABLES: [[u32; 256]; 8] = crc_tables();

const fn crc_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0x82F6_3B78 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        t[0][i] = c;
        i += 1;
    }
    let mut j = 1;
    while j < 8 {
        let mut i = 0;
        while i < 256 {
            t[j][i] = (t[j - 1][i] >> 8) ^ t[0][(t[j - 1][i] & 0xFF) as usize];
            i += 1;
        }
        j += 1;
    }
    t
}

/// CRC-32C of `bytes`. Hardware `crc32q` on x86_64 with SSE4.2,
/// software slicing-by-8 everywhere else.
pub fn crc32(bytes: &[u8]) -> u32 {
    !crc32_raw(!0, bytes)
}

/// Streaming kernel over the pre/post-inverted state, so a frame can
/// be checksummed block-by-block while each block is still cache-hot
/// from the `pread` that fetched it.
fn crc32_raw(state: u32, bytes: &[u8]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("sse4.2") {
        // SAFETY: guarded by the runtime SSE4.2 detection above.
        return unsafe { crc32_hw(state, bytes) };
    }
    crc32_sw(state, bytes)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
unsafe fn crc32_hw(state: u32, bytes: &[u8]) -> u32 {
    use std::arch::x86_64::{_mm_crc32_u64, _mm_crc32_u8};
    let mut words = bytes.chunks_exact(8);
    let mut c = state as u64;
    for w in &mut words {
        c = _mm_crc32_u64(c, u64::from_le_bytes(w.try_into().unwrap()));
    }
    let mut c = c as u32;
    for &b in words.remainder() {
        c = _mm_crc32_u8(c, b);
    }
    c
}

fn crc32_sw(state: u32, bytes: &[u8]) -> u32 {
    let mut c = state;
    let mut words = bytes.chunks_exact(8);
    for w in &mut words {
        let lo = u32::from_le_bytes(w[0..4].try_into().unwrap()) ^ c;
        let hi = u32::from_le_bytes(w[4..8].try_into().unwrap());
        c = CRC_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in words.remainder() {
        c = CRC_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

// ── Errors ──────────────────────────────────────────────────────────

/// Everything that can go wrong reading a store file. Corrupt input
/// is an error value, never a panic.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with the store magic.
    BadMagic,
    /// The file's format version is newer than this reader.
    UnsupportedVersion(u32),
    /// The file ends (or a length field points) before the named
    /// structure is complete.
    Truncated {
        /// Which structure was being read.
        context: &'static str,
        /// Absolute byte offset (within `path`) at which the data
        /// gave out.
        offset: u64,
        /// The file the offset refers to. Empty until the opener
        /// attributes it — single-file opens and the segmented store
        /// both fill it, so multi-file corruption names the exact
        /// segment.
        path: String,
    },
    /// A CRC-32C check failed: `chunk` names the frame, `None` means
    /// the footer.
    ChecksumMismatch {
        /// Frame index, or `None` for the footer.
        chunk: Option<u32>,
        /// The file whose checksum failed (empty until attributed,
        /// as for [`Truncated`](Self::Truncated)).
        path: String,
    },
    /// A structurally impossible value (out-of-range symbol, span
    /// outside its pool, invalid enum byte, …).
    Corrupt(&'static str),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::BadMagic => write!(f, "not a columnar store file (bad magic)"),
            StoreError::UnsupportedVersion(v) => {
                write!(f, "unsupported store version {v} (reader supports {VERSION})")
            }
            StoreError::Truncated { context, offset, path } => {
                write!(f, "store truncated reading {context} at byte {offset}")?;
                if !path.is_empty() {
                    write!(f, " of {path}")?;
                }
                Ok(())
            }
            StoreError::ChecksumMismatch { chunk: Some(i), path } => {
                write!(f, "checksum mismatch in chunk frame {i}")?;
                if !path.is_empty() {
                    write!(f, " of {path}")?;
                }
                Ok(())
            }
            StoreError::ChecksumMismatch { chunk: None, path } => {
                write!(f, "checksum mismatch in store footer")?;
                if !path.is_empty() {
                    write!(f, " of {path}")?;
                }
                Ok(())
            }
            StoreError::Corrupt(what) => write!(f, "corrupt store: {what}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl StoreError {
    /// Fills the file attribution into error variants that carry one
    /// (and don't have it yet), so a failure inside a multi-file
    /// segmented store names the exact segment. Errors that already
    /// name a file keep it — the innermost attribution wins.
    pub fn with_path(mut self, p: &Path) -> StoreError {
        match &mut self {
            StoreError::Truncated { path, .. } | StoreError::ChecksumMismatch { path, .. }
                if path.is_empty() =>
            {
                *path = p.display().to_string();
            }
            _ => {}
        }
        self
    }
}

/// Shorthand for an unattributed truncation error.
pub(crate) fn trunc(context: &'static str, offset: u64) -> StoreError {
    StoreError::Truncated { context, offset, path: String::new() }
}

/// Maps a positioned read that ran off the end of the file to a typed
/// truncation at the read's offset; other I/O failures pass through.
fn read_at_or_trunc(
    file: &File,
    buf: &mut [u8],
    off: u64,
    context: &'static str,
) -> Result<(), StoreError> {
    read_exact_at(file, buf, off).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            trunc(context, off)
        } else {
            StoreError::Io(e)
        }
    })
}

// ── Little-endian encode helpers ────────────────────────────────────

pub(crate) fn put_u16s(buf: &mut Vec<u8>, vals: &[u16]) {
    for v in vals {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

pub(crate) fn put_u32s(buf: &mut Vec<u8>, vals: &[u32]) {
    for v in vals {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

pub(crate) fn put_u64s(buf: &mut Vec<u8>, vals: &[u64]) {
    for v in vals {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

pub(crate) fn put_i64s(buf: &mut Vec<u8>, vals: &[i64]) {
    for v in vals {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Span columns serialize as all offsets then all lengths.
fn put_spans(buf: &mut Vec<u8>, spans: &[(u32, u16)]) {
    for (off, _) in spans {
        buf.extend_from_slice(&off.to_le_bytes());
    }
    for (_, len) in spans {
        buf.extend_from_slice(&len.to_le_bytes());
    }
}

/// Serializes one chunk's payload (everything the frame carries; the
/// pruning metadata lives in the directory instead).
fn encode_chunk(c: &ObsChunk, buf: &mut Vec<u8>) {
    buf.clear();
    put_i64s(buf, &c.time);
    put_u32s(buf, &c.device);
    put_u32s(buf, &c.destination);
    put_u32s(buf, &c.sni);
    put_u32s(buf, &c.fingerprint);
    put_u32s(buf, &c.leaf_issuer);
    put_u16s(buf, &c.max_adv);
    put_u16s(buf, &c.neg_version);
    put_u16s(buf, &c.neg_suite);
    buf.extend_from_slice(&c.flags);
    put_u64s(buf, &c.count);
    put_spans(buf, &c.adv_versions);
    put_spans(buf, &c.suites);
    put_spans(buf, &c.alerts_c2s);
    put_spans(buf, &c.alerts_s2c);
    buf.extend_from_slice(&(c.pool_u16.len() as u32).to_le_bytes());
    put_u16s(buf, &c.pool_u16);
    buf.extend_from_slice(&(c.pool_u8.len() as u32).to_le_bytes());
    buf.extend_from_slice(&c.pool_u8);
}

// ── Bounded little-endian reader ────────────────────────────────────

/// Cursor over a borrowed byte buffer; every read is bounds-checked
/// and failure carries the structure being read plus the absolute
/// file offset (`base` + cursor) where the data gave out.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    pub(crate) context: &'static str,
    base: u64,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8], context: &'static str) -> Self {
        Reader { buf, pos: 0, context, base: 0 }
    }

    /// A reader whose buffer starts at absolute file offset `base`,
    /// so truncation errors report file positions, not buffer ones.
    pub(crate) fn at(buf: &'a [u8], context: &'static str, base: u64) -> Self {
        Reader { buf, pos: 0, context, base }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(StoreError::Truncated {
                context: self.context,
                offset: self.base + self.pos as u64,
                path: String::new(),
            })?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn i64(&mut self) -> Result<i64, StoreError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn u16s(&mut self, n: usize) -> Result<Vec<u16>, StoreError> {
        decode_le::<u16>(self.take(n * 2)?, n, |b| {
            u16::from_le_bytes(b.try_into().unwrap())
        })
    }

    pub(crate) fn u32s(&mut self, n: usize) -> Result<Vec<u32>, StoreError> {
        decode_le::<u32>(self.take(n * 4)?, n, |b| {
            u32::from_le_bytes(b.try_into().unwrap())
        })
    }

    pub(crate) fn u64s(&mut self, n: usize) -> Result<Vec<u64>, StoreError> {
        decode_le::<u64>(self.take(n * 8)?, n, |b| {
            u64::from_le_bytes(b.try_into().unwrap())
        })
    }

    pub(crate) fn i64s(&mut self, n: usize) -> Result<Vec<i64>, StoreError> {
        decode_le::<i64>(self.take(n * 8)?, n, |b| {
            i64::from_le_bytes(b.try_into().unwrap())
        })
    }

    pub(crate) fn spans(&mut self, n: usize) -> Result<Vec<(u32, u16)>, StoreError> {
        // Decode straight from the raw offset/length bytes into the
        // pair vector — no intermediate columns, one pass.
        let offs = self.take(n * 4)?;
        let lens = self.take(n * 2)?;
        Ok(offs
            .chunks_exact(4)
            .zip(lens.chunks_exact(2))
            .map(|(o, l)| {
                (
                    u32::from_le_bytes(o.try_into().unwrap()),
                    u16::from_le_bytes(l.try_into().unwrap()),
                )
            })
            .collect())
    }

    pub(crate) fn done(&self) -> Result<(), StoreError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(StoreError::Corrupt("trailing bytes after structure"))
        }
    }
}

/// Decode `n` little-endian integers from `raw`. On little-endian
/// targets the wire layout IS the in-memory layout, so the whole
/// column becomes one memcpy — this path carries the bulk of the
/// reload bytes (every fixed-width column of every frame). Other
/// targets fall back to the per-element conversion closure.
fn decode_le<T: Copy + Default>(
    raw: &[u8],
    n: usize,
    from_bytes: impl Fn(&[u8]) -> T,
) -> Result<Vec<T>, StoreError> {
    debug_assert_eq!(raw.len(), n * std::mem::size_of::<T>());
    if cfg!(target_endian = "little") {
        let mut out = Vec::<T>::with_capacity(n);
        // SAFETY: `raw` holds exactly `n` values of the integer type
        // `T` in little-endian byte order, which on a little-endian
        // target is `T`'s native representation; the copy fills the
        // capacity just reserved before the length is set.
        unsafe {
            std::ptr::copy_nonoverlapping(raw.as_ptr(), out.as_mut_ptr() as *mut u8, raw.len());
            out.set_len(n);
        }
        Ok(out)
    } else {
        Ok(raw.chunks_exact(std::mem::size_of::<T>()).map(from_bytes).collect())
    }
}

// ── Writer ──────────────────────────────────────────────────────────

/// One chunk's directory entry: where its frame lives, its CRC, and
/// the pruning metadata preserved outside the frame so
/// [`ColumnarStore::select_chunks`] never has to decode it.
#[derive(Debug, Clone)]
struct DirEntry {
    offset: u64,
    len: u64,
    rows: u32,
    crc: u32,
    min_time: i64,
    max_time: i64,
    device_bits: Vec<u64>,
}

/// What [`StoreWriter::finish`] reports about the sealed file: its
/// total length and its footer CRC-32C. Because every frame CRC is
/// recorded inside the footer, the footer CRC is a cheap fingerprint
/// of the file's entire content — the segmented store manifest
/// records both to bind itself to each immutable segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreSummary {
    /// Final file length in bytes.
    pub file_len: u64,
    /// CRC-32C of the footer body, as written to disk.
    pub footer_crc: u32,
}

/// Streams sealed chunks into a store file; the footer (directory +
/// intern tables + tails) is written by [`finish`](Self::finish).
/// Usable directly as a `generate_streamed` sink, so a paper-scale
/// corpus persists in bounded memory.
#[derive(Debug)]
pub struct StoreWriter {
    out: BufWriter<File>,
    offset: u64,
    dir: Vec<DirEntry>,
    buf: Vec<u8>,
    total_rows: u64,
    total_connections: u64,
}

impl StoreWriter {
    /// Creates (truncating) `path` and writes a placeholder header;
    /// the footer offset is patched in by [`finish`](Self::finish).
    pub fn create(path: &Path) -> io::Result<StoreWriter> {
        let mut out = BufWriter::new(File::create(path)?);
        out.write_all(&MAGIC)?;
        out.write_all(&VERSION.to_le_bytes())?;
        out.write_all(&0u64.to_le_bytes())?; // footer_off, patched later
        Ok(StoreWriter {
            out,
            offset: HEADER_LEN,
            dir: Vec::new(),
            buf: Vec::new(),
            total_rows: 0,
            total_connections: 0,
        })
    }

    /// Appends one sealed chunk as a frame.
    pub fn add_chunk(&mut self, chunk: &ObsChunk) -> io::Result<()> {
        encode_chunk(chunk, &mut self.buf);
        let crc = crc32(&self.buf);
        self.out.write_all(&self.buf)?;
        self.dir.push(DirEntry {
            offset: self.offset,
            len: self.buf.len() as u64,
            rows: chunk.len() as u32,
            crc,
            min_time: chunk.min_time,
            max_time: chunk.max_time,
            device_bits: chunk.device_bits.clone(),
        });
        self.offset += self.buf.len() as u64;
        self.total_rows += chunk.len() as u64;
        self.total_connections += chunk.count.iter().sum::<u64>();
        Ok(())
    }

    /// Writes the footer (directory, intern tables, flows, tails,
    /// CRC), patches the header's footer offset, and syncs lengths.
    /// Returns the sealed file's [`StoreSummary`].
    pub fn finish(
        mut self,
        strings: &Interner,
        fps: &DigestInterner,
        flows: &[RevRow],
        truncated: u64,
    ) -> io::Result<StoreSummary> {
        let mut f = Vec::new();
        f.extend_from_slice(&(self.dir.len() as u64).to_le_bytes());
        for e in &self.dir {
            f.extend_from_slice(&e.offset.to_le_bytes());
            f.extend_from_slice(&e.len.to_le_bytes());
            f.extend_from_slice(&e.rows.to_le_bytes());
            f.extend_from_slice(&e.crc.to_le_bytes());
            f.extend_from_slice(&e.min_time.to_le_bytes());
            f.extend_from_slice(&e.max_time.to_le_bytes());
            f.extend_from_slice(&(e.device_bits.len() as u32).to_le_bytes());
            put_u64s(&mut f, &e.device_bits);
        }
        f.extend_from_slice(&(strings.len() as u32).to_le_bytes());
        for s in strings.iter() {
            f.extend_from_slice(&(s.len() as u32).to_le_bytes());
            f.extend_from_slice(s.as_bytes());
        }
        f.extend_from_slice(&(fps.len() as u32).to_le_bytes());
        for fp in fps.iter() {
            f.extend_from_slice(&fp.0);
        }
        f.extend_from_slice(&(flows.len() as u32).to_le_bytes());
        for flow in flows {
            f.extend_from_slice(&flow.time.to_le_bytes());
            f.extend_from_slice(&flow.device.0.to_le_bytes());
            f.push(match flow.kind {
                RevocationKind::CrlFetch => 0,
                RevocationKind::OcspQuery => 1,
            });
            f.extend_from_slice(&flow.url.0.to_le_bytes());
            f.extend_from_slice(&flow.count.to_le_bytes());
        }
        f.extend_from_slice(&truncated.to_le_bytes());
        f.extend_from_slice(&self.total_rows.to_le_bytes());
        f.extend_from_slice(&self.total_connections.to_le_bytes());
        let crc = crc32(&f);
        f.extend_from_slice(&crc.to_le_bytes());

        let file_len = self.offset + f.len() as u64;
        self.out.write_all(&f)?;
        // Patch the header's footer offset now that it is known.
        self.out.seek(SeekFrom::Start((MAGIC.len() + 4) as u64))?;
        self.out.write_all(&self.offset.to_le_bytes())?;
        self.out.flush()?;
        Ok(StoreSummary { file_len, footer_crc: crc })
    }
}

impl ColumnarDataset {
    /// Persists the dataset (all in-memory chunks, tables, and tails)
    /// to a store file at `path`.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        let mut w = StoreWriter::create(path)?;
        for chunk in &self.chunks {
            w.add_chunk(chunk)?;
        }
        w.finish(&self.strings, &self.fps, &self.revocation_flows, self.truncated)?;
        Ok(())
    }

    /// Opens a store file and materializes every chunk — the
    /// read-it-all inverse of [`write_to`](Self::write_to). Use
    /// [`ColumnarStore::open`] to keep frames on disk instead.
    pub fn open(path: &Path) -> Result<ColumnarDataset, StoreError> {
        ColumnarStore::open(path)?.to_dataset()
    }
}

// ── Backing storage ─────────────────────────────────────────────────

#[cfg(unix)]
mod map {
    //! Minimal read-only `mmap` binding (no libc crate in the
    //! workspace; the two syscalls are declared directly).
    use std::fs::File;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    extern "C" {
        fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
    }

    /// A read-only private mapping of a whole file.
    #[derive(Debug)]
    pub struct Mmap {
        ptr: *mut core::ffi::c_void,
        len: usize,
    }

    // SAFETY: the mapping is PROT_READ/MAP_PRIVATE and never aliased
    // mutably; sharing the raw pointer across threads is sound.
    unsafe impl Send for Mmap {}
    unsafe impl Sync for Mmap {}

    impl Mmap {
        /// Maps `len` bytes of `file` read-only, or `None` when the
        /// kernel refuses (empty file, exotic filesystem, …) — the
        /// caller falls back to a buffered read.
        pub fn new(file: &File, len: usize) -> Option<Mmap> {
            if len == 0 {
                return None;
            }
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as usize == usize::MAX {
                None // MAP_FAILED
            } else {
                Some(Mmap { ptr, len })
            }
        }

        /// The mapped bytes.
        pub fn bytes(&self) -> &[u8] {
            // SAFETY: ptr/len come from a successful mmap of a file
            // we hold open; the mapping lives until Drop.
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    impl Drop for Mmap {
        fn drop(&mut self) {
            // SAFETY: exact (ptr, len) pair returned by mmap.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

/// Where the frame bytes come from: positioned reads against the open
/// file (default — bounded memory), a memory map, or a full in-memory
/// copy (the mmap fallback).
enum Backing {
    /// Lazy positioned reads (`pread`); nothing resident but the
    /// directory and tables.
    Lazy(File),
    /// The whole file in one buffer.
    Buf(Vec<u8>),
    /// The whole file mapped read-only.
    #[cfg(unix)]
    Map(map::Mmap),
}

impl std::fmt::Debug for Backing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backing::Lazy(_) => f.write_str("Backing::Lazy"),
            Backing::Buf(b) => write!(f, "Backing::Buf({} bytes)", b.len()),
            #[cfg(unix)]
            Backing::Map(m) => write!(f, "Backing::Map({} bytes)", m.bytes().len()),
        }
    }
}

impl Backing {
    /// Returns `len` bytes at `off`, reading into `scratch` when the
    /// backing is lazy.
    fn bytes<'a>(
        &'a self,
        off: u64,
        len: usize,
        scratch: &'a mut Vec<u8>,
    ) -> Result<&'a [u8], StoreError> {
        match self {
            Backing::Lazy(file) => {
                // Grow-only: a reused scratch buffer is overwritten in
                // place by the pread, so same-size frames (the common
                // case — every sealed chunk holds CHUNK_ROWS rows)
                // cost zero allocation and zero memset after the
                // first.
                if scratch.len() < len {
                    scratch.resize(len, 0);
                }
                read_at_or_trunc(file, &mut scratch[..len], off, "frame")?;
                Ok(&scratch[..len])
            }
            Backing::Buf(buf) => slice_at(buf, off, len),
            #[cfg(unix)]
            Backing::Map(m) => slice_at(m.bytes(), off, len),
        }
    }

    /// Frame fetch fused with its checksum. On the `pread` backing
    /// the frame is fetched in 256 KiB blocks and each block is
    /// CRC'd while still cache-hot from the copy — one trip through
    /// DRAM instead of two for a multi-megabyte frame. The in-memory
    /// backings just checksum the borrowed slice.
    fn frame_crc<'a>(
        &'a self,
        off: u64,
        len: usize,
        scratch: &'a mut Vec<u8>,
    ) -> Result<(&'a [u8], u32), StoreError> {
        match self {
            Backing::Lazy(file) => {
                const BLOCK: usize = 256 << 10;
                if scratch.len() < len {
                    scratch.resize(len, 0);
                }
                let mut state = !0u32;
                let mut done = 0;
                while done < len {
                    let n = BLOCK.min(len - done);
                    let block = &mut scratch[done..done + n];
                    read_at_or_trunc(file, block, off + done as u64, "frame")?;
                    state = crc32_raw(state, block);
                    done += n;
                }
                Ok((&scratch[..len], !state))
            }
            _ => {
                let payload = self.bytes(off, len, scratch)?;
                Ok((payload, crc32(payload)))
            }
        }
    }
}

fn slice_at(buf: &[u8], off: u64, len: usize) -> Result<&[u8], StoreError> {
    let start = usize::try_from(off).map_err(|_| trunc("frame", off))?;
    start
        .checked_add(len)
        .filter(|&end| end <= buf.len())
        .map(|end| &buf[start..end])
        .ok_or_else(|| trunc("frame", off))
}

#[cfg(unix)]
fn read_exact_at(file: &File, buf: &mut [u8], off: u64) -> io::Result<()> {
    std::os::unix::fs::FileExt::read_exact_at(file, buf, off)
}

#[cfg(not(unix))]
fn read_exact_at(file: &File, buf: &mut [u8], off: u64) -> io::Result<()> {
    // No pread outside unix: fall back to seek + read on a clone of
    // the handle so `&File` callers still work.
    use std::io::Read;
    let mut f = file.try_clone()?;
    f.seek(SeekFrom::Start(off))?;
    f.read_exact(buf)
}

// ── Store reader ────────────────────────────────────────────────────

/// An opened store file: directory, intern tables, flows, and tails
/// resident; chunk frames decoded on demand by
/// [`read_chunk`](Self::read_chunk).
#[derive(Debug)]
pub struct ColumnarStore {
    backing: Backing,
    path: std::path::PathBuf,
    dir: Vec<DirEntry>,
    footer_crc: u32,
    /// Frame payload bytes fetched from the backing so far — the
    /// read-counting witness that pruned chunks (and, through the
    /// segmented store, whole skipped segments) are never touched.
    frame_bytes: std::sync::atomic::AtomicU64,
    strings: Interner,
    fps: DigestInterner,
    flows: Vec<RevRow>,
    truncated: u64,
    total_rows: u64,
    total_connections: u64,
}

impl ColumnarStore {
    /// Opens `path` with lazy positioned reads: only the footer
    /// becomes resident, and [`read_chunk`](Self::read_chunk) `pread`s
    /// one frame at a time — peak memory stays near one decoded chunk
    /// per reading thread regardless of file size.
    pub fn open(path: &Path) -> Result<ColumnarStore, StoreError> {
        Self::open_inner(path).map_err(|e| e.with_path(path))
    }

    fn open_inner(path: &Path) -> Result<ColumnarStore, StoreError> {
        let file = File::open(path)?;
        let file_len = file.metadata()?.len();
        let mut header = [0u8; HEADER_LEN as usize];
        if file_len < HEADER_LEN {
            return Err(trunc("header", file_len));
        }
        read_at_or_trunc(&file, &mut header, 0, "header")?;
        let footer_off = check_header(&header)?;
        if footer_off < HEADER_LEN || footer_off > file_len {
            return Err(trunc("footer offset", footer_off));
        }
        let footer_len = usize::try_from(file_len - footer_off)
            .map_err(|_| trunc("footer", footer_off))?;
        let mut footer = vec![0u8; footer_len];
        read_at_or_trunc(&file, &mut footer, footer_off, "footer")?;
        Self::from_parts(Backing::Lazy(file), footer_off, &footer, path)
    }

    /// Opens `path` mapping the whole file read-only (best for
    /// repeated random access); when `mmap` is unavailable the entire
    /// file is read into memory instead, so the API degrades
    /// gracefully rather than failing.
    pub fn open_mmap(path: &Path) -> Result<ColumnarStore, StoreError> {
        Self::open_mmap_inner(path).map_err(|e| e.with_path(path))
    }

    fn open_mmap_inner(path: &Path) -> Result<ColumnarStore, StoreError> {
        let file = File::open(path)?;
        let file_len = file.metadata()?.len();
        let len = usize::try_from(file_len).map_err(|_| trunc("file length", file_len))?;
        #[cfg(unix)]
        if let Some(m) = map::Mmap::new(&file, len) {
            return Self::open_buflike(Backing::Map(m), len, path);
        }
        let mut buf = vec![0u8; len];
        read_exact_at(&file, &mut buf, 0)?;
        Self::open_buflike(Backing::Buf(buf), len, path)
    }

    fn open_buflike(backing: Backing, len: usize, path: &Path) -> Result<ColumnarStore, StoreError> {
        let mut scratch = Vec::new();
        if (len as u64) < HEADER_LEN {
            return Err(trunc("header", len as u64));
        }
        let header = backing.bytes(0, HEADER_LEN as usize, &mut scratch)?;
        let footer_off = check_header(header)?;
        if footer_off < HEADER_LEN || footer_off > len as u64 {
            return Err(trunc("footer offset", footer_off));
        }
        let footer_len = len - footer_off as usize;
        let mut fscratch = Vec::new();
        let footer = backing.bytes(footer_off, footer_len, &mut fscratch)?;
        let footer = footer.to_vec();
        Self::from_parts(backing, footer_off, &footer, path)
    }

    /// Parses and validates the footer, producing the opened store.
    fn from_parts(
        backing: Backing,
        footer_off: u64,
        footer: &[u8],
        path: &Path,
    ) -> Result<ColumnarStore, StoreError> {
        if footer.len() < 4 {
            return Err(trunc("footer", footer_off + footer.len() as u64));
        }
        let (body, crc_bytes) = footer.split_at(footer.len() - 4);
        let want = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        if crc32(body) != want {
            return Err(StoreError::ChecksumMismatch { chunk: None, path: String::new() });
        }

        let mut r = Reader::at(body, "footer directory", footer_off);
        let chunk_count = r.u64()?;
        let mut dir = Vec::new();
        for _ in 0..chunk_count {
            let offset = r.u64()?;
            let len = r.u64()?;
            let rows = r.u32()?;
            let crc = r.u32()?;
            let min_time = r.i64()?;
            let max_time = r.i64()?;
            let words = r.u32()? as usize;
            let device_bits = r.u64s(words)?;
            // Frames must live strictly between the header and the
            // footer, and claim a length consistent with their row
            // count — this bounds every later allocation by the real
            // file size.
            if offset < HEADER_LEN || len > footer_off || offset > footer_off - len {
                return Err(StoreError::Corrupt("chunk frame outside frame region"));
            }
            if ROW_BYTES * rows as u64 + 8 > len {
                return Err(StoreError::Corrupt("chunk frame shorter than its row count"));
            }
            dir.push(DirEntry {
                offset,
                len,
                rows,
                crc,
                min_time,
                max_time,
                device_bits,
            });
        }

        r.context = "footer string table";
        let mut strings = Interner::new();
        let string_count = r.u32()?;
        for _ in 0..string_count {
            let len = r.u32()? as usize;
            let bytes = r.take(len)?;
            let s = std::str::from_utf8(bytes)
                .map_err(|_| StoreError::Corrupt("string table is not UTF-8"))?;
            strings.intern(s);
        }

        r.context = "footer digest table";
        let mut fps = DigestInterner::new();
        let fp_count = r.u32()?;
        for _ in 0..fp_count {
            let bytes: [u8; 16] = r.take(16)?.try_into().unwrap();
            fps.intern(FingerprintId(bytes));
        }

        r.context = "footer flow table";
        let mut flows = Vec::new();
        let flow_count = r.u32()?;
        for _ in 0..flow_count {
            let time = r.i64()?;
            let device = r.u32()?;
            let kind = match r.u8()? {
                0 => RevocationKind::CrlFetch,
                1 => RevocationKind::OcspQuery,
                _ => return Err(StoreError::Corrupt("unknown revocation kind")),
            };
            let url = r.u32()?;
            let count = r.u64()?;
            if device as usize >= strings.len() || url as usize >= strings.len() {
                return Err(StoreError::Corrupt("flow symbol outside string table"));
            }
            flows.push(RevRow {
                time,
                device: Symbol(device),
                kind,
                url: Symbol(url),
                count,
            });
        }

        r.context = "footer tails";
        let truncated = r.u64()?;
        let total_rows = r.u64()?;
        let total_connections = r.u64()?;
        r.done()?;

        Ok(ColumnarStore {
            backing,
            path: path.to_path_buf(),
            dir,
            footer_crc: want,
            frame_bytes: std::sync::atomic::AtomicU64::new(0),
            strings,
            fps,
            flows,
            truncated,
            total_rows,
            total_connections,
        })
    }

    /// Number of chunk frames.
    pub fn chunk_count(&self) -> usize {
        self.dir.len()
    }

    /// Rows in frame `i` (directory metadata; no frame read).
    pub fn chunk_rows(&self, i: usize) -> usize {
        self.dir[i].rows as usize
    }

    /// The shared string table.
    pub fn strings(&self) -> &Interner {
        &self.strings
    }

    /// The shared fingerprint table.
    pub fn fps(&self) -> &DigestInterner {
        &self.fps
    }

    /// Revocation endpoint flows.
    pub fn revocation_flows(&self) -> &[RevRow] {
        &self.flows
    }

    /// Truncated-capture tally.
    pub fn truncated(&self) -> u64 {
        self.truncated
    }

    /// Total rows across all frames (footer tail; no frame reads).
    pub fn total_rows(&self) -> u64 {
        self.total_rows
    }

    /// Total weighted connections (footer tail; no frame reads).
    pub fn total_connections(&self) -> u64 {
        self.total_connections
    }

    /// The path this store was opened from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// CRC-32C of the footer body as stored on disk. Every frame CRC
    /// lives inside the footer, so this one word fingerprints the
    /// file's entire content — the segmented store manifest records
    /// it to bind directory entries to their immutable segments.
    pub fn footer_crc(&self) -> u32 {
        self.footer_crc
    }

    /// Frame payload bytes fetched from the backing since open — the
    /// read-counting proof that pruned chunks are never touched.
    pub fn frame_bytes_read(&self) -> u64 {
        self.frame_bytes.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Frame payload bytes the whole file holds (directory sum; no
    /// frame reads).
    pub fn frame_bytes_total(&self) -> u64 {
        self.dir.iter().map(|e| e.len).sum()
    }

    /// Chunk indices whose time range overlaps `[from, to]` and —
    /// when `device` is given — whose device bitmap contains it.
    /// Pruning works entirely off the directory: skipped chunks are
    /// never read from disk, let alone decoded.
    pub fn select_chunks(&self, from: i64, to: i64, device: Option<Symbol>) -> Vec<usize> {
        self.dir
            .iter()
            .enumerate()
            .filter(|(_, e)| {
                let time_ok = e.min_time <= to && e.max_time >= from;
                let device_ok = match device {
                    None => true,
                    Some(d) => {
                        let (word, bit) = (d.index() / 64, d.index() % 64);
                        e.device_bits.get(word).is_some_and(|&w| (w >> bit) & 1 == 1)
                    }
                };
                time_ok && device_ok
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Reads, CRC-checks, decodes, and validates frame `i`.
    pub fn read_chunk(&self, i: usize) -> Result<ObsChunk, StoreError> {
        self.read_chunk_with(i, &mut Vec::new())
    }

    /// [`read_chunk`](Self::read_chunk) with a caller-owned pread
    /// buffer. A loop that walks many frames through one scratch
    /// vector pays for the frame-sized allocation once instead of
    /// per chunk — the buffer is grow-only and overwritten in place.
    pub fn read_chunk_with(&self, i: usize, scratch: &mut Vec<u8>) -> Result<ObsChunk, StoreError> {
        self.read_frame(i, scratch).map_err(|e| e.with_path(&self.path))
    }

    fn read_frame(&self, i: usize, scratch: &mut Vec<u8>) -> Result<ObsChunk, StoreError> {
        let entry = self
            .dir
            .get(i)
            .ok_or(StoreError::Corrupt("chunk index out of range"))?;
        let len = usize::try_from(entry.len).map_err(|_| trunc("frame", entry.offset))?;
        let (payload, crc) = self.backing.frame_crc(entry.offset, len, scratch)?;
        self.frame_bytes
            .fetch_add(entry.len, std::sync::atomic::Ordering::Relaxed);
        if crc != entry.crc {
            return Err(StoreError::ChecksumMismatch { chunk: Some(i as u32), path: String::new() });
        }
        decode_chunk(payload, entry, self.strings.len() as u32, self.fps.len() as u32)
    }

    /// Materializes the whole store as an in-memory dataset.
    pub fn to_dataset(&self) -> Result<ColumnarDataset, StoreError> {
        let mut chunks = Vec::with_capacity(self.dir.len());
        let mut scratch = Vec::new();
        for i in 0..self.dir.len() {
            chunks.push(self.read_chunk_with(i, &mut scratch)?);
        }
        Ok(ColumnarDataset {
            strings: self.strings.clone(),
            fps: self.fps.clone(),
            chunks,
            revocation_flows: self.flows.clone(),
            truncated: self.truncated,
        })
    }
}

// ── Chunk-store abstraction ─────────────────────────────────────────

/// Uniform read interface over a chunk-granular persistent store —
/// one self-contained file ([`ColumnarStore`]) or a directory of
/// immutable segments
/// ([`SegmentedStore`](crate::segstore::SegmentedStore)). Analysis
/// code (`analyze_store` in the engine crate) is generic over this
/// trait, so both layouts share one sharded, byte-identical fold.
/// `Sync` is a supertrait because readers are shared across scoped
/// worker threads.
pub trait ChunkStore: Sync {
    /// Number of chunk frames across the whole store.
    fn chunk_count(&self) -> usize;
    /// Rows in chunk `i` (directory metadata; no frame read).
    fn chunk_rows(&self, i: usize) -> usize;
    /// Number of underlying segment files (1 for a single-file store).
    fn segment_count(&self) -> usize;
    /// Index of the segment holding chunk `i`.
    fn segment_of(&self, i: usize) -> usize;
    /// Reads, CRC-checks, decodes, and validates chunk `i` through a
    /// caller-owned scratch buffer.
    fn read_chunk_with(&self, i: usize, scratch: &mut Vec<u8>) -> Result<ObsChunk, StoreError>;
    /// Chunk indices whose time range overlaps `[from, to]` and —
    /// when `device` is given — whose device bitmap contains it.
    /// Directory-only: skipped chunks are never read from disk.
    fn select_chunks(&self, from: i64, to: i64, device: Option<Symbol>) -> Vec<usize>;
    /// The store-wide string table.
    fn strings(&self) -> &Interner;
    /// The store-wide fingerprint table.
    fn fps(&self) -> &DigestInterner;
    /// Revocation endpoint flows, in capture order.
    fn revocation_flows(&self) -> &[RevRow];
    /// Truncated-capture tally.
    fn truncated(&self) -> u64;
    /// Total rows across all chunks (no frame reads).
    fn total_rows(&self) -> u64;
    /// Total weighted connections (no frame reads).
    fn total_connections(&self) -> u64;
    /// Frame payload bytes fetched from disk so far.
    fn frame_bytes_read(&self) -> u64;
    /// Frame payload bytes across the whole store.
    fn frame_bytes_total(&self) -> u64;
}

impl ChunkStore for ColumnarStore {
    fn chunk_count(&self) -> usize {
        ColumnarStore::chunk_count(self)
    }
    fn chunk_rows(&self, i: usize) -> usize {
        ColumnarStore::chunk_rows(self, i)
    }
    fn segment_count(&self) -> usize {
        1
    }
    fn segment_of(&self, _i: usize) -> usize {
        0
    }
    fn read_chunk_with(&self, i: usize, scratch: &mut Vec<u8>) -> Result<ObsChunk, StoreError> {
        ColumnarStore::read_chunk_with(self, i, scratch)
    }
    fn select_chunks(&self, from: i64, to: i64, device: Option<Symbol>) -> Vec<usize> {
        ColumnarStore::select_chunks(self, from, to, device)
    }
    fn strings(&self) -> &Interner {
        ColumnarStore::strings(self)
    }
    fn fps(&self) -> &DigestInterner {
        ColumnarStore::fps(self)
    }
    fn revocation_flows(&self) -> &[RevRow] {
        ColumnarStore::revocation_flows(self)
    }
    fn truncated(&self) -> u64 {
        ColumnarStore::truncated(self)
    }
    fn total_rows(&self) -> u64 {
        ColumnarStore::total_rows(self)
    }
    fn total_connections(&self) -> u64 {
        ColumnarStore::total_connections(self)
    }
    fn frame_bytes_read(&self) -> u64 {
        ColumnarStore::frame_bytes_read(self)
    }
    fn frame_bytes_total(&self) -> u64 {
        ColumnarStore::frame_bytes_total(self)
    }
}

/// Validates the fixed header, returning the footer offset.
fn check_header(header: &[u8]) -> Result<u64, StoreError> {
    if header[..8] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
    if version != VERSION {
        return Err(StoreError::UnsupportedVersion(version));
    }
    Ok(u64::from_le_bytes(header[12..20].try_into().unwrap()))
}

/// Decodes one CRC-verified frame payload, validating every index:
/// span columns must land inside their pools, symbol columns inside
/// the intern tables (`NO_SYM` allowed where the schema is optional).
fn decode_chunk(
    payload: &[u8],
    entry: &DirEntry,
    string_count: u32,
    fp_count: u32,
) -> Result<ObsChunk, StoreError> {
    let n = entry.rows as usize;
    let mut r = Reader::new(payload, "chunk frame");
    let time = r.i64s(n)?;
    let device = r.u32s(n)?;
    let destination = r.u32s(n)?;
    let sni = r.u32s(n)?;
    let fingerprint = r.u32s(n)?;
    let leaf_issuer = r.u32s(n)?;
    let max_adv = r.u16s(n)?;
    let neg_version = r.u16s(n)?;
    let neg_suite = r.u16s(n)?;
    let flags = r.take(n)?.to_vec();
    let count = r.u64s(n)?;
    let adv_versions = r.spans(n)?;
    let suites = r.spans(n)?;
    let alerts_c2s = r.spans(n)?;
    let alerts_s2c = r.spans(n)?;
    let pool_u16_len = r.u32()? as usize;
    let pool_u16 = r.u16s(pool_u16_len)?;
    let pool_u8_len = r.u32()? as usize;
    let pool_u8 = r.take(pool_u8_len)?.to_vec();
    r.done()?;

    let sym_ok = |col: &[u32]| col.iter().all(|&s| s < string_count);
    let opt_sym_ok = |col: &[u32]| col.iter().all(|&s| s == NO_SYM || s < string_count);
    if !sym_ok(&device) || !sym_ok(&destination) {
        return Err(StoreError::Corrupt("row symbol outside string table"));
    }
    if !opt_sym_ok(&sni) || !opt_sym_ok(&leaf_issuer) {
        return Err(StoreError::Corrupt("optional symbol outside string table"));
    }
    if !fingerprint.iter().all(|&f| f < fp_count) {
        return Err(StoreError::Corrupt("fingerprint outside digest table"));
    }
    let span_ok = |spans: &[(u32, u16)], pool_len: usize| {
        spans
            .iter()
            .all(|&(off, len)| (off as usize).checked_add(len as usize).is_some_and(|e| e <= pool_len))
    };
    if !span_ok(&adv_versions, pool_u16.len()) || !span_ok(&suites, pool_u16.len()) {
        return Err(StoreError::Corrupt("u16 span outside pool"));
    }
    if !span_ok(&alerts_c2s, pool_u8.len()) || !span_ok(&alerts_s2c, pool_u8.len()) {
        return Err(StoreError::Corrupt("u8 span outside pool"));
    }

    Ok(ObsChunk {
        time,
        device,
        destination,
        sni,
        fingerprint,
        adv_versions,
        max_adv,
        suites,
        neg_version,
        neg_suite,
        leaf_issuer,
        alerts_c2s,
        alerts_s2c,
        flags,
        count,
        pool_u16,
        pool_u8,
        min_time: entry.min_time,
        max_time: entry.max_time,
        device_bits: entry.device_bits.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_crc32c_check_value() {
        // The standard CRC-32C (Castagnoli) check vector.
        assert_eq!(crc32(b"123456789"), 0xE306_9283);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc_kernels_agree_with_bytewise_at_every_alignment() {
        fn bytewise(bytes: &[u8]) -> u32 {
            let mut c = 0xFFFF_FFFFu32;
            for &b in bytes {
                c = CRC_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
            }
            !c
        }
        let data: Vec<u8> = (0..1024u32).map(|i| (i.wrapping_mul(31) >> 3) as u8).collect();
        for len in [0, 1, 7, 8, 9, 63, 64, 65, 1000, 1024] {
            // crc32() picks the hardware kernel when available, the
            // software slicing-by-8 kernel otherwise; both must match
            // the definitional byte-at-a-time loop.
            assert_eq!(crc32(&data[..len]), bytewise(&data[..len]), "len {len}");
            assert_eq!(!crc32_sw(!0, &data[..len]), bytewise(&data[..len]), "sw len {len}");
        }
    }

    #[test]
    fn streaming_crc_update_matches_one_shot() {
        let data: Vec<u8> = (0..4096u32).map(|i| (i.wrapping_mul(131) >> 2) as u8).collect();
        for split in [0, 1, 9, 100, 4095, 4096] {
            let mut state = !0u32;
            state = crc32_raw(state, &data[..split]);
            state = crc32_raw(state, &data[split..]);
            assert_eq!(!state, crc32(&data), "split {split}");
        }
    }
}
