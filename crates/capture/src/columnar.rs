//! Chunked struct-of-arrays storage for the passive dataset.
//!
//! The row-oriented [`PassiveDataset`] carries an owned `String` per
//! observation field; at the paper's ≥10M-connection scale that is
//! gigabytes of duplicated hostnames. This module stores the same
//! information as ~64k-row columnar chunks over shared intern tables:
//!
//! * fixed-width columns (times, symbols, wire code points, flags,
//!   counts) — one `Vec` per field, ~65 bytes per row;
//! * variable-length fields (offered suites, advertised versions,
//!   alert lists) live in per-chunk pools, deduplicated so the
//!   handful of distinct ClientHello shapes is stored once per chunk;
//! * per-chunk pruning metadata: min/max observation time and a
//!   device bitmap, letting per-device or per-window scans skip
//!   whole chunks without touching a row.
//!
//! Converting to and from the row form is lossless — `to_rows` /
//! `from_rows` roundtrip byte-identically through the JSON exporter —
//! so the columnar pipeline can be checked against the legacy path
//! at seed scale while running in bounded memory at paper scale.

use crate::dataset::{PassiveDataset, RevocationFlow, RevocationKind, WeightedObservation};
use crate::intern::{DigestInterner, Interner, Symbol};
use iotls_simnet::TlsObservation;
use iotls_tls::alert::AlertDescription;
use iotls_tls::version::ProtocolVersion;
use iotls_x509::Timestamp;
use std::collections::HashMap;

/// Target rows per sealed chunk.
pub const CHUNK_ROWS: usize = 65_536;

/// Sentinel for "absent" in optional symbol columns.
const NO_SYM: u32 = u32::MAX;

/// Counters for the columnar pipeline: rows written, chunks sealed,
/// pool-dedup effectiveness, and bitmap-pruning effectiveness. Plain
/// data so per-lane partials merge in roster order;
/// [`export`](Self::export) folds them into a metrics registry under
/// `capture.*`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ColumnarStats {
    /// Rows appended across all chunks.
    pub rows_written: u64,
    /// Chunks sealed (taken out of the writer).
    pub chunks_sealed: u64,
    /// Variable-length u16 spans served from the dedup pool.
    pub pool_u16_hits: u64,
    /// Variable-length u16 spans newly appended to the pool.
    pub pool_u16_appends: u64,
    /// Variable-length u8 spans served from the dedup pool.
    pub pool_u8_hits: u64,
    /// Variable-length u8 spans newly appended to the pool.
    pub pool_u8_appends: u64,
    /// Chunks whose rows a pruned scan actually visited.
    pub chunks_scanned: u64,
    /// Chunks a pruned scan skipped via bitmap/time metadata.
    pub chunks_pruned: u64,
}

impl ColumnarStats {
    /// Field-wise accumulation (for aggregating across lanes).
    pub fn merge(&mut self, other: &ColumnarStats) {
        self.rows_written += other.rows_written;
        self.chunks_sealed += other.chunks_sealed;
        self.pool_u16_hits += other.pool_u16_hits;
        self.pool_u16_appends += other.pool_u16_appends;
        self.pool_u8_hits += other.pool_u8_hits;
        self.pool_u8_appends += other.pool_u8_appends;
        self.chunks_scanned += other.chunks_scanned;
        self.chunks_pruned += other.chunks_pruned;
    }

    /// Folds the counters into a metrics registry under `<prefix>.*`
    /// (e.g. `capture.lane` for per-lane builders, `capture.merge`
    /// for the sequential merge builder). Zero counters are omitted.
    pub fn export(&self, reg: &mut iotls_obs::Registry, prefix: &str) {
        reg.add(&format!("{prefix}.rows.written"), self.rows_written);
        reg.add(&format!("{prefix}.chunks.sealed"), self.chunks_sealed);
        reg.add(&format!("{prefix}.pool.u16.dedup_hits"), self.pool_u16_hits);
        reg.add(&format!("{prefix}.pool.u16.appends"), self.pool_u16_appends);
        reg.add(&format!("{prefix}.pool.u8.dedup_hits"), self.pool_u8_hits);
        reg.add(&format!("{prefix}.pool.u8.appends"), self.pool_u8_appends);
        reg.add(&format!("{prefix}.chunks.scanned"), self.chunks_scanned);
        reg.add(&format!("{prefix}.chunks.pruned"), self.chunks_pruned);
    }
}

/// Row flag bits.
mod flag {
    pub const REQUESTED_OCSP: u8 = 1;
    pub const OCSP_STAPLED: u8 = 2;
    pub const ESTABLISHED: u8 = 4;
    pub const HAS_NEG_SUITE: u8 = 8;
}

/// One columnar chunk of observations. Symbol columns index the
/// owning dataset's intern tables; variable-length columns are
/// `(offset, len)` spans into the chunk's local pools.
///
/// Fields are `pub(crate)` so [`crate::store`] can serialize the
/// columns verbatim; outside the crate only the row/metadata API is
/// visible.
#[derive(Debug, Clone)]
pub struct ObsChunk {
    pub(crate) time: Vec<i64>,
    pub(crate) device: Vec<u32>,
    pub(crate) destination: Vec<u32>,
    pub(crate) sni: Vec<u32>,
    pub(crate) fingerprint: Vec<u32>,
    pub(crate) adv_versions: Vec<(u32, u16)>,
    pub(crate) max_adv: Vec<u16>,
    pub(crate) suites: Vec<(u32, u16)>,
    pub(crate) neg_version: Vec<u16>,
    pub(crate) neg_suite: Vec<u16>,
    pub(crate) leaf_issuer: Vec<u32>,
    pub(crate) alerts_c2s: Vec<(u32, u16)>,
    pub(crate) alerts_s2c: Vec<(u32, u16)>,
    pub(crate) flags: Vec<u8>,
    pub(crate) count: Vec<u64>,
    pub(crate) pool_u16: Vec<u16>,
    pub(crate) pool_u8: Vec<u8>,
    pub(crate) min_time: i64,
    pub(crate) max_time: i64,
    pub(crate) device_bits: Vec<u64>,
}

impl Default for ObsChunk {
    fn default() -> Self {
        ObsChunk {
            time: Vec::new(),
            device: Vec::new(),
            destination: Vec::new(),
            sni: Vec::new(),
            fingerprint: Vec::new(),
            adv_versions: Vec::new(),
            max_adv: Vec::new(),
            suites: Vec::new(),
            neg_version: Vec::new(),
            neg_suite: Vec::new(),
            leaf_issuer: Vec::new(),
            alerts_c2s: Vec::new(),
            alerts_s2c: Vec::new(),
            flags: Vec::new(),
            count: Vec::new(),
            pool_u16: Vec::new(),
            pool_u8: Vec::new(),
            min_time: i64::MAX,
            max_time: i64::MIN,
            device_bits: Vec::new(),
        }
    }
}

impl ObsChunk {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.time.len()
    }

    /// True when no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.time.is_empty()
    }

    /// Earliest observation time (pruning metadata).
    pub fn min_time(&self) -> i64 {
        self.min_time
    }

    /// Latest observation time (pruning metadata).
    pub fn max_time(&self) -> i64 {
        self.max_time
    }

    /// True when the chunk holds at least one row for `device`
    /// (bitmap test; no row is touched).
    pub fn has_device(&self, device: Symbol) -> bool {
        let (word, bit) = (device.index() / 64, device.index() % 64);
        self.device_bits
            .get(word)
            .is_some_and(|w| w & (1u64 << bit) != 0)
    }

    /// True when [min, max] observation time intersects `[from, to]`.
    pub fn overlaps(&self, from: i64, to: i64) -> bool {
        !self.is_empty() && self.min_time <= to && self.max_time >= from
    }

    /// Total connections this chunk's rows represent.
    pub fn connections(&self) -> u64 {
        self.count.iter().sum()
    }

    /// A copy of this chunk with every observation time shifted by
    /// `dt` seconds (pruning metadata included). This is how a
    /// replayed capture epoch is laid down as a later acquisition
    /// period when building a multi-year segmented corpus.
    pub fn shifted(&self, dt: i64) -> ObsChunk {
        let mut c = self.clone();
        for t in &mut c.time {
            *t += dt;
        }
        if !c.is_empty() {
            c.min_time += dt;
            c.max_time += dt;
        }
        c
    }

    /// Symbol-level view of row `i`.
    pub fn row(&self, i: usize) -> RawRow<'_> {
        debug_assert!(i < self.len());
        RawRow { chunk: self, i }
    }

    /// All rows, in insertion order.
    pub fn rows(&self) -> impl Iterator<Item = RawRow<'_>> {
        (0..self.len()).map(move |i| self.row(i))
    }

    fn span_u16(&self, (off, len): (u32, u16)) -> &[u16] {
        &self.pool_u16[off as usize..off as usize + len as usize]
    }

    fn span_u8(&self, (off, len): (u32, u16)) -> &[u8] {
        &self.pool_u8[off as usize..off as usize + len as usize]
    }
}

/// A borrowed, symbol-level view of one chunk row.
#[derive(Clone, Copy)]
pub struct RawRow<'a> {
    chunk: &'a ObsChunk,
    i: usize,
}

impl<'a> RawRow<'a> {
    /// Observation time (unix seconds).
    pub fn time(self) -> i64 {
        self.chunk.time[self.i]
    }

    /// Device name symbol.
    pub fn device(self) -> Symbol {
        Symbol(self.chunk.device[self.i])
    }

    /// Destination hostname symbol.
    pub fn destination(self) -> Symbol {
        Symbol(self.chunk.destination[self.i])
    }

    /// SNI hostname symbol, when one was sent.
    pub fn sni(self) -> Option<Symbol> {
        match self.chunk.sni[self.i] {
            NO_SYM => None,
            s => Some(Symbol(s)),
        }
    }

    /// Fingerprint digest index (into the dataset's digest table).
    pub fn fingerprint_id(self) -> u32 {
        self.chunk.fingerprint[self.i]
    }

    /// Advertised protocol versions (wire values, in order).
    pub fn advertised_wire(self) -> &'a [u16] {
        self.chunk.span_u16(self.chunk.adv_versions[self.i])
    }

    /// Maximum advertised version (wire value).
    pub fn max_advertised_wire(self) -> u16 {
        self.chunk.max_adv[self.i]
    }

    /// Offered ciphersuites, in order.
    pub fn suites(self) -> &'a [u16] {
        self.chunk.span_u16(self.chunk.suites[self.i])
    }

    /// Negotiated version wire value, when a ServerHello arrived.
    pub fn negotiated_version_wire(self) -> Option<u16> {
        match self.chunk.neg_version[self.i] {
            0 => None,
            v => Some(v),
        }
    }

    /// Negotiated suite, when a ServerHello arrived.
    pub fn negotiated_suite(self) -> Option<u16> {
        if self.chunk.flags[self.i] & flag::HAS_NEG_SUITE != 0 {
            Some(self.chunk.neg_suite[self.i])
        } else {
            None
        }
    }

    /// Leaf issuer CN symbol, when a certificate crossed the wire.
    pub fn leaf_issuer(self) -> Option<Symbol> {
        match self.chunk.leaf_issuer[self.i] {
            NO_SYM => None,
            s => Some(Symbol(s)),
        }
    }

    /// Alert codes seen client→server.
    pub fn alerts_c2s(self) -> &'a [u8] {
        self.chunk.span_u8(self.chunk.alerts_c2s[self.i])
    }

    /// Alert codes seen server→client.
    pub fn alerts_s2c(self) -> &'a [u8] {
        self.chunk.span_u8(self.chunk.alerts_s2c[self.i])
    }

    /// Whether the ClientHello requested an OCSP staple.
    pub fn requested_ocsp(self) -> bool {
        self.chunk.flags[self.i] & flag::REQUESTED_OCSP != 0
    }

    /// Whether the server stapled an OCSP response.
    pub fn ocsp_stapled(self) -> bool {
        self.chunk.flags[self.i] & flag::OCSP_STAPLED != 0
    }

    /// Whether the connection reached application data.
    pub fn established(self) -> bool {
        self.chunk.flags[self.i] & flag::ESTABLISHED != 0
    }

    /// Connections this row represents.
    pub fn count(self) -> u64 {
        self.chunk.count[self.i]
    }
}

/// Borrowed input for one row push. Symbols must come from the
/// destination dataset's intern tables.
#[derive(Debug, Clone, Copy)]
pub struct RowView<'a> {
    /// Observation time (unix seconds).
    pub time: i64,
    /// Device name symbol.
    pub device: Symbol,
    /// Destination hostname symbol.
    pub destination: Symbol,
    /// SNI symbol, when sent.
    pub sni: Option<Symbol>,
    /// Fingerprint digest index.
    pub fingerprint: u32,
    /// Advertised versions (wire values).
    pub advertised_wire: &'a [u16],
    /// Maximum advertised version (wire value).
    pub max_advertised_wire: u16,
    /// Offered ciphersuites.
    pub suites: &'a [u16],
    /// Negotiated version wire value.
    pub negotiated_version_wire: Option<u16>,
    /// Negotiated suite.
    pub negotiated_suite: Option<u16>,
    /// Leaf issuer CN symbol.
    pub leaf_issuer: Option<Symbol>,
    /// Alert codes client→server.
    pub alerts_c2s: &'a [u8],
    /// Alert codes server→client.
    pub alerts_s2c: &'a [u8],
    /// OCSP staple requested.
    pub requested_ocsp: bool,
    /// OCSP staple served.
    pub ocsp_stapled: bool,
    /// Reached application data.
    pub established: bool,
    /// Connections represented.
    pub count: u64,
}

/// Builds chunks row by row, deduplicating variable-length spans
/// against the chunk's pools.
#[derive(Debug, Default)]
pub struct ChunkWriter {
    chunk: ObsChunk,
    dedupe_u16: HashMap<Box<[u16]>, (u32, u16)>,
    dedupe_u8: HashMap<Box<[u8]>, (u32, u16)>,
    stats: ColumnarStats,
}

impl ChunkWriter {
    /// A fresh writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rows in the open chunk.
    pub fn len(&self) -> usize {
        self.chunk.len()
    }

    /// True when the open chunk has no rows.
    pub fn is_empty(&self) -> bool {
        self.chunk.is_empty()
    }

    /// True when the open chunk reached [`CHUNK_ROWS`].
    pub fn is_full(&self) -> bool {
        self.chunk.len() >= CHUNK_ROWS
    }

    /// Interns `items` on behalf of `n` identical rows: the span
    /// lookup happens once, while the dedup counters advance exactly
    /// as if the rows had been pushed one at a time.
    fn intern_u16_n(&mut self, items: &[u16], n: u64) -> (u32, u16) {
        if items.is_empty() {
            return (0, 0);
        }
        if let Some(&span) = self.dedupe_u16.get(items) {
            self.stats.pool_u16_hits += n;
            return span;
        }
        self.stats.pool_u16_appends += 1;
        self.stats.pool_u16_hits += n - 1;
        let span = (self.chunk.pool_u16.len() as u32, items.len() as u16);
        self.chunk.pool_u16.extend_from_slice(items);
        self.dedupe_u16.insert(items.into(), span);
        span
    }

    /// [`intern_u16_n`](Self::intern_u16_n) for the u8 pool.
    fn intern_u8_n(&mut self, items: &[u8], n: u64) -> (u32, u16) {
        if items.is_empty() {
            return (0, 0);
        }
        if let Some(&span) = self.dedupe_u8.get(items) {
            self.stats.pool_u8_hits += n;
            return span;
        }
        self.stats.pool_u8_appends += 1;
        self.stats.pool_u8_hits += n - 1;
        let span = (self.chunk.pool_u8.len() as u32, items.len() as u16);
        self.chunk.pool_u8.extend_from_slice(items);
        self.dedupe_u8.insert(items.into(), span);
        span
    }

    /// Appends one row.
    pub fn push(&mut self, row: &RowView<'_>) {
        self.push_repeated(row, 1);
    }

    /// Appends `n` copies of one row — columns, pools, dedup
    /// counters, and pruning metadata all byte-identical to calling
    /// [`push`](Self::push) `n` times, but the span lookups happen
    /// once and the fixed-width columns are bulk-filled. The caller
    /// handles chunk capacity (the writer never seals on its own), so
    /// `n` should not push the open chunk past [`CHUNK_ROWS`] unless
    /// an oversized chunk is intended.
    pub fn push_repeated(&mut self, row: &RowView<'_>, n: usize) {
        if n == 0 {
            return;
        }
        let reps = n as u64;
        let adv = self.intern_u16_n(row.advertised_wire, reps);
        let suites = self.intern_u16_n(row.suites, reps);
        let a_c2s = self.intern_u8_n(row.alerts_c2s, reps);
        let a_s2c = self.intern_u8_n(row.alerts_s2c, reps);
        let c = &mut self.chunk;
        let len = c.time.len() + n;
        c.time.resize(len, row.time);
        c.device.resize(len, row.device.0);
        c.destination.resize(len, row.destination.0);
        c.sni.resize(len, row.sni.map_or(NO_SYM, |s| s.0));
        c.fingerprint.resize(len, row.fingerprint);
        c.adv_versions.resize(len, adv);
        c.max_adv.resize(len, row.max_advertised_wire);
        c.suites.resize(len, suites);
        c.neg_version
            .resize(len, row.negotiated_version_wire.unwrap_or(0));
        c.neg_suite.resize(len, row.negotiated_suite.unwrap_or(0));
        c.leaf_issuer
            .resize(len, row.leaf_issuer.map_or(NO_SYM, |s| s.0));
        c.alerts_c2s.resize(len, a_c2s);
        c.alerts_s2c.resize(len, a_s2c);
        let mut flags = 0u8;
        if row.requested_ocsp {
            flags |= flag::REQUESTED_OCSP;
        }
        if row.ocsp_stapled {
            flags |= flag::OCSP_STAPLED;
        }
        if row.established {
            flags |= flag::ESTABLISHED;
        }
        if row.negotiated_suite.is_some() {
            flags |= flag::HAS_NEG_SUITE;
        }
        c.flags.resize(len, flags);
        c.count.resize(len, row.count);
        c.min_time = c.min_time.min(row.time);
        c.max_time = c.max_time.max(row.time);
        let (word, bit) = (row.device.index() / 64, row.device.index() % 64);
        if c.device_bits.len() <= word {
            c.device_bits.resize(word + 1, 0);
        }
        c.device_bits[word] |= 1u64 << bit;
        self.stats.rows_written += reps;
    }

    /// Seals and returns the open chunk, leaving the writer empty.
    pub fn take(&mut self) -> ObsChunk {
        self.stats.chunks_sealed += 1;
        self.dedupe_u16.clear();
        self.dedupe_u8.clear();
        std::mem::take(&mut self.chunk)
    }

    /// Pipeline counters accumulated across this writer's lifetime
    /// (rows, seals, pool-dedup effectiveness).
    pub fn stats(&self) -> ColumnarStats {
        self.stats
    }
}

/// One revocation-endpoint flow, symbol-interned.
#[derive(Debug, Clone, Copy)]
pub struct RevRow {
    /// When (unix seconds).
    pub time: i64,
    /// Device name symbol.
    pub device: Symbol,
    /// CRL or OCSP.
    pub kind: RevocationKind,
    /// Endpoint URL symbol.
    pub url: Symbol,
    /// Connections that month.
    pub count: u64,
}

/// The passive dataset in columnar form: intern tables plus sealed
/// chunks.
#[derive(Debug, Default)]
pub struct ColumnarDataset {
    /// Shared string table (devices, hostnames, URLs, issuer CNs).
    pub strings: Interner,
    /// Shared fingerprint digest table.
    pub fps: DigestInterner,
    /// Sealed observation chunks, in generation order.
    pub chunks: Vec<ObsChunk>,
    /// Revocation endpoint flows.
    pub revocation_flows: Vec<RevRow>,
    /// Truncated-capture count (see [`PassiveDataset::truncated`]).
    pub truncated: u64,
}

/// A chunk row together with the dataset's intern tables: everything
/// needed to resolve it to strings at the edge.
#[derive(Clone, Copy)]
pub struct ObsRef<'a> {
    /// The symbol-level row.
    pub raw: RawRow<'a>,
    strings: &'a Interner,
    fps: &'a DigestInterner,
}

impl<'a> ObsRef<'a> {
    /// Device name.
    pub fn device_name(&self) -> &'a str {
        self.strings.resolve(self.raw.device())
    }

    /// Destination hostname.
    pub fn destination(&self) -> &'a str {
        self.strings.resolve(self.raw.destination())
    }

    /// SNI hostname, when sent.
    pub fn sni(&self) -> Option<&'a str> {
        self.raw.sni().map(|s| self.strings.resolve(s))
    }

    /// Leaf issuer CN, when seen.
    pub fn leaf_issuer(&self) -> Option<&'a str> {
        self.raw.leaf_issuer().map(|s| self.strings.resolve(s))
    }

    /// Fingerprint digest.
    pub fn fingerprint(&self) -> iotls_tls::fingerprint::FingerprintId {
        self.fps.resolve(self.raw.fingerprint_id())
    }

    /// Materializes the legacy row form (exact inverse of
    /// [`DatasetBuilder::push_obs`]).
    pub fn to_weighted(&self) -> WeightedObservation {
        let raw = self.raw;
        let version = |w: u16| {
            ProtocolVersion::from_wire(w).expect("columns hold only valid version wires")
        };
        WeightedObservation {
            observation: TlsObservation {
                time: Timestamp(raw.time()),
                device: self.device_name().to_string(),
                destination: self.destination().to_string(),
                sni: self.sni().map(str::to_string),
                advertised_versions: raw.advertised_wire().iter().map(|w| version(*w)).collect(),
                max_advertised: version(raw.max_advertised_wire()),
                offered_suites: raw.suites().to_vec(),
                requested_ocsp: raw.requested_ocsp(),
                fingerprint: self.fingerprint(),
                negotiated_version: raw.negotiated_version_wire().map(version),
                negotiated_suite: raw.negotiated_suite(),
                ocsp_stapled: raw.ocsp_stapled(),
                leaf_issuer: self.leaf_issuer().map(str::to_string),
                established: raw.established(),
                alerts_from_client: raw
                    .alerts_c2s()
                    .iter()
                    .map(|a| AlertDescription::from_wire(*a))
                    .collect(),
                alerts_from_server: raw
                    .alerts_s2c()
                    .iter()
                    .map(|a| AlertDescription::from_wire(*a))
                    .collect(),
            },
            count: raw.count(),
        }
    }
}

impl ColumnarDataset {
    /// Total physical rows across all chunks.
    pub fn total_rows(&self) -> usize {
        self.chunks.iter().map(ObsChunk::len).sum()
    }

    /// Total connections represented.
    pub fn total_connections(&self) -> u64 {
        self.chunks
            .iter()
            .map(|c| c.count.iter().sum::<u64>())
            .sum()
    }

    /// All rows in order, with intern tables attached.
    pub fn rows(&self) -> impl Iterator<Item = ObsRef<'_>> {
        self.chunks.iter().flat_map(move |c| {
            c.rows().map(move |raw| ObsRef {
                raw,
                strings: &self.strings,
                fps: &self.fps,
            })
        })
    }

    /// Rows for one device, skipping chunks whose device bitmap
    /// excludes it. Unknown device names yield nothing.
    pub fn device_rows<'a>(&'a self, device: &str) -> impl Iterator<Item = ObsRef<'a>> {
        let sym = self.strings.lookup(device);
        self.chunks
            .iter()
            .filter(move |c| sym.is_some_and(|s| c.has_device(s)))
            .flat_map(move |c| {
                c.rows().filter_map(move |raw| {
                    (Some(raw.device()) == sym).then_some(ObsRef {
                        raw,
                        strings: &self.strings,
                        fps: &self.fps,
                    })
                })
            })
    }

    /// [`ColumnarDataset::device_rows`] that additionally tallies how
    /// many chunks the device-bitmap metadata pruned versus scanned.
    pub fn device_rows_metered<'a>(
        &'a self,
        device: &str,
        stats: &mut ColumnarStats,
    ) -> impl Iterator<Item = ObsRef<'a>> {
        let sym = self.strings.lookup(device);
        for c in &self.chunks {
            if sym.is_some_and(|s| c.has_device(s)) {
                stats.chunks_scanned += 1;
            } else {
                stats.chunks_pruned += 1;
            }
        }
        self.device_rows(device)
    }

    /// Materializes the legacy row-oriented dataset (byte-identical
    /// through the JSON exporter).
    pub fn to_rows(&self) -> PassiveDataset {
        PassiveDataset {
            observations: self.rows().map(|r| r.to_weighted()).collect(),
            revocation_flows: self
                .revocation_flows
                .iter()
                .map(|f| RevocationFlow {
                    time: Timestamp(f.time),
                    device: self.strings.resolve(f.device).to_string(),
                    kind: f.kind,
                    url: self.strings.resolve(f.url).to_string(),
                    count: f.count,
                })
                .collect(),
            truncated: self.truncated,
        }
    }

    /// Converts a row-oriented dataset into columnar form.
    pub fn from_rows(ds: &PassiveDataset) -> ColumnarDataset {
        let mut b = DatasetBuilder::new();
        let mut chunks = Vec::new();
        for w in &ds.observations {
            b.push_obs(&w.observation, w.count, &mut |c| chunks.push(c));
        }
        for f in &ds.revocation_flows {
            b.push_flow(f);
        }
        b.truncated = ds.truncated;
        b.flush(&mut |c| chunks.push(c));
        b.into_dataset(chunks)
    }
}

/// Accumulates rows into sealed chunks plus the shared intern tables
/// and flow/truncation tails. Full chunks are handed to the caller's
/// sink as they seal, so a streaming consumer never holds more than
/// one open chunk in memory.
#[derive(Debug, Default)]
pub struct DatasetBuilder {
    /// String intern table under construction.
    pub strings: Interner,
    /// Digest intern table under construction.
    pub fps: DigestInterner,
    /// Revocation flows gathered so far.
    pub revocation_flows: Vec<RevRow>,
    /// Truncated-capture count.
    pub truncated: u64,
    writer: ChunkWriter,
    scratch_u16: Vec<u16>,
    scratch_c2s: Vec<u8>,
    scratch_s2c: Vec<u8>,
}

impl DatasetBuilder {
    /// A fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one pre-interned row; seals through `sink` when the
    /// open chunk fills.
    pub fn push_row(&mut self, row: &RowView<'_>, sink: &mut dyn FnMut(ObsChunk)) {
        self.writer.push(row);
        if self.writer.is_full() {
            sink(self.writer.take());
        }
    }

    /// Interns an owned observation's strings and appends it.
    pub fn push_obs(
        &mut self,
        obs: &TlsObservation,
        count: u64,
        sink: &mut dyn FnMut(ObsChunk),
    ) {
        self.scratch_u16.clear();
        self.scratch_u16
            .extend(obs.advertised_versions.iter().map(|v| v.wire()));
        self.scratch_c2s.clear();
        self.scratch_c2s
            .extend(obs.alerts_from_client.iter().map(|a| a.wire()));
        self.scratch_s2c.clear();
        self.scratch_s2c
            .extend(obs.alerts_from_server.iter().map(|a| a.wire()));
        let row = RowView {
            time: obs.time.0,
            device: self.strings.intern(&obs.device),
            destination: self.strings.intern(&obs.destination),
            sni: obs.sni.as_deref().map(|s| self.strings.intern(s)),
            fingerprint: self.fps.intern(obs.fingerprint),
            advertised_wire: &self.scratch_u16,
            max_advertised_wire: obs.max_advertised.wire(),
            suites: &obs.offered_suites,
            negotiated_version_wire: obs.negotiated_version.map(|v| v.wire()),
            negotiated_suite: obs.negotiated_suite,
            leaf_issuer: obs.leaf_issuer.as_deref().map(|s| self.strings.intern(s)),
            alerts_c2s: &self.scratch_c2s,
            alerts_s2c: &self.scratch_s2c,
            requested_ocsp: obs.requested_ocsp,
            ocsp_stapled: obs.ocsp_stapled,
            established: obs.established,
            count,
        };
        self.writer.push(&row);
        if self.writer.is_full() {
            sink(self.writer.take());
        }
    }

    /// Interns and appends one revocation flow.
    pub fn push_flow(&mut self, f: &RevocationFlow) {
        let row = RevRow {
            time: f.time.0,
            device: self.strings.intern(&f.device),
            kind: f.kind,
            url: self.strings.intern(&f.url),
            count: f.count,
        };
        self.revocation_flows.push(row);
    }

    /// Seals any partial chunk through `sink`.
    pub fn flush(&mut self, sink: &mut dyn FnMut(ObsChunk)) {
        if !self.writer.is_empty() {
            sink(self.writer.take());
        }
    }

    /// Pipeline counters accumulated by this builder's chunk writer.
    pub fn stats(&self) -> ColumnarStats {
        self.writer.stats()
    }

    /// Finishes into a dataset holding `chunks` (typically everything
    /// the sink collected) plus the builder's tables and tails. Any
    /// still-open rows must be [`DatasetBuilder::flush`]ed first.
    pub fn into_dataset(self, chunks: Vec<ObsChunk>) -> ColumnarDataset {
        debug_assert!(self.writer.is_empty(), "unflushed rows");
        ColumnarDataset {
            strings: self.strings,
            fps: self.fps,
            chunks,
            revocation_flows: self.revocation_flows,
            truncated: self.truncated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotls_tls::fingerprint::FingerprintId;
    use iotls_x509::Month;

    fn obs(device: &str, month: Month, suites: &[u16]) -> TlsObservation {
        TlsObservation {
            time: month.start().plus_days(14),
            device: device.into(),
            destination: "cloud.example".into(),
            sni: Some("cloud.example".into()),
            advertised_versions: vec![ProtocolVersion::Tls11, ProtocolVersion::Tls12],
            max_advertised: ProtocolVersion::Tls12,
            offered_suites: suites.to_vec(),
            requested_ocsp: true,
            fingerprint: FingerprintId([7; 16]),
            negotiated_version: Some(ProtocolVersion::Tls12),
            negotiated_suite: Some(0xc02f),
            ocsp_stapled: false,
            leaf_issuer: Some("SimTrust Root".into()),
            established: true,
            alerts_from_client: vec![AlertDescription::CloseNotify],
            alerts_from_server: vec![],
        }
    }

    fn sample() -> PassiveDataset {
        PassiveDataset {
            observations: vec![
                WeightedObservation {
                    observation: obs("Cam A", Month::new(2018, 1), &[0xc02f, 0x0005]),
                    count: 120,
                },
                WeightedObservation {
                    observation: obs("Cam A", Month::new(2018, 2), &[0xc02f, 0x0005]),
                    count: 80,
                },
                WeightedObservation {
                    observation: obs("Hub B", Month::new(2018, 1), &[0x002f]),
                    count: 33,
                },
            ],
            revocation_flows: vec![RevocationFlow {
                time: Month::new(2018, 1).start().plus_days(3),
                device: "Hub B".into(),
                kind: RevocationKind::CrlFetch,
                url: "http://crl.example/x.crl".into(),
                count: 4,
            }],
            truncated: 2,
        }
    }

    #[test]
    fn row_roundtrip_is_json_identical() {
        let ds = sample();
        let col = ColumnarDataset::from_rows(&ds);
        assert_eq!(col.total_rows(), 3);
        assert_eq!(col.total_connections(), 233);
        assert_eq!(
            crate::serialize::to_json(&col.to_rows()),
            crate::serialize::to_json(&ds)
        );
    }

    #[test]
    fn pools_dedupe_repeated_shapes() {
        let col = ColumnarDataset::from_rows(&sample());
        let chunk = &col.chunks[0];
        // Two "Cam A" rows share advertised + suite spans.
        assert_eq!(chunk.suites[0], chunk.suites[1]);
        assert_eq!(chunk.adv_versions[0], chunk.adv_versions[1]);
        assert_ne!(chunk.suites[0], chunk.suites[2]);
    }

    #[test]
    fn pruning_metadata_matches_contents() {
        let col = ColumnarDataset::from_rows(&sample());
        let chunk = &col.chunks[0];
        let cam = col.strings.lookup("Cam A").unwrap();
        let hub = col.strings.lookup("Hub B").unwrap();
        assert!(chunk.has_device(cam));
        assert!(chunk.has_device(hub));
        assert!(!chunk.has_device(Symbol(500)));
        assert_eq!(chunk.min_time(), Month::new(2018, 1).start().plus_days(14).0);
        assert_eq!(chunk.max_time(), Month::new(2018, 2).start().plus_days(14).0);
        assert!(chunk.overlaps(chunk.min_time(), chunk.min_time()));
        assert!(!chunk.overlaps(0, chunk.min_time() - 1));
    }

    #[test]
    fn device_rows_filters_and_prunes() {
        let col = ColumnarDataset::from_rows(&sample());
        let cam: Vec<u64> = col.device_rows("Cam A").map(|r| r.raw.count()).collect();
        assert_eq!(cam, vec![120, 80]);
        assert_eq!(col.device_rows("Nope").count(), 0);
    }

    #[test]
    fn chunks_seal_at_capacity() {
        let mut b = DatasetBuilder::new();
        let mut chunks = Vec::new();
        let o = obs("Cam A", Month::new(2018, 1), &[0xc02f]);
        for _ in 0..CHUNK_ROWS + 10 {
            b.push_obs(&o, 1, &mut |c| chunks.push(c));
        }
        b.flush(&mut |c| chunks.push(c));
        let ds = b.into_dataset(chunks);
        assert_eq!(ds.chunks.len(), 2);
        assert_eq!(ds.chunks[0].len(), CHUNK_ROWS);
        assert_eq!(ds.chunks[1].len(), 10);
        assert_eq!(ds.total_rows(), CHUNK_ROWS + 10);
        // Interning collapses the repeated strings to one entry each.
        assert_eq!(ds.strings.len(), 3);
        assert_eq!(ds.fps.len(), 1);
    }
}
