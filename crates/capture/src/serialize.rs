//! Dataset (de)serialization — the "publicly available longitudinal
//! TLS handshake data" deliverable, in JSON (via the crate's own
//! dependency-free [`crate::json`] codec).

use crate::columnar::ColumnarDataset;
use crate::dataset::{
    PassiveDataset, RevocationFlow, RevocationKind, WeightedObservation,
};
use crate::json::Json;
use iotls_simnet::TlsObservation;
use iotls_tls::alert::AlertDescription;
use iotls_tls::fingerprint::FingerprintId;
use iotls_tls::version::ProtocolVersion;
use iotls_x509::Timestamp;

/// Serializable mirror of one weighted observation.
#[derive(Debug, PartialEq)]
pub struct ObservationRecord {
    /// Unix seconds.
    pub time: i64,
    /// Device name.
    pub device: String,
    /// Destination hostname.
    pub destination: String,
    /// SNI, if sent.
    pub sni: Option<String>,
    /// Advertised versions (wire values).
    pub advertised_versions: Vec<u16>,
    /// Offered suites.
    pub offered_suites: Vec<u16>,
    /// Requested an OCSP staple.
    pub requested_ocsp: bool,
    /// Fingerprint id (hex).
    pub fingerprint: String,
    /// Negotiated version (wire value).
    pub negotiated_version: Option<u16>,
    /// Negotiated suite.
    pub negotiated_suite: Option<u16>,
    /// Server stapled OCSP.
    pub ocsp_stapled: bool,
    /// Issuer CN of the served leaf certificate.
    pub leaf_issuer: Option<String>,
    /// Reached application data.
    pub established: bool,
    /// Alert codes seen from the client.
    pub alerts_from_client: Vec<u8>,
    /// Alert codes seen from the server.
    pub alerts_from_server: Vec<u8>,
    /// Connections represented.
    pub count: u64,
}

/// Serializable revocation flow.
#[derive(Debug, PartialEq)]
pub struct RevocationRecord {
    /// Unix seconds.
    pub time: i64,
    /// Device name.
    pub device: String,
    /// "crl" or "ocsp".
    pub kind: String,
    /// Endpoint URL.
    pub url: String,
    /// Connections.
    pub count: u64,
}

/// Serializable dataset.
#[derive(Debug, Default)]
pub struct DatasetFile {
    /// Observations.
    pub observations: Vec<ObservationRecord>,
    /// Revocation flows.
    pub revocation_flows: Vec<RevocationRecord>,
    /// Truncated-capture count (absent in older files).
    pub truncated: u64,
}

fn fp_from_hex(s: &str) -> Option<FingerprintId> {
    if s.len() != 32 {
        return None;
    }
    let mut out = [0u8; 16];
    for i in 0..16 {
        out[i] = u8::from_str_radix(&s[i * 2..i * 2 + 2], 16).ok()?;
    }
    Some(FingerprintId(out))
}

fn opt_str(v: &Json) -> Option<Option<String>> {
    match v {
        Json::Null => Some(None),
        Json::Str(s) => Some(Some(s.clone())),
        _ => None,
    }
}

fn opt_u16(v: &Json) -> Option<Option<u16>> {
    match v {
        Json::Null => Some(None),
        other => other.as_u16().map(Some),
    }
}

impl From<&WeightedObservation> for ObservationRecord {
    fn from(w: &WeightedObservation) -> Self {
        let o = &w.observation;
        ObservationRecord {
            time: o.time.0,
            device: o.device.clone(),
            destination: o.destination.clone(),
            sni: o.sni.clone(),
            advertised_versions: o.advertised_versions.iter().map(|v| v.wire()).collect(),
            offered_suites: o.offered_suites.clone(),
            requested_ocsp: o.requested_ocsp,
            fingerprint: o.fingerprint.to_string(),
            negotiated_version: o.negotiated_version.map(|v| v.wire()),
            negotiated_suite: o.negotiated_suite,
            ocsp_stapled: o.ocsp_stapled,
            leaf_issuer: o.leaf_issuer.clone(),
            established: o.established,
            alerts_from_client: o.alerts_from_client.iter().map(|a| a.wire()).collect(),
            alerts_from_server: o.alerts_from_server.iter().map(|a| a.wire()).collect(),
            count: w.count,
        }
    }
}

impl ObservationRecord {
    fn to_value(&self) -> Json {
        Json::Obj(vec![
            ("time".into(), self.time.into()),
            ("device".into(), self.device.as_str().into()),
            ("destination".into(), self.destination.as_str().into()),
            ("sni".into(), self.sni.as_deref().into()),
            (
                "advertised_versions".into(),
                self.advertised_versions.iter().copied().collect(),
            ),
            (
                "offered_suites".into(),
                self.offered_suites.iter().copied().collect(),
            ),
            ("requested_ocsp".into(), self.requested_ocsp.into()),
            ("fingerprint".into(), self.fingerprint.as_str().into()),
            ("negotiated_version".into(), self.negotiated_version.into()),
            ("negotiated_suite".into(), self.negotiated_suite.into()),
            ("ocsp_stapled".into(), self.ocsp_stapled.into()),
            ("leaf_issuer".into(), self.leaf_issuer.as_deref().into()),
            ("established".into(), self.established.into()),
            (
                "alerts_from_client".into(),
                self.alerts_from_client.iter().copied().collect(),
            ),
            (
                "alerts_from_server".into(),
                self.alerts_from_server.iter().copied().collect(),
            ),
            ("count".into(), self.count.into()),
        ])
    }

    fn from_value(v: &Json) -> Option<ObservationRecord> {
        Some(ObservationRecord {
            time: v.get("time")?.as_i64()?,
            device: v.get("device")?.as_str()?.to_string(),
            destination: v.get("destination")?.as_str()?.to_string(),
            sni: opt_str(v.get("sni")?)?,
            advertised_versions: v
                .get("advertised_versions")?
                .as_arr()?
                .iter()
                .map(Json::as_u16)
                .collect::<Option<_>>()?,
            offered_suites: v
                .get("offered_suites")?
                .as_arr()?
                .iter()
                .map(Json::as_u16)
                .collect::<Option<_>>()?,
            requested_ocsp: v.get("requested_ocsp")?.as_bool()?,
            fingerprint: v.get("fingerprint")?.as_str()?.to_string(),
            negotiated_version: opt_u16(v.get("negotiated_version")?)?,
            negotiated_suite: opt_u16(v.get("negotiated_suite")?)?,
            ocsp_stapled: v.get("ocsp_stapled")?.as_bool()?,
            leaf_issuer: opt_str(v.get("leaf_issuer")?)?,
            established: v.get("established")?.as_bool()?,
            alerts_from_client: v
                .get("alerts_from_client")?
                .as_arr()?
                .iter()
                .map(Json::as_u8)
                .collect::<Option<_>>()?,
            alerts_from_server: v
                .get("alerts_from_server")?
                .as_arr()?
                .iter()
                .map(Json::as_u8)
                .collect::<Option<_>>()?,
            count: v.get("count")?.as_u64()?,
        })
    }

    /// Converts back to the in-memory form. Returns `None` for
    /// malformed records (unknown versions, bad fingerprints).
    pub fn to_weighted(&self) -> Option<WeightedObservation> {
        let advertised: Option<Vec<ProtocolVersion>> = self
            .advertised_versions
            .iter()
            .map(|v| ProtocolVersion::from_wire(*v))
            .collect();
        let advertised = advertised?;
        let max = advertised.iter().copied().max()?;
        Some(WeightedObservation {
            observation: TlsObservation {
                time: Timestamp(self.time),
                device: self.device.clone(),
                destination: self.destination.clone(),
                sni: self.sni.clone(),
                advertised_versions: advertised,
                max_advertised: max,
                offered_suites: self.offered_suites.clone(),
                requested_ocsp: self.requested_ocsp,
                fingerprint: fp_from_hex(&self.fingerprint)?,
                negotiated_version: match self.negotiated_version {
                    Some(v) => Some(ProtocolVersion::from_wire(v)?),
                    None => None,
                },
                negotiated_suite: self.negotiated_suite,
                ocsp_stapled: self.ocsp_stapled,
                leaf_issuer: self.leaf_issuer.clone(),
                established: self.established,
                alerts_from_client: self
                    .alerts_from_client
                    .iter()
                    .map(|a| AlertDescription::from_wire(*a))
                    .collect(),
                alerts_from_server: self
                    .alerts_from_server
                    .iter()
                    .map(|a| AlertDescription::from_wire(*a))
                    .collect(),
            },
            count: self.count,
        })
    }
}

impl RevocationRecord {
    fn to_value(&self) -> Json {
        Json::Obj(vec![
            ("time".into(), self.time.into()),
            ("device".into(), self.device.as_str().into()),
            ("kind".into(), self.kind.as_str().into()),
            ("url".into(), self.url.as_str().into()),
            ("count".into(), self.count.into()),
        ])
    }

    fn from_value(v: &Json) -> Option<RevocationRecord> {
        Some(RevocationRecord {
            time: v.get("time")?.as_i64()?,
            device: v.get("device")?.as_str()?.to_string(),
            kind: v.get("kind")?.as_str()?.to_string(),
            url: v.get("url")?.as_str()?.to_string(),
            count: v.get("count")?.as_u64()?,
        })
    }
}

/// Serializes a dataset to JSON.
pub fn to_json(dataset: &PassiveDataset) -> String {
    let observations: Vec<ObservationRecord> =
        dataset.observations.iter().map(Into::into).collect();
    let revocation_flows: Vec<RevocationRecord> = dataset
        .revocation_flows
        .iter()
        .map(|f| RevocationRecord {
            time: f.time.0,
            device: f.device.clone(),
            kind: match f.kind {
                RevocationKind::CrlFetch => "crl".into(),
                RevocationKind::OcspQuery => "ocsp".into(),
            },
            url: f.url.clone(),
            count: f.count,
        })
        .collect();
    Json::Obj(vec![
        (
            "observations".into(),
            observations.iter().map(|r| r.to_value()).collect(),
        ),
        (
            "revocation_flows".into(),
            revocation_flows.iter().map(|r| r.to_value()).collect(),
        ),
        ("truncated".into(), dataset.truncated.into()),
    ])
    .encode()
}

/// Serializes a columnar dataset to JSON, byte-identical to
/// `to_json(&ds.to_rows())` — but straight off the chunks, without
/// materializing the `String`-heavy row vector first.
pub fn to_json_columnar(ds: &ColumnarDataset) -> String {
    let observations: Vec<Json> = ds
        .rows()
        .map(|r| {
            Json::Obj(vec![
                ("time".into(), r.raw.time().into()),
                ("device".into(), r.device_name().into()),
                ("destination".into(), r.destination().into()),
                ("sni".into(), r.sni().into()),
                (
                    "advertised_versions".into(),
                    r.raw.advertised_wire().iter().copied().collect(),
                ),
                (
                    "offered_suites".into(),
                    r.raw.suites().iter().copied().collect(),
                ),
                ("requested_ocsp".into(), r.raw.requested_ocsp().into()),
                ("fingerprint".into(), r.fingerprint().to_string().as_str().into()),
                (
                    "negotiated_version".into(),
                    r.raw.negotiated_version_wire().into(),
                ),
                ("negotiated_suite".into(), r.raw.negotiated_suite().into()),
                ("ocsp_stapled".into(), r.raw.ocsp_stapled().into()),
                ("leaf_issuer".into(), r.leaf_issuer().into()),
                ("established".into(), r.raw.established().into()),
                (
                    "alerts_from_client".into(),
                    r.raw.alerts_c2s().iter().copied().collect(),
                ),
                (
                    "alerts_from_server".into(),
                    r.raw.alerts_s2c().iter().copied().collect(),
                ),
                ("count".into(), r.raw.count().into()),
            ])
        })
        .collect();
    let revocation_flows: Vec<Json> = ds
        .revocation_flows
        .iter()
        .map(|f| {
            Json::Obj(vec![
                ("time".into(), f.time.into()),
                ("device".into(), ds.strings.resolve(f.device).into()),
                (
                    "kind".into(),
                    match f.kind {
                        RevocationKind::CrlFetch => "crl".into(),
                        RevocationKind::OcspQuery => "ocsp".into(),
                    },
                ),
                ("url".into(), ds.strings.resolve(f.url).into()),
                ("count".into(), f.count.into()),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("observations".into(), observations.into_iter().collect()),
        (
            "revocation_flows".into(),
            revocation_flows.into_iter().collect(),
        ),
        ("truncated".into(), ds.truncated.into()),
    ])
    .encode()
}

/// Parses a dataset from JSON. Returns `None` on malformed input.
pub fn from_json(json: &str) -> Option<PassiveDataset> {
    let root = Json::parse(json)?;
    let observations: Option<Vec<WeightedObservation>> = root
        .get("observations")?
        .as_arr()?
        .iter()
        .map(|v| ObservationRecord::from_value(v)?.to_weighted())
        .collect();
    let revocation_flows: Option<Vec<RevocationFlow>> = root
        .get("revocation_flows")?
        .as_arr()?
        .iter()
        .map(|v| {
            let r = RevocationRecord::from_value(v)?;
            Some(RevocationFlow {
                time: Timestamp(r.time),
                device: r.device,
                kind: match r.kind.as_str() {
                    "crl" => RevocationKind::CrlFetch,
                    "ocsp" => RevocationKind::OcspQuery,
                    _ => return None,
                },
                url: r.url,
                count: r.count,
            })
        })
        .collect();
    // Older files predate the truncated counter; treat absent as 0.
    let truncated = match root.get("truncated") {
        Some(v) => v.as_u64()?,
        None => 0,
    };
    Some(PassiveDataset {
        observations: observations?,
        revocation_flows: revocation_flows?,
        truncated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotls_tls::fingerprint::Fingerprint;

    fn sample() -> PassiveDataset {
        let fp = Fingerprint {
            version: 0x0303,
            ciphers: vec![0xc02f, 0x0005],
            extensions: vec![0, 10],
            groups: vec![29],
            point_formats: vec![0],
        };
        PassiveDataset {
            observations: vec![WeightedObservation {
                observation: TlsObservation {
                    time: Timestamp(1_546_300_800),
                    device: "Test Device".into(),
                    destination: "x.example".into(),
                    sni: Some("x.example".into()),
                    advertised_versions: vec![
                        ProtocolVersion::Tls11,
                        ProtocolVersion::Tls12,
                    ],
                    max_advertised: ProtocolVersion::Tls12,
                    offered_suites: vec![0xc02f, 0x0005],
                    requested_ocsp: true,
                    fingerprint: fp.id(),
                    negotiated_version: Some(ProtocolVersion::Tls12),
                    negotiated_suite: Some(0xc02f),
                    ocsp_stapled: true,
                    leaf_issuer: Some("SimTrust Global Root CA 001".into()),
                    established: true,
                    alerts_from_client: vec![AlertDescription::UnknownCa],
                    alerts_from_server: vec![],
                },
                count: 1234,
            }],
            revocation_flows: vec![RevocationFlow {
                time: Timestamp(1_546_387_200),
                device: "Test Device".into(),
                kind: RevocationKind::OcspQuery,
                url: "http://ocsp.example".into(),
                count: 7,
            }],
            truncated: 3,
        }
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let ds = sample();
        let json = to_json(&ds);
        let back = from_json(&json).unwrap();
        assert_eq!(back.observations.len(), 1);
        let a = &ds.observations[0];
        let b = &back.observations[0];
        assert_eq!(a.count, b.count);
        assert_eq!(a.observation.fingerprint, b.observation.fingerprint);
        assert_eq!(a.observation.advertised_versions, b.observation.advertised_versions);
        assert_eq!(a.observation.alerts_from_client, b.observation.alerts_from_client);
        assert_eq!(a.observation.negotiated_version, b.observation.negotiated_version);
        assert_eq!(back.revocation_flows.len(), 1);
        assert_eq!(back.revocation_flows[0].kind, RevocationKind::OcspQuery);
        assert_eq!(back.truncated, 3);
    }

    #[test]
    fn columnar_export_is_byte_identical() {
        let cds = crate::columnar::ColumnarDataset::from_rows(&sample());
        assert_eq!(to_json_columnar(&cds), to_json(&cds.to_rows()));
        // And at seed scale, against the canonical dataset.
        let global = crate::global_columnar();
        assert_eq!(
            to_json_columnar(global),
            to_json(crate::global_dataset())
        );
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(from_json("not json").is_none());
        assert!(from_json("{\"observations\": [{\"bad\": true}]}").is_none());
    }

    #[test]
    fn missing_truncated_defaults_to_zero() {
        let ds = PassiveDataset::default();
        let json = to_json(&ds).replace(",\"truncated\":0", "");
        let back = from_json(&json).unwrap();
        assert_eq!(back.truncated, 0);
    }

    #[test]
    fn bad_fingerprint_hex_rejected() {
        let ds = sample();
        let json = to_json(&ds).replace(
            &ds.observations[0].observation.fingerprint.to_string(),
            "zz",
        );
        assert!(from_json(&json).is_none());
    }

    #[test]
    fn unknown_revocation_kind_rejected() {
        let json = to_json(&sample()).replace("\"ocsp\"", "\"carrier-pigeon\"");
        assert!(from_json(&json).is_none());
    }
}
