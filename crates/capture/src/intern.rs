//! String and digest interning for the columnar passive dataset.
//!
//! At paper scale the passive pipeline carries tens of millions of
//! rows, but the distinct device names, SNI hostnames, endpoint URLs,
//! issuer CNs, and fingerprint digests number in the hundreds. Rows
//! therefore store fixed-width [`Symbol`]s and resolve them once at
//! the edge; the intern tables are insertion-ordered, so symbol
//! assignment is as deterministic as the row stream that produced it.

use iotls_tls::fingerprint::FingerprintId;
use std::collections::HashMap;

/// A handle to an interned string: a dense index into an [`Interner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(pub u32);

impl Symbol {
    /// The dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An insertion-ordered string intern table.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    strings: Vec<String>,
    index: HashMap<String, u32>,
}

impl Interner {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its (stable) symbol.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&id) = self.index.get(s) {
            return Symbol(id);
        }
        let id = self.strings.len() as u32;
        self.strings.push(s.to_string());
        self.index.insert(s.to_string(), id);
        Symbol(id)
    }

    /// Resolves a symbol back to its string.
    ///
    /// Panics if `sym` did not come from this table.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Looks up a string without interning it.
    pub fn lookup(&self, s: &str) -> Option<Symbol> {
        self.index.get(s).map(|&id| Symbol(id))
    }

    /// Number of distinct strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when no string has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// All interned strings, in insertion (symbol) order.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.strings.iter().map(String::as_str)
    }
}

/// An insertion-ordered intern table for fingerprint digests.
///
/// Digests are 16 bytes; rows hold a 4-byte index instead, and
/// identical ClientHello shapes (the overwhelmingly common case in
/// IoT traffic) share one entry.
#[derive(Debug, Default, Clone)]
pub struct DigestInterner {
    digests: Vec<FingerprintId>,
    index: HashMap<FingerprintId, u32>,
}

impl DigestInterner {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a digest, returning its dense index.
    pub fn intern(&mut self, fp: FingerprintId) -> u32 {
        if let Some(&id) = self.index.get(&fp) {
            return id;
        }
        let id = self.digests.len() as u32;
        self.digests.push(fp);
        self.index.insert(fp, id);
        id
    }

    /// Resolves an index back to the digest.
    pub fn resolve(&self, id: u32) -> FingerprintId {
        self.digests[id as usize]
    }

    /// Number of distinct digests.
    pub fn len(&self) -> usize {
        self.digests.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.digests.is_empty()
    }

    /// All interned digests, in insertion (index) order.
    pub fn iter(&self) -> impl Iterator<Item = FingerprintId> + '_ {
        self.digests.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_ordered() {
        let mut t = Interner::new();
        let a = t.intern("alpha");
        let b = t.intern("beta");
        assert_eq!(t.intern("alpha"), a);
        assert_eq!(a, Symbol(0));
        assert_eq!(b, Symbol(1));
        assert_eq!(t.resolve(a), "alpha");
        assert_eq!(t.resolve(b), "beta");
        assert_eq!(t.len(), 2);
        assert_eq!(t.lookup("beta"), Some(b));
        assert_eq!(t.lookup("gamma"), None);
        assert_eq!(t.iter().collect::<Vec<_>>(), vec!["alpha", "beta"]);
    }

    #[test]
    fn digest_interning_dedupes() {
        let mut t = DigestInterner::new();
        let a = t.intern(FingerprintId([1; 16]));
        let b = t.intern(FingerprintId([2; 16]));
        assert_eq!(t.intern(FingerprintId([1; 16])), a);
        assert_ne!(a, b);
        assert_eq!(t.resolve(a), FingerprintId([1; 16]));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }
}
