//! Segmented persistent store: a directory of immutable segment
//! files plus a small merged manifest.
//!
//! A single [`crate::store`] file is sized for one capture campaign;
//! the "2 years of pcap at the gateway" workload is ingested across
//! many capture days and re-analyzed in slices. The segmented layout
//! scales both axes:
//!
//! ```text
//! store-dir/
//!   MANIFEST          merged directory (atomic rename publish)
//!   seg-000000.seg    a complete, self-contained store file
//!   seg-000001.seg    (header · frames · footer, per crate::store)
//!   …
//! ```
//!
//! Every segment is a full v1 columnar store file — openable on its
//! own by [`ColumnarStore::open`] — whose footer carries the global
//! symbol tables **as of the batch that sealed it**. Symbol tables
//! only ever grow by appending (interning is insertion-ordered), so
//! each earlier segment's tables are a prefix of every later one and
//! the last segment's tables are authoritative for the whole store;
//! [`SegmentedStore::open`] verifies the prefix property. Revocation
//! flows are stored as per-batch deltas (on the batch's last
//! segment) and concatenate in segment order; the truncated tally is
//! a per-batch delta that sums.
//!
//! ```text
//! MANIFEST  magic "IOTLSSM1" · version u32 · segment_count u32
//!           per segment: name (len u16 · bytes)
//!                        · chunks u64 · rows u64 · connections u64
//!                        · min_time i64 · max_time i64
//!                        · words u32 · device_bits words×u64
//!                        · footer_crc u32 · file_len u64
//!           strings_len u32 · fps_len u32
//!           crc32c u32 (over everything above)
//! ```
//!
//! **Append protocol.** [`SegmentedWriter::append`] reopens the
//! store, seeds the global tables and next segment index, and writes
//! the batch's new segment files completely (footers included)
//! before publishing a new `MANIFEST` via write-to-temp +
//! `rename(2)`. Segments are immutable once named by a manifest;
//! append never rewrites one.
//!
//! **Recovery rules.** A crash before the rename leaves the old
//! manifest intact: the half-written segment files exist on disk but
//! are not named by any manifest, so the store reopens cleanly at
//! its last sealed state and the strays are merely counted
//! ([`SegmentedStore::orphan_segments`]). A torn manifest, or a
//! manifest-listed segment that is shorter than its recorded length,
//! is real corruption and surfaces as a typed [`StoreError`] naming
//! the exact file and byte offset — never a panic, never silent data
//! loss. The manifest's `footer_crc` binds each directory entry to
//! its segment's full content (every frame CRC lives inside the
//! footer the CRC covers), so a swapped or rewritten segment is
//! detected without reading its frames.

use crate::columnar::{ColumnarDataset, ObsChunk};
use crate::intern::{DigestInterner, Interner, Symbol};
use crate::store::{
    crc32, put_u64s, trunc, ChunkStore, ColumnarStore, Reader, StoreError, StoreWriter, NO_SYM,
};
use crate::RevRow;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Manifest magic: "IOTLS" + "SM" (segmented manifest) + generation.
const SEG_MAGIC: [u8; 8] = *b"IOTLSSM1";

/// Current manifest format version.
const SEG_VERSION: u32 = 1;

/// File name of the merged directory inside a store directory.
pub const MANIFEST_NAME: &str = "MANIFEST";

/// Default chunk frames per segment before the writer rolls to a new
/// file (~4.3M rows at the sealed chunk size — big enough that the
/// per-segment footer overhead vanishes, small enough that a
/// one-month slice of a multi-year corpus skips most files).
pub const DEFAULT_SEGMENT_CHUNKS: usize = 64;

/// One manifest entry: a segment file plus the directory metadata
/// that lets `select_chunks` prune it without opening a frame.
#[derive(Debug, Clone)]
struct SegmentMeta {
    name: String,
    chunks: u64,
    rows: u64,
    connections: u64,
    min_time: i64,
    max_time: i64,
    device_bits: Vec<u64>,
    footer_crc: u32,
    file_len: u64,
}

/// Segment names are generated (`seg-NNNNNN.seg`) but validated on
/// read so a hostile manifest cannot path-escape the store directory.
fn name_is_safe(name: &str) -> bool {
    !name.is_empty()
        && name != "."
        && name != ".."
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'.' || b == b'_')
}

/// The canonical file name of segment `index`.
fn segment_name(index: u64) -> String {
    format!("seg-{index:06}.seg")
}

/// Parses a canonical segment name back to its index (`None` for
/// foreign files).
fn segment_index(name: &str) -> Option<u64> {
    name.strip_prefix("seg-")?
        .strip_suffix(".seg")?
        .parse()
        .ok()
}

fn encode_manifest(entries: &[SegmentMeta], strings_len: u32, fps_len: u32) -> Vec<u8> {
    let mut b = Vec::new();
    b.extend_from_slice(&SEG_MAGIC);
    b.extend_from_slice(&SEG_VERSION.to_le_bytes());
    b.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for e in entries {
        b.extend_from_slice(&(e.name.len() as u16).to_le_bytes());
        b.extend_from_slice(e.name.as_bytes());
        b.extend_from_slice(&e.chunks.to_le_bytes());
        b.extend_from_slice(&e.rows.to_le_bytes());
        b.extend_from_slice(&e.connections.to_le_bytes());
        b.extend_from_slice(&e.min_time.to_le_bytes());
        b.extend_from_slice(&e.max_time.to_le_bytes());
        b.extend_from_slice(&(e.device_bits.len() as u32).to_le_bytes());
        put_u64s(&mut b, &e.device_bits);
        b.extend_from_slice(&e.footer_crc.to_le_bytes());
        b.extend_from_slice(&e.file_len.to_le_bytes());
    }
    b.extend_from_slice(&strings_len.to_le_bytes());
    b.extend_from_slice(&fps_len.to_le_bytes());
    let crc = crc32(&b);
    b.extend_from_slice(&crc.to_le_bytes());
    b
}

fn parse_manifest(bytes: &[u8]) -> Result<(Vec<SegmentMeta>, u32, u32), StoreError> {
    if bytes.len() < 4 {
        return Err(trunc("manifest", bytes.len() as u64));
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let want = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if crc32(body) != want {
        return Err(StoreError::ChecksumMismatch { chunk: None, path: String::new() });
    }
    let mut r = Reader::new(body, "manifest");
    if r.take(8)? != SEG_MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = r.u32()?;
    if version != SEG_VERSION {
        return Err(StoreError::UnsupportedVersion(version));
    }
    let count = r.u32()?;
    let mut entries = Vec::new();
    for _ in 0..count {
        let name_len = u16::from_le_bytes(r.take(2)?.try_into().unwrap()) as usize;
        let name = std::str::from_utf8(r.take(name_len)?)
            .map_err(|_| StoreError::Corrupt("manifest segment name is not UTF-8"))?
            .to_string();
        if !name_is_safe(&name) {
            return Err(StoreError::Corrupt("manifest segment name is not a safe file name"));
        }
        let chunks = r.u64()?;
        let rows = r.u64()?;
        let connections = r.u64()?;
        let min_time = r.i64()?;
        let max_time = r.i64()?;
        let words = r.u32()? as usize;
        let device_bits = r.u64s(words)?;
        let footer_crc = r.u32()?;
        let file_len = r.u64()?;
        entries.push(SegmentMeta {
            name,
            chunks,
            rows,
            connections,
            min_time,
            max_time,
            device_bits,
            footer_crc,
            file_len,
        });
    }
    let strings_len = r.u32()?;
    let fps_len = r.u32()?;
    r.done()?;
    Ok((entries, strings_len, fps_len))
}

/// True when `small`'s entries are exactly the first entries of
/// `big` — the invariant append-only interning maintains between an
/// earlier segment's tables and a later one's.
fn strings_are_prefix(small: &Interner, big: &Interner) -> bool {
    small.len() <= big.len() && small.iter().zip(big.iter()).all(|(a, b)| a == b)
}

fn fps_are_prefix(small: &DigestInterner, big: &DigestInterner) -> bool {
    small.len() <= big.len() && small.iter().zip(big.iter()).all(|(a, b)| a == b)
}

fn union_bits(into: &mut Vec<u64>, from: &[u64]) {
    if into.len() < from.len() {
        into.resize(from.len(), 0);
    }
    for (a, b) in into.iter_mut().zip(from) {
        *a |= *b;
    }
}

// ── Reader ──────────────────────────────────────────────────────────

struct Segment {
    meta: SegmentMeta,
    store: ColumnarStore,
}

/// An opened segmented store: the manifest and every listed segment's
/// footer resident, chunk frames read on demand. Chunks are numbered
/// globally in segment order, so analysis code shards over one flat
/// index space exactly as it does for a single file.
pub struct SegmentedStore {
    dir: PathBuf,
    segments: Vec<Segment>,
    /// Global chunk index at which each segment starts (cumulative).
    offsets: Vec<usize>,
    strings: Interner,
    fps: DigestInterner,
    flows: Vec<RevRow>,
    truncated: u64,
    total_rows: u64,
    total_connections: u64,
    orphans: usize,
}

impl std::fmt::Debug for SegmentedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentedStore")
            .field("dir", &self.dir)
            .field("segments", &self.segments.len())
            .field("chunks", &self.chunk_count())
            .field("total_rows", &self.total_rows)
            .field("orphans", &self.orphans)
            .finish()
    }
}

impl SegmentedStore {
    /// Opens the store directory at `dir`: reads and verifies the
    /// manifest, opens every listed segment (footer only; frames stay
    /// on disk), checks each segment against its manifest entry
    /// (length, footer CRC, chunk/row/connection counts), and checks
    /// the symbol-table prefix invariant. Segment files on disk that
    /// no manifest entry names — the residue of a torn append — are
    /// ignored and counted in [`orphan_segments`](Self::orphan_segments).
    pub fn open(dir: &Path) -> Result<SegmentedStore, StoreError> {
        let manifest_path = dir.join(MANIFEST_NAME);
        let bytes = fs::read(&manifest_path)?;
        let (metas, strings_len, fps_len) =
            parse_manifest(&bytes).map_err(|e| e.with_path(&manifest_path))?;

        let mut segments = Vec::with_capacity(metas.len());
        let mut offsets = Vec::with_capacity(metas.len());
        let mut flows = Vec::new();
        let mut truncated = 0u64;
        let mut total_rows = 0u64;
        let mut total_connections = 0u64;
        let mut chunks = 0usize;
        for meta in metas {
            let path = dir.join(&meta.name);
            let actual_len = fs::metadata(&path).map(|m| m.len()).map_err(StoreError::Io)?;
            if actual_len < meta.file_len {
                return Err(trunc("segment file", actual_len).with_path(&path));
            }
            let store = ColumnarStore::open(&path)?;
            if store.footer_crc() != meta.footer_crc {
                return Err(StoreError::Corrupt("segment content does not match its manifest entry"));
            }
            if store.chunk_count() as u64 != meta.chunks
                || store.total_rows() != meta.rows
                || store.total_connections() != meta.connections
            {
                return Err(StoreError::Corrupt("segment tails do not match its manifest entry"));
            }
            offsets.push(chunks);
            chunks += store.chunk_count();
            total_rows += store.total_rows();
            total_connections += store.total_connections();
            truncated += store.truncated();
            flows.extend_from_slice(store.revocation_flows());
            segments.push(Segment { meta, store });
        }

        // The last batch's tables are authoritative; every earlier
        // segment's tables must be a prefix of them.
        let (strings, fps) = match segments.last() {
            Some(last) => (last.store.strings().clone(), last.store.fps().clone()),
            None => (Interner::new(), DigestInterner::new()),
        };
        if strings.len() != strings_len as usize || fps.len() != fps_len as usize {
            return Err(StoreError::Corrupt("manifest table sizes do not match the last segment"));
        }
        for seg in &segments {
            if !strings_are_prefix(seg.store.strings(), &strings)
                || !fps_are_prefix(seg.store.fps(), &fps)
            {
                return Err(StoreError::Corrupt(
                    "segment symbol tables are not a prefix of the store's",
                ));
            }
        }

        // Count (but otherwise ignore) segment-shaped files no
        // manifest entry names: clean recovery from a torn append.
        let named: std::collections::HashSet<&str> =
            segments.iter().map(|s| s.meta.name.as_str()).collect();
        let mut orphans = 0usize;
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            if let Some(name) = entry.file_name().to_str() {
                if segment_index(name).is_some() && !named.contains(name) {
                    orphans += 1;
                }
            }
        }

        Ok(SegmentedStore {
            dir: dir.to_path_buf(),
            segments,
            offsets,
            strings,
            fps,
            flows,
            truncated,
            total_rows,
            total_connections,
            orphans,
        })
    }

    /// The directory this store was opened from.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of segment files the manifest names.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Segment-shaped files on disk that the manifest does not name
    /// (residue of an interrupted append; harmless).
    pub fn orphan_segments(&self) -> usize {
        self.orphans
    }

    /// Total chunk frames across all segments.
    pub fn chunk_count(&self) -> usize {
        self.offsets.last().map_or(0, |&o| {
            o + self.segments.last().map_or(0, |s| s.store.chunk_count())
        })
    }

    /// Which segment global chunk `i` lives in.
    pub fn segment_of(&self, i: usize) -> usize {
        debug_assert!(i < self.chunk_count());
        match self.offsets.binary_search(&i) {
            Ok(seg) => seg,
            Err(ins) => ins - 1,
        }
    }

    /// Rows in global chunk `i` (directory metadata; no frame read).
    pub fn chunk_rows(&self, i: usize) -> usize {
        let seg = self.segment_of(i);
        self.segments[seg].store.chunk_rows(i - self.offsets[seg])
    }

    /// The store-wide (authoritative, last-batch) string table.
    pub fn strings(&self) -> &Interner {
        &self.strings
    }

    /// The store-wide fingerprint table.
    pub fn fps(&self) -> &DigestInterner {
        &self.fps
    }

    /// Revocation flows, concatenated in segment (= ingestion) order.
    pub fn revocation_flows(&self) -> &[RevRow] {
        &self.flows
    }

    /// Truncated-capture tally summed over all batches.
    pub fn truncated(&self) -> u64 {
        self.truncated
    }

    /// Total rows across the store (manifest tails; no frame reads).
    pub fn total_rows(&self) -> u64 {
        self.total_rows
    }

    /// Total weighted connections across the store.
    pub fn total_connections(&self) -> u64 {
        self.total_connections
    }

    /// Global chunk indices overlapping `[from, to]` (and containing
    /// `device`, when given). Pruning is two-level: a segment whose
    /// manifest time range or device-bitmap union misses the
    /// predicate is skipped without consulting its directory, then
    /// surviving segments prune chunk-by-chunk off their footers.
    pub fn select_chunks(&self, from: i64, to: i64, device: Option<Symbol>) -> Vec<usize> {
        let mut out = Vec::new();
        for (idx, seg) in self.segments.iter().enumerate() {
            if !segment_matches(&seg.meta, from, to, device) {
                continue;
            }
            let base = self.offsets[idx];
            out.extend(
                seg.store
                    .select_chunks(from, to, device)
                    .into_iter()
                    .map(|i| base + i),
            );
        }
        out
    }

    /// Reads, CRC-checks, decodes, and validates global chunk `i`.
    pub fn read_chunk(&self, i: usize) -> Result<ObsChunk, StoreError> {
        self.read_chunk_with(i, &mut Vec::new())
    }

    /// [`read_chunk`](Self::read_chunk) with a caller-owned scratch
    /// buffer (see [`ColumnarStore::read_chunk_with`]).
    pub fn read_chunk_with(&self, i: usize, scratch: &mut Vec<u8>) -> Result<ObsChunk, StoreError> {
        if i >= self.chunk_count() {
            return Err(StoreError::Corrupt("chunk index out of range"));
        }
        let seg = self.segment_of(i);
        self.segments[seg].store.read_chunk_with(i - self.offsets[seg], scratch)
    }

    /// Frame payload bytes fetched from segment `i` since open — the
    /// per-segment read-counting witness that a pruned slice never
    /// touches skipped segments.
    pub fn segment_bytes_read(&self, i: usize) -> u64 {
        self.segments[i].store.frame_bytes_read()
    }

    /// Frame payload bytes fetched across all segments since open.
    pub fn frame_bytes_read(&self) -> u64 {
        self.segments.iter().map(|s| s.store.frame_bytes_read()).sum()
    }

    /// Frame payload bytes the whole store holds.
    pub fn frame_bytes_total(&self) -> u64 {
        self.segments.iter().map(|s| s.store.frame_bytes_total()).sum()
    }

    /// Materializes the whole store as one in-memory dataset.
    pub fn to_dataset(&self) -> Result<ColumnarDataset, StoreError> {
        let mut chunks = Vec::with_capacity(self.chunk_count());
        let mut scratch = Vec::new();
        for seg in &self.segments {
            for i in 0..seg.store.chunk_count() {
                chunks.push(seg.store.read_chunk_with(i, &mut scratch)?);
            }
        }
        Ok(ColumnarDataset {
            strings: self.strings.clone(),
            fps: self.fps.clone(),
            chunks,
            revocation_flows: self.flows.clone(),
            truncated: self.truncated,
        })
    }
}

/// Segment-level pruning predicate off the manifest entry alone.
fn segment_matches(meta: &SegmentMeta, from: i64, to: i64, device: Option<Symbol>) -> bool {
    let time_ok = meta.min_time <= to && meta.max_time >= from;
    let device_ok = match device {
        None => true,
        Some(d) => {
            let (word, bit) = (d.index() / 64, d.index() % 64);
            meta.device_bits.get(word).is_some_and(|&w| (w >> bit) & 1 == 1)
        }
    };
    time_ok && device_ok
}

impl ChunkStore for SegmentedStore {
    fn chunk_count(&self) -> usize {
        SegmentedStore::chunk_count(self)
    }
    fn chunk_rows(&self, i: usize) -> usize {
        SegmentedStore::chunk_rows(self, i)
    }
    fn segment_count(&self) -> usize {
        SegmentedStore::segment_count(self)
    }
    fn segment_of(&self, i: usize) -> usize {
        SegmentedStore::segment_of(self, i)
    }
    fn read_chunk_with(&self, i: usize, scratch: &mut Vec<u8>) -> Result<ObsChunk, StoreError> {
        SegmentedStore::read_chunk_with(self, i, scratch)
    }
    fn select_chunks(&self, from: i64, to: i64, device: Option<Symbol>) -> Vec<usize> {
        SegmentedStore::select_chunks(self, from, to, device)
    }
    fn strings(&self) -> &Interner {
        SegmentedStore::strings(self)
    }
    fn fps(&self) -> &DigestInterner {
        SegmentedStore::fps(self)
    }
    fn revocation_flows(&self) -> &[RevRow] {
        SegmentedStore::revocation_flows(self)
    }
    fn truncated(&self) -> u64 {
        SegmentedStore::truncated(self)
    }
    fn total_rows(&self) -> u64 {
        SegmentedStore::total_rows(self)
    }
    fn total_connections(&self) -> u64 {
        SegmentedStore::total_connections(self)
    }
    fn frame_bytes_read(&self) -> u64 {
        SegmentedStore::frame_bytes_read(self)
    }
    fn frame_bytes_total(&self) -> u64 {
        SegmentedStore::frame_bytes_total(self)
    }
}

// ── Writer ──────────────────────────────────────────────────────────

/// A segment file being filled: its [`StoreWriter`] stays open until
/// the batch finishes (footers carry the batch's final tables, which
/// are only known then), while the directory metadata accumulates.
struct PendingSegment {
    name: String,
    writer: StoreWriter,
    chunks: u64,
    rows: u64,
    connections: u64,
    min_time: i64,
    max_time: i64,
    device_bits: Vec<u64>,
}

/// Builds or extends a segmented store. One writer = one **batch**
/// (a capture day, an epoch, …): chunks stream in via
/// [`add_chunk`](Self::add_chunk) (or whole datasets via
/// [`append_columnar`](Self::append_columnar)), roll into new segment
/// files every [`DEFAULT_SEGMENT_CHUNKS`] chunks, and the batch is
/// published atomically by [`finish`](Self::finish) /
/// [`finish_batch`](Self::finish_batch). Nothing the batch wrote is
/// visible to readers until the manifest rename; a crash before it
/// leaves only ignorable orphan files.
pub struct SegmentedWriter {
    dir: PathBuf,
    sealed: Vec<SegmentMeta>,
    strings: Interner,
    fps: DigestInterner,
    published_strings: usize,
    published_fps: usize,
    open: Option<PendingSegment>,
    done: Vec<PendingSegment>,
    chunk_limit: usize,
    next_index: u64,
    pending_flows: Vec<RevRow>,
    pending_truncated: u64,
}

impl std::fmt::Debug for SegmentedWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentedWriter")
            .field("dir", &self.dir)
            .field("sealed", &self.sealed.len())
            .field("pending", &(self.done.len() + usize::from(self.open.is_some())))
            .finish()
    }
}

impl SegmentedWriter {
    /// Starts a fresh store at `dir` (creating the directory). Any
    /// existing manifest is removed first, so a crash mid-build
    /// leaves an unreadable store rather than a stale one.
    pub fn create(dir: &Path) -> io::Result<SegmentedWriter> {
        fs::create_dir_all(dir)?;
        let manifest = dir.join(MANIFEST_NAME);
        if manifest.exists() {
            fs::remove_file(&manifest)?;
        }
        Ok(SegmentedWriter {
            dir: dir.to_path_buf(),
            sealed: Vec::new(),
            strings: Interner::new(),
            fps: DigestInterner::new(),
            published_strings: 0,
            published_fps: 0,
            open: None,
            done: Vec::new(),
            chunk_limit: DEFAULT_SEGMENT_CHUNKS,
            next_index: 0,
            pending_flows: Vec::new(),
            pending_truncated: 0,
        })
    }

    /// Reopens the store at `dir` to extend it with a new batch:
    /// the existing manifest is read (and fully verified, as in
    /// [`SegmentedStore::open`]), the global symbol tables are
    /// seeded from it so new chunks intern against the existing
    /// symbols, and new segments number past every file already on
    /// disk (orphans included — they are never overwritten).
    pub fn append(dir: &Path) -> Result<SegmentedWriter, StoreError> {
        let store = SegmentedStore::open(dir)?;
        let mut next_index = 0u64;
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            if let Some(idx) = entry.file_name().to_str().and_then(segment_index) {
                next_index = next_index.max(idx + 1);
            }
        }
        Ok(SegmentedWriter {
            dir: dir.to_path_buf(),
            sealed: store.segments.iter().map(|s| s.meta.clone()).collect(),
            published_strings: store.strings.len(),
            published_fps: store.fps.len(),
            strings: store.strings,
            fps: store.fps,
            open: None,
            done: Vec::new(),
            chunk_limit: DEFAULT_SEGMENT_CHUNKS,
            next_index,
            pending_flows: Vec::new(),
            pending_truncated: 0,
        })
    }

    /// Overrides the segment roll size (chunks per segment file).
    pub fn with_chunk_limit(mut self, chunks: usize) -> SegmentedWriter {
        self.chunk_limit = chunks.max(1);
        self
    }

    /// The global string table as grown so far (seeded from the
    /// store on [`append`](Self::append), extended by
    /// [`append_columnar`](Self::append_columnar)).
    pub fn strings(&self) -> &Interner {
        &self.strings
    }

    /// The global fingerprint table as grown so far.
    pub fn fps(&self) -> &DigestInterner {
        &self.fps
    }

    fn open_segment(&mut self) -> io::Result<&mut PendingSegment> {
        if self.open.is_none() {
            let name = segment_name(self.next_index);
            self.next_index += 1;
            let writer = StoreWriter::create(&self.dir.join(&name))?;
            self.open = Some(PendingSegment {
                name,
                writer,
                chunks: 0,
                rows: 0,
                connections: 0,
                min_time: i64::MAX,
                max_time: i64::MIN,
                device_bits: Vec::new(),
            });
        }
        Ok(self.open.as_mut().expect("segment just opened"))
    }

    /// Appends one sealed chunk (already symbolized against the
    /// global tables — the streaming-generator path). Empty chunks
    /// are skipped. Rolls to a new segment file at the chunk limit.
    pub fn add_chunk(&mut self, chunk: &ObsChunk) -> io::Result<()> {
        if chunk.is_empty() {
            return Ok(());
        }
        let limit = self.chunk_limit as u64;
        let seg = self.open_segment()?;
        seg.writer.add_chunk(chunk)?;
        seg.chunks += 1;
        seg.rows += chunk.len() as u64;
        seg.connections += chunk.connections();
        seg.min_time = seg.min_time.min(chunk.min_time());
        seg.max_time = seg.max_time.max(chunk.max_time());
        union_bits(&mut seg.device_bits, &chunk.device_bits);
        if seg.chunks >= limit {
            self.seal_segment();
        }
        Ok(())
    }

    /// Forces the currently filling segment to roll, so the next
    /// chunk starts a new file — callers use it to align segment
    /// boundaries with ingestion epochs.
    pub fn seal_segment(&mut self) {
        if let Some(seg) = self.open.take() {
            self.done.push(seg);
        }
    }

    /// Appends a whole in-memory dataset, **remapping** its symbols
    /// into the store's global tables (so datasets built with
    /// independent interners — different capture days, different
    /// tools — merge losslessly) and shifting every observation and
    /// flow time by `time_offset` seconds. The dataset's flows and
    /// truncated tally ride along as this batch's deltas.
    pub fn append_columnar(&mut self, ds: &ColumnarDataset, time_offset: i64) -> io::Result<()> {
        let smap: Vec<u32> = ds.strings.iter().map(|s| self.strings.intern(s).0).collect();
        let fmap: Vec<u32> = ds.fps.iter().map(|fp| self.fps.intern(fp)).collect();
        for chunk in &ds.chunks {
            if chunk.is_empty() {
                continue;
            }
            let mut c = chunk.shifted(time_offset);
            for v in &mut c.device {
                *v = smap[*v as usize];
            }
            for v in &mut c.destination {
                *v = smap[*v as usize];
            }
            for v in &mut c.sni {
                if *v != NO_SYM {
                    *v = smap[*v as usize];
                }
            }
            for v in &mut c.leaf_issuer {
                if *v != NO_SYM {
                    *v = smap[*v as usize];
                }
            }
            for v in &mut c.fingerprint {
                *v = fmap[*v as usize];
            }
            // Rebuild the pruning bitmap under the new numbering.
            c.device_bits.clear();
            for &d in &c.device {
                let (word, bit) = (d as usize / 64, d as usize % 64);
                if c.device_bits.len() <= word {
                    c.device_bits.resize(word + 1, 0);
                }
                c.device_bits[word] |= 1u64 << bit;
            }
            self.add_chunk(&c)?;
        }
        for f in &ds.revocation_flows {
            self.pending_flows.push(RevRow {
                time: f.time + time_offset,
                device: Symbol(smap[f.device.index()]),
                kind: f.kind,
                url: Symbol(smap[f.url.index()]),
                count: f.count,
            });
        }
        self.pending_truncated += ds.truncated;
        Ok(())
    }

    /// Publishes the batch with explicitly supplied final tables and
    /// tail deltas (the streaming-generator path, mirroring
    /// [`StoreWriter::finish`]): `strings`/`fps` must extend the
    /// tables the writer was seeded with, `flows`/`truncated` are
    /// this batch's additions. Atomic: the new manifest is written
    /// to a temporary file and renamed over the old one.
    pub fn finish(
        self,
        strings: &Interner,
        fps: &DigestInterner,
        flows: &[RevRow],
        truncated: u64,
    ) -> Result<(), StoreError> {
        self.finish_impl(strings, fps, flows, truncated)
    }

    /// Publishes the batch using the tables the writer grew
    /// internally (the [`append_columnar`](Self::append_columnar)
    /// path, where remapping already interned every symbol).
    pub fn finish_batch(self) -> Result<(), StoreError> {
        let strings = self.strings.clone();
        let fps = self.fps.clone();
        self.finish_impl(&strings, &fps, &[], 0)
    }

    fn finish_impl(
        mut self,
        strings: &Interner,
        fps: &DigestInterner,
        extra_flows: &[RevRow],
        extra_truncated: u64,
    ) -> Result<(), StoreError> {
        if !strings_are_prefix(&self.strings, strings) || !fps_are_prefix(&self.fps, fps) {
            return Err(StoreError::Corrupt("finish tables must extend the store's symbol tables"));
        }
        let mut flows = std::mem::take(&mut self.pending_flows);
        flows.extend_from_slice(extra_flows);
        for f in &flows {
            if f.device.index() >= strings.len() || f.url.index() >= strings.len() {
                return Err(StoreError::Corrupt("flow symbol outside string table"));
            }
        }
        let truncated = self.pending_truncated + extra_truncated;

        self.seal_segment();
        // A batch with no chunks still needs one (empty) segment when
        // it must record tails or table growth — or when the store
        // would otherwise have no segment to carry its tables at all.
        if self.done.is_empty()
            && (self.sealed.is_empty()
                || !flows.is_empty()
                || truncated > 0
                || strings.len() != self.published_strings
                || fps.len() != self.published_fps)
        {
            self.open_segment()?;
            self.seal_segment();
        }

        // Seal every batch segment: full final tables in each footer,
        // the batch's flow/truncated deltas on the last one.
        let done = std::mem::take(&mut self.done);
        let n = done.len();
        for (i, seg) in done.into_iter().enumerate() {
            let last = i + 1 == n;
            let (seg_flows, seg_trunc): (&[RevRow], u64) =
                if last { (&flows, truncated) } else { (&[], 0) };
            let summary = seg.writer.finish(strings, fps, seg_flows, seg_trunc)?;
            self.sealed.push(SegmentMeta {
                name: seg.name,
                chunks: seg.chunks,
                rows: seg.rows,
                connections: seg.connections,
                min_time: seg.min_time,
                max_time: seg.max_time,
                device_bits: seg.device_bits,
                footer_crc: summary.footer_crc,
                file_len: summary.file_len,
            });
        }

        // Atomic publish: readers see the old manifest until the
        // rename, and the rename is all-or-nothing.
        let body = encode_manifest(&self.sealed, strings.len() as u32, fps.len() as u32);
        let tmp = self.dir.join("MANIFEST.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&body)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, self.dir.join(MANIFEST_NAME))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_roundtrips() {
        let entries = vec![SegmentMeta {
            name: segment_name(0),
            chunks: 3,
            rows: 1000,
            connections: 2000,
            min_time: 100,
            max_time: 200,
            device_bits: vec![0b1011],
            footer_crc: 0xDEAD_BEEF,
            file_len: 4096,
        }];
        let bytes = encode_manifest(&entries, 7, 2);
        let (back, strings_len, fps_len) = parse_manifest(&bytes).expect("parse");
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].name, "seg-000000.seg");
        assert_eq!(back[0].rows, 1000);
        assert_eq!(back[0].device_bits, vec![0b1011]);
        assert_eq!(back[0].footer_crc, 0xDEAD_BEEF);
        assert_eq!((strings_len, fps_len), (7, 2));
    }

    #[test]
    fn hostile_segment_names_are_rejected() {
        assert!(name_is_safe("seg-000001.seg"));
        assert!(!name_is_safe(""));
        assert!(!name_is_safe(".."));
        assert!(!name_is_safe("../../etc/passwd"));
        assert!(!name_is_safe("a/b"));
        assert!(!name_is_safe("a\\b"));
    }

    #[test]
    fn segment_names_roundtrip_through_their_index() {
        for idx in [0u64, 1, 42, 999_999, 1_000_000] {
            assert_eq!(segment_index(&segment_name(idx)), Some(idx));
        }
        assert_eq!(segment_index("MANIFEST"), None);
        assert_eq!(segment_index("seg-.seg"), None);
        assert_eq!(segment_index("seg-12"), None);
    }
}
