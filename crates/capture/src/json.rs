//! A minimal JSON value model with an encoder and a recursive-descent
//! parser — just enough for the dataset file format, with no external
//! dependencies so the workspace builds offline.
//!
//! Numbers are integers only (`i128` covers the full `u64` and `i64`
//! ranges the dataset uses); floating-point literals are rejected,
//! which is fine because the format never emits them.

use std::fmt::Write as _;

/// Nesting depth cap for the parser (well above anything the dataset
/// format produces; prevents stack exhaustion on pathological input).
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer number.
    Num(i128),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document; `None` on any syntax error or
    /// trailing garbage.
    pub fn parse(input: &str) -> Option<Json> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos == p.bytes.len() {
            Some(v)
        } else {
            None
        }
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `i64`, if it is one and fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The number as `u64`, if it is one and fits.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The number as `u16`, if it is one and fits.
    pub fn as_u16(&self) -> Option<u16> {
        match self {
            Json::Num(n) => u16::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The number as `u8`, if it is one and fits.
    pub fn as_u8(&self) -> Option<u8> {
        match self {
            Json::Num(n) => u8::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Encodes the value as compact JSON.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => encode_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.encode_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_str(k, out);
                    out.push(':');
                    v.encode_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Num(n as i128)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as i128)
    }
}

impl From<u16> for Json {
    fn from(n: u16) -> Json {
        Json::Num(n as i128)
    }
}

impl From<u8> for Json {
    fn from(n: u8) -> Json {
        Json::Num(n as i128)
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        match v {
            Some(inner) => inner.into(),
            None => Json::Null,
        }
    }
}

impl<T: Into<Json>> FromIterator<T> for Json {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Json {
        Json::Arr(iter.into_iter().map(Into::into).collect())
    }
}

fn encode_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Option<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Some(())
        } else {
            None
        }
    }

    fn literal(&mut self, word: &str) -> Option<()> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Some(())
        } else {
            None
        }
    }

    fn value(&mut self, depth: usize) -> Option<Json> {
        if depth > MAX_DEPTH {
            return None;
        }
        match self.peek()? {
            b'n' => self.literal("null").map(|_| Json::Null),
            b't' => self.literal("true").map(|_| Json::Bool(true)),
            b'f' => self.literal("false").map(|_| Json::Bool(false)),
            b'"' => self.string().map(Json::Str),
            b'[' => self.array(depth),
            b'{' => self.object(depth),
            b'-' | b'0'..=b'9' => self.number(),
            _ => None,
        }
    }

    fn array(&mut self, depth: usize) -> Option<Json> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']').is_some() {
            return Some(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            if self.eat(b',').is_some() {
                continue;
            }
            self.eat(b']')?;
            return Some(Json::Arr(items));
        }
    }

    fn object(&mut self, depth: usize) -> Option<Json> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}').is_some() {
            return Some(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            fields.push((key, self.value(depth + 1)?));
            self.skip_ws();
            if self.eat(b',').is_some() {
                continue;
            }
            self.eat(b'}')?;
            return Some(Json::Obj(fields));
        }
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek()? {
                b'"' => {
                    self.pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek()? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return None,
                    }
                    self.pos += 1;
                }
                b if b < 0x20 => return None,
                _ => {
                    // Consume one UTF-8 scalar (input is valid UTF-8
                    // because it came from &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).ok()?;
                    let c = rest.chars().next()?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (and a following surrogate
    /// pair when needed). Leaves `pos` after the escape.
    fn unicode_escape(&mut self) -> Option<char> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            self.literal("\\u")?;
            let lo = self.hex4()?;
            if !(0xDC00..0xE000).contains(&lo) {
                return None;
            }
            let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            char::from_u32(c)
        } else {
            char::from_u32(hi)
        }
    }

    fn hex4(&mut self) -> Option<u32> {
        let digits = self.bytes.get(self.pos..self.pos + 4)?;
        let s = std::str::from_utf8(digits).ok()?;
        let v = u32::from_str_radix(s, 16).ok()?;
        self.pos += 4;
        Some(v)
    }

    fn number(&mut self) -> Option<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return None;
        }
        // Integer-only format: a fraction or exponent is malformed.
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return None;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).ok()?;
        s.parse::<i128>().ok().map(Json::Num)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Num(0),
            Json::Num(-42),
            Json::Num(u64::MAX as i128),
            Json::Str("hi \"there\"\nline2\ttab\\slash".into()),
            Json::Str("unicode: ✓ 日本語".into()),
        ] {
            assert_eq!(Json::parse(&v.encode()), Some(v));
        }
    }

    #[test]
    fn containers_roundtrip() {
        let v = Json::Obj(vec![
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
            (
                "nested".into(),
                Json::Arr(vec![
                    Json::Num(1),
                    Json::Obj(vec![("k".into(), Json::Null)]),
                ]),
            ),
        ]);
        assert_eq!(Json::parse(&v.encode()), Some(v));
    }

    #[test]
    fn whitespace_tolerated() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("b"), Some(&Json::Null));
    }

    #[test]
    fn escapes_decode() {
        assert_eq!(
            Json::parse(r#""\u0041\u00e9\ud83d\ude00""#),
            Some(Json::Str("Aé😀".into()))
        );
    }

    #[test]
    fn malformed_rejected() {
        for bad in [
            "",
            "not json",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "\"unterminated",
            "1.5",
            "1e3",
            "tru",
            "[1] trailing",
            "\"\\q\"",
            "\"\\ud800\"",
            "nullx",
            "--1",
        ] {
            assert!(Json::parse(bad).is_none(), "accepted malformed: {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_rejected_not_crashed() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(Json::parse(&deep).is_none());
    }
}
