//! The passive dataset: weighted handshake observations plus
//! revocation-endpoint flows, with the aggregate statistics §4.1
//! reports (≈17M connections; per-device mean ≈422K, median ≈138K).

use iotls_simnet::TlsObservation;
use iotls_x509::{Month, Timestamp};

/// One observed connection shape, weighted by how many connections it
/// represents that month (the generator runs one real handshake per
/// distinct configuration and replicates it, which is behaviorally
/// identical for metadata-level analyses).
#[derive(Debug, Clone)]
pub struct WeightedObservation {
    /// The handshake metadata, as the gateway tap reconstructed it.
    pub observation: TlsObservation,
    /// Number of connections this stands for.
    pub count: u64,
}

/// Which revocation mechanism a flow exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RevocationKind {
    /// A CRL distribution point fetch.
    CrlFetch,
    /// An OCSP responder query.
    OcspQuery,
}

/// A device contacting a revocation endpoint (observed as plain
/// HTTP-over-TCP flows at the gateway, as in the paper).
#[derive(Debug, Clone)]
pub struct RevocationFlow {
    /// When.
    pub time: Timestamp,
    /// Which device.
    pub device: String,
    /// CRL or OCSP.
    pub kind: RevocationKind,
    /// Endpoint URL.
    pub url: String,
    /// Connections that month.
    pub count: u64,
}

/// The full passive dataset.
#[derive(Debug, Default)]
pub struct PassiveDataset {
    /// Weighted TLS observations.
    pub observations: Vec<WeightedObservation>,
    /// Revocation endpoint flows.
    pub revocation_flows: Vec<RevocationFlow>,
    /// Sessions whose capture was truncated before a parseable
    /// ClientHello (e.g. cut by an injected fault). Real gateway
    /// captures contain these too; they are counted rather than
    /// silently dropped so generation-side loss is visible.
    pub truncated: u64,
}

/// Aggregate statistics over the dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Total TLS connections represented.
    pub total_connections: u64,
    /// Per-device totals, sorted by device name.
    pub per_device: Vec<(String, u64)>,
    /// Mean connections per device.
    pub mean_per_device: f64,
    /// Median connections per device.
    pub median_per_device: u64,
}

impl PassiveDataset {
    /// Total connections represented.
    pub fn total_connections(&self) -> u64 {
        self.observations.iter().map(|o| o.count).sum()
    }

    /// All observations from one device.
    pub fn device_observations(&self, device: &str) -> Vec<&WeightedObservation> {
        self.observations
            .iter()
            .filter(|o| o.observation.device == device)
            .collect()
    }

    /// All observations in one month bucket.
    pub fn month_observations(&self, month: Month) -> Vec<&WeightedObservation> {
        self.observations
            .iter()
            .filter(|o| o.observation.time.month() == month)
            .collect()
    }

    /// Device names present in the dataset, sorted. Allocates one
    /// `String` per *distinct* device, not per observation.
    pub fn device_names(&self) -> Vec<String> {
        let mut names: Vec<&str> = self
            .observations
            .iter()
            .map(|o| o.observation.device.as_str())
            .collect();
        names.sort_unstable();
        names.dedup();
        names.into_iter().map(String::from).collect()
    }

    /// Aggregate statistics (§4.1).
    pub fn stats(&self) -> DatasetStats {
        let mut per: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
        for o in &self.observations {
            *per.entry(o.observation.device.as_str()).or_insert(0) += o.count;
        }
        let per_device: Vec<(String, u64)> =
            per.into_iter().map(|(d, c)| (d.to_string(), c)).collect();
        let total: u64 = per_device.iter().map(|(_, c)| c).sum();
        let mut counts: Vec<u64> = per_device.iter().map(|(_, c)| *c).collect();
        counts.sort_unstable();
        let median = if counts.is_empty() {
            0
        } else {
            counts[counts.len() / 2]
        };
        DatasetStats {
            total_connections: total,
            mean_per_device: if per_device.is_empty() {
                0.0
            } else {
                total as f64 / per_device.len() as f64
            },
            median_per_device: median,
            per_device,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotls_tls::fingerprint::{Fingerprint, FingerprintId};
    use iotls_tls::version::ProtocolVersion;

    fn obs(device: &str, month: Month) -> TlsObservation {
        let fp: FingerprintId = Fingerprint {
            version: 0x0303,
            ciphers: vec![0xc02f],
            extensions: vec![0],
            groups: vec![],
            point_formats: vec![],
        }
        .id();
        TlsObservation {
            time: month.start().plus_days(14),
            device: device.into(),
            destination: "x.example".into(),
            sni: None,
            advertised_versions: vec![ProtocolVersion::Tls12],
            max_advertised: ProtocolVersion::Tls12,
            offered_suites: vec![0xc02f],
            requested_ocsp: false,
            fingerprint: fp,
            negotiated_version: Some(ProtocolVersion::Tls12),
            negotiated_suite: Some(0xc02f),
            ocsp_stapled: false,
            leaf_issuer: None,
            established: true,
            alerts_from_client: vec![],
            alerts_from_server: vec![],
        }
    }

    fn weighted(device: &str, month: Month, count: u64) -> WeightedObservation {
        WeightedObservation {
            observation: obs(device, month),
            count,
        }
    }

    #[test]
    fn totals_and_filters() {
        let ds = PassiveDataset {
            observations: vec![
                weighted("A", Month::new(2018, 1), 100),
                weighted("A", Month::new(2018, 2), 50),
                weighted("B", Month::new(2018, 1), 10),
            ],
            ..Default::default()
        };
        assert_eq!(ds.total_connections(), 160);
        assert_eq!(ds.device_observations("A").len(), 2);
        assert_eq!(ds.month_observations(Month::new(2018, 1)).len(), 2);
        assert_eq!(ds.device_names(), vec!["A".to_string(), "B".to_string()]);
    }

    #[test]
    fn stats_mean_and_median() {
        let ds = PassiveDataset {
            observations: vec![
                weighted("A", Month::new(2018, 1), 100),
                weighted("B", Month::new(2018, 1), 10),
                weighted("C", Month::new(2018, 1), 40),
            ],
            ..Default::default()
        };
        let s = ds.stats();
        assert_eq!(s.total_connections, 150);
        assert!((s.mean_per_device - 50.0).abs() < 1e-9);
        assert_eq!(s.median_per_device, 40);
        assert_eq!(s.per_device.len(), 3);
    }

    #[test]
    fn empty_dataset_stats() {
        let ds = PassiveDataset::default();
        let s = ds.stats();
        assert_eq!(s.total_connections, 0);
        assert_eq!(s.median_per_device, 0);
    }
}
