//! # iotls-capture
//!
//! Longitudinal passive capture for the IoTLS reproduction.
//!
//! Replays the paper's 27-month study window (January 2018 – March
//! 2020) against the simulated testbed: every device × month ×
//! destination combination is exercised with one real byte-level
//! handshake through the passive gateway tap, weighted by the
//! destination's monthly connection rate. The result is the ≈17M
//! connection dataset that drives Figures 1–3 and Table 8, with JSON
//! (de)serialization for the public-dataset deliverable.

pub mod columnar;
pub mod dataset;
pub mod generate;
pub mod intern;
pub mod json;
pub mod serialize;
pub mod segstore;
pub mod store;
pub mod timeline;

pub use columnar::{
    ChunkWriter, ColumnarDataset, ColumnarStats, DatasetBuilder, ObsChunk, ObsRef, RawRow, RevRow,
    RowView, CHUNK_ROWS,
};
pub use segstore::{SegmentedStore, SegmentedWriter};
pub use store::{ChunkStore, ColumnarStore, StoreError, StoreSummary, StoreWriter};
pub use dataset::{
    DatasetStats, PassiveDataset, RevocationFlow, RevocationKind, WeightedObservation,
};
pub use generate::{generate, generate_columnar, CaptureCtx};
pub use intern::{DigestInterner, Interner, Symbol};
pub use timeline::{build_timeline, StudyEvent};
pub use serialize::{
    from_json, to_json, to_json_columnar, DatasetFile, ObservationRecord, RevocationRecord,
};

use iotls_devices::Testbed;
use std::sync::OnceLock;

/// The canonical dataset seed used by every bench and example.
pub const DEFAULT_SEED: u64 = 0x10AD;

/// The process-wide shared dataset (default seed, global testbed).
pub fn global_dataset() -> &'static PassiveDataset {
    static DS: OnceLock<PassiveDataset> = OnceLock::new();
    DS.get_or_init(|| generate(Testbed::global(), DEFAULT_SEED))
}

/// The process-wide shared columnar dataset (default seed, global
/// testbed). Same rows as [`global_dataset`], columnar form.
pub fn global_columnar() -> &'static ColumnarDataset {
    static DS: OnceLock<ColumnarDataset> = OnceLock::new();
    DS.get_or_init(|| generate_columnar(Testbed::global(), DEFAULT_SEED))
}
