//! # iotls-bench
//!
//! Shared scaffolding for the Criterion benchmark suite. Every bench
//! target regenerates one of the paper's tables or figures — printing
//! the artifact once (the EXPERIMENTS.md source of truth) and then
//! measuring the cost of the underlying computation.

use criterion::Criterion;
use std::time::Duration;

/// The seed every bench uses, so printed artifacts match the
/// documentation byte-for-byte.
pub const BENCH_SEED: u64 = 0xBE7C;

/// A Criterion instance tuned for experiment-scale workloads: few
/// samples, bounded measurement time.
pub fn criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(8))
        .warm_up_time(Duration::from_secs(1))
        .configure_from_args()
}

/// Prints a regenerated artifact with a banner.
pub fn print_artifact(title: &str, body: &str) {
    println!("\n===== {title} =====\n{body}");
}
