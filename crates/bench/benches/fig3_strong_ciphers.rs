//! Figure 3: forward-secrecy establishment heatmap.

use criterion::Criterion;
use iotls::{cipher_series, passive_summary};
use iotls_bench::{criterion, print_artifact};
use iotls_capture::global_dataset;

fn bench(c: &mut Criterion) {
    let ds = global_dataset();
    c.bench_function("fig3/cipher_series", |b| {
        b.iter(|| std::hint::black_box(cipher_series(ds)))
    });
}

fn main() {
    let ds = global_dataset();
    let series = cipher_series(ds);
    let summary = passive_summary(ds);
    let axis = iotls_analysis::month_axis(ds);
    let mut body = iotls_analysis::figures::fig3_strong(&axis, &series);
    body.push_str(&format!(
        "\nDevices advertising forward secrecy: {} of 40 (paper: 33)\n\
         Devices establishing mostly without it: {} (paper: 22)\n",
        summary.devices_advertising_fs.len(),
        summary.devices_mostly_without_fs.len()
    ));
    print_artifact("Figure 3 (regenerated)", &body);
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
