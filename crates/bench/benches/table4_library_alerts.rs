//! Table 4: per-library alert behavior and probe amenability.

use criterion::Criterion;
use iotls_bench::{criterion, print_artifact};
use iotls::library_alert_matrix;

fn bench(c: &mut Criterion) {
    c.bench_function("table4/library_alert_matrix", |b| {
        b.iter(|| std::hint::black_box(library_alert_matrix()))
    });
}

fn main() {
    print_artifact(
        "Table 4 (regenerated)",
        &iotls_analysis::tables::table4_library_alerts(&library_alert_matrix()),
    );
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
