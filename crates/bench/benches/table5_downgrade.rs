//! Table 5: downgrade-on-failure behavior.

use criterion::Criterion;
use iotls::run_downgrade_probe;
use iotls_bench::{criterion, print_artifact, BENCH_SEED};
use iotls_devices::Testbed;

fn bench(c: &mut Criterion) {
    let testbed = Testbed::global();
    // Per-device unit: the Roku probe (both failure modes, 15 boot
    // destinations, fallback retries).
    c.bench_function("table5/probe_one_device", |b| {
        b.iter(|| {
            let mut lab = iotls::ActiveLab::new(testbed, BENCH_SEED);
            let dev = testbed.device("Roku TV");
            std::hint::black_box(
                lab.boot_and_connect(dev, Some(&iotls::InterceptPolicy::Mute)),
            )
        })
    });
}

fn main() {
    let testbed = Testbed::global();
    let rows = run_downgrade_probe(testbed, BENCH_SEED);
    print_artifact(
        "Table 5 (regenerated)",
        &iotls_analysis::tables::table5_downgrades(&rows),
    );
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
