//! Table 3: platform root-store histories. Measures the §4.2
//! common/deprecated probe-set construction.

use criterion::Criterion;
use iotls_bench::{criterion, print_artifact};
use iotls_rootstore::{common_certs, deprecated_certs, probe_time, SimPki};

fn bench(c: &mut Criterion) {
    let pki = SimPki::global();
    c.bench_function("table3/common_set_construction", |b| {
        b.iter(|| {
            std::hint::black_box(common_certs(&pki.universe, &pki.histories, probe_time()))
        })
    });
    c.bench_function("table3/deprecated_set_construction", |b| {
        b.iter(|| {
            std::hint::black_box(deprecated_certs(&pki.universe, &pki.histories, probe_time()))
        })
    });
}

fn main() {
    let pki = SimPki::global();
    print_artifact(
        "Table 3 (regenerated)",
        &format!(
            "{}\nProbe sets: {} common, {} deprecated certificates\n",
            iotls_analysis::tables::table3_platforms(),
            pki.common.len(),
            pki.deprecated.len()
        ),
    );
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
