//! Figure 5: the device-fingerprint-application sharing graph.

use criterion::Criterion;
use iotls::run_fingerprint_survey;
use iotls_analysis::{FingerprintDb, SharingGraph};
use iotls_bench::{criterion, print_artifact, BENCH_SEED};
use iotls_devices::Testbed;

fn bench(c: &mut Criterion) {
    let testbed = Testbed::global();
    let survey = run_fingerprint_survey(testbed, BENCH_SEED);
    let db = FingerprintDb::build(0xDB);
    c.bench_function("fig5/graph_build", |b| {
        b.iter(|| std::hint::black_box(SharingGraph::build(&survey, &db)))
    });
    c.bench_function("fig5/db_build", |b| {
        b.iter(|| std::hint::black_box(FingerprintDb::build(0xDB)))
    });
}

fn main() {
    let testbed = Testbed::global();
    let survey = run_fingerprint_survey(testbed, BENCH_SEED);
    let db = FingerprintDb::build(0xDB);
    let graph = SharingGraph::build(&survey, &db);
    let mut body = format!(
        "{} devices share fingerprints with devices and/or applications (paper: 19)\n\
         {} of 32 devices show multiple fingerprints (paper: 14)\n\n",
        graph.devices().len(),
        survey.devices_with_multiple_instances().len()
    );
    body.push_str(&graph.render());
    print_artifact("Figure 5 (regenerated)", &body);
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
