//! Figure 2: insecure-ciphersuite advertisement heatmap.

use criterion::Criterion;
use iotls::{cipher_series, passive_summary};
use iotls_bench::{criterion, print_artifact};
use iotls_capture::global_dataset;

fn bench(c: &mut Criterion) {
    let ds = global_dataset();
    c.bench_function("fig2/cipher_series", |b| {
        b.iter(|| std::hint::black_box(cipher_series(ds)))
    });
}

fn main() {
    let ds = global_dataset();
    let series = cipher_series(ds);
    let summary = passive_summary(ds);
    let axis = iotls_analysis::month_axis(ds);
    let mut body = iotls_analysis::figures::fig2_insecure(&axis, &series);
    body.push_str(&format!(
        "\nDevices advertising insecure suites: {} of 40 (paper: 34)\n\
         Devices establishing them: {:?} (paper: Wink Hub 2, LG TV)\n",
        summary.devices_advertising_insecure.len(),
        summary.devices_establishing_insecure
    ));
    print_artifact("Figure 2 (regenerated)", &body);
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
