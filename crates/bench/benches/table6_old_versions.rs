//! Table 6: old-version negotiation support.

use criterion::Criterion;
use iotls::run_old_version_scan;
use iotls_bench::{criterion, print_artifact, BENCH_SEED};
use iotls_devices::Testbed;

fn bench(c: &mut Criterion) {
    let testbed = Testbed::global();
    c.bench_function("table6/forced_version_one_device", |b| {
        b.iter(|| {
            let mut lab = iotls::ActiveLab::new(testbed, BENCH_SEED);
            let dev = testbed.device("Wemo Plug");
            std::hint::black_box(lab.boot_and_connect(
                dev,
                Some(&iotls::InterceptPolicy::ForcedVersion(
                    iotls_tls::ProtocolVersion::Tls10,
                )),
            ))
        })
    });
}

fn main() {
    let testbed = Testbed::global();
    let rows = run_old_version_scan(testbed, BENCH_SEED);
    print_artifact(
        "Table 6 (regenerated)",
        &iotls_analysis::tables::table6_old_versions(&rows),
    );
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
