//! Substrate microbenchmarks: raw handshake, record protection, and
//! crypto primitive costs — the budget every experiment spends.

use criterion::Criterion;
use iotls_bench::criterion;
use iotls_crypto::{sha256, Drbg, RsaPrivateKey};
use iotls_simnet::{drive_session, SessionParams};
use iotls_tls::client::{ClientConfig, ClientConnection};
use iotls_tls::server::{ServerConfig, ServerConnection};
use iotls_x509::{CertifiedKey, DistinguishedName, IssueParams, RootStore, Timestamp};

fn bench(c: &mut Criterion) {
    // PKI setup.
    let key = RsaPrivateKey::generate(512, &mut Drbg::from_seed(1));
    let root = CertifiedKey::self_signed(
        IssueParams::ca(
            DistinguishedName::new("Bench Root", "Bench", "US"),
            1,
            Timestamp::from_ymd(2015, 1, 1),
            7300,
        ),
        key,
    );
    let leaf_key = RsaPrivateKey::generate(512, &mut Drbg::from_seed(2));
    let leaf = root.issue(
        IssueParams::leaf("bench.example", 2, Timestamp::from_ymd(2020, 6, 1), 500),
        &leaf_key,
    );
    let roots = RootStore::from_certs([root.cert.clone()]);
    let server_cfg = ServerConfig::typical(vec![leaf], leaf_key);

    c.bench_function("substrate/full_tls13_handshake", |b| {
        b.iter(|| {
            let client = ClientConnection::new(
                ClientConfig::modern(roots.clone()),
                "bench.example",
                Timestamp::from_ymd(2021, 3, 1),
                Drbg::from_seed(3),
            );
            let server = ServerConnection::new(server_cfg.clone(), Drbg::from_seed(4));
            let r = drive_session(
                client,
                server,
                SessionParams {
                    client_payload: Some(b"ping"),
                    server_payload: Some(b"pong"),
                    tap: true,
                    time: Timestamp::from_ymd(2021, 3, 1),
                    device: "bench",
                    destination: "bench.example",
                },
            );
            assert!(r.established);
            std::hint::black_box(r)
        })
    });

    c.bench_function("substrate/rsa_keygen_512", |b| {
        let mut rng = Drbg::from_seed(5);
        b.iter(|| std::hint::black_box(RsaPrivateKey::generate(512, &mut rng)))
    });

    c.bench_function("substrate/sha256_16k", |b| {
        let data = vec![0xabu8; 16_384];
        b.iter(|| std::hint::black_box(sha256(&data)))
    });

    c.bench_function("substrate/rsa_sign_verify", |b| {
        let key = RsaPrivateKey::generate(512, &mut Drbg::from_seed(6));
        b.iter(|| {
            let sig = key.sign(b"bench message");
            key.public_key().verify(b"bench message", &sig).unwrap();
        })
    });
}

fn main() {
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
