//! Table 1: device roster. Measures testbed construction.

use criterion::Criterion;
use iotls_bench::{criterion, print_artifact};
use iotls_devices::Testbed;

fn bench(c: &mut Criterion) {
    // Full testbed construction (PKI shared; devices + cloud built).
    c.bench_function("table1/testbed_build", |b| {
        b.iter(|| std::hint::black_box(Testbed::build()))
    });
}

fn main() {
    let testbed = Testbed::global();
    print_artifact(
        "Table 1 (regenerated)",
        &iotls_analysis::tables::table1_roster(testbed),
    );
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
