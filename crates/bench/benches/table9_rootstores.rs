//! Table 9: root-store exploration via the alert side channel.

use criterion::Criterion;
use iotls::{run_root_probe, InterceptPolicy};
use iotls_bench::{criterion, print_artifact, BENCH_SEED};
use iotls_devices::Testbed;

fn bench(c: &mut Criterion) {
    let testbed = Testbed::global();
    // The unit cost of one spoofed-CA probe (one reboot + one
    // intercepted handshake).
    let target = testbed.pki.universe.get(testbed.pki.common[3]).cert.clone();
    c.bench_function("table9/single_spoofed_ca_probe", |b| {
        b.iter(|| {
            let mut lab = iotls::ActiveLab::new(testbed, BENCH_SEED);
            let dev = testbed.device("Google Home Mini");
            let dest = dev.spec.destinations[0].clone();
            std::hint::black_box(lab.connect(
                dev,
                &dest,
                Some(&InterceptPolicy::SpoofedCa(Box::new(target.clone()))),
            ))
        })
    });
}

fn main() {
    let testbed = Testbed::global();
    let report = run_root_probe(testbed, BENCH_SEED);
    print_artifact(
        "Table 9 (regenerated)",
        &iotls_analysis::tables::table9_rootstores(&report),
    );
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
