//! Ablation: probe scheduling. One reboot per certificate (the
//! paper's design, which keeps the targeted TLS instance stable)
//! versus probing multiple certificates inside one boot burst
//! (cheaper, but different boot connections may come from different
//! instances, corrupting per-store attribution).

use iotls::{ActiveLab, InterceptPolicy};
use iotls_bench::{criterion, print_artifact, BENCH_SEED};
use iotls_devices::Testbed;

fn main() {
    let testbed = Testbed::global();

    // Demonstrate the attribution hazard: within one Fire TV boot,
    // connections come from *different* instances (fingerprints), so
    // batch-probing one boot would mix root stores.
    let mut lab = ActiveLab::new(testbed, BENCH_SEED);
    let dev = testbed.device("Fire TV");
    let outcomes = lab.boot_and_connect(dev, None);
    let fps: std::collections::BTreeSet<_> =
        outcomes.iter().map(|o| o.first_fingerprint).collect();
    print_artifact(
        "Ablation: probe scheduling",
        &format!(
            "One Fire TV boot burst carries {} connections from {} distinct TLS \
             instances.\nBatch-probing inside one boot would attribute probes to the \
             wrong store;\none-reboot-per-certificate (the paper's design) always hits \
             the same first connection.\n",
            outcomes.len(),
            fps.len()
        ),
    );
    assert!(fps.len() > 1);

    let mut c = criterion();
    let target = testbed.pki.universe.get(testbed.pki.common[2]).cert.clone();
    c.bench_function("ablation/one_reboot_per_cert", |b| {
        b.iter(|| {
            let mut lab = ActiveLab::new(testbed, BENCH_SEED);
            let dev = testbed.device("Amazon Echo Dot");
            // Reboot + first-connection probe (the paper's unit).
            if lab.power_cycle(dev) {
                let dest = dev.spec.boot_destinations()[0].clone();
                std::hint::black_box(lab.connect(
                    dev,
                    &dest,
                    Some(&InterceptPolicy::SpoofedCa(Box::new(target.clone()))),
                ));
            }
        })
    });
    c.bench_function("ablation/batched_full_boot", |b| {
        b.iter(|| {
            let mut lab = ActiveLab::new(testbed, BENCH_SEED);
            let dev = testbed.device("Amazon Echo Dot");
            std::hint::black_box(
                lab.boot_and_connect(dev, Some(&InterceptPolicy::SpoofedCa(Box::new(target.clone())))),
            )
        })
    });
    c.final_summary();
}
