//! Figure 4: staleness of deprecated roots still present per device.

use criterion::Criterion;
use iotls::run_root_probe;
use iotls_bench::{criterion, print_artifact, BENCH_SEED};
use iotls_devices::Testbed;
use iotls_rootstore::staleness_histogram;

fn bench(c: &mut Criterion) {
    let testbed = Testbed::global();
    let ids = testbed.pki.deprecated.clone();
    c.bench_function("fig4/staleness_histogram", |b| {
        b.iter(|| std::hint::black_box(staleness_histogram(&testbed.pki.histories, &ids)))
    });
}

fn main() {
    let testbed = Testbed::global();
    let report = run_root_probe(testbed, BENCH_SEED);
    print_artifact(
        "Figure 4 (regenerated)",
        &iotls_analysis::figures::fig4_staleness(testbed.pki, &report),
    );
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
