//! Table 7: the interception audit (with TrafficPassthrough).

use criterion::Criterion;
use iotls::{run_interception_audit, InterceptPolicy};
use iotls_bench::{criterion, print_artifact, BENCH_SEED};
use iotls_devices::Testbed;

fn bench(c: &mut Criterion) {
    let testbed = Testbed::global();
    c.bench_function("table7/attack_one_device_self_signed", |b| {
        b.iter(|| {
            let mut lab = iotls::ActiveLab::new(testbed, BENCH_SEED);
            let dev = testbed.device("Zmodo Doorbell");
            std::hint::black_box(lab.boot_and_connect(dev, Some(&InterceptPolicy::SelfSigned)))
        })
    });
    c.bench_function("table7/attack_one_device_wrong_hostname", |b| {
        b.iter(|| {
            let mut lab = iotls::ActiveLab::new(testbed, BENCH_SEED);
            let dev = testbed.device("Amazon Echo Dot");
            std::hint::black_box(
                lab.boot_and_connect(dev, Some(&InterceptPolicy::WrongHostname)),
            )
        })
    });
}

fn main() {
    let testbed = Testbed::global();
    let report = run_interception_audit(testbed, BENCH_SEED);
    print_artifact(
        "Table 7 (regenerated)",
        &iotls_analysis::tables::table7_interception(&report),
    );
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
