//! Ablation: fingerprint feature sets. The full JA3 permutation
//! (version, ciphers, extensions, groups, point formats) versus a
//! reduced version+ciphers-only definition — measured by how many
//! distinct testbed instances each can separate.

use iotls::run_fingerprint_survey;
use iotls_bench::{criterion, print_artifact, BENCH_SEED};
use iotls_devices::Testbed;
use iotls_crypto::sha256::sha256;
use std::collections::BTreeSet;

fn main() {
    let testbed = Testbed::global();
    let survey = run_fingerprint_survey(testbed, BENCH_SEED);

    // Recompute reduced fingerprints from every device instance spec
    // in force at probe time.
    let mut full: BTreeSet<iotls_tls::FingerprintId> = BTreeSet::new();
    let mut reduced: BTreeSet<[u8; 16]> = BTreeSet::new();
    for dev in testbed.devices.iter().filter(|d| d.spec.in_active) {
        for fp in survey.by_device.get(&dev.spec.name).into_iter().flatten() {
            full.insert(*fp);
        }
        for inst in dev.spec.instances_now() {
            let mut key = Vec::new();
            key.extend(inst.versions.iter().flat_map(|v| v.wire().to_be_bytes()));
            key.push(0xff);
            key.extend(inst.cipher_suites.iter().flat_map(|s| s.to_be_bytes()));
            let digest = sha256(&key);
            reduced.insert(digest[..16].try_into().unwrap());
        }
    }
    print_artifact(
        "Ablation: fingerprint features",
        &format!(
            "Distinct fingerprints across active devices:\n\
             full JA3 feature permutation: {}\n\
             version+ciphers only:         {}\n\
             The extension/group features separate instances that share suite lists\n\
             (e.g. stapling vs non-stapling builds of the same library).\n",
            full.len(),
            reduced.len()
        ),
    );
    assert!(full.len() >= reduced.len());

    let mut c = criterion();
    c.bench_function("ablation/fingerprint_survey_full", |b| {
        b.iter(|| std::hint::black_box(run_fingerprint_survey(testbed, BENCH_SEED)))
    });
    c.final_summary();
}
