//! Table 8: revocation-method support from passive data.

use criterion::Criterion;
use iotls::revocation_summary;
use iotls_bench::{criterion, print_artifact};
use iotls_capture::global_dataset;

fn bench(c: &mut Criterion) {
    let ds = global_dataset();
    c.bench_function("table8/revocation_summary", |b| {
        b.iter(|| std::hint::black_box(revocation_summary(ds)))
    });
}

fn main() {
    let ds = global_dataset();
    let summary = revocation_summary(ds);
    print_artifact(
        "Table 8 (regenerated)",
        &iotls_analysis::tables::table8_revocation(&summary, &ds.device_names()),
    );
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
