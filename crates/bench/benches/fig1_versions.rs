//! Figure 1: TLS version heatmap over the two-year capture, plus the
//! §5.1 headline statistics and prior-work comparison.

use criterion::Criterion;
use iotls::{passive_summary, version_series, version_transitions};
use iotls_bench::{criterion, print_artifact};
use iotls_capture::global_dataset;

fn bench(c: &mut Criterion) {
    let ds = global_dataset();
    c.bench_function("fig1/version_series", |b| {
        b.iter(|| std::hint::black_box(version_series(ds)))
    });
    c.bench_function("fig1/passive_summary", |b| {
        b.iter(|| std::hint::black_box(passive_summary(ds)))
    });
}

fn main() {
    let ds = global_dataset();
    let summary = passive_summary(ds);
    let series = version_series(ds);
    let axis = iotls_analysis::month_axis(ds);
    let mut body = iotls_analysis::figures::fig1_versions(&axis, &series, &summary.fig1_devices);
    body.push_str("\nDetected upgrades:\n");
    for t in version_transitions(ds) {
        body.push_str(&format!("  {} {} -> {} ({})\n", t.device, t.from, t.to, t.month));
    }
    body.push_str(&format!(
        "\nTLS 1.2-exclusive devices: {} of 40\n\
         Connections advertising TLS 1.3: {:.1}% (paper ~17%)\n\
         Connections advertising RC4:     {:.1}% (paper ~60%)\n",
        summary.tls12_exclusive_devices.len(),
        summary.pct_connections_tls13,
        summary.pct_connections_rc4
    ));
    print_artifact("Figure 1 (regenerated)", &body);
    let mut c = criterion();
    bench(&mut c);
    c.final_summary();
}
