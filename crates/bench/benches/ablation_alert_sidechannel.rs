//! Ablation: how much signal does the alert side channel carry per
//! library family? Compares probe outcomes and costs against a
//! hypothetical coarser channel (connection success/failure only).
//!
//! Finding: with only success/failure visible, *every* probe looks
//! identical (both spoofed and unknown CAs fail), so store contents
//! are unrecoverable — the alert distinction carries all of the
//! technique's information.

use iotls::{InterceptPolicy, ActiveLab};
use iotls_bench::{criterion, print_artifact, BENCH_SEED};
use iotls_devices::Testbed;

fn main() {
    let testbed = Testbed::global();

    // Alert-channel verdicts vs success/failure-channel verdicts for
    // one amenable device over 20 probes spanning both probe sets
    // (the common head is present in its store, the deprecated tail
    // mostly absent).
    let order = iotls_devices::canonical_probe_order(testbed.pki);
    let mut sample: Vec<_> = order.iter().take(10).collect();
    sample.extend(order.iter().rev().take(10));
    let mut alert_distinct = std::collections::BTreeSet::new();
    let mut outcome_distinct = std::collections::BTreeSet::new();
    let mut lab = ActiveLab::new(testbed, BENCH_SEED);
    let dev = testbed.device("Google Home Mini");
    for ca in sample {
        let target = testbed.pki.universe.get(*ca).cert.clone();
        let dest = dev.spec.destinations[0].clone();
        let out = lab.connect(dev, &dest, Some(&InterceptPolicy::SpoofedCa(Box::new(target))));
        let alert = out
            .result
            .observation
            .as_ref()
            .and_then(|o| o.alerts_from_client.first().copied());
        alert_distinct.insert(format!("{alert:?}"));
        outcome_distinct.insert(out.result.established);
    }
    print_artifact(
        "Ablation: alert side channel",
        &format!(
            "Over 20 spoofed-CA probes of an amenable device:\n\
             distinct alert observations:        {} (store contents recoverable)\n\
             distinct success/failure outcomes:  {} (nothing recoverable)\n",
            alert_distinct.len(),
            outcome_distinct.len()
        ),
    );
    assert!(alert_distinct.len() >= 2);
    assert_eq!(outcome_distinct.len(), 1);

    let mut c = criterion();
    let target = testbed.pki.universe.get(testbed.pki.common[1]).cert.clone();
    c.bench_function("ablation/probe_with_alert_extraction", |b| {
        b.iter(|| {
            let mut lab = ActiveLab::new(testbed, BENCH_SEED);
            let dev = testbed.device("Google Home Mini");
            let dest = dev.spec.destinations[0].clone();
            std::hint::black_box(lab.connect(
                dev,
                &dest,
                Some(&InterceptPolicy::SpoofedCa(Box::new(target.clone()))),
            ))
        })
    });
    c.final_summary();
}
