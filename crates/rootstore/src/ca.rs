//! The CA universe: every root certificate the reproduction knows
//! about, with distrust metadata for the CAs the paper names.
//!
//! Substitution (DESIGN.md §2): the paper harvests real historical
//! root stores from Ubuntu/Android/Mozilla/Microsoft; we synthesize a
//! universe *shaped* to the published aggregates — 122 currently
//! unexpired certificates common to all four platforms, 87
//! deprecated-yet-unexpired certificates, and the four explicitly
//! distrusted CAs (TurkTrust 2013, CNNIC 2015, WoSign 2016,
//! Certinomis 2019). The set-construction algorithms in
//! [`crate::sets`] are implemented exactly as §4.2 describes and run
//! against this data.

use iotls_crypto::drbg::Drbg;
use iotls_crypto::rsa::RsaPrivateKey;
use iotls_x509::{Certificate, CertifiedKey, DistinguishedName, IssueParams, Timestamp};

/// Index of a CA in the universe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CaId(pub u32);

/// Why and when a CA was explicitly distrusted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Distrust {
    /// Year of the distrust action.
    pub year: i32,
    /// Who acted ("Mozilla", "Google blocklist").
    pub authority: &'static str,
    /// Short reason, as reported in the paper.
    pub reason: &'static str,
}

/// Lifecycle class of a CA in the synthetic history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaFate {
    /// Present in the latest version of every platform store.
    Common,
    /// Removed from platform stores in `year`, never re-added, still
    /// unexpired — the paper's "deprecated-yet-unexpired" class.
    Deprecated {
        /// Year of removal (latest across platforms).
        removal_year: i32,
    },
    /// Removed and also expired by probe time — must be filtered out
    /// by the unexpired check of the set construction.
    DeprecatedExpired {
        /// Year of removal.
        removal_year: i32,
    },
    /// Removed at some point but present again in the latest version
    /// of at least one platform — excluded by §4.2's re-add rule.
    Readded {
        /// Year of the temporary removal.
        removal_year: i32,
    },
}

/// One CA in the universe.
pub struct CaRecord {
    /// Universe index.
    pub id: CaId,
    /// Subject (== issuer) distinguished name.
    pub name: DistinguishedName,
    /// The real root certificate (self-signed with a real key).
    pub cert: Certificate,
    /// Synthetic lifecycle.
    pub fate: CaFate,
    /// Distrust metadata for the named bad actors.
    pub distrust: Option<Distrust>,
}

/// The four explicitly distrusted CAs the paper names, with their
/// distrust year, authority, and reason.
pub const DISTRUSTED: [(&str, &str, i32, &str, &str); 4] = [
    (
        "TurkTrust Elektronik Sertifika Hizmet Saglayicisi",
        "TR",
        2013,
        "Mozilla",
        "unauthorized google.com certificate",
    ),
    (
        "CNNIC ROOT",
        "CN",
        2015,
        "Google blocklist",
        "failure to comply with CA guidelines",
    ),
    (
        "WoSign CA Limited",
        "CN",
        2016,
        "Google blocklist",
        "backdated SHA-1 certificates and undisclosed acquisition",
    ),
    (
        "Certinomis - Root CA",
        "FR",
        2019,
        "Mozilla",
        "repeated misissuance",
    ),
];

/// Number of common (trusted-everywhere) CAs, per Table 9.
pub const COMMON_COUNT: u32 = 122;
/// Number of deprecated-yet-unexpired CAs, per Table 9.
pub const DEPRECATED_COUNT: u32 = 87;
/// Extra expired-and-removed CAs (exercise the unexpired filter).
pub const DEPRECATED_EXPIRED_COUNT: u32 = 12;
/// Extra removed-then-re-added CAs (exercise the re-add exclusion).
pub const READDED_COUNT: u32 = 5;

/// Removal-year histogram for the 87 deprecated CAs. The shape
/// follows §5.2: the majority removed in 2018–2019, a tail back to
/// 2013 (the LG TV's oldest stale roots).
pub const REMOVAL_YEARS: [(i32, u32); 8] = [
    (2013, 4),
    (2014, 5),
    (2015, 8),
    (2016, 10),
    (2017, 12),
    (2018, 24),
    (2019, 18),
    (2020, 6),
];

/// The full CA universe with issuing keys held privately.
pub struct CaUniverse {
    records: Vec<CaRecord>,
    // Keys stay inside the universe: legitimate infrastructure asks
    // for them via `issuing_key`; attacker code never sees them.
    keys: Vec<RsaPrivateKey>,
}

impl CaUniverse {
    /// Builds the universe deterministically from a seed.
    pub fn build(seed: u64) -> CaUniverse {
        let mut rng = Drbg::from_seed(seed).fork("ca-universe");
        let mut records = Vec::new();
        let mut keys = Vec::new();
        let mut next_id = 0u32;

        let mut push = |name: DistinguishedName,
                        fate: CaFate,
                        distrust: Option<Distrust>,
                        not_after: Timestamp,
                        records: &mut Vec<CaRecord>,
                        keys: &mut Vec<RsaPrivateKey>,
                        rng: &mut Drbg| {
            let id = CaId(next_id);
            next_id += 1;
            let key = RsaPrivateKey::generate(512, rng);
            let mut params = IssueParams::ca(
                name.clone(),
                1_000 + id.0 as u64,
                Timestamp::from_ymd(2008, 1, 1),
                0,
            );
            params.not_after = not_after;
            let ck = CertifiedKey::self_signed(params, key);
            records.push(CaRecord {
                id,
                name,
                cert: ck.cert,
                fate,
                distrust,
            });
            keys.push(ck.key);
            id
        };

        // 122 common CAs.
        for i in 0..COMMON_COUNT {
            let name = DistinguishedName::new(
                &format!("SimTrust Global Root CA {:03}", i + 1),
                "SimTrust Networks",
                "US",
            );
            push(
                name,
                CaFate::Common,
                None,
                Timestamp::from_ymd(2031, 1, 1),
                &mut records,
                &mut keys,
                &mut rng,
            );
        }

        // 87 deprecated CAs; the four distrusted ones take the first
        // slot of their removal-year bucket.
        let mut serial = 0u32;
        for (year, count) in REMOVAL_YEARS {
            for k in 0..count {
                let matching_distrust = if k == 0 {
                    DISTRUSTED.iter().find(|(_, _, dy, _, _)| *dy == year)
                } else {
                    None
                };
                let (name, distrust) = match matching_distrust {
                    Some(&(cn, country, dy, authority, reason)) => (
                        DistinguishedName::new(cn, cn, country),
                        Some(Distrust {
                            year: dy,
                            authority,
                            reason,
                        }),
                    ),
                    None => {
                        serial += 1;
                        (
                            DistinguishedName::new(
                                &format!("Legacy Assurance CA R{:03}", serial),
                                "Legacy PKI Holdings",
                                "US",
                            ),
                            None,
                        )
                    }
                };
                push(
                    name,
                    CaFate::Deprecated { removal_year: year },
                    distrust,
                    Timestamp::from_ymd(2030, 6, 1),
                    &mut records,
                    &mut keys,
                    &mut rng,
                );
            }
        }

        // Expired-and-removed CAs (filtered by the unexpired check).
        for i in 0..DEPRECATED_EXPIRED_COUNT {
            let name = DistinguishedName::new(
                &format!("Retired Expired CA {:02}", i + 1),
                "Legacy PKI Holdings",
                "US",
            );
            push(
                name,
                CaFate::DeprecatedExpired {
                    removal_year: 2014 + (i as i32 % 5),
                },
                None,
                Timestamp::from_ymd(2019, 1, 1), // expired before probe time
                &mut records,
                &mut keys,
                &mut rng,
            );
        }

        // Removed-then-re-added CAs (excluded by the re-add rule).
        for i in 0..READDED_COUNT {
            let name = DistinguishedName::new(
                &format!("Rotated Root CA {:02}", i + 1),
                "SimTrust Networks",
                "US",
            );
            push(
                name,
                CaFate::Readded {
                    removal_year: 2016 + i as i32 % 3,
                },
                None,
                Timestamp::from_ymd(2031, 1, 1),
                &mut records,
                &mut keys,
                &mut rng,
            );
        }

        CaUniverse { records, keys }
    }

    /// All CA records.
    pub fn records(&self) -> &[CaRecord] {
        &self.records
    }

    /// Record by id.
    pub fn get(&self, id: CaId) -> &CaRecord {
        &self.records[id.0 as usize]
    }

    /// Total number of CAs (all fates).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when empty (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The *legitimate infrastructure's* issuing key for a CA. MITM /
    /// probe code must never call this — that discipline is what makes
    /// the signature side channel real.
    pub fn issuing_key(&self, id: CaId) -> CertifiedKey {
        CertifiedKey {
            cert: self.records[id.0 as usize].cert.clone(),
            key: self.keys[id.0 as usize].clone(),
        }
    }

    /// Ids with a given fate class.
    pub fn ids_where(&self, pred: impl Fn(&CaFate) -> bool) -> Vec<CaId> {
        self.records
            .iter()
            .filter(|r| pred(&r.fate))
            .map(|r| r.id)
            .collect()
    }

    /// The four distrusted CAs present in the universe.
    pub fn distrusted_ids(&self) -> Vec<CaId> {
        self.records
            .iter()
            .filter(|r| r.distrust.is_some())
            .map(|r| r.id)
            .collect()
    }

    /// Looks up a CA by subject name.
    pub fn find_by_name(&self, name: &DistinguishedName) -> Option<&CaRecord> {
        self.records.iter().find(|r| &r.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    fn universe() -> &'static CaUniverse {
        &crate::SimPki::global().universe
    }

    #[test]
    fn universe_has_expected_population() {
        let u = universe();
        assert_eq!(
            u.len() as u32,
            COMMON_COUNT + DEPRECATED_COUNT + DEPRECATED_EXPIRED_COUNT + READDED_COUNT
        );
        assert_eq!(
            u.ids_where(|f| matches!(f, CaFate::Common)).len() as u32,
            COMMON_COUNT
        );
        assert_eq!(
            u.ids_where(|f| matches!(f, CaFate::Deprecated { .. })).len() as u32,
            DEPRECATED_COUNT
        );
    }

    #[test]
    fn removal_year_histogram_sums_to_deprecated_count() {
        let total: u32 = REMOVAL_YEARS.iter().map(|(_, c)| c).sum();
        assert_eq!(total, DEPRECATED_COUNT);
    }

    #[test]
    fn distrusted_cas_present_with_metadata() {
        let u = universe();
        let ids = u.distrusted_ids();
        assert_eq!(ids.len(), 4);
        let years: Vec<i32> = ids
            .iter()
            .map(|id| u.get(*id).distrust.as_ref().unwrap().year)
            .collect();
        assert_eq!(years, vec![2013, 2015, 2016, 2019]);
        // Distrusted CAs are all in the deprecated class, removed in
        // their distrust year.
        for id in ids {
            let rec = u.get(id);
            match rec.fate {
                CaFate::Deprecated { removal_year } => {
                    assert_eq!(removal_year, rec.distrust.as_ref().unwrap().year)
                }
                _ => panic!("distrusted CA not in deprecated class"),
            }
        }
    }

    #[test]
    fn certificates_are_self_signed_with_distinct_keys() {
        let u = universe();
        let a = &u.records()[0];
        let b = &u.records()[1];
        assert!(a.cert.is_self_signed());
        assert!(b.cert.is_self_signed());
        assert_ne!(a.cert.tbs.public_key, b.cert.tbs.public_key);
        assert_ne!(a.name, b.name);
    }

    #[test]
    fn issuing_key_matches_certificate() {
        let u = universe();
        let id = CaId(0);
        let ck = u.issuing_key(id);
        assert_eq!(ck.cert, u.get(id).cert);
        assert_eq!(&ck.cert.tbs.public_key, ck.key.public_key());
    }

    #[test]
    fn expired_class_actually_expired_at_probe_time() {
        let u = universe();
        let probe_time = Timestamp::from_ymd(2021, 3, 1);
        for rec in u.records() {
            let expired_class = matches!(rec.fate, CaFate::DeprecatedExpired { .. });
            assert_eq!(
                !rec.cert.is_time_valid(probe_time),
                expired_class,
                "CA {} validity disagrees with fate",
                rec.name.common_name
            );
        }
    }

    #[test]
    fn build_is_deterministic() {
        let a = CaUniverse::build(7);
        let b = CaUniverse::build(7);
        assert_eq!(a.records()[5].cert, b.records()[5].cert);
        let c = CaUniverse::build(8);
        assert_ne!(a.records()[5].cert, c.records()[5].cert);
    }

    #[test]
    fn find_by_name() {
        let u = universe();
        let rec = &u.records()[3];
        assert_eq!(u.find_by_name(&rec.name).unwrap().id, rec.id);
        assert!(u
            .find_by_name(&DistinguishedName::cn("No Such CA"))
            .is_none());
    }
}
