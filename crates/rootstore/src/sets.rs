//! Probe-set construction (§4.2 of the paper) and staleness analysis
//! (Figure 4).
//!
//! Two certificate sets drive the root-store exploration:
//!
//! * **Common CA certificates** — the latest version of every
//!   platform store, intersected, filtered to currently unexpired.
//! * **Deprecated CA certificates** — starting from each platform's
//!   earliest version, every certificate removed by a successor
//!   version, currently unexpired, excluding any certificate that is
//!   still present in the latest version of a store (the paper's
//!   re-add rule; we apply it across platforms so a certificate still
//!   trusted by any major platform is never called deprecated).

use crate::ca::{CaId, CaUniverse};
use crate::platforms::PlatformHistory;
use iotls_x509::Timestamp;
use std::collections::{BTreeMap, BTreeSet};

/// Certificates common to the latest version of all platforms,
/// unexpired at `now`.
pub fn common_certs(
    universe: &CaUniverse,
    histories: &[PlatformHistory],
    now: Timestamp,
) -> Vec<CaId> {
    assert!(!histories.is_empty());
    let mut common: BTreeSet<CaId> = histories[0]
        .latest()
        .map(|v| v.certs.clone())
        .unwrap_or_default();
    for h in &histories[1..] {
        // An empty history trusts nothing, so the intersection empties.
        match h.latest() {
            Some(v) => common = common.intersection(&v.certs).copied().collect(),
            None => common.clear(),
        }
    }
    common
        .into_iter()
        .filter(|id| universe.get(*id).cert.is_time_valid(now))
        .collect()
}

/// Certificates removed from any platform's store over its history,
/// unexpired at `now`, and not present in any platform's latest
/// version.
pub fn deprecated_certs(
    universe: &CaUniverse,
    histories: &[PlatformHistory],
    now: Timestamp,
) -> Vec<CaId> {
    let mut still_trusted: BTreeSet<CaId> = BTreeSet::new();
    for h in histories {
        if let Some(latest) = h.latest() {
            still_trusted.extend(latest.certs.iter().copied());
        }
    }
    let mut removed: BTreeSet<CaId> = BTreeSet::new();
    for h in histories {
        let mut seen: BTreeSet<CaId> = BTreeSet::new();
        for version in &h.versions {
            for id in &seen {
                if !version.certs.contains(id) {
                    removed.insert(*id);
                }
            }
            seen.extend(version.certs.iter().copied());
        }
    }
    removed
        .into_iter()
        .filter(|id| !still_trusted.contains(id))
        .filter(|id| universe.get(*id).cert.is_time_valid(now))
        .collect()
}

/// The observed removal year of a certificate on one platform: the
/// year of the first version where it is absent after having been
/// present. `None` when never present or never removed.
pub fn removal_year_on(history: &PlatformHistory, id: CaId) -> Option<i32> {
    let mut was_present = false;
    for version in &history.versions {
        let present = version.certs.contains(&id);
        if was_present && !present {
            return Some(version.year);
        }
        was_present |= present;
    }
    None
}

/// The staleness metric of Figure 4: the *latest* year of removal
/// across all platforms that removed the certificate.
pub fn latest_removal_year(histories: &[PlatformHistory], id: CaId) -> Option<i32> {
    histories
        .iter()
        .filter_map(|h| removal_year_on(h, id))
        .max()
}

/// Histogram of removal years for a set of certificates — the series
/// behind each device's bar in Figure 4.
pub fn staleness_histogram(
    histories: &[PlatformHistory],
    ids: &[CaId],
) -> BTreeMap<i32, usize> {
    let mut hist = BTreeMap::new();
    for id in ids {
        if let Some(y) = latest_removal_year(histories, *id) {
            *hist.entry(y).or_insert(0) += 1;
        }
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ca::{CaFate, CaUniverse, COMMON_COUNT, DEPRECATED_COUNT};

    fn setup() -> (&'static CaUniverse, &'static Vec<PlatformHistory>) {
        let pki = crate::SimPki::global();
        (&pki.universe, &pki.histories)
    }

    fn now() -> Timestamp {
        Timestamp::from_ymd(2021, 3, 1)
    }

    #[test]
    fn common_set_has_122_certs() {
        let (u, hs) = setup();
        let common = common_certs(u, hs, now());
        assert_eq!(common.len() as u32, COMMON_COUNT);
        for id in &common {
            assert!(matches!(u.get(*id).fate, CaFate::Common));
        }
    }

    #[test]
    fn deprecated_set_has_87_certs() {
        let (u, hs) = setup();
        let deprecated = deprecated_certs(u, hs, now());
        assert_eq!(deprecated.len() as u32, DEPRECATED_COUNT);
        for id in &deprecated {
            assert!(matches!(u.get(*id).fate, CaFate::Deprecated { .. }));
        }
    }

    #[test]
    fn sets_are_disjoint() {
        let (u, hs) = setup();
        let common: BTreeSet<CaId> = common_certs(u, hs, now()).into_iter().collect();
        let deprecated = deprecated_certs(u, hs, now());
        assert!(deprecated.iter().all(|id| !common.contains(id)));
    }

    #[test]
    fn expired_certs_filtered_from_deprecated_set() {
        let (u, hs) = setup();
        let deprecated: BTreeSet<CaId> =
            deprecated_certs(u, hs, now()).into_iter().collect();
        for id in u.ids_where(|f| matches!(f, CaFate::DeprecatedExpired { .. })) {
            assert!(!deprecated.contains(&id));
        }
    }

    #[test]
    fn readded_certs_excluded_from_both_sets() {
        let (u, hs) = setup();
        let common: BTreeSet<CaId> = common_certs(u, hs, now()).into_iter().collect();
        let deprecated: BTreeSet<CaId> =
            deprecated_certs(u, hs, now()).into_iter().collect();
        for id in u.ids_where(|f| matches!(f, CaFate::Readded { .. })) {
            assert!(!common.contains(&id), "re-added CA in common set");
            assert!(!deprecated.contains(&id), "re-added CA in deprecated set");
        }
    }

    #[test]
    fn all_four_distrusted_cas_in_deprecated_set() {
        let (u, hs) = setup();
        let deprecated: BTreeSet<CaId> =
            deprecated_certs(u, hs, now()).into_iter().collect();
        for id in u.distrusted_ids() {
            assert!(
                deprecated.contains(&id),
                "{} missing",
                u.get(id).name.common_name
            );
        }
    }

    #[test]
    fn removal_years_match_fate_metadata_within_version_granularity() {
        let (u, hs) = setup();
        for rec in u.records() {
            if let CaFate::Deprecated { removal_year } = rec.fate {
                let observed = latest_removal_year(hs, rec.id)
                    .unwrap_or_else(|| panic!("{} never removed", rec.name.common_name));
                // Observed removal is at or after the true year (store
                // versions are discrete) and within the version gap.
                assert!(
                    observed >= removal_year && observed <= removal_year + 2,
                    "{}: true {removal_year}, observed {observed}",
                    rec.name.common_name
                );
            }
        }
    }

    #[test]
    fn staleness_histogram_covers_all_deprecated() {
        let (u, hs) = setup();
        let deprecated = deprecated_certs(u, hs, now());
        let hist = staleness_histogram(hs, &deprecated);
        let total: usize = hist.values().sum();
        assert_eq!(total as u32, DEPRECATED_COUNT);
        // The 2018-2019 bulk the paper reports.
        let recent: usize = hist
            .iter()
            .filter(|(y, _)| **y >= 2018)
            .map(|(_, c)| *c)
            .sum();
        assert!(
            recent * 2 > total,
            "majority removed 2018+: {recent}/{total} ({hist:?})"
        );
        // And a tail reaching back to 2013.
        assert!(*hist.keys().min().unwrap() <= 2014);
    }

    #[test]
    fn never_removed_cert_has_no_removal_year() {
        let (u, hs) = setup();
        let common = u.ids_where(|f| matches!(f, CaFate::Common));
        assert_eq!(latest_removal_year(hs, common[0]), None);
    }
}
