//! Platform root-store histories (Table 3).
//!
//! Four platforms, each with a chronological series of store
//! versions: Ubuntu (9 versions from 2012), Android (10 from 2010),
//! Mozilla NSS (47 from 2013), Microsoft (15 from 2017). A CA's
//! membership in each version follows its [`CaFate`]: common CAs are
//! always present; deprecated CAs are present until the first version
//! at or after their removal year; re-added CAs disappear and return.

use crate::ca::{CaFate, CaId, CaUniverse};
use std::collections::BTreeSet;

/// A reference platform whose root store history we track.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Platform {
    /// Ubuntu `ca-certificates`.
    Ubuntu,
    /// Android `system/ca-certificates`.
    Android,
    /// Mozilla NSS `certdata.txt`.
    Mozilla,
    /// Microsoft Trusted Root Program.
    Microsoft,
}

impl Platform {
    /// All platforms, in Table 3 order.
    pub const ALL: [Platform; 4] = [
        Platform::Ubuntu,
        Platform::Android,
        Platform::Mozilla,
        Platform::Microsoft,
    ];

    /// Number of historical versions (Table 3, column 2).
    pub fn version_count(self) -> usize {
        match self {
            Platform::Ubuntu => 9,
            Platform::Android => 10,
            Platform::Mozilla => 47,
            Platform::Microsoft => 15,
        }
    }

    /// Year of the earliest version (Table 3, column 3).
    pub fn earliest_year(self) -> i32 {
        match self {
            Platform::Ubuntu => 2012,
            Platform::Android => 2010,
            Platform::Mozilla => 2013,
            Platform::Microsoft => 2017,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Platform::Ubuntu => "Ubuntu",
            Platform::Android => "Android",
            Platform::Mozilla => "Mozilla",
            Platform::Microsoft => "Microsoft",
        }
    }

    /// How the paper says the data was obtained (Table 3, comments).
    pub fn source_comment(self) -> &'static str {
        match self {
            Platform::Ubuntu => {
                "ca-certificates package, /etc/ssl/certs/ca-certificates.crt from official Docker images"
            }
            Platform::Android => {
                "version-tagged commits of platform/system/ca-certificates or luni/src/main/files/cacerts"
            }
            Platform::Mozilla => {
                "commit history of NSS security/nss/lib/ckfw/builtins/certdata.txt"
            }
            Platform::Microsoft => {
                "historical information published by Microsoft about its trusted root store"
            }
        }
    }
}

/// One version of one platform's root store.
#[derive(Debug, Clone)]
pub struct StoreVersion {
    /// Version label, e.g. "Mozilla v13".
    pub label: String,
    /// Release year (fractional years collapse to the year).
    pub year: i32,
    /// Member CAs.
    pub certs: BTreeSet<CaId>,
}

/// A platform's full chronological history.
#[derive(Debug, Clone)]
pub struct PlatformHistory {
    /// Which platform.
    pub platform: Platform,
    /// Versions, oldest first.
    pub versions: Vec<StoreVersion>,
}

impl PlatformHistory {
    /// The earliest version, or `None` for an empty history.
    pub fn earliest(&self) -> Option<&StoreVersion> {
        self.versions.first()
    }

    /// The latest version, or `None` for an empty history.
    pub fn latest(&self) -> Option<&StoreVersion> {
        self.versions.last()
    }
}

/// The release years of each version, spread evenly from the earliest
/// year through 2021.
fn version_years(platform: Platform) -> Vec<i32> {
    let count = platform.version_count();
    let first = platform.earliest_year();
    let last = 2021;
    let span = (last - first) as f64;
    (0..count)
        .map(|i| {
            if count == 1 {
                first
            } else {
                // Floor (not round) so sparse histories still hit the
                // early years — Android's 2013 release is what lets
                // Figure 4's tail reach 2013.
                first + (span * i as f64 / (count - 1) as f64).floor() as i32
            }
        })
        .collect()
}

/// Whether a CA is a member of a platform store version released in
/// `version_year`.
fn is_member(fate: &CaFate, platform: Platform, version_year: i32, is_latest: bool) -> bool {
    match fate {
        CaFate::Common => true,
        CaFate::Deprecated { removal_year } | CaFate::DeprecatedExpired { removal_year } => {
            version_year < *removal_year
        }
        CaFate::Readded { removal_year } => {
            // Gone during [removal_year, removal_year+2), then back —
            // but only Mozilla re-adds it (keeps it out of the common
            // set while exercising §4.2's exclusion rule).
            if version_year < *removal_year {
                true
            } else if platform == Platform::Mozilla {
                is_latest || version_year >= removal_year + 2
            } else {
                false
            }
        }
    }
}

/// Builds all four platform histories over the universe.
pub fn build_histories(universe: &CaUniverse) -> Vec<PlatformHistory> {
    Platform::ALL
        .iter()
        .map(|&platform| {
            let years = version_years(platform);
            let last_idx = years.len() - 1;
            let versions = years
                .iter()
                .enumerate()
                .map(|(i, &year)| {
                    let certs: BTreeSet<CaId> = universe
                        .records()
                        .iter()
                        .filter(|r| is_member(&r.fate, platform, year, i == last_idx))
                        .map(|r| r.id)
                        .collect();
                    StoreVersion {
                        label: format!("{} v{}", platform.name(), i + 1),
                        year,
                        certs,
                    }
                })
                .collect();
            PlatformHistory { platform, versions }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ca::{CaUniverse, COMMON_COUNT};

    fn histories() -> (&'static CaUniverse, &'static Vec<PlatformHistory>) {
        let pki = crate::SimPki::global();
        (&pki.universe, &pki.histories)
    }

    #[test]
    fn empty_history_has_no_versions() {
        let h = PlatformHistory {
            platform: Platform::Ubuntu,
            versions: Vec::new(),
        };
        assert!(h.earliest().is_none());
        assert!(h.latest().is_none());
    }

    #[test]
    fn version_counts_match_table3() {
        let (_, hs) = histories();
        let counts: Vec<usize> = hs.iter().map(|h| h.versions.len()).collect();
        assert_eq!(counts, vec![9, 10, 47, 15]);
    }

    #[test]
    fn earliest_years_match_table3() {
        let (_, hs) = histories();
        for h in hs {
            assert_eq!(h.earliest().unwrap().year, h.platform.earliest_year());
            assert_eq!(h.latest().unwrap().year, 2021);
        }
    }

    #[test]
    fn versions_are_chronological() {
        let (_, hs) = histories();
        for h in hs {
            for w in h.versions.windows(2) {
                assert!(w[0].year <= w[1].year);
            }
        }
    }

    #[test]
    fn common_cas_in_every_latest_version() {
        let (u, hs) = histories();
        let common = u.ids_where(|f| matches!(f, CaFate::Common));
        assert_eq!(common.len() as u32, COMMON_COUNT);
        for h in hs {
            for id in &common {
                assert!(h.latest().unwrap().certs.contains(id), "{}", h.platform.name());
            }
        }
    }

    #[test]
    fn deprecated_cas_absent_from_every_latest_version() {
        let (u, hs) = histories();
        for id in u.ids_where(|f| matches!(f, CaFate::Deprecated { .. })) {
            for h in hs {
                assert!(!h.latest().unwrap().certs.contains(&id));
            }
        }
    }

    #[test]
    fn deprecated_cas_present_before_removal() {
        let (u, hs) = histories();
        // A CA removed in 2018 is in Android's earliest (2010) store.
        let android = hs.iter().find(|h| h.platform == Platform::Android).unwrap();
        for rec in u.records() {
            if let CaFate::Deprecated { removal_year } = rec.fate {
                if removal_year > android.earliest().unwrap().year {
                    assert!(
                        android.earliest().unwrap().certs.contains(&rec.id),
                        "{} (removed {removal_year})",
                        rec.name.common_name
                    );
                }
            }
        }
    }

    #[test]
    fn readded_cas_return_only_in_mozilla() {
        let (u, hs) = histories();
        for id in u.ids_where(|f| matches!(f, CaFate::Readded { .. })) {
            for h in hs {
                let in_latest = h.latest().unwrap().certs.contains(&id);
                assert_eq!(in_latest, h.platform == Platform::Mozilla);
            }
        }
    }

    #[test]
    fn store_sizes_are_plausible() {
        let (_, hs) = histories();
        for h in hs {
            // Earliest stores carry common + not-yet-removed CAs.
            assert!(h.earliest().unwrap().certs.len() > 122);
            // Latest stores: exactly common (+ Mozilla's re-adds).
            let expected = if h.platform == Platform::Mozilla {
                122 + 5
            } else {
                122
            };
            assert_eq!(h.latest().unwrap().certs.len(), expected, "{}", h.platform.name());
        }
    }
}
