//! # iotls-rootstore
//!
//! Root-store data substrate for the IoTLS reproduction: the CA
//! universe, four platform store histories shaped to Table 3, the
//! §4.2 common/deprecated probe-set construction, and the Figure 4
//! staleness metric.
//!
//! The shared [`SimPki`] bundles everything the rest of the workspace
//! needs and is built once per process behind [`SimPki::global`] (CA
//! key generation is the expensive part).

pub mod ca;
pub mod platforms;
pub mod sets;

pub use ca::{CaFate, CaId, CaRecord, CaUniverse, Distrust, COMMON_COUNT, DEPRECATED_COUNT};
pub use platforms::{build_histories, Platform, PlatformHistory, StoreVersion};
pub use sets::{
    common_certs, deprecated_certs, latest_removal_year, removal_year_on, staleness_histogram,
};

use iotls_x509::Timestamp;
use std::sync::OnceLock;

/// The default universe seed; every experiment and bench uses it so
/// results reproduce byte-for-byte.
pub const DEFAULT_SEED: u64 = 0x1075;

/// The canonical probe time — "the bulk of our experiments were
/// performed in March 2021."
pub fn probe_time() -> Timestamp {
    Timestamp::from_ymd(2021, 3, 1)
}

/// The assembled PKI world: universe + histories + probe sets.
pub struct SimPki {
    /// Every CA.
    pub universe: CaUniverse,
    /// The four platform histories.
    pub histories: Vec<PlatformHistory>,
    /// §4.2 common probe set (122 certs).
    pub common: Vec<CaId>,
    /// §4.2 deprecated probe set (87 certs).
    pub deprecated: Vec<CaId>,
}

impl SimPki {
    /// Builds the full PKI world from a seed.
    pub fn build(seed: u64) -> SimPki {
        let universe = CaUniverse::build(seed);
        let histories = build_histories(&universe);
        let now = probe_time();
        let common = common_certs(&universe, &histories, now);
        let deprecated = deprecated_certs(&universe, &histories, now);
        SimPki {
            universe,
            histories,
            common,
            deprecated,
        }
    }

    /// The process-wide shared instance (default seed).
    pub fn global() -> &'static SimPki {
        static PKI: OnceLock<SimPki> = OnceLock::new();
        PKI.get_or_init(|| SimPki::build(DEFAULT_SEED))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_pki_matches_paper_counts() {
        let pki = SimPki::global();
        assert_eq!(pki.common.len(), 122);
        assert_eq!(pki.deprecated.len(), 87);
        assert_eq!(pki.histories.len(), 4);
    }

    #[test]
    fn global_is_shared() {
        let a = SimPki::global() as *const SimPki;
        let b = SimPki::global() as *const SimPki;
        assert_eq!(a, b);
    }
}
