//! Allocation discipline for the gateway's steady-state replay path.
//!
//! The whole point of the sans-IO rework is that a lane looping over
//! sessions stops paying the allocator per session. This harness
//! installs a counting global allocator (a thin shim over the system
//! allocator) and *proves* it: after one warmup replay, N clean
//! replays through [`replay_flow_with`] with a warm [`ReplayScratch`]
//! perform **zero** heap allocations in total.
//!
//! It also pins the encode path's byte identity: the sans-IO
//! [`write_record`] writer must produce exactly the bytes of the
//! legacy `Record::fragment` + `Record::encode` oracle under
//! corruption-sweep-style inputs (truncated, oversized, and
//! boundary-length payloads), so golden wire fixtures cannot shift.

use iotls_crypto::drbg::Drbg;
use iotls_crypto::rsa::RsaPrivateKey;
use iotls_simnet::mux::{replay_flow_with, ReplayScratch, SessionFlow};
use iotls_simnet::SessionFaults;
use iotls_tls::client::{ClientConfig, ClientConnection};
use iotls_tls::record::MAX_FRAGMENT;
use iotls_tls::server::{ServerConfig, ServerConnection};
use iotls_tls::version::ProtocolVersion;
use iotls_tls::{write_record, ContentType, Record, SessionBuf};
use iotls_x509::{CertifiedKey, DistinguishedName, IssueParams, RootStore, Timestamp};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// System allocator with an allocation counter. Deallocations and
/// shrinking reallocs are free; anything that can touch fresh memory
/// counts.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The test harness runs `#[test]`s on parallel threads by default;
/// the counter is process-global, so anything measuring it holds this
/// lock (and so does every other test in this binary, to keep its
/// allocations out of a concurrent measurement window).
static MEASURE: Mutex<()> = Mutex::new(());

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// A minimal valid PKI + endpoint pair, as in the driver e2e tests.
fn endpoints() -> (ClientConnection, ServerConnection) {
    let key = RsaPrivateKey::generate(512, &mut Drbg::from_seed(0xA110C));
    let root = CertifiedKey::self_signed(
        IssueParams::ca(
            DistinguishedName::new("Alloc Root", "SimCA", "US"),
            1,
            Timestamp::from_ymd(2015, 1, 1),
            7300,
        ),
        key,
    );
    let leaf_key = RsaPrivateKey::generate(512, &mut Drbg::from_seed(0xA110D));
    let leaf = root.issue(
        IssueParams::leaf("cloud.example.com", 2, Timestamp::from_ymd(2020, 6, 1), 500),
        &leaf_key,
    );
    let client = ClientConnection::new(
        ClientConfig::modern(RootStore::from_certs([root.cert.clone()])),
        "cloud.example.com",
        Timestamp::from_ymd(2021, 3, 1),
        Drbg::from_seed(1),
    );
    let server = ServerConnection::new(ServerConfig::typical(vec![leaf], leaf_key), Drbg::from_seed(2));
    (client, server)
}

#[test]
fn steady_state_replay_allocates_nothing_per_session() {
    let _guard = MEASURE.lock().unwrap();

    // Record one clean tape (allocates freely; this is per-flow setup,
    // amortized over every multiplexed session that replays it).
    let (client, server) = endpoints();
    let flow = SessionFlow::record(client, server, Some(b"ping"), Some(b"ok"));
    assert!(flow.established, "clean tape must establish");

    // Warmup: the first replay grows the scratch's wire buffer to the
    // tape's largest chunk.
    let mut scratch = ReplayScratch::new();
    let warm = replay_flow_with(&flow, SessionFaults::none(), 64, &mut scratch);
    assert!(warm.established);

    const SESSIONS: u64 = 100;
    let before = allocations();
    for _ in 0..SESSIONS {
        let outcome = replay_flow_with(&flow, SessionFaults::none(), 64, &mut scratch);
        assert!(outcome.established);
        assert_eq!(outcome.bytes_delivered, flow.total_bytes());
    }
    let allocs = allocations() - before;
    let per_session = allocs / SESSIONS;
    assert_eq!(
        per_session, 0,
        "steady-state replay must not touch the allocator: \
         {allocs} allocations across {SESSIONS} sessions"
    );
    // Not just amortized-below-one: literally zero.
    assert_eq!(allocs, 0, "no allocation in the whole measured window");
}

#[test]
fn encode_into_matches_legacy_encode_under_sweep_inputs() {
    let _guard = MEASURE.lock().unwrap();

    // Corruption-sweep-style inputs: the adversarial suites mutate
    // payload lengths around every boundary the record layer cares
    // about. The sans-IO writer must agree with the legacy oracle on
    // all of them, byte for byte.
    let mut rng = Drbg::from_seed(0xB17E_1D).fork("encode-identity");
    let boundary_lens = [
        0usize,
        1,
        4,
        5,
        MAX_FRAGMENT - 1,
        MAX_FRAGMENT,
        MAX_FRAGMENT + 1,
        2 * MAX_FRAGMENT,
        2 * MAX_FRAGMENT + 17,
    ];
    let mut out = SessionBuf::new();
    for (i, &len) in boundary_lens.iter().enumerate() {
        let mut payload = vec![0u8; len];
        rng.fill_bytes(&mut payload);
        for ct in [
            ContentType::ChangeCipherSpec,
            ContentType::Alert,
            ContentType::Handshake,
            ContentType::ApplicationData,
        ] {
            out.clear();
            write_record(ct, ProtocolVersion::Tls12, &payload, &mut out);
            let legacy: Vec<u8> = Record::fragment(ct, ProtocolVersion::Tls12, &payload)
                .iter()
                .flat_map(|r| r.encode())
                .collect();
            assert_eq!(out.as_slice(), &legacy[..], "case {i}, len {len}, {ct:?}");
        }
    }

    // Single-record encode_into against encode on the same sweep
    // (per-record identity, not just per-stream).
    for &len in &boundary_lens {
        if len > MAX_FRAGMENT {
            continue; // Record::new asserts the single-fragment bound.
        }
        let mut payload = vec![0u8; len];
        rng.fill_bytes(&mut payload);
        let rec = Record::new(ContentType::Handshake, ProtocolVersion::Tls11, payload);
        let mut into = Vec::new();
        rec.encode_into(&mut into);
        assert_eq!(into, rec.encode(), "len {len}");
    }
}
