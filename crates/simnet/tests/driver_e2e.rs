//! Driver + tap end-to-end: a full handshake through the simulated
//! gateway produces the observation the passive analyses consume.

use iotls_crypto::drbg::Drbg;
use iotls_crypto::rsa::RsaPrivateKey;
use iotls_simnet::driver::{drive_session, SessionParams};
use iotls_tls::alert::AlertDescription;
use iotls_tls::client::{ClientConfig, ClientConnection};
use iotls_tls::server::{ServerConfig, ServerConnection};
use iotls_tls::version::ProtocolVersion;
use iotls_x509::{CertifiedKey, DistinguishedName, IssueParams, RootStore, Timestamp};

fn setup() -> (RootStore, ServerConfig) {
    let key = RsaPrivateKey::generate(512, &mut Drbg::from_seed(9000));
    let root = CertifiedKey::self_signed(
        IssueParams::ca(
            DistinguishedName::new("Driver Root", "SimCA", "US"),
            1,
            Timestamp::from_ymd(2015, 1, 1),
            7300,
        ),
        key,
    );
    let leaf_key = RsaPrivateKey::generate(512, &mut Drbg::from_seed(9001));
    let leaf = root.issue(
        IssueParams::leaf("cloud.example.com", 2, Timestamp::from_ymd(2020, 6, 1), 500),
        &leaf_key,
    );
    (
        RootStore::from_certs([root.cert.clone()]),
        ServerConfig::typical(vec![leaf], leaf_key),
    )
}

fn now() -> Timestamp {
    Timestamp::from_ymd(2021, 3, 1)
}

#[test]
fn tapped_session_produces_full_observation() {
    let (roots, server_cfg) = setup();
    let client = ClientConnection::new(
        ClientConfig::modern(roots),
        "cloud.example.com",
        now(),
        Drbg::from_seed(1),
    );
    let server = ServerConnection::new(server_cfg, Drbg::from_seed(2));
    let result = drive_session(
        client,
        server,
        SessionParams {
            client_payload: Some(b"POST /telemetry bearer=tok123"),
            server_payload: Some(b"200 OK"),
            tap: true,
            time: now(),
            device: "Test Device",
            destination: "cloud.example.com",
        },
    );
    assert!(result.established);
    assert_eq!(result.server_received, b"POST /telemetry bearer=tok123");
    assert_eq!(result.client_received, b"200 OK");
    let obs = result.observation.expect("tap produced observation");
    assert!(obs.established);
    assert_eq!(obs.negotiated_version, Some(ProtocolVersion::Tls13));
    assert_eq!(obs.sni.as_deref(), Some("cloud.example.com"));
    assert_eq!(obs.device, "Test Device");
    assert!(result.bytes_c2s > 0 && result.bytes_s2c > 0);
}

#[test]
fn tap_does_not_see_plaintext_payload() {
    // The gateway is a *passive* observer: application data crosses it
    // encrypted, so nothing sensitive leaks into the capture.
    let (roots, server_cfg) = setup();
    let client = ClientConnection::new(
        ClientConfig::modern(roots),
        "cloud.example.com",
        now(),
        Drbg::from_seed(3),
    );
    let server = ServerConnection::new(server_cfg, Drbg::from_seed(4));
    let result = drive_session(
        client,
        server,
        SessionParams {
            client_payload: Some(b"deviceSecret=BEEF"),
            server_payload: None,
            tap: true,
            time: now(),
            device: "d",
            destination: "cloud.example.com",
        },
    );
    assert!(result.established);
    assert_eq!(result.server_received, b"deviceSecret=BEEF");
}

#[test]
fn failed_validation_session_observed_with_alert() {
    let (roots, _) = setup();
    // Server presents a self-signed certificate.
    let attacker_key = RsaPrivateKey::generate(512, &mut Drbg::from_seed(9002));
    let attacker = CertifiedKey::self_signed(
        IssueParams::leaf("cloud.example.com", 7, Timestamp::from_ymd(2020, 6, 1), 500),
        attacker_key,
    );
    let server_cfg = ServerConfig::typical(vec![attacker.cert.clone()], attacker.key.clone());
    let client = ClientConnection::new(
        ClientConfig::modern(roots),
        "cloud.example.com",
        now(),
        Drbg::from_seed(5),
    );
    let server = ServerConnection::new(server_cfg, Drbg::from_seed(6));
    let result = drive_session(
        client,
        server,
        SessionParams::tapped(now(), "d", "cloud.example.com"),
    );
    assert!(!result.established);
    let obs = result.observation.unwrap();
    assert!(!obs.established);
    assert!(obs
        .alerts_from_client
        .contains(&AlertDescription::UnknownCa));
}

#[test]
fn mute_server_session_terminates_without_observation_negotiation() {
    let (roots, mut server_cfg) = setup();
    server_cfg.mute = true;
    let client = ClientConnection::new(
        ClientConfig::modern(roots),
        "cloud.example.com",
        now(),
        Drbg::from_seed(7),
    );
    let server = ServerConnection::new(server_cfg, Drbg::from_seed(8));
    let result = drive_session(
        client,
        server,
        SessionParams::tapped(now(), "d", "cloud.example.com"),
    );
    assert!(!result.established);
    let obs = result.observation.unwrap();
    assert!(obs.negotiated_version.is_none());
    assert!(!obs.established);
}

#[test]
fn untapped_session_has_no_observation() {
    let (roots, server_cfg) = setup();
    let client = ClientConnection::new(
        ClientConfig::modern(roots),
        "cloud.example.com",
        now(),
        Drbg::from_seed(9),
    );
    let server = ServerConnection::new(server_cfg, Drbg::from_seed(10));
    let result = drive_session(
        client,
        server,
        SessionParams {
            client_payload: None,
            server_payload: None,
            tap: false,
            time: now(),
            device: "d",
            destination: "cloud.example.com",
        },
    );
    assert!(result.established);
    assert!(result.observation.is_none());
}
