//! # iotls-simnet
//!
//! Deterministic network simulator for the IoTLS reproduction — the
//! stand-in for the paper's physical gateway, tcpdump, smart plugs,
//! and lab network (DESIGN.md §2).
//!
//! Built in the smoltcp spirit: event-driven, allocation-light, no
//! real sockets, no real clock. Components:
//!
//! * [`events`] — virtual clock and deterministic event queue
//!   (device boots, power cycles, capture rolls);
//! * [`pipe`] — reliable in-order byte pipes (the transport);
//! * [`tap`] — the passive gateway: reconstructs handshake metadata
//!   from raw bytes, producing [`tap::TlsObservation`]s;
//! * [`driver`] — the lockstep session driver connecting sans-IO TLS
//!   endpoints over a link, with optional tap and app payloads;
//! * [`dns`] — simulated DNS with a per-device query log (revocation
//!   endpoint detection);
//! * [`fault`] — seeded deterministic fault injection (resets, stalls,
//!   garbled fragments, DNS failures, power cycles) for chaos runs;
//! * [`mux`] — the accept-loop/session-mux shim for the resident
//!   gateway: record a clean session's wire tape once, replay it per
//!   multiplexed session under its own fault draw and deadline;
//! * [`par`] — deterministic fan-out (`IOTLS_THREADS` workers, ordered
//!   merge) for the embarrassingly parallel per-device experiment
//!   loops.

pub mod dns;
pub mod driver;
pub mod events;
pub mod fault;
pub mod metrics;
pub mod mux;
pub mod par;
pub mod pipe;
pub mod tap;

pub use dns::{DnsOutcome, DnsQuery, DnsTable};
pub use driver::{
    drive_session, drive_session_faulted, drive_session_faulted_tapped, drive_session_reusing,
    sessions_driven, DriveScratch, SessionParams, SessionResult,
};
pub use events::{EventQueue, SimClock};
pub use fault::{
    DnsFault, FailureCause, FaultOp, FaultPlan, InjectedFault, LinkConditioner, SessionFaults,
};
pub use metrics::record_session_metrics;
pub use mux::{
    replay_flow, replay_flow_with, AcceptLoop, FlowRound, ReplayOutcome, ReplayScratch,
    SessionFlow,
};
pub use par::{ordered_map, ordered_map_with, ordered_map_with_state, worker_count};
pub use pipe::{DuplexLink, Pipe};
pub use tap::{GatewayTap, TlsObservation};
