//! Lockstep session driver.
//!
//! Connects a sans-IO TLS client to a sans-IO TLS server over a
//! `DuplexLink` and pumps bytes until the
//! link is quiescent, optionally exchanging application payloads and
//! optionally copying every byte into a passive [`GatewayTap`]. This
//! is the single primitive behind every experiment in the
//! reproduction: passive capture (real server), interception (the
//! MITM's server), and the root-store probe (spoofed-CA server).
//!
//! Every transferred chunk passes through a
//! [`LinkConditioner`], which in chaos runs may cut,
//! corrupt, or throttle the stream; the plain [`drive_session`] uses a
//! passthrough conditioner and behaves exactly as before.
//!
//! The pump is unbuffered end to end: each direction owns one
//! [`SessionBuf`] that the endpoints' `process` calls append to and
//! the conditioner consumes, and both endpoints' per-session scratch
//! lives in a caller-reusable [`DriveScratch`]. A lane that calls
//! [`drive_session_reusing`] with one warm scratch performs zero heap
//! allocations per session in the steady state.

use crate::fault::{Direction, FailureCause, InjectedFault, LinkConditioner};
use crate::pipe::DuplexLink;
use crate::tap::{GatewayTap, TlsObservation};
use iotls_tls::client::{ClientConnection, HandshakeSummary};
use iotls_tls::record::SessionBuf;
use iotls_tls::server::ServerConnection;
use iotls_tls::session::SessionScratch;
use iotls_x509::Timestamp;
use std::sync::atomic::{AtomicU64, Ordering};

/// How many pump rounds before declaring the session wedged — far
/// beyond any legitimate handshake (which needs ~4).
const MAX_ROUNDS: usize = 64;

/// Total sessions driven to completion by this process (all lanes),
/// for sessions-per-second bench reporting.
static SESSIONS_DRIVEN: AtomicU64 = AtomicU64::new(0);

/// Total sessions driven to completion by this process since start.
/// Benchmarks read deltas around a workload to report throughput.
pub fn sessions_driven() -> u64 {
    SESSIONS_DRIVEN.load(Ordering::Relaxed)
}

/// Caller-owned scratch for the drive loop: both endpoints'
/// [`SessionScratch`] plus the wire and per-direction buffers. One
/// warm `DriveScratch` per lane makes the steady-state session loop
/// allocation-free; take the endpoint scratches out with
/// [`DriveScratch::take_client`] / [`DriveScratch::take_server`] to
/// construct the next pair of connections.
#[derive(Debug, Default)]
pub struct DriveScratch {
    /// Client-endpoint scratch (deframer + buffers).
    pub client: SessionScratch,
    /// Server-endpoint scratch (deframer + buffers).
    pub server: SessionScratch,
    /// Post-conditioner delivery buffer, reused both directions.
    wire: Vec<u8>,
    /// Client → server outgoing-record buffer.
    c2s: SessionBuf,
    /// Server → client outgoing-record buffer.
    s2c: SessionBuf,
}

impl DriveScratch {
    /// A fresh (cold) scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes the client-endpoint scratch (for
    /// `ClientConnection::with_scratch`), leaving a default in place.
    pub fn take_client(&mut self) -> SessionScratch {
        std::mem::take(&mut self.client)
    }

    /// Takes the server-endpoint scratch (for
    /// `ServerConnection::with_scratch`), leaving a default in place.
    pub fn take_server(&mut self) -> SessionScratch {
        std::mem::take(&mut self.server)
    }
}

/// Everything a driven session produced.
pub struct SessionResult {
    /// The client's view of the handshake.
    pub client_summary: HandshakeSummary,
    /// True when both sides established.
    pub established: bool,
    /// Network-level failure cause, when the *link* (not either
    /// endpoint) killed the session. `None` with `established ==
    /// false` means an endpoint declined — see the client summary.
    pub failure: Option<FailureCause>,
    /// Faults the conditioner actually injected, in firing order.
    pub faults: Vec<InjectedFault>,
    /// Application data the server-side received (what a successful
    /// MITM exfiltrates).
    pub server_received: Vec<u8>,
    /// Application data the client received back.
    pub client_received: Vec<u8>,
    /// Passive observation, when a tap was attached.
    pub observation: Option<TlsObservation>,
    /// Total bytes carried client→server.
    pub bytes_c2s: u64,
    /// Total bytes carried server→client.
    pub bytes_s2c: u64,
    /// Complete TLS records the gateway tap deframed (zero when no
    /// tap was attached).
    pub records_deframed: u64,
    /// Raw bytes the gateway tap saw (zero when no tap was attached).
    pub bytes_tapped: u64,
}

impl SessionResult {
    /// True when a fault fired during this session: its outcome says
    /// nothing reliable about the endpoints.
    pub fn tainted(&self) -> bool {
        !self.faults.is_empty()
    }
}

/// Session inputs.
pub struct SessionParams<'a> {
    /// Payload the client sends once established (the device's
    /// app-layer message, e.g. a telemetry POST).
    pub client_payload: Option<&'a [u8]>,
    /// Payload the server responds with.
    pub server_payload: Option<&'a [u8]>,
    /// Attach a passive tap and produce an observation.
    pub tap: bool,
    /// Metadata for the observation record.
    pub time: Timestamp,
    /// Source device name for the observation.
    pub device: &'a str,
    /// Destination hostname for the observation.
    pub destination: &'a str,
}

impl<'a> SessionParams<'a> {
    /// Minimal parameters: tap on, no payloads.
    pub fn tapped(time: Timestamp, device: &'a str, destination: &'a str) -> Self {
        SessionParams {
            client_payload: None,
            server_payload: None,
            tap: true,
            time,
            device,
            destination,
        }
    }
}

/// Drives `client` against `server` to quiescence on a clean link.
///
/// The client must *not* have been started; the driver starts it.
pub fn drive_session(
    client: ClientConnection,
    server: ServerConnection,
    params: SessionParams<'_>,
) -> SessionResult {
    drive_session_faulted(client, server, params, &mut LinkConditioner::passthrough())
}

/// Drives `client` against `server` through a fault-injecting
/// [`LinkConditioner`].
///
/// The conditioner may cut the link (→ [`FailureCause::Reset`]),
/// corrupt a byte (→ [`FailureCause::Garbled`]), or throttle delivery
/// until the round budget runs out (→ [`FailureCause::Wedged`]). The
/// gateway tap sees the bytes *after* conditioning, exactly like a
/// physical tap downstream of a lossy path.
pub fn drive_session_faulted(
    client: ClientConnection,
    server: ServerConnection,
    params: SessionParams<'_>,
    conditioner: &mut LinkConditioner,
) -> SessionResult {
    let mut scratch = DriveScratch::new();
    if params.tap {
        let mut tap = GatewayTap::new();
        drive_inner(client, server, params, conditioner, Some(&mut tap), &mut scratch)
    } else {
        drive_inner(client, server, params, conditioner, None, &mut scratch)
    }
}

/// Like [`drive_session_faulted`] with `tap: true`, but observing
/// through a caller-owned [`GatewayTap`], which is reset first. Lets a
/// capture lane reuse one tap (and its scratch buffers) across many
/// sessions instead of allocating per session.
pub fn drive_session_faulted_tapped(
    client: ClientConnection,
    server: ServerConnection,
    params: SessionParams<'_>,
    conditioner: &mut LinkConditioner,
    tap: &mut GatewayTap,
) -> SessionResult {
    tap.reset();
    let mut scratch = DriveScratch::new();
    drive_inner(client, server, params, conditioner, Some(tap), &mut scratch)
}

/// The fully reusable form: drives the session with a caller-owned
/// [`DriveScratch`] (and, when `tap` is `Some`, a caller-owned
/// [`GatewayTap`], reset first). Endpoints built from this scratch's
/// `take_client`/`take_server` halves are handed back into it when the
/// session ends, so a lane looping over sessions allocates nothing
/// per session once warm.
pub fn drive_session_reusing(
    client: ClientConnection,
    server: ServerConnection,
    params: SessionParams<'_>,
    conditioner: &mut LinkConditioner,
    tap: Option<&mut GatewayTap>,
    scratch: &mut DriveScratch,
) -> SessionResult {
    match tap {
        Some(t) => {
            t.reset();
            drive_inner(client, server, params, conditioner, Some(t), scratch)
        }
        None => drive_inner(client, server, params, conditioner, None, scratch),
    }
}

fn drive_inner(
    mut client: ClientConnection,
    mut server: ServerConnection,
    params: SessionParams<'_>,
    conditioner: &mut LinkConditioner,
    mut tap: Option<&mut GatewayTap>,
    scratch: &mut DriveScratch,
) -> SessionResult {
    let mut link = DuplexLink::new();
    let mut server_received = Vec::new();
    let mut client_received = Vec::new();
    let mut client_sent_payload = false;
    let mut server_sent_payload = false;
    let mut exhausted = true;

    scratch.wire.clear();
    scratch.c2s.clear();
    scratch.s2c.clear();

    client.start_into(&mut scratch.c2s);

    // ALLOC-FREE: begin (drive loop — tier1.sh greps this region for
    // reintroduced per-session allocations; every buffer below is
    // caller-owned scratch reused across sessions).
    for round in 0..MAX_ROUNDS {
        conditioner.begin_round(round);
        let mut moved = false;

        // Client → conditioner → gateway → server. The transfer runs
        // even on empty input so the stall trickle keeps draining.
        conditioner.transfer_into(Direction::C2s, scratch.c2s.as_slice(), round, &mut scratch.wire);
        scratch.c2s.clear();
        if !scratch.wire.is_empty() {
            if let Some(t) = tap.as_mut() {
                t.observe_c2s(&scratch.wire);
            }
            link.c2s.write(&scratch.wire);
            server.process(link.c2s.queued(), &mut scratch.s2c);
            link.c2s.consume();
            moved = true;
        }
        server.drain_application_data_into(&mut server_received);

        // Server queues its payload once established.
        if server.is_established() && !server_sent_payload {
            if let Some(p) = params.server_payload {
                server.send_application_data_into(p, &mut scratch.s2c);
                moved = true;
            }
            server_sent_payload = true;
        }

        // Server → conditioner → gateway → client.
        conditioner.transfer_into(Direction::S2c, scratch.s2c.as_slice(), round, &mut scratch.wire);
        scratch.s2c.clear();
        if !scratch.wire.is_empty() {
            if let Some(t) = tap.as_mut() {
                t.observe_s2c(&scratch.wire);
            }
            link.s2c.write(&scratch.wire);
            client.process(link.s2c.queued(), &mut scratch.c2s);
            link.s2c.consume();
            moved = true;
        }
        client.drain_application_data_into(&mut client_received);

        // Client queues its payload once established.
        if client.is_established() && !client_sent_payload {
            if let Some(p) = params.client_payload {
                client.send_application_data_into(p, &mut scratch.c2s);
                moved = true;
            }
            client_sent_payload = true;
        }

        if !moved && !conditioner.has_backlog() {
            exhausted = false;
            break;
        }
    }
    // ALLOC-FREE: end (drive loop)

    SESSIONS_DRIVEN.fetch_add(1, Ordering::Relaxed);

    let established = client.is_established() && server.is_established();
    let failure = if established {
        None
    } else {
        conditioner.failure_cause(exhausted)
    };
    let (records_deframed, bytes_tapped) = tap
        .as_ref()
        .map_or((0, 0), |t| (t.records_deframed(), t.bytes_tapped()));
    let observation = tap
        .as_mut()
        .and_then(|t| t.take_observation(params.time, params.device, params.destination));
    let result = SessionResult {
        client_summary: client.summary(),
        established,
        failure,
        faults: conditioner.injected().to_vec(),
        server_received,
        client_received,
        observation,
        bytes_c2s: link.c2s.total_bytes(),
        bytes_s2c: link.s2c.total_bytes(),
        records_deframed,
        bytes_tapped,
    };
    // Hand the endpoints' warm buffers back to the lane's scratch for
    // the next session.
    scratch.client = client.into_scratch();
    scratch.server = server.into_scratch();
    result
}
