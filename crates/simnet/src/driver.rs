//! Lockstep session driver.
//!
//! Connects a sans-IO TLS client to a sans-IO TLS server over a
//! `DuplexLink` and pumps bytes until the
//! link is quiescent, optionally exchanging application payloads and
//! optionally copying every byte into a passive [`GatewayTap`]. This
//! is the single primitive behind every experiment in the
//! reproduction: passive capture (real server), interception (the
//! MITM's server), and the root-store probe (spoofed-CA server).
//!
//! Every transferred chunk passes through a
//! [`LinkConditioner`], which in chaos runs may cut,
//! corrupt, or throttle the stream; the plain [`drive_session`] uses a
//! passthrough conditioner and behaves exactly as before.

use crate::fault::{Direction, FailureCause, InjectedFault, LinkConditioner};
use crate::pipe::DuplexLink;
use crate::tap::{GatewayTap, TlsObservation};
use iotls_tls::client::{ClientConnection, HandshakeSummary};
use iotls_tls::server::ServerConnection;
use iotls_x509::Timestamp;

/// How many pump rounds before declaring the session wedged — far
/// beyond any legitimate handshake (which needs ~4).
const MAX_ROUNDS: usize = 64;

/// Everything a driven session produced.
pub struct SessionResult {
    /// The client's view of the handshake.
    pub client_summary: HandshakeSummary,
    /// True when both sides established.
    pub established: bool,
    /// Network-level failure cause, when the *link* (not either
    /// endpoint) killed the session. `None` with `established ==
    /// false` means an endpoint declined — see the client summary.
    pub failure: Option<FailureCause>,
    /// Faults the conditioner actually injected, in firing order.
    pub faults: Vec<InjectedFault>,
    /// Application data the server-side received (what a successful
    /// MITM exfiltrates).
    pub server_received: Vec<u8>,
    /// Application data the client received back.
    pub client_received: Vec<u8>,
    /// Passive observation, when a tap was attached.
    pub observation: Option<TlsObservation>,
    /// Total bytes carried client→server.
    pub bytes_c2s: u64,
    /// Total bytes carried server→client.
    pub bytes_s2c: u64,
    /// Complete TLS records the gateway tap deframed (zero when no
    /// tap was attached).
    pub records_deframed: u64,
    /// Raw bytes the gateway tap saw (zero when no tap was attached).
    pub bytes_tapped: u64,
}

impl SessionResult {
    /// True when a fault fired during this session: its outcome says
    /// nothing reliable about the endpoints.
    pub fn tainted(&self) -> bool {
        !self.faults.is_empty()
    }
}

/// Session inputs.
pub struct SessionParams<'a> {
    /// Payload the client sends once established (the device's
    /// app-layer message, e.g. a telemetry POST).
    pub client_payload: Option<&'a [u8]>,
    /// Payload the server responds with.
    pub server_payload: Option<&'a [u8]>,
    /// Attach a passive tap and produce an observation.
    pub tap: bool,
    /// Metadata for the observation record.
    pub time: Timestamp,
    /// Source device name for the observation.
    pub device: &'a str,
    /// Destination hostname for the observation.
    pub destination: &'a str,
}

impl<'a> SessionParams<'a> {
    /// Minimal parameters: tap on, no payloads.
    pub fn tapped(time: Timestamp, device: &'a str, destination: &'a str) -> Self {
        SessionParams {
            client_payload: None,
            server_payload: None,
            tap: true,
            time,
            device,
            destination,
        }
    }
}

/// Drives `client` against `server` to quiescence on a clean link.
///
/// The client must *not* have been started; the driver calls
/// [`ClientConnection::start`].
pub fn drive_session(
    client: ClientConnection,
    server: ServerConnection,
    params: SessionParams<'_>,
) -> SessionResult {
    drive_session_faulted(client, server, params, &mut LinkConditioner::passthrough())
}

/// Drives `client` against `server` through a fault-injecting
/// [`LinkConditioner`].
///
/// The conditioner may cut the link (→ [`FailureCause::Reset`]),
/// corrupt a byte (→ [`FailureCause::Garbled`]), or throttle delivery
/// until the round budget runs out (→ [`FailureCause::Wedged`]). The
/// gateway tap sees the bytes *after* conditioning, exactly like a
/// physical tap downstream of a lossy path.
pub fn drive_session_faulted(
    client: ClientConnection,
    server: ServerConnection,
    params: SessionParams<'_>,
    conditioner: &mut LinkConditioner,
) -> SessionResult {
    if params.tap {
        let mut tap = GatewayTap::new();
        drive_inner(client, server, params, conditioner, Some(&mut tap))
    } else {
        drive_inner(client, server, params, conditioner, None)
    }
}

/// Like [`drive_session_faulted`] with `tap: true`, but observing
/// through a caller-owned [`GatewayTap`], which is reset first. Lets a
/// capture lane reuse one tap (and its scratch buffers) across many
/// sessions instead of allocating per session.
pub fn drive_session_faulted_tapped(
    client: ClientConnection,
    server: ServerConnection,
    params: SessionParams<'_>,
    conditioner: &mut LinkConditioner,
    tap: &mut GatewayTap,
) -> SessionResult {
    tap.reset();
    drive_inner(client, server, params, conditioner, Some(tap))
}

fn drive_inner(
    mut client: ClientConnection,
    mut server: ServerConnection,
    params: SessionParams<'_>,
    conditioner: &mut LinkConditioner,
    mut tap: Option<&mut GatewayTap>,
) -> SessionResult {
    let mut link = DuplexLink::new();
    let mut server_received = Vec::new();
    let mut client_received = Vec::new();
    let mut client_sent_payload = false;
    let mut server_sent_payload = false;
    let mut exhausted = true;

    client.start();

    for round in 0..MAX_ROUNDS {
        conditioner.begin_round(round);
        let mut moved = false;

        // Client → conditioner → gateway → server.
        let out = client.take_output();
        let delivered = conditioner.transfer(Direction::C2s, &out, round);
        if !delivered.is_empty() {
            if let Some(t) = tap.as_mut() {
                t.observe_c2s(&delivered);
            }
            link.c2s.write(&delivered);
            let data = link.c2s.drain();
            let _ = server.read_tls(&data);
            moved = true;
        }
        server_received.extend(server.take_application_data());

        // Server queues its payload once established.
        if server.is_established() && !server_sent_payload {
            if let Some(p) = params.server_payload {
                server.send_application_data(p);
                moved = true;
            }
            server_sent_payload = true;
        }

        // Server → conditioner → gateway → client.
        let out = server.take_output();
        let delivered = conditioner.transfer(Direction::S2c, &out, round);
        if !delivered.is_empty() {
            if let Some(t) = tap.as_mut() {
                t.observe_s2c(&delivered);
            }
            link.s2c.write(&delivered);
            let data = link.s2c.drain();
            let _ = client.read_tls(&data);
            moved = true;
        }
        client_received.extend(client.take_application_data());

        // Client queues its payload once established.
        if client.is_established() && !client_sent_payload {
            if let Some(p) = params.client_payload {
                client.send_application_data(p);
                moved = true;
            }
            client_sent_payload = true;
        }

        if !moved && !conditioner.has_backlog() {
            exhausted = false;
            break;
        }
    }

    let established = client.is_established() && server.is_established();
    let failure = if established {
        None
    } else {
        conditioner.failure_cause(exhausted)
    };
    let (records_deframed, bytes_tapped) = tap
        .as_ref()
        .map_or((0, 0), |t| (t.records_deframed(), t.bytes_tapped()));
    let observation = tap
        .as_mut()
        .and_then(|t| t.take_observation(params.time, params.device, params.destination));
    SessionResult {
        client_summary: client.summary(),
        established,
        failure,
        faults: conditioner.injected().to_vec(),
        server_received,
        client_received,
        observation,
        bytes_c2s: link.c2s.total_bytes(),
        bytes_s2c: link.s2c.total_bytes(),
        records_deframed,
        bytes_tapped,
    }
}
