//! Reliable in-order byte pipes — the simulated transport.

/// One direction of a duplex link: an in-order byte queue with
/// delivered-byte accounting.
#[derive(Debug, Default)]
pub struct Pipe {
    queue: Vec<u8>,
    total: u64,
}

impl Pipe {
    /// An empty pipe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes bytes into the pipe.
    pub fn write(&mut self, data: &[u8]) {
        self.queue.extend_from_slice(data);
        self.total += data.len() as u64;
    }

    /// Drains everything currently queued.
    pub fn drain(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.queue)
    }

    /// Borrows the queued bytes without draining them — the
    /// zero-allocation read half of a `queued`/[`Pipe::consume`] pair.
    pub fn queued(&self) -> &[u8] {
        &self.queue
    }

    /// Discards the queued bytes (after the caller processed
    /// [`Pipe::queued`]), keeping the queue's allocation.
    pub fn consume(&mut self) {
        self.queue.clear();
    }

    /// Bytes currently queued.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Total bytes ever written.
    pub fn total_bytes(&self) -> u64 {
        self.total
    }
}

/// A duplex link between a client ("left") and a server ("right").
#[derive(Debug, Default)]
pub struct DuplexLink {
    /// Client → server direction.
    pub c2s: Pipe,
    /// Server → client direction.
    pub s2c: Pipe,
}

impl DuplexLink {
    /// A fresh link.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when both directions are idle.
    pub fn is_quiescent(&self) -> bool {
        self.c2s.pending() == 0 && self.s2c.pending() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_preserves_order_and_counts() {
        let mut p = Pipe::new();
        p.write(b"hello ");
        p.write(b"world");
        assert_eq!(p.pending(), 11);
        assert_eq!(p.drain(), b"hello world");
        assert_eq!(p.pending(), 0);
        assert_eq!(p.total_bytes(), 11);
        p.write(b"!");
        assert_eq!(p.total_bytes(), 12);
    }

    #[test]
    fn duplex_quiescence() {
        let mut l = DuplexLink::new();
        assert!(l.is_quiescent());
        l.c2s.write(b"x");
        assert!(!l.is_quiescent());
        l.c2s.drain();
        assert!(l.is_quiescent());
    }
}
