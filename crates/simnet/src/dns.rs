//! Simulated DNS with a query log.
//!
//! The paper identifies destinations "via SNI or DNS" and detects
//! revocation checking partly by watching devices contact CRL/OCSP
//! endpoints. The simulator's DNS keeps a log of every query so the
//! passive analyzer can make the same inferences.

use crate::fault::DnsFault;
use iotls_x509::Timestamp;
use std::collections::BTreeMap;

/// How one DNS query ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DnsOutcome {
    /// The name resolved.
    Resolved,
    /// The name is not in the registry (legitimate NXDOMAIN).
    NotRegistered,
    /// An injected fault returned NXDOMAIN for a registered name.
    FaultNxDomain,
    /// An injected fault swallowed the query (resolver timeout).
    FaultTimeout,
}

impl DnsOutcome {
    /// True when the lookup produced an address.
    pub fn resolved(&self) -> bool {
        matches!(self, DnsOutcome::Resolved)
    }

    /// True when the failure was injected rather than legitimate.
    pub fn faulted(&self) -> bool {
        matches!(self, DnsOutcome::FaultNxDomain | DnsOutcome::FaultTimeout)
    }
}

/// One logged DNS query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsQuery {
    /// When the query happened.
    pub time: Timestamp,
    /// The querying device.
    pub device: String,
    /// Hostname asked for.
    pub hostname: String,
    /// How it ended.
    pub outcome: DnsOutcome,
}

/// Hostname registry plus query log.
#[derive(Debug, Default)]
pub struct DnsTable {
    registered: BTreeMap<String, bool>,
    log: Vec<DnsQuery>,
}

impl DnsTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a resolvable hostname.
    pub fn register(&mut self, hostname: &str) {
        self.registered.insert(hostname.to_ascii_lowercase(), true);
    }

    /// Resolves `hostname` for `device`, logging the query. Returns
    /// whether the name resolves.
    pub fn resolve(&mut self, time: Timestamp, device: &str, hostname: &str) -> bool {
        self.resolve_faulted(time, device, hostname, None).resolved()
    }

    /// Resolves `hostname` for `device` with an optional injected
    /// fault. A fault turns an otherwise-successful lookup into
    /// NXDOMAIN or a timeout; the query is logged either way, with its
    /// outcome, so analyses can count injected DNS failures.
    pub fn resolve_faulted(
        &mut self,
        time: Timestamp,
        device: &str,
        hostname: &str,
        fault: Option<DnsFault>,
    ) -> DnsOutcome {
        let registered = self
            .registered
            .get(&hostname.to_ascii_lowercase())
            .copied()
            .unwrap_or(false);
        let outcome = match (fault, registered) {
            (Some(DnsFault::NxDomain), _) => DnsOutcome::FaultNxDomain,
            (Some(DnsFault::Timeout), _) => DnsOutcome::FaultTimeout,
            (None, true) => DnsOutcome::Resolved,
            (None, false) => DnsOutcome::NotRegistered,
        };
        self.log.push(DnsQuery {
            time,
            device: device.to_string(),
            hostname: hostname.to_string(),
            outcome,
        });
        outcome
    }

    /// The full query log.
    pub fn log(&self) -> &[DnsQuery] {
        &self.log
    }

    /// Queries made by one device.
    pub fn queries_by(&self, device: &str) -> Vec<&DnsQuery> {
        self.log.iter().filter(|q| q.device == device).collect()
    }

    /// Distinct hostnames a device asked for.
    pub fn hostnames_for(&self, device: &str) -> Vec<String> {
        let mut names: Vec<String> = self
            .log
            .iter()
            .filter(|q| q.device == device)
            .map(|q| q.hostname.clone())
            .collect();
        names.sort();
        names.dedup();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_registered_and_unknown() {
        let mut dns = DnsTable::new();
        dns.register("cloud.example.com");
        assert!(dns.resolve(Timestamp(0), "cam", "cloud.example.com"));
        assert!(dns.resolve(Timestamp(1), "cam", "Cloud.Example.COM"));
        assert!(!dns.resolve(Timestamp(2), "cam", "nope.example.com"));
        assert_eq!(dns.log().len(), 3);
    }

    #[test]
    fn faulted_resolution_logs_outcome() {
        let mut dns = DnsTable::new();
        dns.register("cloud.example.com");
        let o = dns.resolve_faulted(
            Timestamp(0),
            "cam",
            "cloud.example.com",
            Some(DnsFault::NxDomain),
        );
        assert_eq!(o, DnsOutcome::FaultNxDomain);
        assert!(o.faulted() && !o.resolved());
        let o = dns.resolve_faulted(
            Timestamp(1),
            "cam",
            "cloud.example.com",
            Some(DnsFault::Timeout),
        );
        assert_eq!(o, DnsOutcome::FaultTimeout);
        // A clean retry of the same name succeeds.
        let o = dns.resolve_faulted(Timestamp(2), "cam", "cloud.example.com", None);
        assert_eq!(o, DnsOutcome::Resolved);
        // Legitimate NXDOMAIN is distinguishable from the injected one.
        let o = dns.resolve_faulted(Timestamp(3), "cam", "nope.example.com", None);
        assert_eq!(o, DnsOutcome::NotRegistered);
        assert!(!o.faulted());
        assert_eq!(dns.log().len(), 4);
        assert_eq!(dns.log()[0].outcome, DnsOutcome::FaultNxDomain);
    }

    #[test]
    fn per_device_views() {
        let mut dns = DnsTable::new();
        dns.register("a.example.com");
        dns.resolve(Timestamp(0), "cam", "a.example.com");
        dns.resolve(Timestamp(1), "hub", "a.example.com");
        dns.resolve(Timestamp(2), "cam", "a.example.com");
        dns.resolve(Timestamp(3), "cam", "b.example.com");
        assert_eq!(dns.queries_by("cam").len(), 3);
        assert_eq!(
            dns.hostnames_for("cam"),
            vec!["a.example.com".to_string(), "b.example.com".to_string()]
        );
        assert_eq!(dns.hostnames_for("hub").len(), 1);
    }
}
