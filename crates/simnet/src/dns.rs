//! Simulated DNS with a query log.
//!
//! The paper identifies destinations "via SNI or DNS" and detects
//! revocation checking partly by watching devices contact CRL/OCSP
//! endpoints. The simulator's DNS keeps a log of every query so the
//! passive analyzer can make the same inferences.

use iotls_x509::Timestamp;
use std::collections::BTreeMap;

/// One logged DNS query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsQuery {
    /// When the query happened.
    pub time: Timestamp,
    /// The querying device.
    pub device: String,
    /// Hostname asked for.
    pub hostname: String,
}

/// Hostname registry plus query log.
#[derive(Debug, Default)]
pub struct DnsTable {
    registered: BTreeMap<String, bool>,
    log: Vec<DnsQuery>,
}

impl DnsTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a resolvable hostname.
    pub fn register(&mut self, hostname: &str) {
        self.registered.insert(hostname.to_ascii_lowercase(), true);
    }

    /// Resolves `hostname` for `device`, logging the query. Returns
    /// whether the name resolves.
    pub fn resolve(&mut self, time: Timestamp, device: &str, hostname: &str) -> bool {
        self.log.push(DnsQuery {
            time,
            device: device.to_string(),
            hostname: hostname.to_string(),
        });
        self.registered
            .get(&hostname.to_ascii_lowercase())
            .copied()
            .unwrap_or(false)
    }

    /// The full query log.
    pub fn log(&self) -> &[DnsQuery] {
        &self.log
    }

    /// Queries made by one device.
    pub fn queries_by(&self, device: &str) -> Vec<&DnsQuery> {
        self.log.iter().filter(|q| q.device == device).collect()
    }

    /// Distinct hostnames a device asked for.
    pub fn hostnames_for(&self, device: &str) -> Vec<String> {
        let mut names: Vec<String> = self
            .log
            .iter()
            .filter(|q| q.device == device)
            .map(|q| q.hostname.clone())
            .collect();
        names.sort();
        names.dedup();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_registered_and_unknown() {
        let mut dns = DnsTable::new();
        dns.register("cloud.example.com");
        assert!(dns.resolve(Timestamp(0), "cam", "cloud.example.com"));
        assert!(dns.resolve(Timestamp(1), "cam", "Cloud.Example.COM"));
        assert!(!dns.resolve(Timestamp(2), "cam", "nope.example.com"));
        assert_eq!(dns.log().len(), 3);
    }

    #[test]
    fn per_device_views() {
        let mut dns = DnsTable::new();
        dns.register("a.example.com");
        dns.resolve(Timestamp(0), "cam", "a.example.com");
        dns.resolve(Timestamp(1), "hub", "a.example.com");
        dns.resolve(Timestamp(2), "cam", "a.example.com");
        dns.resolve(Timestamp(3), "cam", "b.example.com");
        assert_eq!(dns.queries_by("cam").len(), 3);
        assert_eq!(
            dns.hostnames_for("cam"),
            vec!["a.example.com".to_string(), "b.example.com".to_string()]
        );
        assert_eq!(dns.hostnames_for("hub").len(), 1);
    }
}
