//! Session-level metrics recording.
//!
//! One helper, [`record_session_metrics`], folds a finished
//! [`SessionResult`] into an [`iotls_obs::Registry`] under the `sim.*`
//! namespace. Every driver of sessions (the experiment labs, the
//! capture generator) calls it on its own per-worker registry shard;
//! the shards are merged in roster order by `par::ordered_map`
//! callers, so the counters are byte-identical at any worker count.

use crate::driver::SessionResult;
use iotls_obs::Registry;

/// Bucket bounds for the per-session transferred-bytes histogram
/// (`sim.session.bytes`): handshake-only sessions land in the low
/// buckets, payload-carrying ones higher.
pub const SESSION_BYTES_BOUNDS: [u64; 5] = [512, 1024, 2048, 4096, 16384];

/// Records one driven session into `reg`:
///
/// * `sim.sessions.driven` / `.established` / `.tainted`;
/// * `sim.sessions.failed.<cause>` per [`FailureCause`] label;
/// * `sim.faults.injected.<kind>` per [`InjectedFault`] label;
/// * `sim.bytes.c2s` / `sim.bytes.s2c` link-byte totals;
/// * `sim.tap.records_deframed` / `sim.tap.bytes` gateway-tap totals;
/// * the `sim.session.bytes` histogram of per-session link bytes.
///
/// [`FailureCause`]: crate::fault::FailureCause
/// [`InjectedFault`]: crate::fault::InjectedFault
pub fn record_session_metrics(reg: &mut Registry, result: &SessionResult) {
    reg.inc("sim.sessions.driven");
    if result.established {
        reg.inc("sim.sessions.established");
    }
    if result.tainted() {
        reg.inc("sim.sessions.tainted");
    }
    if let Some(cause) = result.failure {
        reg.inc(&format!("sim.sessions.failed.{}", cause.label()));
    }
    for fault in &result.faults {
        reg.inc(&format!("sim.faults.injected.{}", fault.label()));
    }
    reg.add("sim.bytes.c2s", result.bytes_c2s);
    reg.add("sim.bytes.s2c", result.bytes_s2c);
    reg.add("sim.tap.records_deframed", result.records_deframed);
    reg.add("sim.tap.bytes", result.bytes_tapped);
    reg.observe(
        "sim.session.bytes",
        &SESSION_BYTES_BOUNDS,
        result.bytes_c2s + result.bytes_s2c,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{DnsFault, FailureCause, InjectedFault};
    use iotls_tls::client::HandshakeSummary;
    use iotls_tls::handshake::ClientHello;
    use iotls_tls::version::ProtocolVersion;

    fn synthetic(established: bool) -> SessionResult {
        SessionResult {
            client_summary: HandshakeSummary {
                client_hello: ClientHello {
                    legacy_version: ProtocolVersion::Tls12,
                    random: [0u8; 32],
                    session_id: Vec::new(),
                    cipher_suites: Vec::new(),
                    compression_methods: vec![0],
                    extensions: Vec::new(),
                },
                version: None,
                cipher_suite: None,
                ocsp_stapled: false,
                server_chain: Vec::new(),
                alerts_sent: Vec::new(),
                alerts_received: Vec::new(),
                failure: None,
            },
            established,
            failure: None,
            faults: Vec::new(),
            server_received: Vec::new(),
            client_received: Vec::new(),
            observation: None,
            bytes_c2s: 600,
            bytes_s2c: 900,
            records_deframed: 7,
            bytes_tapped: 1500,
        }
    }

    #[test]
    fn clean_session_counts() {
        let mut reg = Registry::new();
        record_session_metrics(&mut reg, &synthetic(true));
        assert_eq!(reg.counter("sim.sessions.driven"), 1);
        assert_eq!(reg.counter("sim.sessions.established"), 1);
        assert_eq!(reg.counter("sim.sessions.tainted"), 0);
        assert_eq!(reg.counter("sim.bytes.c2s"), 600);
        assert_eq!(reg.counter("sim.tap.records_deframed"), 7);
        assert_eq!(reg.histogram("sim.session.bytes").unwrap().sum(), 1500);
    }

    #[test]
    fn faulted_session_counts_each_injected_fault_once() {
        let mut reg = Registry::new();
        let mut r = synthetic(false);
        r.failure = Some(FailureCause::Reset);
        r.faults = vec![
            InjectedFault::Reset { round: 1, offset: 5 },
            InjectedFault::Garble { round: 0, offset: 2 },
            InjectedFault::Dns {
                kind: DnsFault::Timeout,
            },
        ];
        record_session_metrics(&mut reg, &r);
        assert_eq!(reg.counter("sim.sessions.failed.reset"), 1);
        assert_eq!(reg.counter("sim.sessions.tainted"), 1);
        assert_eq!(reg.counter("sim.faults.injected.reset"), 1);
        assert_eq!(reg.counter("sim.faults.injected.garble"), 1);
        assert_eq!(reg.counter("sim.faults.injected.dns"), 1);
        assert_eq!(reg.counter("sim.faults.injected.stall"), 0);
    }
}
