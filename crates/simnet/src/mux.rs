//! Accept-loop and session-mux shim for the gateway runtime.
//!
//! A resident gateway multiplexes orders of magnitude more sessions
//! than the batch experiments drive, so re-running a full TLS
//! handshake per admitted session would dominate the soak. The shim
//! splits the work the way a real gateway does:
//!
//! * [`SessionFlow::record`] drives one *clean* TLS session to
//!   quiescence once, capturing the per-round byte chunks each
//!   endpoint emitted — the session's wire "tape";
//! * [`replay_flow`] pushes a recorded tape through a fresh
//!   [`LinkConditioner`] under that session's own fault draw and a
//!   per-session round **deadline**, classifying the outcome without
//!   touching the TLS state machines again;
//! * [`AcceptLoop`] turns a seed into the deterministic arrival
//!   schedule (how many sessions knock per tick, and which recorded
//!   flow each one replays), a pure function of `(seed, tick)` so the
//!   schedule is identical at any worker count.
//!
//! Everything here runs on virtual time (ticks and pump rounds); no
//! wall clock is ever consulted.

use crate::fault::{Direction, FailureCause, InjectedFault, LinkConditioner, SessionFaults};
use iotls_crypto::drbg::Drbg;
use iotls_tls::client::ClientConnection;
use iotls_tls::record::SessionBuf;
use iotls_tls::server::ServerConnection;

/// Round budget for *recording* a flow — matches the session driver's
/// wedge budget, far beyond any legitimate handshake.
const RECORD_MAX_ROUNDS: usize = 64;

/// One pump round of a recorded session: the bytes each endpoint put
/// on the wire that round.
#[derive(Debug, Clone, Default)]
pub struct FlowRound {
    /// Client → server bytes emitted this round.
    pub c2s: Vec<u8>,
    /// Server → client bytes emitted this round.
    pub s2c: Vec<u8>,
}

/// The wire tape of one driven TLS session: per-round byte chunks
/// plus whether the endpoints established. Recorded once per
/// `(device, destination)` pair and replayed by every multiplexed
/// session that targets the same endpoint.
#[derive(Debug, Clone)]
pub struct SessionFlow {
    /// Per-round chunks, in pump order.
    pub rounds: Vec<FlowRound>,
    /// Whether both endpoints established on the clean link.
    pub established: bool,
    /// Total bytes across both directions (cached for replay).
    total_bytes: u64,
}

impl SessionFlow {
    /// Drives `client` against `server` on a clean link and records
    /// the per-round byte chunks. The client must not have been
    /// started. Payloads are queued once the respective endpoint
    /// establishes, mirroring the lockstep driver.
    pub fn record(
        mut client: ClientConnection,
        mut server: ServerConnection,
        client_payload: Option<&[u8]>,
        server_payload: Option<&[u8]>,
    ) -> SessionFlow {
        let mut rounds = Vec::new();
        let mut client_sent = false;
        let mut server_sent = false;
        let mut c2s = SessionBuf::new();
        let mut s2c = SessionBuf::new();
        client.start_into(&mut c2s);

        for _ in 0..RECORD_MAX_ROUNDS {
            let mut round = FlowRound::default();
            let mut moved = false;

            if !c2s.is_empty() {
                server.process(c2s.as_slice(), &mut s2c);
                round.c2s = c2s.take_vec();
                moved = true;
            }
            let _ = server.take_application_data();
            if server.is_established() && !server_sent {
                if let Some(p) = server_payload {
                    server.send_application_data_into(p, &mut s2c);
                    moved = true;
                }
                server_sent = true;
            }

            if !s2c.is_empty() {
                client.process(s2c.as_slice(), &mut c2s);
                round.s2c = s2c.take_vec();
                moved = true;
            }
            let _ = client.take_application_data();
            if client.is_established() && !client_sent {
                if let Some(p) = client_payload {
                    client.send_application_data_into(p, &mut c2s);
                    moved = true;
                }
                client_sent = true;
            }

            if !moved {
                break;
            }
            rounds.push(round);
        }

        let total_bytes = rounds
            .iter()
            .map(|r| (r.c2s.len() + r.s2c.len()) as u64)
            .sum();
        SessionFlow {
            rounds,
            established: client.is_established() && server.is_established(),
            total_bytes,
        }
    }

    /// Total bytes on the tape, both directions.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Rounds the clean session needed to reach quiescence.
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// True when the tape carries no bytes at all.
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }
}

/// Outcome of replaying one tape through a conditioner.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Every byte of the tape was delivered within the deadline.
    pub completed: bool,
    /// The session counts as established: the tape established on the
    /// clean link, the replay completed, and no fault fired that a
    /// real session could not have survived.
    pub established: bool,
    /// Network-level failure, by conditioner severity; a replay that
    /// ran out of deadline with no cut reports [`FailureCause::Wedged`]
    /// (callers reclassify this as a deadline overrun).
    pub failure: Option<FailureCause>,
    /// Pump rounds consumed (virtual time).
    pub rounds_used: usize,
    /// Bytes the conditioner actually delivered.
    pub bytes_delivered: u64,
    /// Faults that fired, in firing order.
    pub injected: Vec<InjectedFault>,
}

/// Replays `flow` through a fresh [`LinkConditioner`] built from
/// `faults`, with a hard per-session round `deadline` in place of the
/// driver's global wedge budget.
///
/// A stall that would previously burn the full 64-round budget now
/// runs out at `deadline` rounds and is reported as
/// [`FailureCause::Wedged`] with `completed == false` — the gateway
/// reclassifies that as a deadline overrun. A garbled byte fails the
/// session even when all bytes deliver (a corrupted handshake record
/// breaks the transcript MAC); a cut fails it immediately.
pub fn replay_flow(flow: &SessionFlow, faults: SessionFaults, deadline: usize) -> ReplayOutcome {
    replay_flow_with(flow, faults, deadline, &mut ReplayScratch::default())
}

/// Reusable scratch for [`replay_flow_with`]: one post-conditioner
/// delivery buffer, warm across every replay a worker performs.
#[derive(Debug, Default)]
pub struct ReplayScratch {
    wire: Vec<u8>,
}

impl ReplayScratch {
    /// A fresh (cold) scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// [`replay_flow`] with caller-owned [`ReplayScratch`] — the gateway's
/// hot path. A clean replay (no faults drawn) performs zero heap
/// allocations once the scratch is warm.
pub fn replay_flow_with(
    flow: &SessionFlow,
    faults: SessionFaults,
    deadline: usize,
    scratch: &mut ReplayScratch,
) -> ReplayOutcome {
    let mut cond = LinkConditioner::new(faults);
    let mut delivered = 0u64;
    let mut rounds_used = 0;
    let mut completed = false;
    let empty: &[u8] = &[];

    for round in 0..deadline {
        rounds_used = round + 1;
        cond.begin_round(round);
        let (c2s, s2c) = match flow.rounds.get(round) {
            Some(r) => (r.c2s.as_slice(), r.s2c.as_slice()),
            None => (empty, empty),
        };
        cond.transfer_into(Direction::C2s, c2s, round, &mut scratch.wire);
        delivered += scratch.wire.len() as u64;
        cond.transfer_into(Direction::S2c, s2c, round, &mut scratch.wire);
        delivered += scratch.wire.len() as u64;
        if cond.is_cut() {
            break;
        }
        if round + 1 >= flow.len() && delivered >= flow.total_bytes() && !cond.has_backlog() {
            completed = true;
            break;
        }
    }

    // Completed replays can still have failed as TLS sessions (a
    // garble passed every byte through, corrupted); incomplete ones
    // without a cut ran out of deadline.
    let failure = cond.failure_cause(!completed && !cond.is_cut());
    let established = flow.established && completed && failure.is_none();
    ReplayOutcome {
        completed,
        established,
        failure,
        rounds_used,
        bytes_delivered: delivered,
        injected: cond.injected().to_vec(),
    }
}

/// Deterministic arrival schedule for the gateway's accept loop.
///
/// Arrivals are a pure function of `(seed, tick)`: the same seed
/// yields the same knock count and the same flow choice per knock at
/// any worker count, in any tick order.
#[derive(Debug, Clone, Copy)]
pub struct AcceptLoop {
    seed: u64,
    load: u32,
    spread: u32,
}

impl AcceptLoop {
    /// An accept loop averaging `load` arrivals per tick, jittered
    /// uniformly within `±spread`.
    pub fn new(seed: u64, load: u32, spread: u32) -> AcceptLoop {
        AcceptLoop { seed, load, spread }
    }

    /// The arrivals for `tick`: one entry per knocking session, each
    /// an index into a roster of `n_flows` recorded flows.
    pub fn arrivals(&self, tick: u64, n_flows: usize) -> Vec<usize> {
        if n_flows == 0 {
            return Vec::new();
        }
        let mut rng = Drbg::from_seed(self.seed)
            .fork("accept-loop")
            .fork(&format!("tick/{tick}"));
        let lo = self.load.saturating_sub(self.spread) as u64;
        let hi = (self.load + self.spread) as u64;
        let count = rng.range(lo, hi) as usize;
        (0..count).map(|_| rng.below(n_flows as u64) as usize).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultOp;

    /// A synthetic tape; replay logic only cares about byte chunks.
    fn tape(established: bool) -> SessionFlow {
        let rounds = vec![
            FlowRound { c2s: vec![1; 300], s2c: Vec::new() },
            FlowRound { c2s: Vec::new(), s2c: vec![2; 900] },
            FlowRound { c2s: vec![3; 100], s2c: vec![4; 60] },
        ];
        let total_bytes = rounds
            .iter()
            .map(|r| (r.c2s.len() + r.s2c.len()) as u64)
            .sum();
        SessionFlow { rounds, established, total_bytes }
    }

    #[test]
    fn clean_replay_completes_and_establishes() {
        let flow = tape(true);
        let out = replay_flow(&flow, SessionFaults::none(), 12);
        assert!(out.completed);
        assert!(out.established);
        assert_eq!(out.failure, None);
        assert_eq!(out.bytes_delivered, flow.total_bytes());
        assert_eq!(out.rounds_used, flow.len());
        assert!(out.injected.is_empty());
    }

    #[test]
    fn declined_tape_never_establishes() {
        let out = replay_flow(&tape(false), SessionFaults::none(), 12);
        assert!(out.completed);
        assert!(!out.established, "endpoint declined on the clean link");
        assert_eq!(out.failure, None);
    }

    #[test]
    fn reset_fails_the_replay() {
        let faults = SessionFaults {
            ops: vec![FaultOp::Reset { offset: 128 }],
            dns: None,
        };
        let out = replay_flow(&tape(true), faults, 12);
        assert!(!out.completed);
        assert!(!out.established);
        assert_eq!(out.failure, Some(FailureCause::Reset));
        assert_eq!(out.bytes_delivered, 128);
    }

    #[test]
    fn garble_fails_even_a_complete_replay() {
        let faults = SessionFaults {
            ops: vec![FaultOp::Garble { offset: 10 }],
            dns: None,
        };
        let out = replay_flow(&tape(true), faults, 12);
        assert!(out.completed, "all bytes still flow");
        assert!(!out.established);
        assert_eq!(out.failure, Some(FailureCause::Garbled));
    }

    #[test]
    fn stall_overruns_the_deadline_as_wedged() {
        let faults = SessionFaults {
            ops: vec![FaultOp::Stall { after_round: 0 }],
            dns: None,
        };
        let out = replay_flow(&tape(true), faults, 12);
        assert!(!out.completed);
        assert_eq!(out.failure, Some(FailureCause::Wedged));
        assert_eq!(out.rounds_used, 12, "burns exactly the deadline, not 64");
        assert!(out.bytes_delivered < tape(true).total_bytes());
    }

    #[test]
    fn replay_is_deterministic() {
        let faults = || SessionFaults {
            ops: vec![FaultOp::Garble { offset: 500 }, FaultOp::Stall { after_round: 1 }],
            dns: None,
        };
        let a = replay_flow(&tape(true), faults(), 8);
        let b = replay_flow(&tape(true), faults(), 8);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.failure, b.failure);
        assert_eq!(a.bytes_delivered, b.bytes_delivered);
        assert_eq!(a.injected, b.injected);
    }

    #[test]
    fn accept_loop_is_a_pure_function_of_seed_and_tick() {
        let acc = AcceptLoop::new(0x6A7E, 100, 25);
        let a = acc.arrivals(7, 40);
        let b = acc.arrivals(7, 40);
        assert_eq!(a, b);
        // Ticks draw independent schedules.
        assert_ne!(acc.arrivals(8, 40), a);
        // Counts stay inside the jitter band and indices in range.
        for tick in 0..50 {
            let arr = acc.arrivals(tick, 40);
            assert!((75..=125).contains(&arr.len()), "tick {tick}: {}", arr.len());
            assert!(arr.iter().all(|&i| i < 40));
        }
    }

    #[test]
    fn accept_loop_handles_empty_roster_and_zero_spread() {
        assert!(AcceptLoop::new(1, 10, 3).arrivals(0, 0).is_empty());
        let acc = AcceptLoop::new(2, 5, 0);
        assert_eq!(acc.arrivals(3, 4).len(), 5);
    }
}
