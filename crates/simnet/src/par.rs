//! Deterministic fan-out over independent work items.
//!
//! The experiment drivers iterate a device roster where every item
//! owns its own seeded RNG stream, so the loop bodies are
//! embarrassingly parallel. [`ordered_map`] runs them on a scoped
//! thread pool and returns results **in input order**, which is the
//! whole trick: merging in roster order makes every downstream table,
//! `FaultStats` accumulation, and float summation identical to the
//! sequential run, regardless of how many workers raced.
//!
//! Worker count comes from the `IOTLS_THREADS` environment variable
//! (re-read on every call so tests can flip it), defaulting to the
//! machine's available parallelism. With one worker — or one item —
//! the closure runs inline on the caller's thread: zero overhead, and
//! the degenerate case is trivially identical to the sequential code.
//!
//! Std-only (`std::thread::scope` + an atomic work index); the
//! workspace stays offline-buildable with no new dependencies.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding the worker count.
pub const THREADS_ENV: &str = "IOTLS_THREADS";

/// Resolves the worker count: `IOTLS_THREADS` if set to a positive
/// integer, otherwise available parallelism, otherwise 1.
pub fn worker_count() -> usize {
    std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Applies `f` to every item and returns the outputs in input order,
/// resolving the worker count from the environment on every call.
///
/// `f` must depend only on its item (plus shared read-only state) —
/// the usual shape is "build a fresh lab from a per-device seed, run
/// the probe, return the rows". Panics in `f` propagate to the caller.
pub fn ordered_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    // A single item can never exploit a pool: short-circuit before
    // even reading the environment, so the hot chunked-generator path
    // (one lane) costs nothing beyond the closure itself.
    if items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    ordered_map_with(worker_count(), items, f)
}

/// [`ordered_map`] with an explicit worker-count policy — the entry
/// point for callers holding an experiment context that resolved
/// `IOTLS_THREADS` once at construction instead of per fan-out.
///
/// `workers` is a ceiling, clamped to the item count; `0` and `1`
/// both run the closure inline on the caller's thread.
pub fn ordered_map_with<T, R, F>(workers: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = workers.min(items.len());
    if items.len() <= 1 || workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    let n = items.len();
    // Slots are claimed via an atomic cursor; each result lands in the
    // slot matching its input index, so output order is input order.
    let slots: Vec<std::sync::Mutex<(Option<T>, Option<R>)>> = items
        .into_iter()
        .map(|item| std::sync::Mutex::new((Some(item), None)))
        .collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i].lock().unwrap().0.take().expect("slot claimed once");
                let out = f(item);
                slots[i].lock().unwrap().1 = Some(out);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .1
                .expect("worker filled every slot")
        })
        .collect()
}

/// [`ordered_map_with`] where every worker thread owns a mutable
/// per-worker state built by `init` — the vehicle for reusable scratch
/// (warm buffers, arenas) across the items one worker processes.
///
/// `init` runs once per worker, on that worker's thread, so the state
/// type needs no `Send`. With `0`/`1` workers — or a single item —
/// one state is built and the closure runs inline on the caller's
/// thread, making the degenerate case identical to a sequential loop.
pub fn ordered_map_with_state<T, R, S, I, F>(workers: usize, items: Vec<T>, init: I, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> R + Sync,
{
    let workers = workers.min(items.len());
    if items.len() <= 1 || workers <= 1 {
        let mut state = init();
        return items.into_iter().map(|item| f(&mut state, item)).collect();
    }

    let n = items.len();
    let slots: Vec<std::sync::Mutex<(Option<T>, Option<R>)>> = items
        .into_iter()
        .map(|item| std::sync::Mutex::new((Some(item), None)))
        .collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = slots[i].lock().unwrap().0.take().expect("slot claimed once");
                    let out = f(&mut state, item);
                    slots[i].lock().unwrap().1 = Some(out);
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .1
                .expect("worker filled every slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = ordered_map(items.clone(), |i| i * 3);
        assert_eq!(out, items.iter().map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single() {
        assert!(ordered_map(Vec::<u32>::new(), |x| x).is_empty());
        assert_eq!(ordered_map(vec![7], |x| x + 1), vec![8]);
    }

    #[test]
    fn moves_non_clone_items() {
        let items = vec![String::from("a"), String::from("bb")];
        let out = ordered_map(items, |s| s.len());
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn worker_count_floor_is_one() {
        assert!(worker_count() >= 1);
    }

    #[test]
    fn single_item_runs_on_caller_thread() {
        let caller = std::thread::current().id();
        let out = ordered_map(vec![()], |()| std::thread::current().id());
        assert_eq!(out, vec![caller]);
    }

    #[test]
    fn explicit_worker_policy_matches_env_path() {
        let items: Vec<usize> = (0..64).collect();
        let want: Vec<usize> = items.iter().map(|i| i * 7).collect();
        for workers in [0, 1, 2, 8, 100] {
            assert_eq!(ordered_map_with(workers, items.clone(), |i| i * 7), want);
        }
    }

    #[test]
    fn zero_and_one_worker_run_inline() {
        let caller = std::thread::current().id();
        for workers in [0, 1] {
            let out = ordered_map_with(workers, vec![(), ()], |()| std::thread::current().id());
            assert_eq!(out, vec![caller, caller]);
        }
    }

    #[test]
    fn stateful_map_matches_stateless_in_order() {
        let items: Vec<usize> = (0..64).collect();
        let want: Vec<usize> = items.iter().map(|i| i * 7).collect();
        for workers in [0, 1, 2, 8, 100] {
            let out = ordered_map_with_state(
                workers,
                items.clone(),
                Vec::<u8>::new,
                |scratch, i| {
                    scratch.clear();
                    scratch.extend_from_slice(&i.to_le_bytes());
                    i * 7
                },
            );
            assert_eq!(out, want);
        }
    }

    #[test]
    fn stateful_map_state_persists_within_worker() {
        // Inline (1 worker): a single state sees every item.
        let out = ordered_map_with_state(1, vec![1u64, 2, 3], || 0u64, |acc, i| {
            *acc += i;
            *acc
        });
        assert_eq!(out, vec![1, 3, 6]);
    }
}
