//! Deterministic fault injection for the simulated network.
//!
//! Real IoT testbeds lose connections mid-handshake, wedge against
//! stalled peers, hit DNS outages, and get power-cycled by their smart
//! plugs. This module reproduces those conditions *deterministically*:
//! a [`FaultPlan`] is a pure function from `(seed, session key)` to the
//! faults that session experiences, so a chaos run with a fixed seed
//! produces the identical fault schedule — and therefore identical
//! results — every time.
//!
//! The injection point is the [`LinkConditioner`], which sits between
//! the TLS endpoints and the [`crate::pipe::DuplexLink`] inside the
//! session driver and may cut, corrupt, or throttle the byte stream.
//! DNS faults are applied by [`crate::dns::DnsTable::resolve_faulted`].

use iotls_crypto::drbg::Drbg;

/// Why a session failed, when the cause was the *network* rather than
/// either TLS endpoint. Endpoint-level failures (validation rejection,
/// version intolerance, …) stay in the client handshake summary; a
/// `FailureCause` means the peers never got the chance to finish.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureCause {
    /// The transport was cut (TCP RST or mid-handshake power loss).
    Reset,
    /// The session stopped making progress and exhausted the driver's
    /// round budget (stalled peer / blackholed path).
    Wedged,
    /// Name resolution failed, so no connection was attempted.
    DnsFailure,
    /// A record fragment was corrupted in flight.
    Garbled,
}

impl FailureCause {
    /// Stable snake_case label used as a metrics-counter suffix.
    pub fn label(&self) -> &'static str {
        match self {
            FailureCause::Reset => "reset",
            FailureCause::Wedged => "wedged",
            FailureCause::DnsFailure => "dns_failure",
            FailureCause::Garbled => "garbled",
        }
    }
}

/// How a DNS lookup fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DnsFault {
    /// Authoritative NXDOMAIN.
    NxDomain,
    /// The resolver never answered.
    Timeout,
}

/// One scheduled fault, in link terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// Cut both directions once `offset` cumulative bytes have been
    /// delivered (either direction).
    Reset {
        /// Cumulative delivered-byte offset of the cut.
        offset: u64,
    },
    /// XOR the byte at cumulative delivered offset `offset`.
    Garble {
        /// Cumulative delivered-byte offset of the corrupted byte.
        offset: u64,
    },
    /// From the round after `after_round`, deliver at most one byte
    /// per direction per round — enough to keep the session "moving"
    /// but far too slow to finish inside the driver's round budget.
    Stall {
        /// Last round with normal delivery.
        after_round: usize,
    },
    /// Cut both directions at the start of round `at_round`: the
    /// device lost power mid-handshake. On the wire this looks like a
    /// reset, but it is logged distinctly because recovery differs
    /// (the device reboots).
    PowerCycle {
        /// Round at which power is lost.
        at_round: usize,
    },
}

/// A fault that actually fired during a driven session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// A [`FaultOp::Reset`] cut the link.
    Reset {
        /// Round in which the cut happened.
        round: usize,
        /// Cumulative delivered bytes at the cut.
        offset: u64,
    },
    /// A [`FaultOp::Garble`] corrupted a byte.
    Garble {
        /// Round in which the byte was corrupted.
        round: usize,
        /// Cumulative delivered offset of the corrupted byte.
        offset: u64,
    },
    /// A [`FaultOp::Stall`] began throttling.
    Stall {
        /// First throttled round.
        round: usize,
    },
    /// A [`FaultOp::PowerCycle`] cut the link at a round boundary.
    PowerCycle {
        /// Round at which power was lost.
        round: usize,
    },
    /// An injected DNS failure aborted the connection before any
    /// bytes flowed. Never emitted by the [`LinkConditioner`] (DNS
    /// faults fire at resolution time); recorded by the measurement
    /// core so DNS-failed attempts are tainted like link faults.
    Dns {
        /// How the lookup failed.
        kind: DnsFault,
    },
}

impl InjectedFault {
    /// Stable snake_case label used as a metrics-counter suffix.
    pub fn label(&self) -> &'static str {
        match self {
            InjectedFault::Reset { .. } => "reset",
            InjectedFault::Garble { .. } => "garble",
            InjectedFault::Stall { .. } => "stall",
            InjectedFault::PowerCycle { .. } => "power_cycle",
            InjectedFault::Dns { .. } => "dns",
        }
    }
}

/// The faults one session draws from a plan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SessionFaults {
    /// Link-level faults to apply.
    pub ops: Vec<FaultOp>,
    /// DNS fault for the lookup preceding the connection, if any.
    pub dns: Option<DnsFault>,
}

impl SessionFaults {
    /// No faults at all.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when this session has neither link nor DNS faults.
    pub fn is_clean(&self) -> bool {
        self.ops.is_empty() && self.dns.is_none()
    }
}

/// A seeded, deterministic fault schedule over a whole experiment.
///
/// Rates are per-mille probabilities, drawn independently per session
/// from a DRBG forked by the session key — the schedule is a pure
/// function of `(seed, key)`, independent of evaluation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Root seed for the schedule.
    pub seed: u64,
    /// Per-mille probability of a connection reset.
    pub reset_pm: u16,
    /// Per-mille probability of a garbled record fragment.
    pub garble_pm: u16,
    /// Per-mille probability of a stalled session.
    pub stall_pm: u16,
    /// Per-mille probability of a DNS failure.
    pub dns_fail_pm: u16,
    /// Per-mille probability of a mid-handshake power cycle.
    pub power_cycle_pm: u16,
}

impl FaultPlan {
    /// The fault-free plan (every session is clean).
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            reset_pm: 0,
            garble_pm: 0,
            stall_pm: 0,
            dns_fail_pm: 0,
            power_cycle_pm: 0,
        }
    }

    /// A uniform plan: every fault class at `pm` per mille.
    pub fn uniform(seed: u64, pm: u16) -> Self {
        FaultPlan {
            seed,
            reset_pm: pm,
            garble_pm: pm,
            stall_pm: pm,
            dns_fail_pm: pm,
            power_cycle_pm: pm,
        }
    }

    /// True when no fault class can ever fire.
    pub fn is_none(&self) -> bool {
        self.reset_pm == 0
            && self.garble_pm == 0
            && self.stall_pm == 0
            && self.dns_fail_pm == 0
            && self.power_cycle_pm == 0
    }

    /// The faults the session identified by `key` experiences. Pure:
    /// the same `(seed, key)` always yields the same faults, no matter
    /// how many other sessions were drawn in between.
    pub fn session_faults(&self, key: &str) -> SessionFaults {
        if self.is_none() {
            return SessionFaults::none();
        }
        let mut rng = Drbg::from_seed(self.seed).fork("fault-plan").fork(key);
        let mut ops = Vec::new();
        // Draw every class unconditionally so each decision consumes
        // the same DRBG stream regardless of earlier outcomes.
        let reset = rng.chance(self.reset_pm as f64 / 1000.0);
        let reset_offset = rng.range(16, 2600);
        let garble = rng.chance(self.garble_pm as f64 / 1000.0);
        let garble_offset = rng.range(6, 2200);
        let stall = rng.chance(self.stall_pm as f64 / 1000.0);
        let stall_round = rng.range(1, 3) as usize;
        let cycle = rng.chance(self.power_cycle_pm as f64 / 1000.0);
        let cycle_round = rng.range(1, 3) as usize;
        let dns = rng.chance(self.dns_fail_pm as f64 / 1000.0);
        let dns_kind = if rng.chance(0.5) {
            DnsFault::NxDomain
        } else {
            DnsFault::Timeout
        };
        if reset {
            ops.push(FaultOp::Reset {
                offset: reset_offset,
            });
        }
        if garble {
            ops.push(FaultOp::Garble {
                offset: garble_offset,
            });
        }
        if stall {
            ops.push(FaultOp::Stall {
                after_round: stall_round,
            });
        }
        if cycle {
            ops.push(FaultOp::PowerCycle {
                at_round: cycle_round,
            });
        }
        SessionFaults {
            ops,
            dns: dns.then_some(dns_kind),
        }
    }
}

/// Transfer direction through the conditioner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Client → server.
    C2s,
    /// Server → client.
    S2c,
}

/// The fault-applying shim between the TLS endpoints and the link.
///
/// The driver hands every outbound chunk to [`LinkConditioner::transfer`]
/// and forwards only what comes back; the conditioner cuts, corrupts,
/// or throttles according to its [`SessionFaults`], and records every
/// fault that actually fired.
#[derive(Debug, Default)]
pub struct LinkConditioner {
    faults: SessionFaults,
    /// Cumulative bytes delivered (both directions).
    delivered: u64,
    /// Link has been cut; nothing more flows.
    cut: bool,
    /// Stall is active from this round on.
    stall_from: Option<usize>,
    /// Held-back bytes per direction while stalling.
    backlog: [Vec<u8>; 2],
    injected: Vec<InjectedFault>,
}

impl LinkConditioner {
    /// A conditioner that changes nothing.
    pub fn passthrough() -> Self {
        Self::default()
    }

    /// A conditioner applying `faults`.
    pub fn new(faults: SessionFaults) -> Self {
        LinkConditioner {
            faults,
            ..Self::default()
        }
    }

    /// Called by the driver at the top of each pump round; fires
    /// round-triggered faults (power cycles, stall activation).
    pub fn begin_round(&mut self, round: usize) {
        for op in &self.faults.ops {
            match *op {
                FaultOp::PowerCycle { at_round } if at_round == round && !self.cut => {
                    self.cut = true;
                    self.injected.push(InjectedFault::PowerCycle { round });
                }
                FaultOp::Stall { after_round }
                    if round > after_round && self.stall_from.is_none() =>
                {
                    self.stall_from = Some(round);
                    self.injected.push(InjectedFault::Stall { round });
                }
                _ => {}
            }
        }
    }

    /// Passes `data` (possibly empty) through the conditioner for one
    /// direction, returning the bytes to deliver this round.
    pub fn transfer(&mut self, dir: Direction, data: &[u8], round: usize) -> Vec<u8> {
        let mut out = Vec::new();
        self.transfer_into(dir, data, round, &mut out);
        out
    }

    /// [`LinkConditioner::transfer`] into a caller-owned buffer
    /// (cleared first) — the zero-allocation form the replay and drive
    /// loops use. On the clean-link fast path (no cut, no stall, no
    /// backlog) the input is copied straight through without touching
    /// the backlog.
    pub fn transfer_into(&mut self, dir: Direction, data: &[u8], round: usize, out: &mut Vec<u8>) {
        out.clear();
        let slot = match dir {
            Direction::C2s => 0,
            Direction::S2c => 1,
        };
        if self.cut {
            self.backlog[slot].clear();
            return;
        }
        // Under stall, trickle one byte per direction per round.
        let stalled = self.stall_from.is_some_and(|r| round >= r);
        if !stalled && self.backlog[slot].is_empty() {
            out.extend_from_slice(data);
        } else {
            self.backlog[slot].extend_from_slice(data);
            let take = if stalled {
                1.min(self.backlog[slot].len())
            } else {
                self.backlog[slot].len()
            };
            out.extend(self.backlog[slot].drain(..take));
        }

        // Garble: corrupt the byte at its cumulative offset.
        for op in &self.faults.ops {
            if let FaultOp::Garble { offset } = *op {
                if offset >= self.delivered && offset < self.delivered + out.len() as u64 {
                    let already = self
                        .injected
                        .iter()
                        .any(|f| matches!(f, InjectedFault::Garble { .. }));
                    if !already {
                        out[(offset - self.delivered) as usize] ^= 0x5A;
                        self.injected.push(InjectedFault::Garble { round, offset });
                    }
                }
            }
        }

        // Reset: deliver up to the cut offset, then sever the link.
        for op in &self.faults.ops {
            if let FaultOp::Reset { offset } = *op {
                if offset < self.delivered + out.len() as u64 {
                    let keep = offset.saturating_sub(self.delivered) as usize;
                    out.truncate(keep);
                    self.cut = true;
                    self.backlog[0].clear();
                    self.backlog[1].clear();
                    self.injected.push(InjectedFault::Reset {
                        round,
                        offset: self.delivered + out.len() as u64,
                    });
                    break;
                }
            }
        }

        self.delivered += out.len() as u64;
    }

    /// Bytes still held back (stall backlog).
    pub fn has_backlog(&self) -> bool {
        !self.cut && (!self.backlog[0].is_empty() || !self.backlog[1].is_empty())
    }

    /// True once the link has been severed.
    pub fn is_cut(&self) -> bool {
        self.cut
    }

    /// Every fault that actually fired, in firing order.
    pub fn injected(&self) -> &[InjectedFault] {
        &self.injected
    }

    /// True when any fault fired: the session's outcome cannot be
    /// trusted as a statement about the endpoints.
    pub fn tainted(&self) -> bool {
        !self.injected.is_empty()
    }

    /// The network-level failure cause implied by the fired faults,
    /// by severity: a cut beats corruption beats a wedge.
    pub fn failure_cause(&self, exhausted_rounds: bool) -> Option<FailureCause> {
        let cut = self.injected.iter().any(|f| {
            matches!(
                f,
                InjectedFault::Reset { .. } | InjectedFault::PowerCycle { .. }
            )
        });
        if cut {
            return Some(FailureCause::Reset);
        }
        if self
            .injected
            .iter()
            .any(|f| matches!(f, InjectedFault::Garble { .. }))
        {
            return Some(FailureCause::Garbled);
        }
        if exhausted_rounds {
            return Some(FailureCause::Wedged);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_pure_function_of_seed_and_key() {
        let plan = FaultPlan::uniform(7, 300);
        let a = plan.session_faults("conn/cam/host/0");
        let b = plan.session_faults("conn/cam/host/0");
        assert_eq!(a, b);
        // Drawing another key in between changes nothing.
        let _ = plan.session_faults("conn/other/host/3");
        assert_eq!(plan.session_faults("conn/cam/host/0"), a);
    }

    #[test]
    fn none_plan_is_always_clean() {
        let plan = FaultPlan::none();
        for i in 0..50 {
            assert!(plan.session_faults(&format!("k{i}")).is_clean());
        }
    }

    #[test]
    fn rates_scale_fault_frequency() {
        let heavy = FaultPlan::uniform(1, 800);
        let light = FaultPlan::uniform(1, 10);
        let count = |p: &FaultPlan| {
            (0..200)
                .filter(|i| !p.session_faults(&format!("s{i}")).is_clean())
                .count()
        };
        assert!(count(&heavy) > count(&light));
        assert!(count(&light) < 30);
    }

    #[test]
    fn reset_cuts_at_offset() {
        let mut c = LinkConditioner::new(SessionFaults {
            ops: vec![FaultOp::Reset { offset: 5 }],
            dns: None,
        });
        c.begin_round(0);
        let out = c.transfer(Direction::C2s, b"0123456789", 0);
        assert_eq!(out, b"01234");
        assert!(c.is_cut());
        assert!(c.tainted());
        // Nothing flows after the cut, either direction.
        assert!(c.transfer(Direction::S2c, b"xyz", 1).is_empty());
        assert_eq!(c.failure_cause(false), Some(FailureCause::Reset));
    }

    #[test]
    fn garble_flips_exactly_one_byte() {
        let mut c = LinkConditioner::new(SessionFaults {
            ops: vec![FaultOp::Garble { offset: 2 }],
            dns: None,
        });
        let out = c.transfer(Direction::C2s, b"aaaa", 0);
        assert_eq!(out, vec![b'a', b'a', b'a' ^ 0x5A, b'a']);
        // Later traffic is untouched.
        assert_eq!(c.transfer(Direction::S2c, b"bb", 1), b"bb");
        assert_eq!(c.failure_cause(false), Some(FailureCause::Garbled));
    }

    #[test]
    fn stall_trickles_one_byte_per_round() {
        let mut c = LinkConditioner::new(SessionFaults {
            ops: vec![FaultOp::Stall { after_round: 0 }],
            dns: None,
        });
        c.begin_round(1);
        assert_eq!(c.transfer(Direction::C2s, b"abc", 1), b"a");
        assert!(c.has_backlog());
        c.begin_round(2);
        assert_eq!(c.transfer(Direction::C2s, b"", 2), b"b");
        assert_eq!(c.transfer(Direction::S2c, b"zz", 2), b"z");
        assert_eq!(c.failure_cause(true), Some(FailureCause::Wedged));
    }

    #[test]
    fn power_cycle_cuts_at_round_boundary() {
        let mut c = LinkConditioner::new(SessionFaults {
            ops: vec![FaultOp::PowerCycle { at_round: 2 }],
            dns: None,
        });
        c.begin_round(0);
        assert_eq!(c.transfer(Direction::C2s, b"hello", 0), b"hello");
        c.begin_round(2);
        assert!(c.transfer(Direction::C2s, b"more", 2).is_empty());
        assert_eq!(c.injected().len(), 1);
        assert!(matches!(c.injected()[0], InjectedFault::PowerCycle { round: 2 }));
        // A power cycle presents as a reset on the wire.
        assert_eq!(c.failure_cause(false), Some(FailureCause::Reset));
    }

    #[test]
    fn passthrough_changes_nothing() {
        let mut c = LinkConditioner::passthrough();
        for round in 0..5 {
            c.begin_round(round);
            assert_eq!(c.transfer(Direction::C2s, b"data", round), b"data");
        }
        assert!(!c.tainted());
        assert_eq!(c.failure_cause(false), None);
        // Exhausting the round budget is a wedge even with no faults.
        assert_eq!(c.failure_cause(true), Some(FailureCause::Wedged));
    }
}
