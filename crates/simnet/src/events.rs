//! Discrete-event scheduling over virtual time.
//!
//! The testbed's clock never reads the host clock: experiments advance
//! a [`SimClock`] explicitly, and anything scheduled (device boots,
//! smart-plug power cycles, firmware updates, monthly capture rolls)
//! goes through an [`EventQueue`]. Ties break by insertion order, so
//! runs are fully deterministic.

use iotls_x509::Timestamp;
use std::collections::BinaryHeap;

/// The simulation's wall clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimClock {
    now: Timestamp,
}

impl SimClock {
    /// Starts the clock at `start`.
    pub fn new(start: Timestamp) -> Self {
        SimClock { now: start }
    }

    /// Current simulated time.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Advances by `secs` seconds.
    pub fn advance_secs(&mut self, secs: i64) {
        assert!(secs >= 0, "clock cannot run backwards");
        self.now = self.now.plus_secs(secs);
    }

    /// Jumps directly to `t` (must not be in the past).
    pub fn advance_to(&mut self, t: Timestamp) {
        assert!(t >= self.now, "clock cannot run backwards");
        self.now = t;
    }
}

#[derive(Debug)]
struct Scheduled<E> {
    at: Timestamp,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic time-ordered event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at time `at`.
    pub fn schedule(&mut self, at: Timestamp, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Time of the next event, if any.
    pub fn peek_time(&self) -> Option<Timestamp> {
        self.heap.peek().map(|s| s.at)
    }

    /// Pops the next event if it is due at or before `now`, advancing
    /// the caller's view of causality one event at a time.
    pub fn pop_due(&mut self, now: Timestamp) -> Option<(Timestamp, E)> {
        if self.heap.peek().is_some_and(|s| s.at <= now) {
            let s = self.heap.pop().unwrap();
            Some((s.at, s.event))
        } else {
            None
        }
    }

    /// Pops the next event unconditionally (advance-to-next-event
    /// execution).
    pub fn pop_next(&mut self) -> Option<(Timestamp, E)> {
        self.heap.pop().map(|s| (s.at, s.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: i64) -> Timestamp {
        Timestamp(s)
    }

    #[test]
    fn clock_advances_and_refuses_backwards() {
        let mut c = SimClock::new(t(100));
        c.advance_secs(50);
        assert_eq!(c.now(), t(150));
        c.advance_to(t(200));
        assert_eq!(c.now(), t(200));
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn clock_panics_on_backwards_jump() {
        let mut c = SimClock::new(t(100));
        c.advance_to(t(50));
    }

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), "c");
        q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert_eq!(q.pop_next(), Some((t(10), "a")));
        assert_eq!(q.pop_next(), Some((t(20), "b")));
        assert_eq!(q.pop_next(), Some((t(30), "c")));
        assert_eq!(q.pop_next(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(t(10), "first");
        q.schedule(t(10), "second");
        q.schedule(t(10), "third");
        assert_eq!(q.pop_next().unwrap().1, "first");
        assert_eq!(q.pop_next().unwrap().1, "second");
        assert_eq!(q.pop_next().unwrap().1, "third");
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 1);
        q.schedule(t(20), 2);
        assert_eq!(q.pop_due(t(5)), None);
        assert_eq!(q.pop_due(t(15)), Some((t(10), 1)));
        assert_eq!(q.pop_due(t(15)), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(t(20)));
    }
}
