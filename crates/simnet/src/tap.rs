//! Passive gateway tap.
//!
//! The paper's passive experiments record traffic at the home gateway
//! and later extract handshake metadata from pcaps. [`GatewayTap`]
//! does the equivalent: it watches the raw bytes of both directions of
//! a link, deframes TLS records, and parses ClientHello / ServerHello
//! / Alert messages *without participating in the connection*. The
//! result is a [`TlsObservation`] — the unit every longitudinal
//! analysis (Figures 1–3, Table 8) consumes.

use iotls_tls::alert::{Alert, AlertDescription};
use iotls_tls::fingerprint::{Fingerprint, FingerprintId};
use iotls_tls::handshake::{
    first_certificate, msg_type, next_raw_message, server_hello_fields, validate_body, ClientHello,
};
use iotls_tls::record::{ContentType, Deframer};
use iotls_tls::version::ProtocolVersion;
use iotls_x509::Timestamp;

/// Handshake metadata extracted by passively watching one connection.
#[derive(Debug, Clone)]
pub struct TlsObservation {
    /// When the connection started.
    pub time: Timestamp,
    /// Source device name.
    pub device: String,
    /// Destination hostname (DNS/SNI).
    pub destination: String,
    /// SNI hostname, when sent.
    pub sni: Option<String>,
    /// Every protocol version the ClientHello advertised.
    pub advertised_versions: Vec<ProtocolVersion>,
    /// The maximum advertised version.
    pub max_advertised: ProtocolVersion,
    /// Offered ciphersuite code points, in order.
    pub offered_suites: Vec<u16>,
    /// Whether the client requested an OCSP staple.
    pub requested_ocsp: bool,
    /// JA3-shaped fingerprint of the ClientHello.
    pub fingerprint: FingerprintId,
    /// Negotiated version (from ServerHello), if one arrived.
    pub negotiated_version: Option<ProtocolVersion>,
    /// Negotiated suite, if a ServerHello arrived.
    pub negotiated_suite: Option<u16>,
    /// Whether the server stapled an OCSP response.
    pub ocsp_stapled: bool,
    /// Issuer common name of the server's leaf certificate, when one
    /// crossed the wire (absent for abbreviated handshakes).
    pub leaf_issuer: Option<String>,
    /// Whether the connection reached the application-data phase.
    pub established: bool,
    /// Alert descriptions seen client→server.
    pub alerts_from_client: Vec<AlertDescription>,
    /// Alert descriptions seen server→client.
    pub alerts_from_server: Vec<AlertDescription>,
}

impl TlsObservation {
    /// True when any advertised version is deprecated (< TLS 1.2).
    pub fn advertises_deprecated_version(&self) -> bool {
        self.advertised_versions.iter().any(|v| v.is_deprecated())
    }

    /// True when the negotiated version is deprecated.
    pub fn negotiated_deprecated_version(&self) -> bool {
        self.negotiated_version.is_some_and(|v| v.is_deprecated())
    }

    /// True when any offered suite is in the insecure class.
    pub fn advertises_insecure_suite(&self) -> bool {
        self.offered_suites
            .iter()
            .any(|s| iotls_tls::ciphersuite::id_is_insecure(*s))
    }

    /// True when any offered suite provides forward secrecy.
    pub fn advertises_forward_secrecy(&self) -> bool {
        self.offered_suites
            .iter()
            .any(|s| iotls_tls::ciphersuite::id_is_forward_secret(*s))
    }

    /// True when the negotiated suite is insecure.
    pub fn negotiated_insecure_suite(&self) -> bool {
        self.negotiated_suite
            .is_some_and(iotls_tls::ciphersuite::id_is_insecure)
    }

    /// True when the negotiated suite provides forward secrecy.
    pub fn negotiated_forward_secrecy(&self) -> bool {
        self.negotiated_suite
            .is_some_and(iotls_tls::ciphersuite::id_is_forward_secret)
    }
}

/// A passive observer of one connection's bytes.
#[derive(Default)]
pub struct GatewayTap {
    c2s: Deframer,
    s2c: Deframer,
    client_hello: Option<ClientHello>,
    negotiated_version: Option<ProtocolVersion>,
    negotiated_suite: Option<u16>,
    ocsp_stapled: bool,
    leaf_issuer: Option<String>,
    server_finished: bool,
    saw_app_data: bool,
    alerts_from_client: Vec<Alert>,
    alerts_from_server: Vec<Alert>,
    records_deframed: u64,
    bytes_tapped: u64,
}

impl GatewayTap {
    /// A fresh tap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes client→server bytes.
    ///
    /// Records and handshake bodies are scanned as borrowed slices;
    /// the only allocation is the ClientHello itself, which the
    /// observation keeps.
    pub fn observe_c2s(&mut self, data: &[u8]) {
        self.bytes_tapped += data.len() as u64;
        self.c2s.push(data);
        while let Ok(Some(rec)) = self.c2s.pop_ref() {
            self.records_deframed += 1;
            match rec.content_type {
                ContentType::Handshake => {
                    let mut buf = rec.payload;
                    while let Ok((typ, body, used)) = next_raw_message(buf) {
                        let valid = if typ == msg_type::CLIENT_HELLO {
                            match ClientHello::decode_body(body) {
                                Ok(ch) => {
                                    self.client_hello = Some(ch);
                                    true
                                }
                                Err(_) => false,
                            }
                        } else {
                            validate_body(typ, body).is_ok()
                        };
                        if !valid {
                            break;
                        }
                        buf = &buf[used..];
                        if buf.is_empty() {
                            break;
                        }
                    }
                }
                ContentType::Alert => {
                    if let Some(a) = Alert::from_bytes(rec.payload) {
                        self.alerts_from_client.push(a);
                    }
                }
                ContentType::ApplicationData => self.saw_app_data = true,
                ContentType::ChangeCipherSpec => {}
            }
        }
    }

    /// Observes server→client bytes.
    pub fn observe_s2c(&mut self, data: &[u8]) {
        self.bytes_tapped += data.len() as u64;
        self.s2c.push(data);
        while let Ok(Some(rec)) = self.s2c.pop_ref() {
            self.records_deframed += 1;
            match rec.content_type {
                ContentType::Handshake => {
                    let mut buf = rec.payload;
                    while let Ok((typ, body, used)) = next_raw_message(buf) {
                        let valid = match typ {
                            msg_type::SERVER_HELLO => match server_hello_fields(body) {
                                Ok((version, suite)) => {
                                    self.negotiated_version = Some(version);
                                    self.negotiated_suite = Some(suite);
                                    true
                                }
                                Err(_) => false,
                            },
                            msg_type::CERTIFICATE => match first_certificate(body) {
                                Ok(leaf) => {
                                    if let Some(leaf_bytes) = leaf {
                                        if let Ok(cert) =
                                            iotls_x509::Certificate::from_bytes(leaf_bytes)
                                        {
                                            self.leaf_issuer =
                                                Some(cert.tbs.issuer.common_name.clone());
                                        }
                                    }
                                    true
                                }
                                Err(_) => false,
                            },
                            msg_type::CERTIFICATE_STATUS => {
                                let ok = validate_body(typ, body).is_ok();
                                if ok {
                                    self.ocsp_stapled = true;
                                }
                                ok
                            }
                            msg_type::FINISHED => {
                                self.server_finished = true;
                                true
                            }
                            _ => validate_body(typ, body).is_ok(),
                        };
                        if !valid {
                            break;
                        }
                        buf = &buf[used..];
                        if buf.is_empty() {
                            break;
                        }
                    }
                }
                ContentType::Alert => {
                    if let Some(a) = Alert::from_bytes(rec.payload) {
                        self.alerts_from_server.push(a);
                    }
                }
                ContentType::ApplicationData => self.saw_app_data = true,
                ContentType::ChangeCipherSpec => {}
            }
        }
    }

    /// Clears all per-connection state, keeping buffer allocations, so
    /// one tap (and its scratch buffers) can observe many connections.
    pub fn reset(&mut self) {
        self.c2s.clear();
        self.s2c.clear();
        self.client_hello = None;
        self.negotiated_version = None;
        self.negotiated_suite = None;
        self.ocsp_stapled = false;
        self.leaf_issuer = None;
        self.server_finished = false;
        self.saw_app_data = false;
        self.alerts_from_client.clear();
        self.alerts_from_server.clear();
        self.records_deframed = 0;
        self.bytes_tapped = 0;
    }

    /// Complete TLS records deframed (both directions) since the last
    /// [`GatewayTap::reset`].
    pub fn records_deframed(&self) -> u64 {
        self.records_deframed
    }

    /// Raw bytes tapped (both directions) since the last
    /// [`GatewayTap::reset`].
    pub fn bytes_tapped(&self) -> u64 {
        self.bytes_tapped
    }

    /// The observed ClientHello, if one was seen.
    pub fn client_hello(&self) -> Option<&ClientHello> {
        self.client_hello.as_ref()
    }

    /// Alerts seen from the client side.
    pub fn alerts_from_client(&self) -> &[Alert] {
        &self.alerts_from_client
    }

    /// Finalizes the observation. Returns `None` when no ClientHello
    /// was observed (nothing TLS happened on the link).
    pub fn into_observation(
        mut self,
        time: Timestamp,
        device: &str,
        destination: &str,
    ) -> Option<TlsObservation> {
        self.take_observation(time, device, destination)
    }

    /// Takes the observation out of a reusable tap, leaving the
    /// per-connection state spent. Call [`GatewayTap::reset`] before
    /// observing the next connection.
    pub fn take_observation(
        &mut self,
        time: Timestamp,
        device: &str,
        destination: &str,
    ) -> Option<TlsObservation> {
        let ch = self.client_hello.take()?;
        let fingerprint = Fingerprint::from_client_hello(&ch).id();
        let sni = ch.server_name().map(str::to_string);
        let advertised_versions = ch.advertised_versions();
        let max_advertised = ch.max_version();
        let requested_ocsp = ch.requests_ocsp();
        Some(TlsObservation {
            time,
            device: device.to_string(),
            destination: destination.to_string(),
            sni,
            advertised_versions,
            max_advertised,
            offered_suites: ch.cipher_suites,
            requested_ocsp,
            fingerprint,
            negotiated_version: self.negotiated_version.take(),
            negotiated_suite: self.negotiated_suite.take(),
            ocsp_stapled: std::mem::take(&mut self.ocsp_stapled),
            leaf_issuer: self.leaf_issuer.take(),
            established: self.server_finished || self.saw_app_data,
            alerts_from_client: self
                .alerts_from_client
                .drain(..)
                .map(|a| a.description)
                .collect(),
            alerts_from_server: self
                .alerts_from_server
                .drain(..)
                .map(|a| a.description)
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotls_tls::record::Record;
    use iotls_tls::HandshakeMessage;

    fn hello_bytes() -> Vec<u8> {
        let ch = ClientHello {
            legacy_version: ProtocolVersion::Tls12,
            random: [1u8; 32],
            session_id: vec![],
            cipher_suites: vec![0xc02f, 0x0005],
            compression_methods: vec![0],
            extensions: vec![iotls_tls::Extension::ServerName("dev.example.com".into())],
        };
        let msg = HandshakeMessage::ClientHello(ch).encode();
        Record::new(ContentType::Handshake, ProtocolVersion::Tls12, msg).encode()
    }

    #[test]
    fn tap_extracts_client_hello_metadata() {
        let mut tap = GatewayTap::new();
        tap.observe_c2s(&hello_bytes());
        let obs = tap
            .into_observation(Timestamp(0), "TestCam", "dev.example.com")
            .unwrap();
        assert_eq!(obs.sni.as_deref(), Some("dev.example.com"));
        assert_eq!(obs.max_advertised, ProtocolVersion::Tls12);
        assert!(obs.advertises_insecure_suite()); // 0x0005 RC4
        assert!(obs.advertises_forward_secrecy()); // 0xc02f ECDHE
        assert!(!obs.established);
        assert!(obs.negotiated_version.is_none());
    }

    #[test]
    fn tap_sees_alerts_and_server_hello() {
        let mut tap = GatewayTap::new();
        tap.observe_c2s(&hello_bytes());
        let sh = iotls_tls::ServerHello {
            version: ProtocolVersion::Tls12,
            random: [2u8; 32],
            session_id: vec![],
            cipher_suite: 0xc02f,
            extensions: vec![],
            compression_method: 0,
        };
        let sh_bytes = Record::new(
            ContentType::Handshake,
            ProtocolVersion::Tls12,
            HandshakeMessage::ServerHello(sh).encode(),
        )
        .encode();
        tap.observe_s2c(&sh_bytes);
        let alert = Alert::fatal(AlertDescription::UnknownCa);
        let alert_bytes = Record::new(
            ContentType::Alert,
            ProtocolVersion::Tls12,
            alert.to_bytes().to_vec(),
        )
        .encode();
        tap.observe_c2s(&alert_bytes);
        let obs = tap
            .into_observation(Timestamp(5), "TestCam", "dev.example.com")
            .unwrap();
        assert_eq!(obs.negotiated_version, Some(ProtocolVersion::Tls12));
        assert_eq!(obs.negotiated_suite, Some(0xc02f));
        assert!(!obs.negotiated_insecure_suite());
        assert!(obs.negotiated_forward_secrecy());
        assert_eq!(obs.alerts_from_client, vec![AlertDescription::UnknownCa]);
        assert!(!obs.established);
    }

    #[test]
    fn no_client_hello_no_observation() {
        let tap = GatewayTap::new();
        assert!(tap.into_observation(Timestamp(0), "d", "h").is_none());
    }

    #[test]
    fn tap_tolerates_partial_delivery() {
        let bytes = hello_bytes();
        let mut tap = GatewayTap::new();
        for chunk in bytes.chunks(3) {
            tap.observe_c2s(chunk);
        }
        assert!(tap.client_hello().is_some());
    }

    #[test]
    fn app_data_marks_established() {
        let mut tap = GatewayTap::new();
        tap.observe_c2s(&hello_bytes());
        let app = Record::new(
            ContentType::ApplicationData,
            ProtocolVersion::Tls12,
            vec![0xaa; 16],
        )
        .encode();
        tap.observe_s2c(&app);
        let obs = tap.into_observation(Timestamp(0), "d", "h").unwrap();
        assert!(obs.established);
    }
}
