//! Renderers for the paper's tables.
//!
//! Each function regenerates one table from live experiment results
//! (never from ground truth) and renders it in the paper's shape.

use crate::render::TextTable;
use iotls::{
    DowngradeKind, DowngradeRow, InterceptionReport, LibraryAlertRow, OldVersionRow,
    RevocationSummary, RootProbeReport,
};
use iotls_devices::{Category, Testbed};
use iotls_rootstore::Platform;

fn check(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}

/// Table 1: the device roster by category, passive-only devices
/// starred.
pub fn table1_roster(testbed: &Testbed) -> String {
    let mut out = String::from("Table 1: TLS-supporting devices in the study (* = passive only)\n\n");
    for cat in Category::ALL {
        let devices: Vec<String> = testbed
            .devices
            .iter()
            .filter(|d| d.spec.category == cat)
            .map(|d| {
                format!(
                    "{}{}",
                    d.spec.name,
                    if d.spec.in_active { "" } else { "*" }
                )
            })
            .collect();
        out.push_str(&format!(
            "{} (n = {})\n  {}\n",
            cat.name(),
            devices.len(),
            devices.join("\n  ")
        ));
    }
    out
}

/// Table 2: the interception attack overview.
pub fn table2_attacks() -> String {
    let mut t = TextTable::new(&["Attack", "Description"]);
    t.row_str(&[
        "NoValidation",
        "Self-signed certificate; checks for any certificate validation",
    ]);
    t.row_str(&[
        "WrongHostname",
        "Unexpired legitimate certificate for an attacker-controlled domain; checks hostname validation",
    ]);
    t.row_str(&[
        "InvalidBasicConstraints",
        "Previous certificate used as a CA; checks BasicConstraints validation",
    ]);
    format!("Table 2: TLS interception attacks\n\n{}", t.render())
}

/// Table 3: root-store data sources.
pub fn table3_platforms() -> String {
    let mut t = TextTable::new(&["Platform", "Total versions", "Earliest year", "Source"]);
    for p in Platform::ALL {
        t.row(&[
            p.name().to_string(),
            p.version_count().to_string(),
            p.earliest_year().to_string(),
            p.source_comment().to_string(),
        ]);
    }
    format!(
        "Table 3: sources for historical root-store data\n\n{}",
        t.render()
    )
}

/// Table 4: library alert behavior and probe amenability.
pub fn table4_library_alerts(matrix: &[LibraryAlertRow]) -> String {
    let mut t = TextTable::new(&[
        "Library",
        "Known CA, invalid signature",
        "Unknown CA",
        "Amenable",
    ]);
    for row in matrix {
        let fmt = |a: Option<iotls_tls::AlertDescription>| {
            a.map(|d| d.to_string()).unwrap_or_else(|| "no alert".into())
        };
        t.row(&[
            row.library.display_name().to_string(),
            fmt(row.known_ca_bad_signature),
            fmt(row.unknown_ca),
            check(row.amenable()).to_string(),
        ]);
    }
    format!(
        "Table 4: alert responses of TLS libraries to the two probe failures\n\n{}",
        t.render()
    )
}

/// Table 5: devices that downgrade on connection failures.
pub fn table5_downgrades(rows: &[DowngradeRow]) -> String {
    let mut t = TextTable::new(&[
        "Device",
        "Failed handshake",
        "Incomplete handshake",
        "Behavior",
        "Downgraded/Total",
    ]);
    for row in rows {
        let behavior = match &row.kind {
            DowngradeKind::VersionFallback { to, .. } => {
                format!("Falls back to using {to}")
            }
            DowngradeKind::WeakerCiphers {
                added_insecure,
                added_sha1,
            } => {
                let suites: Vec<String> = added_insecure
                    .iter()
                    .filter_map(|s| iotls_tls::by_id(*s).map(|i| i.name.to_string()))
                    .collect();
                format!(
                    "Falls back to weaker ciphersuite{} ({}{})",
                    if *added_sha1 {
                        " and signature algorithm"
                    } else {
                        ""
                    },
                    suites.join(", "),
                    if *added_sha1 { " and RSA_PKCS1_SHA1" } else { "" }
                )
            }
            DowngradeKind::SuiteCollapse { from, to, remaining } => {
                let names: Vec<String> = remaining
                    .iter()
                    .filter_map(|s| iotls_tls::by_id(*s).map(|i| i.name.to_string()))
                    .collect();
                format!(
                    "Falls back from offering {from} ciphersuites to just {to} ({})",
                    names.join(", ")
                )
            }
        };
        t.row(&[
            row.device.clone(),
            check(row.on_failed_handshake).to_string(),
            check(row.on_incomplete_handshake).to_string(),
            behavior,
            format!(
                "{} / {}",
                row.downgraded_destinations.len(),
                row.total_destinations
            ),
        ]);
    }
    format!(
        "Table 5: devices that downgrade security upon connection failures\n\n{}",
        t.render()
    )
}

/// Table 6: devices supporting old TLS versions.
pub fn table6_old_versions(rows: &[OldVersionRow]) -> String {
    let mut t = TextTable::new(&["Device", "TLS 1.0 available?", "TLS 1.1 available?"]);
    for row in rows {
        t.row(&[
            row.device.clone(),
            check(row.tls10).to_string(),
            check(row.tls11).to_string(),
        ]);
    }
    format!(
        "Table 6: devices that support TLS versions older than 1.2 ({} devices)\n\n{}",
        rows.len(),
        t.render()
    )
}

/// Table 7: devices vulnerable to interception.
pub fn table7_interception(report: &InterceptionReport) -> String {
    let mut t = TextTable::new(&[
        "Device",
        "No-Validation",
        "InvalidBasicConstraints",
        "Wrong-Hostname",
        "Vulnerable/Total destinations",
    ]);
    for row in report.vulnerable_rows() {
        t.row(&[
            row.device.clone(),
            check(row.no_validation).to_string(),
            check(row.invalid_basic_constraints).to_string(),
            check(row.wrong_hostname).to_string(),
            format!(
                "{} / {}",
                row.vulnerable_destinations.len(),
                row.total_destinations.len()
            ),
        ]);
    }
    format!(
        "Table 7: devices vulnerable to TLS interception ({} of {} audited; \
         {} leak sensitive data; TrafficPassthrough surfaced {:.1}% extra hostnames)\n\n{}",
        report.vulnerable_rows().len(),
        report.rows.len(),
        report.leaky_devices().len(),
        report.passthrough_extra_hostnames_pct,
        t.render()
    )
}

/// Table 8: revocation-method support.
pub fn table8_revocation(summary: &RevocationSummary, all_devices: &[String]) -> String {
    let mut t = TextTable::new(&["Method", "Devices (count)"]);
    let fmt = |devices: &[String]| format!("{} ({})", devices.join(", "), devices.len());
    t.row(&[
        "Certificate Revocation Lists (CRLs)".to_string(),
        fmt(&summary.crl),
    ]);
    t.row(&[
        "Online Certificate Status Protocol (OCSP)".to_string(),
        fmt(&summary.ocsp),
    ]);
    t.row(&["OCSP Stapling".to_string(), fmt(&summary.ocsp_stapling)]);
    let none = summary.devices_without_any(all_devices);
    format!(
        "Table 8: certificate revocation support ({} devices never check)\n\n{}",
        none.len(),
        t.render()
    )
}

/// Table 9: root-store exploration results.
pub fn table9_rootstores(report: &RootProbeReport) -> String {
    let mut rows: Vec<&iotls::RootProbeRow> = report.amenable_rows();
    // Paper orders by deprecated fraction ascending.
    rows.sort_by(|a, b| {
        let fa = a.deprecated_ratio();
        let fb = b.deprecated_ratio();
        (fa.0 * fb.1).cmp(&(fb.0 * fa.1))
    });
    let mut t = TextTable::new(&[
        "Device",
        "Common certs (total = 122)",
        "Deprecated certs (total = 87)",
    ]);
    for row in rows {
        let (cp, cc) = row.common_ratio();
        let (dp, dc) = row.deprecated_ratio();
        t.row(&[
            row.device.clone(),
            format!("{:.0}% ({}/{})", 100.0 * cp as f64 / cc.max(1) as f64, cp, cc),
            format!("{:.0}% ({}/{})", 100.0 * dp as f64 / dc.max(1) as f64, dp, dc),
        ]);
    }
    format!(
        "Table 9: exploring the root stores of {} amenable devices (of {} probed; \
         {} excluded as reboot-unsafe, {} for never validating)\n\n{}",
        report.amenable_rows().len(),
        report.rows.len(),
        report.excluded_reboot_unsafe.len(),
        report.excluded_no_validation.len(),
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotls::library_alert_matrix;

    #[test]
    fn table1_lists_all_categories_and_stars() {
        let text = table1_roster(Testbed::global());
        for cat in Category::ALL {
            assert!(text.contains(cat.name()));
        }
        assert!(text.contains("Ring Doorbell*"));
        assert!(text.contains("Zmodo Doorbell"));
        assert!(!text.contains("Zmodo Doorbell*"));
    }

    #[test]
    fn table2_and_3_render() {
        let t2 = table2_attacks();
        assert!(t2.contains("NoValidation"));
        assert!(t2.contains("WrongHostname"));
        let t3 = table3_platforms();
        assert!(t3.contains("Mozilla"));
        assert!(t3.contains("47"));
        assert!(t3.contains("2013"));
    }

    #[test]
    fn table4_marks_amenable_libraries() {
        let text = table4_library_alerts(&library_alert_matrix());
        assert!(text.contains("decrypt_error"));
        assert!(text.contains("unknown_ca"));
        assert!(text.contains("no alert"));
        assert!(text.contains("Mbedtls (v2.21.0)"));
    }
}
