//! Root-store minimization (§5.2's closing question).
//!
//! "An important question is whether these devices all need to use
//! such large root stores, or instead some of the devices can reduce
//! their trusted set of certificates to cover only the destinations
//! that are required for the device." This analysis answers it with
//! measurements: the issuers actually *used* by a device's
//! destinations (observed in served certificate chains at the
//! gateway) versus the store size the probe measured.

use iotls::RootProbeReport;
use iotls_capture::PassiveDataset;
use std::collections::{BTreeMap, BTreeSet};

/// One device's utilization row.
#[derive(Debug, Clone)]
pub struct UtilizationRow {
    /// Device name.
    pub device: String,
    /// Distinct issuer CNs observed in served leaf certificates.
    pub issuers_used: BTreeSet<String>,
    /// Root-store size as the probe measured it (present commons +
    /// present deprecated).
    pub measured_store_size: usize,
}

impl UtilizationRow {
    /// Fraction of the measured store the device actually needs.
    pub fn utilization(&self) -> f64 {
        self.issuers_used.len() as f64 / self.measured_store_size.max(1) as f64
    }
}

/// Computes utilization for every amenable (probed) device.
pub fn root_store_utilization(
    ds: &PassiveDataset,
    probe: &RootProbeReport,
) -> Vec<UtilizationRow> {
    // Issuers per device from passive data.
    let mut issuers: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for w in &ds.observations {
        if let Some(issuer) = &w.observation.leaf_issuer {
            issuers
                .entry(w.observation.device.clone())
                .or_default()
                .insert(issuer.clone());
        }
    }
    probe
        .amenable_rows()
        .into_iter()
        .map(|row| {
            let (cp, _) = row.common_ratio();
            let (dp, _) = row.deprecated_ratio();
            UtilizationRow {
                device: row.device.clone(),
                issuers_used: issuers.get(&row.device).cloned().unwrap_or_default(),
                measured_store_size: cp + dp,
            }
        })
        .collect()
}

/// Renders the utilization table.
pub fn render_utilization(rows: &[UtilizationRow]) -> String {
    let mut t = crate::render::TextTable::new(&[
        "Device",
        "Issuers used",
        "Measured store size",
        "Utilization",
    ]);
    for row in rows {
        t.row(&[
            row.device.clone(),
            row.issuers_used.len().to_string(),
            row.measured_store_size.to_string(),
            format!("{:.1}%", 100.0 * row.utilization()),
        ]);
    }
    format!(
        "Root-store utilization (§5.2): issuers actually used vs roots trusted\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotls::run_root_probe;
    use iotls_capture::global_dataset;
    use iotls_devices::Testbed;
    use std::sync::OnceLock;

    fn rows() -> &'static Vec<UtilizationRow> {
        static R: OnceLock<Vec<UtilizationRow>> = OnceLock::new();
        R.get_or_init(|| {
            let probe = run_root_probe(Testbed::global(), 0x07111);
            root_store_utilization(global_dataset(), &probe)
        })
    }

    #[test]
    fn covers_the_eight_amenable_devices() {
        assert_eq!(rows().len(), 8);
    }

    #[test]
    fn every_device_wildly_overtrusts() {
        // The paper's implied answer: devices contact a handful of
        // issuers yet trust ~100+ roots.
        for row in rows() {
            assert!(
                !row.issuers_used.is_empty(),
                "{}: no issuers observed",
                row.device
            );
            assert!(
                row.issuers_used.len() <= 25,
                "{}: {} issuers",
                row.device,
                row.issuers_used.len()
            );
            assert!(row.measured_store_size >= 80, "{}", row.device);
            assert!(
                row.utilization() < 0.25,
                "{}: {:.1}% utilization",
                row.device,
                100.0 * row.utilization()
            );
        }
    }

    #[test]
    fn issuers_are_real_ca_names() {
        for row in rows() {
            for issuer in &row.issuers_used {
                assert!(
                    issuer.contains("SimTrust") || issuer.contains("CA"),
                    "{}: odd issuer {issuer}",
                    row.device
                );
            }
        }
    }

    #[test]
    fn render_contains_percentages() {
        let text = render_utilization(rows());
        assert!(text.contains("Utilization"));
        assert!(text.contains('%'));
        assert!(text.contains("Google Home Mini"));
    }
}
