//! Renderers for the paper's figures: monthly heatmaps (Figures 1–3),
//! the staleness histogram (Figure 4), and the sharing graph's text
//! form (Figure 5 lives in [`crate::fpgraph`]).

use crate::render::heat_row;
use iotls::{CipherMix, RootProbeReport, Series, VersionMix};
use iotls_capture::PassiveDataset;
use iotls_rootstore::{staleness_histogram, SimPki};
use iotls_x509::Month;
use std::collections::BTreeMap;

const LABEL_WIDTH: usize = 22;

/// The sorted, distinct months with traffic — the heatmap x-axis.
/// Streaming callers get this for free from
/// `iotls::PassiveAnalysis::month_axis`; this helper derives it from
/// a materialized row dataset.
pub fn month_axis(ds: &PassiveDataset) -> Vec<Month> {
    let mut months: Vec<Month> = ds
        .observations
        .iter()
        .map(|o| o.observation.time.month())
        .collect();
    months.sort();
    months.dedup();
    months
}

fn series_row<T, F: Fn(&T) -> f64>(
    series: &BTreeMap<Month, T>,
    axis: &[Month],
    f: F,
) -> Vec<Option<f64>> {
    axis.iter()
        .map(|m| series.get(m).map(&f))
        .collect()
}

fn axis_header(axis: &[Month]) -> String {
    let mut line = format!("{:<width$} |", "", width = LABEL_WIDTH);
    for m in axis {
        line.push(if m.month == 1 {
            char::from_digit((m.year % 10) as u32, 10).unwrap_or('?')
        } else {
            '.'
        });
    }
    line.push('|');
    line
}

/// Row extractors for one device's six Figure 1 rows.
type MixRow<'a> = (&'a str, Box<dyn Fn(&VersionMix) -> f64>);

/// Figure 1: advertised and established TLS version heatmap. Only the
/// devices with non-TLS-1.2 behavior are shown, as in the paper.
pub fn fig1_versions(
    axis: &[Month],
    series: &Series<VersionMix>,
    fig1_devices: &[String],
) -> String {
    let mut out = String::from(
        "Figure 1: TLS version support over time (rows per device: 1.3 / 1.2 / older; \
         left = advertised, right = established; '·' = no traffic)\n\n",
    );
    out.push_str(&axis_header(axis));
    out.push('\n');
    for device in fig1_devices {
        let Some(s) = series.get(device) else {
            continue;
        };
        let rows: [MixRow; 6] = [
            ("adv 1.3", Box::new(|m: &VersionMix| m.adv_tls13)),
            ("adv 1.2", Box::new(|m: &VersionMix| m.adv_tls12)),
            ("adv old", Box::new(|m: &VersionMix| m.adv_older)),
            ("est 1.3", Box::new(|m: &VersionMix| m.est_tls13)),
            ("est 1.2", Box::new(|m: &VersionMix| m.est_tls12)),
            ("est old", Box::new(|m: &VersionMix| m.est_older)),
        ];
        for (label, f) in rows {
            let values = series_row(s, axis, &f);
            out.push_str(&heat_row(
                &format!("{device} {label}"),
                &values,
                LABEL_WIDTH + 8,
            ));
            out.push('\n');
        }
        out.push('\n');
    }
    out
}

/// Figure 2: insecure-ciphersuite advertisement heatmap (devices that
/// advertise them; lower is better).
pub fn fig2_insecure(axis: &[Month], series: &Series<CipherMix>) -> String {
    let mut out = String::from(
        "Figure 2: fraction of connections advertising insecure ciphersuites \
         (DES/3DES/RC4/EXPORT) per month\n\n",
    );
    out.push_str(&axis_header(axis));
    out.push('\n');
    for (device, s) in series {
        let values = series_row(s, axis, |m| m.adv_insecure);
        // Skip the clean devices, as the paper's figure does.
        let ever = values.iter().flatten().any(|v| *v > 0.01);
        if !ever {
            continue;
        }
        out.push_str(&heat_row(device, &values, LABEL_WIDTH + 8));
        out.push('\n');
    }
    out
}

/// Figure 3: strong-ciphersuite (forward secrecy) establishment
/// heatmap (higher is better).
pub fn fig3_strong(axis: &[Month], series: &Series<CipherMix>) -> String {
    let mut out = String::from(
        "Figure 3: fraction of connections established with forward-secret \
         ciphersuites per month\n\n",
    );
    out.push_str(&axis_header(axis));
    out.push('\n');
    for (device, s) in series {
        let values = series_row(s, axis, |m| m.est_strong);
        // The paper hides the 18 devices that are always-strong.
        let always_strong = values.iter().flatten().all(|v| *v > 0.9)
            && values.iter().any(|v| v.is_some());
        if always_strong {
            continue;
        }
        out.push_str(&heat_row(device, &values, LABEL_WIDTH + 8));
        out.push('\n');
    }
    out
}

/// Figure 4: per-device staleness of deprecated roots (year-of-removal
/// histogram), from *measured* probe results.
pub fn fig4_staleness(pki: &SimPki, report: &RootProbeReport) -> String {
    let mut out = String::from(
        "Figure 4: year of removal (from major platforms) of deprecated root \
         certificates still present in each device\n\n",
    );
    let years: Vec<i32> = (2013..=2021).collect();
    out.push_str(&format!("{:<24}", "Device"));
    for y in &years {
        out.push_str(&format!("{:>6}", y));
    }
    out.push_str("  total\n");
    for row in report.amenable_rows() {
        let present = row.deprecated_present_ids();
        let hist = staleness_histogram(&pki.histories, &present);
        out.push_str(&format!("{:<24}", row.device));
        let mut total = 0;
        for y in &years {
            let c = hist.get(y).copied().unwrap_or(0);
            total += c;
            out.push_str(&format!("{:>6}", if c > 0 { c.to_string() } else { "-".into() }));
        }
        out.push_str(&format!("{total:>7}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotls::{cipher_series, passive_summary, version_series};
    use iotls_capture::global_dataset;

    #[test]
    fn fig1_contains_wemo_and_axis() {
        let ds = global_dataset();
        let series = version_series(ds);
        let summary = passive_summary(ds);
        let text = fig1_versions(&month_axis(ds), &series, &summary.fig1_devices);
        assert!(text.contains("Wemo Plug adv old"));
        assert!(text.contains("Google Home Mini adv 1.3"));
        // 27 months of axis between the pipes.
        let header = text.lines().nth(2).unwrap();
        let width = header.rfind('|').unwrap() - header.find('|').unwrap() - 1;
        assert_eq!(width, 27);
    }

    #[test]
    fn fig2_skips_clean_devices() {
        let ds = global_dataset();
        let series = cipher_series(ds);
        let text = fig2_insecure(&month_axis(ds), &series);
        assert!(text.contains("Zmodo Doorbell"));
        assert!(!text.contains("D-Link Camera"));
        assert!(!text.contains("Nest Thermostat"));
    }

    #[test]
    fn fig3_shows_transitioning_devices() {
        let ds = global_dataset();
        let series = cipher_series(ds);
        let text = fig3_strong(&month_axis(ds), &series);
        assert!(text.contains("Blink Hub"));
        assert!(text.contains("Wink Hub 2"));
    }
}
