//! Plain-text rendering primitives: aligned tables and ASCII
//! heatmaps.

/// A simple column-aligned text table.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers.
    pub fn new(header: &[&str]) -> TextTable {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience for `&str` cells.
    pub fn row_str(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Maps a fraction in [0, 1] to a heatmap glyph; `None` renders the
/// "no traffic" gray cell.
pub fn heat_glyph(value: Option<f64>) -> char {
    match value {
        None => '·',
        Some(v) if v <= 0.0001 => ' ',
        Some(v) if v < 0.25 => '░',
        Some(v) if v < 0.5 => '▒',
        Some(v) if v < 0.75 => '▓',
        Some(_) => '█',
    }
}

/// Renders one heatmap row: a fixed-width label plus one glyph per
/// column value.
pub fn heat_row(label: &str, values: &[Option<f64>], label_width: usize) -> String {
    let mut out = format!("{:<width$} |", label, width = label_width);
    for v in values {
        out.push(heat_glyph(*v));
    }
    out.push('|');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = TextTable::new(&["Device", "Count"]);
        t.row_str(&["Short", "1"]);
        t.row_str(&["A Much Longer Device Name", "12345"]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert!(lines[0].starts_with("Device"));
        assert!(lines[1].starts_with("---"));
        assert_eq!(lines.len(), 4);
        // Columns align: "Count" column starts at the same offset.
        let offset = lines[0].find("Count").unwrap();
        assert_eq!(lines[2].find('1').unwrap(), offset);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new(&["A", "B"]);
        t.row_str(&["only one"]);
    }

    #[test]
    fn glyph_scale_monotone() {
        assert_eq!(heat_glyph(None), '·');
        assert_eq!(heat_glyph(Some(0.0)), ' ');
        assert_eq!(heat_glyph(Some(0.1)), '░');
        assert_eq!(heat_glyph(Some(0.3)), '▒');
        assert_eq!(heat_glyph(Some(0.6)), '▓');
        assert_eq!(heat_glyph(Some(1.0)), '█');
    }

    #[test]
    fn heat_row_shape() {
        let row = heat_row("Device", &[Some(1.0), None, Some(0.0)], 10);
        assert!(row.starts_with("Device     |"));
        assert!(row.ends_with("█· |".trim_end()) || row.contains("█· "));
        assert_eq!(row.chars().filter(|c| *c == '|').count(), 2);
    }

    #[test]
    fn empty_table() {
        let t = TextTable::new(&["X"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.render().contains('X'));
    }
}
