//! Machine-readable exports: CSV series for external plotting tools.
//!
//! The paper's figures are heatmaps over (device, month) grids; these
//! exporters write the exact numeric series behind them so downstream
//! users can re-plot with their own tooling.

use iotls::{CipherMix, Series, VersionMix};
use iotls_rootstore::{staleness_histogram, SimPki};
use iotls::RootProbeReport;
use iotls_x509::Month;

/// Escapes a CSV field (quotes fields containing separators).
fn field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// CSV of the Figure 1 series: one row per (device, month) with the
/// six version-mix fractions.
pub fn version_series_csv(axis: &[Month], series: &Series<VersionMix>) -> String {
    let mut out = String::from(
        "device,month,adv_tls13,adv_tls12,adv_older,est_tls13,est_tls12,est_older\n",
    );
    for (device, months) in series {
        for m in axis {
            if let Some(mix) = months.get(m) {
                out.push_str(&format!(
                    "{},{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}\n",
                    field(device),
                    m,
                    mix.adv_tls13,
                    mix.adv_tls12,
                    mix.adv_older,
                    mix.est_tls13,
                    mix.est_tls12,
                    mix.est_older
                ));
            }
        }
    }
    out
}

/// CSV of the Figures 2–3 series.
pub fn cipher_series_csv(axis: &[Month], series: &Series<CipherMix>) -> String {
    let mut out =
        String::from("device,month,adv_insecure,est_insecure,adv_strong,est_strong\n");
    for (device, months) in series {
        for m in axis {
            if let Some(mix) = months.get(m) {
                out.push_str(&format!(
                    "{},{},{:.4},{:.4},{:.4},{:.4}\n",
                    field(device),
                    m,
                    mix.adv_insecure,
                    mix.est_insecure,
                    mix.adv_strong,
                    mix.est_strong
                ));
            }
        }
    }
    out
}

/// CSV of the Figure 4 data: per amenable device, per removal year,
/// the count of still-trusted deprecated roots.
pub fn staleness_csv(pki: &SimPki, report: &RootProbeReport) -> String {
    let mut out = String::from("device,removal_year,count\n");
    for row in report.amenable_rows() {
        let hist = staleness_histogram(&pki.histories, &row.deprecated_present_ids());
        for (year, count) in hist {
            out.push_str(&format!("{},{},{}\n", field(&row.device), year, count));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotls::{cipher_series, version_series};
    use iotls_capture::global_dataset;

    #[test]
    fn version_csv_shape() {
        let ds = global_dataset();
        let csv = version_series_csv(&crate::figures::month_axis(ds), &version_series(ds));
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "device,month,adv_tls13,adv_tls12,adv_older,est_tls13,est_tls12,est_older"
        );
        let body: Vec<&str> = lines.collect();
        // 40 devices × up to 27 months.
        assert!(body.len() > 700, "{} rows", body.len());
        for line in body {
            assert_eq!(line.split(',').count(), 8, "{line}");
        }
        assert!(csv.contains("Wemo Plug,2018-01,0.0000,0.0000,1.0000"));
    }

    #[test]
    fn cipher_csv_fractions_in_range() {
        let ds = global_dataset();
        let csv = cipher_series_csv(&crate::figures::month_axis(ds), &cipher_series(ds));
        for line in csv.lines().skip(1) {
            let fields: Vec<&str> = line.split(',').collect();
            for v in &fields[2..] {
                let f: f64 = v.parse().unwrap();
                assert!((0.0..=1.0).contains(&f), "{line}");
            }
        }
    }

    #[test]
    fn field_escaping() {
        assert_eq!(field("plain"), "plain");
        assert_eq!(field("a,b"), "\"a,b\"");
        assert_eq!(field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
