//! The labeled fingerprint database (the Kotzias et al. stand-in).
//!
//! The paper compares device fingerprints against a public database
//! of 1,684 labeled fingerprints covering browsers, TLS libraries,
//! SDKs, and malware. We synthesize a database of the same size: the
//! entries for stock libraries carry the *actual* fingerprints those
//! library templates produce (that is what a real database contains),
//! and the remainder is deterministic noise.

use iotls_capture::{Interner, Symbol};
use iotls_crypto::drbg::Drbg;
use iotls_devices::instance;
use iotls_devices::client_config;
use iotls_tls::client::ClientConnection;
use iotls_tls::fingerprint::FingerprintId;
use iotls_x509::{RootStore, Timestamp};
use std::collections::BTreeMap;

/// Database size, as in Kotzias et al.
pub const DB_SIZE: usize = 1_684;

/// A labeled fingerprint database: fingerprint → application labels.
/// Labels are interned — shared labels ("openssl", "boringssl", …)
/// are stored once and entries carry fixed-width [`Symbol`]s.
#[derive(Debug, Default)]
pub struct FingerprintDb {
    by_fingerprint: BTreeMap<FingerprintId, Vec<Symbol>>,
    labels: Interner,
    len: usize,
}

/// Computes the wire fingerprint an instance template produces.
pub fn template_fingerprint(spec: &iotls_devices::TlsInstanceSpec) -> FingerprintId {
    let cfg = client_config(spec, RootStore::new());
    let conn = ClientConnection::new(
        cfg,
        "db.example.com",
        Timestamp::from_ymd(2021, 3, 1),
        Drbg::from_seed(0),
    );
    conn.fingerprint().id()
}

impl FingerprintDb {
    /// Builds the database: labeled stock-library entries plus noise
    /// up to [`DB_SIZE`].
    pub fn build(seed: u64) -> FingerprintDb {
        let mut db = FingerprintDb::default();
        // Stock libraries: their real wire fingerprints, labeled as
        // the database labels them.
        let labeled: Vec<(&str, iotls_devices::TlsInstanceSpec)> = vec![
            ("openssl", instance::openssl_102()),
            ("openssl", instance::roku_main()),
            ("android-sdk", instance::android_sdk()),
            ("boringssl", instance::google_home(true)),
            ("boringssl", instance::google_home(false)),
            ("oracle-java", instance::samsung_jsse()),
            ("wolfssl", instance::wolfssl_embedded()),
        ];
        for (label, spec) in &labeled {
            db.insert(template_fingerprint(spec), label);
        }
        // GnuTLS CLI matches the Philips Hub's stock build (the
        // database would contain the distribution's default build).
        db.insert(
            template_fingerprint(&iotls_devices::roster::legacy_gnutls("philips-gnutls")),
            "gnutls-cli",
        );

        // Noise entries: browsers, apps, malware samples.
        let mut rng = Drbg::from_seed(seed).fork("fpdb-noise");
        let families = ["chrome", "firefox", "curl", "python-requests", "malware"];
        while db.len() < DB_SIZE {
            let mut id = [0u8; 16];
            rng.fill_bytes(&mut id);
            let family = families[rng.below(families.len() as u64) as usize];
            let label = format!("{family}-{:x}", rng.next_u32());
            db.insert(FingerprintId(id), &label);
        }
        db
    }

    fn insert(&mut self, fp: FingerprintId, label: &str) {
        let sym = self.labels.intern(label);
        self.by_fingerprint.entry(fp).or_default().push(sym);
        self.len += 1;
    }

    /// Number of entries (fingerprint/label pairs).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Application labels matching a fingerprint.
    pub fn labels_for(&self, fp: &FingerprintId) -> Vec<&str> {
        self.by_fingerprint
            .get(fp)
            .map(|v| v.iter().map(|s| self.labels.resolve(*s)).collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> FingerprintDb {
        FingerprintDb::build(0xDB)
    }

    #[test]
    fn database_has_1684_entries() {
        assert_eq!(db().len(), DB_SIZE);
    }

    #[test]
    fn stock_library_fingerprints_are_labeled() {
        let db = db();
        let openssl = template_fingerprint(&instance::openssl_102());
        assert_eq!(db.labels_for(&openssl), vec!["openssl"]);
        let android = template_fingerprint(&instance::android_sdk());
        assert_eq!(db.labels_for(&android), vec!["android-sdk"]);
        let roku = template_fingerprint(&instance::roku_main());
        assert_eq!(db.labels_for(&roku), vec!["openssl"]);
    }

    #[test]
    fn unknown_fingerprint_has_no_labels() {
        assert!(db().labels_for(&FingerprintId([0xEE; 16])).is_empty());
    }

    #[test]
    fn build_is_deterministic() {
        let a = FingerprintDb::build(1);
        let b = FingerprintDb::build(1);
        assert_eq!(a.len(), b.len());
        let fp = template_fingerprint(&instance::samsung_jsse());
        assert_eq!(a.labels_for(&fp), b.labels_for(&fp));
    }

    #[test]
    fn fingerprint_variants_differ() {
        // The two boringssl entries (pre/post TLS 1.3) are distinct.
        let a = template_fingerprint(&instance::google_home(true));
        let b = template_fingerprint(&instance::google_home(false));
        assert_ne!(a, b);
    }
}
