//! Golden-fixture rendering for the experiment registry.
//!
//! Maps an [`ExperimentReport`] to the `tests/golden/` fixture texts
//! it backs, so the golden suite and the examples can iterate
//! [`ExperimentKind::ALL`](iotls::ExperimentKind::ALL) instead of
//! hand-listing one test per engine. Fixture names here match
//! [`Report::fixtures`](iotls::Report::fixtures) on each report
//! variant.

use crate::fpdb::FingerprintDb;
use crate::fpgraph::SharingGraph;
use crate::{figures, tables};
use iotls::ExperimentReport;
use iotls_devices::Testbed;

/// Renders every golden fixture an experiment report backs, as
/// `(fixture_name, rendered_text)` pairs in fixture order.
///
/// The root probe yields both `table9_rootstores` and
/// `fig4_staleness` from one run; the fingerprint survey joins
/// against the labeled application database seeded with `fpdb_seed`;
/// the audit service backs no fixture and yields nothing; the
/// gateway renders its own drain snapshot.
pub fn experiment_artifacts(
    testbed: &Testbed,
    report: &ExperimentReport,
    fpdb_seed: u64,
) -> Vec<(&'static str, String)> {
    match report {
        ExperimentReport::Interception(r) => {
            vec![("table7_interception", tables::table7_interception(r))]
        }
        ExperimentReport::RootProbe(r) => vec![
            ("table9_rootstores", tables::table9_rootstores(r)),
            ("fig4_staleness", figures::fig4_staleness(testbed.pki, r)),
        ],
        ExperimentReport::Downgrade(r) => {
            vec![("table5_downgrades", tables::table5_downgrades(&r.rows))]
        }
        ExperimentReport::OldVersion(r) => {
            vec![("table6_old_versions", tables::table6_old_versions(&r.rows))]
        }
        ExperimentReport::Fingerprints(survey) => {
            let graph = SharingGraph::build(survey, &FingerprintDb::build(fpdb_seed));
            vec![("fig5_sharing_graph", graph.render())]
        }
        ExperimentReport::Auditor(_) => Vec::new(),
        ExperimentReport::Gateway(r) => vec![("gateway_service", r.render())],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotls::{ExperimentCtx, ExperimentKind, Report};

    #[test]
    fn fixture_names_agree_with_the_report_trait() {
        // Cheap structural check on a tiny slice of the registry: the
        // renderer map and Report::fixtures must never drift apart.
        let testbed = Testbed::global();
        let kind = ExperimentKind::AuditService;
        let report = kind.run(testbed, &ExperimentCtx::new(kind.canonical_seed()));
        let rendered = experiment_artifacts(testbed, &report, 0xDB);
        let names: Vec<&str> = rendered.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, report.fixtures());
    }
}
