//! The Figure 5 sharing graph: devices, applications, and the
//! fingerprints connecting them.

use crate::fpdb::FingerprintDb;
use iotls::FingerprintSurvey;
use iotls_tls::fingerprint::FingerprintId;
use std::collections::{BTreeMap, BTreeSet};

/// A node in the sharing graph.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Node {
    /// A testbed device.
    Device(String),
    /// A labeled application from the database.
    Application(String),
}

/// An edge: a node uses a fingerprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// The device or application.
    pub node: Node,
    /// The shared fingerprint.
    pub fingerprint: FingerprintId,
    /// True for a device's most-used fingerprint (the figure's thick
    /// edges).
    pub dominant: bool,
    /// True for database edges (the figure's dashed edges).
    pub from_database: bool,
}

/// The Figure 5 graph: only fingerprints shared by ≥ 2 nodes appear.
#[derive(Debug, Default)]
pub struct SharingGraph {
    /// Edges of the graph.
    pub edges: Vec<Edge>,
    /// The shared fingerprints (graph's middle layer).
    pub fingerprints: BTreeSet<FingerprintId>,
}

impl SharingGraph {
    /// Builds the graph from a survey and the database.
    pub fn build(survey: &FingerprintSurvey, db: &FingerprintDb) -> SharingGraph {
        // Collect all nodes per fingerprint.
        let mut users: BTreeMap<FingerprintId, Vec<(Node, bool)>> = BTreeMap::new();
        for (fp, devices) in &survey.by_fingerprint {
            for device in devices {
                let dominant = survey.dominant.get(device) == Some(fp);
                users
                    .entry(*fp)
                    .or_default()
                    .push((Node::Device(device.clone()), dominant));
            }
            for label in db.labels_for(fp) {
                users
                    .entry(*fp)
                    .or_default()
                    .push((Node::Application(label.to_string()), false));
            }
        }
        let mut graph = SharingGraph::default();
        for (fp, nodes) in users {
            if nodes.len() < 2 {
                continue; // non-shared fingerprints are dropped
            }
            graph.fingerprints.insert(fp);
            for (node, dominant) in nodes {
                let from_database = matches!(node, Node::Application(_));
                graph.edges.push(Edge {
                    node,
                    fingerprint: fp,
                    dominant,
                    from_database,
                });
            }
        }
        graph
    }

    /// Devices present in the graph (the paper's "19 devices share at
    /// least one fingerprint with other devices and/or applications").
    pub fn devices(&self) -> BTreeSet<String> {
        self.edges
            .iter()
            .filter_map(|e| match &e.node {
                Node::Device(d) => Some(d.clone()),
                Node::Application(_) => None,
            })
            .collect()
    }

    /// Application labels present in the graph.
    pub fn applications(&self) -> BTreeSet<String> {
        self.edges
            .iter()
            .filter_map(|e| match &e.node {
                Node::Application(a) => Some(a.clone()),
                Node::Device(_) => None,
            })
            .collect()
    }

    /// Devices that share a fingerprint with a labeled application.
    pub fn devices_matching_applications(&self) -> BTreeMap<String, BTreeSet<String>> {
        let mut out: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for fp in &self.fingerprints {
            let apps: BTreeSet<String> = self
                .edges
                .iter()
                .filter(|e| e.fingerprint == *fp && e.from_database)
                .filter_map(|e| match &e.node {
                    Node::Application(a) => Some(a.clone()),
                    _ => None,
                })
                .collect();
            if apps.is_empty() {
                continue;
            }
            for e in self.edges.iter().filter(|e| e.fingerprint == *fp) {
                if let Node::Device(d) = &e.node {
                    out.entry(d.clone()).or_default().extend(apps.clone());
                }
            }
        }
        out
    }

    /// Renders the graph as text: one block per shared fingerprint.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for fp in &self.fingerprints {
            out.push_str(&format!("fingerprint {fp}\n"));
            for e in self.edges.iter().filter(|e| e.fingerprint == *fp) {
                let (kind, name) = match &e.node {
                    Node::Device(d) => ("device", d.clone()),
                    Node::Application(a) => ("app", a.clone()),
                };
                let style = if e.from_database {
                    "(dashed)"
                } else if e.dominant {
                    "(thick)"
                } else {
                    ""
                };
                out.push_str(&format!("  {kind:<7} {name} {style}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotls::run_fingerprint_survey;
    use iotls_devices::Testbed;
    use std::sync::OnceLock;

    fn graph() -> &'static SharingGraph {
        static G: OnceLock<SharingGraph> = OnceLock::new();
        G.get_or_init(|| {
            let survey = run_fingerprint_survey(Testbed::global(), 0x5075);
            let db = FingerprintDb::build(0xDB);
            SharingGraph::build(&survey, &db)
        })
    }

    #[test]
    fn nineteen_devices_share_with_devices_or_applications() {
        let devices = graph().devices();
        assert_eq!(devices.len(), 19, "{devices:?}");
    }

    #[test]
    fn database_matches_include_the_expected_apps() {
        let matches = graph().devices_matching_applications();
        // Fire TV's dominant fingerprint is android-sdk, as the paper
        // verifies against Fire OS.
        assert!(matches["Fire TV"].contains("android-sdk"));
        // The OpenSSL trio matches the openssl label — explaining
        // their amenability to the root-store probe.
        for d in ["Wink Hub 2", "LG TV", "Harman Invoke"] {
            assert!(matches[d].contains("openssl"), "{d}");
        }
        assert!(matches["Roku TV"].contains("openssl"));
        assert!(matches["Google Home Mini"].contains("boringssl"));
        assert!(matches["Philips Hub"].contains("gnutls-cli"));
        assert!(matches["Samsung Fridge"].contains("oracle-java"));
    }

    #[test]
    fn dominant_edges_marked() {
        let g = graph();
        let thick = g.edges.iter().filter(|e| e.dominant).count();
        assert!(thick >= 10, "only {thick} dominant edges");
    }

    #[test]
    fn render_mentions_clusters() {
        let text = graph().render();
        assert!(text.contains("Amazon Echo Dot"));
        assert!(text.contains("android-sdk"));
        assert!(text.contains("(dashed)"));
        assert!(text.contains("(thick)"));
    }

    #[test]
    fn all_graph_fingerprints_shared() {
        let g = graph();
        for fp in &g.fingerprints {
            let n = g.edges.iter().filter(|e| e.fingerprint == *fp).count();
            assert!(n >= 2);
        }
    }
}
