//! # iotls-analysis
//!
//! Reporting layer for the IoTLS reproduction: turns live experiment
//! results into the paper's tables and figures.
//!
//! * [`render`] — text-table and ASCII-heatmap primitives;
//! * [`tables`] — Tables 1–9 regenerated from experiment reports;
//! * [`figures`] — Figures 1–4 (heatmaps, staleness histogram);
//! * [`fpdb`] — the 1,684-entry labeled fingerprint database
//!   (Kotzias et al. stand-in);
//! * [`fpgraph`] — the Figure 5 device–fingerprint–application
//!   sharing graph;
//! * [`export`] — CSV exports of the figure series for external
//!   plotting;
//! * [`minimization`] — §5.2's root-store utilization question,
//!   answered with measurements.

pub mod export;
pub mod figures;
pub mod fpdb;
pub mod golden;
pub mod fpgraph;
pub mod minimization;
pub mod render;
pub mod tables;

pub use export::{cipher_series_csv, staleness_csv, version_series_csv};
pub use figures::month_axis;
pub use fpdb::{template_fingerprint, FingerprintDb, DB_SIZE};
pub use golden::experiment_artifacts;
pub use fpgraph::{Edge, Node, SharingGraph};
pub use minimization::{render_utilization, root_store_utilization, UtilizationRow};
pub use render::{heat_glyph, heat_row, TextTable};
