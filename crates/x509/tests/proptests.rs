//! Property-based tests for the PKI substrate: TLV codec, certificate
//! encoding, hostname matching, time math, and validation invariants.

use iotls_crypto::drbg::Drbg;
use iotls_crypto::rsa::RsaPrivateKey;
use iotls_x509::tlv::{TlvReader, TlvWriter};
use iotls_x509::{
    matches_pattern, validate_chain, BasicConstraints, Certificate, CertifiedKey,
    DistinguishedName, IssueParams, Month, RootStore, Timestamp, ValidationError,
    ValidationPolicy,
};
use proptest::prelude::*;
use std::sync::OnceLock;

fn shared_root() -> &'static CertifiedKey {
    static R: OnceLock<CertifiedKey> = OnceLock::new();
    R.get_or_init(|| {
        let key = RsaPrivateKey::generate(512, &mut Drbg::from_seed(0x909));
        CertifiedKey::self_signed(
            IssueParams::ca(
                DistinguishedName::new("Prop Root", "Prop", "US"),
                1,
                Timestamp::from_ymd(2010, 1, 1),
                7300,
            ),
            key,
        )
    })
}

fn shared_leaf_key() -> &'static RsaPrivateKey {
    static K: OnceLock<RsaPrivateKey> = OnceLock::new();
    K.get_or_init(|| RsaPrivateKey::generate(512, &mut Drbg::from_seed(0x90A)))
}

fn label() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9-]{0,14}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn tlv_scalar_roundtrip(
        tag in any::<u8>(),
        s in "[ -~]{0,40}",
        n in any::<u64>(),
        b in any::<bool>(),
        i in any::<i64>(),
    ) {
        let mut w = TlvWriter::new();
        w.put_str(tag, &s).put_u64(tag, n).put_bool(tag, b).put_i64(tag, i);
        let bytes = w.finish();
        let mut r = TlvReader::new(&bytes);
        prop_assert_eq!(r.expect_str(tag).unwrap(), s);
        prop_assert_eq!(r.expect_u64(tag).unwrap(), n);
        prop_assert_eq!(r.expect_bool(tag).unwrap(), b);
        prop_assert_eq!(r.expect_i64(tag).unwrap(), i);
        r.finish().unwrap();
    }

    #[test]
    fn tlv_truncation_never_panics(data in proptest::collection::vec(any::<u8>(), 0..120)) {
        let mut r = TlvReader::new(&data);
        for _ in 0..10 {
            if r.next().is_err() {
                break;
            }
        }
    }

    #[test]
    fn certificate_encoding_roundtrips(
        host in "[a-z]{1,10}\\.example\\.com",
        serial in any::<u64>(),
        days in 1i64..2000,
        san_count in 0usize..4,
    ) {
        let mut params = IssueParams::leaf(&host, serial, Timestamp::from_ymd(2019, 6, 1), days);
        for i in 0..san_count {
            params.extensions.subject_alt_names.push(format!("alt{i}.{host}"));
        }
        let cert = shared_root().issue(params, shared_leaf_key());
        let decoded = Certificate::from_bytes(&cert.to_bytes()).unwrap();
        prop_assert_eq!(&decoded, &cert);
        prop_assert_eq!(decoded.fingerprint(), cert.fingerprint());
    }

    #[test]
    fn tampering_any_tbs_field_breaks_the_signature(
        host in "[a-z]{1,10}\\.example\\.com",
        which in 0usize..4,
    ) {
        let cert = shared_root().issue(
            IssueParams::leaf(&host, 7, Timestamp::from_ymd(2019, 6, 1), 365),
            shared_leaf_key(),
        );
        prop_assert!(cert.verify_signature(&shared_root().cert.tbs.public_key));
        let mut tampered = cert.clone();
        match which {
            0 => tampered.tbs.serial ^= 1,
            1 => tampered.tbs.subject.common_name.push('x'),
            2 => tampered.tbs.not_after = tampered.tbs.not_after.plus_days(1),
            _ => tampered.tbs.extensions.must_staple = !tampered.tbs.extensions.must_staple,
        }
        prop_assert!(!tampered.verify_signature(&shared_root().cert.tbs.public_key));
    }

    #[test]
    fn exact_hostname_match_is_reflexive_and_case_insensitive(host in "[a-z]{1,10}(\\.[a-z]{1,8}){1,3}") {
        let prefixed = format!("x{host}");
        prop_assert!(matches_pattern(&host, &host));
        prop_assert!(matches_pattern(&host.to_uppercase(), &host));
        prop_assert!(!matches_pattern(&host, &prefixed));
    }

    #[test]
    fn wildcard_matches_exactly_one_label(
        sub in label(),
        domain in "[a-z]{1,8}\\.[a-z]{2,3}",
        extra in label(),
    ) {
        let pattern = format!("*.{domain}");
        let one_label = format!("{sub}.{domain}");
        let two_labels = format!("{extra}.{sub}.{domain}");
        prop_assert!(matches_pattern(&pattern, &one_label));
        prop_assert!(!matches_pattern(&pattern, &domain));
        prop_assert!(!matches_pattern(&pattern, &two_labels));
    }

    #[test]
    fn validation_is_deterministic_and_ordered(
        host in "[a-z]{1,10}\\.example\\.com",
        now_offset in -4000i64..4000,
    ) {
        let root = shared_root();
        let cert = root.issue(
            IssueParams::leaf(&host, 9, Timestamp::from_ymd(2019, 6, 1), 365),
            shared_leaf_key(),
        );
        let roots = RootStore::from_certs([root.cert.clone()]);
        let now = Timestamp::from_ymd(2019, 6, 1).plus_days(now_offset);
        let r1 = validate_chain(std::slice::from_ref(&cert), &roots, &host, now, &ValidationPolicy::strict());
        let r2 = validate_chain(std::slice::from_ref(&cert), &roots, &host, now, &ValidationPolicy::strict());
        prop_assert_eq!(&r1, &r2);
        // Outcome agrees with the validity window.
        if now_offset < 0 {
            prop_assert_eq!(r1, Err(ValidationError::NotYetValid));
        } else if now_offset > 365 {
            prop_assert_eq!(r1, Err(ValidationError::Expired));
        } else {
            prop_assert_eq!(r1, Ok(()));
        }
        // The empty store always reports UnknownIssuer inside the window.
        if (0..=365).contains(&now_offset) {
            prop_assert_eq!(
                validate_chain(&[cert], &RootStore::new(), &host, now, &ValidationPolicy::strict()),
                Err(ValidationError::UnknownIssuer)
            );
        }
    }

    #[test]
    fn no_validation_accepts_every_nonempty_chain(
        host in "[a-z]{1,10}\\.example\\.com",
        wrong_host in "[a-z]{1,10}\\.example\\.org",
    ) {
        let cert = shared_root().issue(
            IssueParams::leaf(&host, 11, Timestamp::from_ymd(2019, 6, 1), 10),
            shared_leaf_key(),
        );
        // Expired, wrong hostname, empty store: still accepted.
        prop_assert_eq!(
            validate_chain(
                &[cert],
                &RootStore::new(),
                &wrong_host,
                Timestamp::from_ymd(2030, 1, 1),
                &ValidationPolicy::no_validation()
            ),
            Ok(())
        );
    }

    #[test]
    fn timestamp_civil_roundtrip(days in -20_000i64..40_000) {
        let t = Timestamp(days * 86_400 + 12 * 3600);
        let (y, m, d) = t.ymd();
        let back = Timestamp::from_ymd(y, m, d).plus_secs(12 * 3600);
        prop_assert_eq!(back, t);
        prop_assert!((1..=12).contains(&m));
        prop_assert!((1..=31).contains(&d));
    }

    #[test]
    fn month_iteration_is_contiguous(y in 2000i32..2030, m in 1u8..=12, span in 0i32..50) {
        let start = Month::new(y, m);
        let mut end = start;
        for _ in 0..span {
            end = end.next();
        }
        let months = start.through(end);
        prop_assert_eq!(months.len() as i32, span + 1);
        for w in months.windows(2) {
            prop_assert_eq!(w[0].next(), w[1]);
            prop_assert_eq!(w[0].end(), w[1].start());
        }
        prop_assert_eq!(start.months_until(end), span);
    }

    #[test]
    fn basic_constraints_gate_issuance(ca in any::<bool>()) {
        // A chain through an intermediate is valid iff the
        // intermediate carries ca=true.
        let root = shared_root();
        let mid_key = shared_leaf_key();
        let mut params = IssueParams::ca(
            DistinguishedName::new("Prop Mid", "Prop", "US"),
            20,
            Timestamp::from_ymd(2018, 1, 1),
            3650,
        );
        params.extensions.basic_constraints = Some(BasicConstraints { ca, path_len: None });
        let mid_cert = root.issue(params, mid_key);
        let mid = CertifiedKey { cert: mid_cert.clone(), key: mid_key.clone() };
        let leaf = mid.issue(
            IssueParams::leaf("deep.example.com", 21, Timestamp::from_ymd(2019, 1, 1), 365),
            shared_leaf_key(),
        );
        let roots = RootStore::from_certs([root.cert.clone()]);
        let result = validate_chain(
            &[leaf, mid_cert],
            &roots,
            "deep.example.com",
            Timestamp::from_ymd(2019, 6, 1),
            &ValidationPolicy::strict(),
        );
        if ca {
            prop_assert_eq!(result, Ok(()));
        } else {
            prop_assert_eq!(result, Err(ValidationError::InvalidBasicConstraints));
        }
    }
}
