//! Property-style tests for the PKI substrate: TLV codec, certificate
//! encoding, hostname matching, time math, and validation invariants.
//!
//! Inputs come from the workspace's deterministic DRBG instead of an
//! external property-testing framework, so the suite builds with no
//! registry access and failures reproduce from the fixed seed.

use iotls_crypto::drbg::Drbg;
use iotls_crypto::rsa::RsaPrivateKey;
use iotls_x509::tlv::{TlvReader, TlvWriter};
use iotls_x509::{
    matches_pattern, validate_chain, BasicConstraints, Certificate, CertifiedKey,
    DistinguishedName, IssueParams, Month, RootStore, Timestamp, ValidationError,
    ValidationPolicy,
};
use std::sync::OnceLock;

fn cases(n: u64, label: &str, mut body: impl FnMut(&mut Drbg)) {
    let root = Drbg::from_seed(0x50_9B57).fork(label);
    for i in 0..n {
        let mut rng = root.fork(&format!("case-{i}"));
        body(&mut rng);
    }
}

fn shared_root() -> &'static CertifiedKey {
    static R: OnceLock<CertifiedKey> = OnceLock::new();
    R.get_or_init(|| {
        let key = RsaPrivateKey::generate(512, &mut Drbg::from_seed(0x909));
        CertifiedKey::self_signed(
            IssueParams::ca(
                DistinguishedName::new("Prop Root", "Prop", "US"),
                1,
                Timestamp::from_ymd(2010, 1, 1),
                7300,
            ),
            key,
        )
    })
}

fn shared_leaf_key() -> &'static RsaPrivateKey {
    static K: OnceLock<RsaPrivateKey> = OnceLock::new();
    K.get_or_init(|| RsaPrivateKey::generate(512, &mut Drbg::from_seed(0x90A)))
}

fn random_bytes(rng: &mut Drbg, max_len: u64) -> Vec<u8> {
    let len = rng.below(max_len + 1) as usize;
    let mut out = vec![0u8; len];
    rng.fill_bytes(&mut out);
    out
}

fn random_label(rng: &mut Drbg, min: u64, max: u64) -> String {
    let len = rng.range(min, max) as usize;
    (0..len)
        .map(|_| (b'a' + rng.below(26) as u8) as char)
        .collect()
}

fn random_host(rng: &mut Drbg) -> String {
    format!("{}.example.com", random_label(rng, 1, 11))
}

/// Printable-ASCII string of up to 40 characters.
fn random_printable(rng: &mut Drbg) -> String {
    let len = rng.below(41) as usize;
    (0..len)
        .map(|_| (b' ' + rng.below(95) as u8) as char)
        .collect()
}

#[test]
fn tlv_scalar_roundtrip() {
    cases(96, "tlv-scalar", |rng| {
        let tag = rng.next_u32() as u8;
        let s = random_printable(rng);
        let n = rng.next_u64();
        let b = rng.chance(0.5);
        let i = rng.next_u64() as i64;
        let mut w = TlvWriter::new();
        w.put_str(tag, &s).put_u64(tag, n).put_bool(tag, b).put_i64(tag, i);
        let bytes = w.finish();
        let mut r = TlvReader::new(&bytes);
        assert_eq!(r.expect_str(tag).unwrap(), s);
        assert_eq!(r.expect_u64(tag).unwrap(), n);
        assert_eq!(r.expect_bool(tag).unwrap(), b);
        assert_eq!(r.expect_i64(tag).unwrap(), i);
        r.finish().unwrap();
    });
}

#[test]
fn tlv_truncation_never_panics() {
    cases(96, "tlv-truncation", |rng| {
        let data = random_bytes(rng, 119);
        let mut r = TlvReader::new(&data);
        for _ in 0..10 {
            if r.next().is_err() {
                break;
            }
        }
    });
}

#[test]
fn certificate_encoding_roundtrips() {
    cases(48, "cert-roundtrip", |rng| {
        let host = random_host(rng);
        let serial = rng.next_u64();
        let days = rng.range(1, 2000) as i64;
        let san_count = rng.below(4) as usize;
        let mut params =
            IssueParams::leaf(&host, serial, Timestamp::from_ymd(2019, 6, 1), days);
        for i in 0..san_count {
            params.extensions.subject_alt_names.push(format!("alt{i}.{host}"));
        }
        let cert = shared_root().issue(params, shared_leaf_key());
        let decoded = Certificate::from_bytes(&cert.to_bytes()).unwrap();
        assert_eq!(&decoded, &cert);
        assert_eq!(decoded.fingerprint(), cert.fingerprint());
    });
}

#[test]
fn tampering_any_tbs_field_breaks_the_signature() {
    cases(32, "tamper", |rng| {
        let host = random_host(rng);
        let which = rng.below(4) as usize;
        let cert = shared_root().issue(
            IssueParams::leaf(&host, 7, Timestamp::from_ymd(2019, 6, 1), 365),
            shared_leaf_key(),
        );
        assert!(cert.verify_signature(&shared_root().cert.tbs.public_key));
        let mut tampered = cert.clone();
        match which {
            0 => tampered.tbs.serial ^= 1,
            1 => tampered.tbs.subject.common_name.push('x'),
            2 => tampered.tbs.not_after = tampered.tbs.not_after.plus_days(1),
            _ => tampered.tbs.extensions.must_staple = !tampered.tbs.extensions.must_staple,
        }
        assert!(!tampered.verify_signature(&shared_root().cert.tbs.public_key));
    });
}

#[test]
fn exact_hostname_match_is_reflexive_and_case_insensitive() {
    cases(96, "exact-match", |rng| {
        let labels = rng.range(2, 5);
        let host = (0..labels)
            .map(|_| random_label(rng, 1, 9))
            .collect::<Vec<_>>()
            .join(".");
        let prefixed = format!("x{host}");
        assert!(matches_pattern(&host, &host));
        assert!(matches_pattern(&host.to_uppercase(), &host));
        assert!(!matches_pattern(&host, &prefixed));
    });
}

#[test]
fn wildcard_matches_exactly_one_label() {
    cases(96, "wildcard", |rng| {
        let sub = random_label(rng, 1, 16);
        let domain = format!("{}.{}", random_label(rng, 1, 9), random_label(rng, 2, 4));
        let extra = random_label(rng, 1, 16);
        let pattern = format!("*.{domain}");
        let one_label = format!("{sub}.{domain}");
        let two_labels = format!("{extra}.{sub}.{domain}");
        assert!(matches_pattern(&pattern, &one_label));
        assert!(!matches_pattern(&pattern, &domain));
        assert!(!matches_pattern(&pattern, &two_labels));
    });
}

#[test]
fn validation_is_deterministic_and_ordered() {
    cases(48, "validation", |rng| {
        let host = random_host(rng);
        let now_offset = rng.range(0, 8000) as i64 - 4000;
        let root = shared_root();
        let cert = root.issue(
            IssueParams::leaf(&host, 9, Timestamp::from_ymd(2019, 6, 1), 365),
            shared_leaf_key(),
        );
        let roots = RootStore::from_certs([root.cert.clone()]);
        let now = Timestamp::from_ymd(2019, 6, 1).plus_days(now_offset);
        let r1 = validate_chain(
            std::slice::from_ref(&cert),
            &roots,
            &host,
            now,
            &ValidationPolicy::strict(),
        );
        let r2 = validate_chain(
            std::slice::from_ref(&cert),
            &roots,
            &host,
            now,
            &ValidationPolicy::strict(),
        );
        assert_eq!(&r1, &r2);
        // Outcome agrees with the validity window.
        if now_offset < 0 {
            assert_eq!(r1, Err(ValidationError::NotYetValid));
        } else if now_offset > 365 {
            assert_eq!(r1, Err(ValidationError::Expired));
        } else {
            assert_eq!(r1, Ok(()));
        }
        // The empty store always reports UnknownIssuer inside the window.
        if (0..=365).contains(&now_offset) {
            assert_eq!(
                validate_chain(&[cert], &RootStore::new(), &host, now, &ValidationPolicy::strict()),
                Err(ValidationError::UnknownIssuer)
            );
        }
    });
}

#[test]
fn no_validation_accepts_every_nonempty_chain() {
    cases(32, "no-validation", |rng| {
        let host = random_host(rng);
        let wrong_host = format!("{}.example.org", random_label(rng, 1, 11));
        let cert = shared_root().issue(
            IssueParams::leaf(&host, 11, Timestamp::from_ymd(2019, 6, 1), 10),
            shared_leaf_key(),
        );
        // Expired, wrong hostname, empty store: still accepted.
        assert_eq!(
            validate_chain(
                &[cert],
                &RootStore::new(),
                &wrong_host,
                Timestamp::from_ymd(2030, 1, 1),
                &ValidationPolicy::no_validation()
            ),
            Ok(())
        );
    });
}

#[test]
fn timestamp_civil_roundtrip() {
    cases(96, "civil-roundtrip", |rng| {
        let days = rng.range(0, 60_000) as i64 - 20_000;
        let t = Timestamp(days * 86_400 + 12 * 3600);
        let (y, m, d) = t.ymd();
        let back = Timestamp::from_ymd(y, m, d).plus_secs(12 * 3600);
        assert_eq!(back, t);
        assert!((1..=12).contains(&m));
        assert!((1..=31).contains(&d));
    });
}

#[test]
fn month_iteration_is_contiguous() {
    cases(96, "month-iter", |rng| {
        let y = rng.range(2000, 2030) as i32;
        let m = rng.range(1, 12) as u8;
        let span = rng.below(50) as i32;
        let start = Month::new(y, m);
        let mut end = start;
        for _ in 0..span {
            end = end.next();
        }
        let months = start.through(end);
        assert_eq!(months.len() as i32, span + 1);
        for w in months.windows(2) {
            assert_eq!(w[0].next(), w[1]);
            assert_eq!(w[0].end(), w[1].start());
        }
        assert_eq!(start.months_until(end), span);
    });
}

#[test]
fn basic_constraints_gate_issuance() {
    for ca in [false, true] {
        // A chain through an intermediate is valid iff the
        // intermediate carries ca=true.
        let root = shared_root();
        let mid_key = shared_leaf_key();
        let mut params = IssueParams::ca(
            DistinguishedName::new("Prop Mid", "Prop", "US"),
            20,
            Timestamp::from_ymd(2018, 1, 1),
            3650,
        );
        params.extensions.basic_constraints = Some(BasicConstraints { ca, path_len: None });
        let mid_cert = root.issue(params, mid_key);
        let mid = CertifiedKey { cert: mid_cert.clone(), key: mid_key.clone() };
        let leaf = mid.issue(
            IssueParams::leaf("deep.example.com", 21, Timestamp::from_ymd(2019, 1, 1), 365),
            shared_leaf_key(),
        );
        let roots = RootStore::from_certs([root.cert.clone()]);
        let result = validate_chain(
            &[leaf, mid_cert],
            &roots,
            "deep.example.com",
            Timestamp::from_ymd(2019, 6, 1),
            &ValidationPolicy::strict(),
        );
        if ca {
            assert_eq!(result, Ok(()));
        } else {
            assert_eq!(result, Err(ValidationError::InvalidBasicConstraints));
        }
    }
}
