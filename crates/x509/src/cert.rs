//! Certificates: structure, canonical encoding, signing.
//!
//! A [`Certificate`] mirrors the X.509v3 fields the IoTLS analyses
//! depend on: subject/issuer distinguished names, serial number,
//! validity window, subject public key, and the extensions from
//! RFC 5280 that the paper's attacks exercise (BasicConstraints,
//! SubjectAltName, KeyUsage) plus revocation pointers (CRL/OCSP URLs,
//! Must-Staple). The to-be-signed portion has a canonical TLV encoding
//! covered by an RSA signature.

use crate::time::Timestamp;
use crate::tlv::{TlvError, TlvReader, TlvWriter};
use iotls_crypto::rsa::{RsaPrivateKey, RsaPublicKey};
use iotls_crypto::sha256::sha256;
use std::fmt;

/// A simplified distinguished name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DistinguishedName {
    /// CN — for leaf server certificates this is the hostname.
    pub common_name: String,
    /// O — owning organization (CA operator for roots).
    pub organization: String,
    /// C — two-letter country code.
    pub country: String,
}

impl DistinguishedName {
    /// Convenience constructor.
    pub fn new(cn: &str, org: &str, country: &str) -> Self {
        DistinguishedName {
            common_name: cn.into(),
            organization: org.into(),
            country: country.into(),
        }
    }

    /// A name with only a common name set.
    pub fn cn(cn: &str) -> Self {
        Self::new(cn, "", "")
    }

    fn encode(&self, w: &mut TlvWriter) {
        w.put_nested(tag::NAME, |n| {
            n.put_str(tag::CN, &self.common_name)
                .put_str(tag::ORG, &self.organization)
                .put_str(tag::COUNTRY, &self.country);
        });
    }

    fn decode(r: &mut TlvReader) -> Result<Self, TlvError> {
        let mut n = r.expect_nested(tag::NAME)?;
        let out = DistinguishedName {
            common_name: n.expect_str(tag::CN)?,
            organization: n.expect_str(tag::ORG)?,
            country: n.expect_str(tag::COUNTRY)?,
        };
        n.finish()?;
        Ok(out)
    }
}

impl fmt::Display for DistinguishedName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CN={}", self.common_name)?;
        if !self.organization.is_empty() {
            write!(f, ", O={}", self.organization)?;
        }
        if !self.country.is_empty() {
            write!(f, ", C={}", self.country)?;
        }
        Ok(())
    }
}

/// Signature algorithm marker.
///
/// Both variants use the same underlying RSA/SHA-256 construction in
/// the simulator; `RsaSha1Legacy` exists so that clients can *advertise
/// and negotiate* the weak algorithm (the Google Home Mini fallback in
/// Table 5 downgrades to `RSA_PKCS1_SHA1`) and analyses can flag it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignatureAlgorithm {
    /// rsa_pkcs1_sha256 — the modern default.
    RsaSha256,
    /// rsa_pkcs1_sha1 — deprecated, kept for downgrade experiments.
    RsaSha1Legacy,
}

impl SignatureAlgorithm {
    fn to_u64(self) -> u64 {
        match self {
            SignatureAlgorithm::RsaSha256 => 1,
            SignatureAlgorithm::RsaSha1Legacy => 2,
        }
    }

    fn from_u64(v: u64) -> Result<Self, TlvError> {
        match v {
            1 => Ok(SignatureAlgorithm::RsaSha256),
            2 => Ok(SignatureAlgorithm::RsaSha1Legacy),
            _ => Err(TlvError::Malformed("signature algorithm")),
        }
    }
}

/// Key usage bit flags (subset of RFC 5280 §4.2.1.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct KeyUsage(pub u8);

impl KeyUsage {
    /// digitalSignature.
    pub const DIGITAL_SIGNATURE: KeyUsage = KeyUsage(0b0000_0001);
    /// keyEncipherment (RSA key transport).
    pub const KEY_ENCIPHERMENT: KeyUsage = KeyUsage(0b0000_0010);
    /// keyCertSign (CA certificates).
    pub const KEY_CERT_SIGN: KeyUsage = KeyUsage(0b0000_0100);
    /// cRLSign.
    pub const CRL_SIGN: KeyUsage = KeyUsage(0b0000_1000);

    /// Union of flags.
    pub fn union(self, other: KeyUsage) -> KeyUsage {
        KeyUsage(self.0 | other.0)
    }

    /// True when all bits of `flag` are present.
    pub fn contains(self, flag: KeyUsage) -> bool {
        self.0 & flag.0 == flag.0
    }

    /// Typical usage for a CA certificate.
    pub fn ca_default() -> KeyUsage {
        Self::KEY_CERT_SIGN.union(Self::CRL_SIGN).union(Self::DIGITAL_SIGNATURE)
    }

    /// Typical usage for a TLS server leaf.
    pub fn leaf_default() -> KeyUsage {
        Self::DIGITAL_SIGNATURE.union(Self::KEY_ENCIPHERMENT)
    }
}

/// BasicConstraints extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BasicConstraints {
    /// True for CA certificates.
    pub ca: bool,
    /// Maximum number of intermediate CAs below this one.
    pub path_len: Option<u8>,
}

/// X.509v3 extensions the reproduction models.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Extensions {
    /// BasicConstraints; `None` means the extension is absent (treated
    /// as a non-CA certificate by a *correct* validator).
    pub basic_constraints: Option<BasicConstraints>,
    /// DNS subject alternative names.
    pub subject_alt_names: Vec<String>,
    /// Key usage flags.
    pub key_usage: KeyUsage,
    /// OCSP responder URL (authorityInfoAccess).
    pub ocsp_url: Option<String>,
    /// CRL distribution point URL.
    pub crl_url: Option<String>,
    /// TLS Feature / status_request — "OCSP Must-Staple".
    pub must_staple: bool,
}

/// The to-be-signed body of a certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TbsCertificate {
    /// Serial number assigned by the issuer.
    pub serial: u64,
    /// Issuer distinguished name.
    pub issuer: DistinguishedName,
    /// Subject distinguished name.
    pub subject: DistinguishedName,
    /// Start of the validity window (inclusive).
    pub not_before: Timestamp,
    /// End of the validity window (inclusive).
    pub not_after: Timestamp,
    /// Subject public key.
    pub public_key: RsaPublicKey,
    /// Extensions.
    pub extensions: Extensions,
}

impl TbsCertificate {
    /// Canonical encoding — exactly the bytes the signature covers.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = TlvWriter::new();
        w.put_u64(tag::SERIAL, self.serial);
        self.issuer.encode(&mut w);
        self.subject.encode(&mut w);
        w.put_i64(tag::NOT_BEFORE, self.not_before.0);
        w.put_i64(tag::NOT_AFTER, self.not_after.0);
        w.put(tag::SPKI, &self.public_key.to_bytes());
        w.put_nested(tag::EXTENSIONS, |e| {
            if let Some(bc) = self.extensions.basic_constraints {
                e.put_nested(tag::BASIC_CONSTRAINTS, |b| {
                    b.put_bool(tag::BC_CA, bc.ca);
                    if let Some(pl) = bc.path_len {
                        b.put(tag::BC_PATHLEN, &[pl]);
                    }
                });
            }
            for san in &self.extensions.subject_alt_names {
                e.put_str(tag::SAN, san);
            }
            e.put(tag::KEY_USAGE, &[self.extensions.key_usage.0]);
            if let Some(url) = &self.extensions.ocsp_url {
                e.put_str(tag::OCSP_URL, url);
            }
            if let Some(url) = &self.extensions.crl_url {
                e.put_str(tag::CRL_URL, url);
            }
            e.put_bool(tag::MUST_STAPLE, self.extensions.must_staple);
        });
        w.finish()
    }

    fn decode(r: &mut TlvReader) -> Result<Self, TlvError> {
        let serial = r.expect_u64(tag::SERIAL)?;
        let issuer = DistinguishedName::decode(r)?;
        let subject = DistinguishedName::decode(r)?;
        let not_before = Timestamp(r.expect_i64(tag::NOT_BEFORE)?);
        let not_after = Timestamp(r.expect_i64(tag::NOT_AFTER)?);
        let spki = r.expect(tag::SPKI)?;
        let public_key =
            RsaPublicKey::from_bytes(spki).ok_or(TlvError::Malformed("public key"))?;
        let mut e = r.expect_nested(tag::EXTENSIONS)?;
        let mut extensions = Extensions::default();
        if e.peek_tag() == Some(tag::BASIC_CONSTRAINTS) {
            let mut b = e.expect_nested(tag::BASIC_CONSTRAINTS)?;
            let ca = b.expect_bool(tag::BC_CA)?;
            let path_len = match b.take_optional(tag::BC_PATHLEN)? {
                Some([pl]) => Some(*pl),
                Some(_) => return Err(TlvError::Malformed("path length")),
                None => None,
            };
            b.finish()?;
            extensions.basic_constraints = Some(BasicConstraints { ca, path_len });
        }
        while e.peek_tag() == Some(tag::SAN) {
            extensions.subject_alt_names.push(e.expect_str(tag::SAN)?);
        }
        let ku = e.expect(tag::KEY_USAGE)?;
        extensions.key_usage = KeyUsage(*ku.first().ok_or(TlvError::Malformed("key usage"))?);
        if e.peek_tag() == Some(tag::OCSP_URL) {
            extensions.ocsp_url = Some(e.expect_str(tag::OCSP_URL)?);
        }
        if e.peek_tag() == Some(tag::CRL_URL) {
            extensions.crl_url = Some(e.expect_str(tag::CRL_URL)?);
        }
        extensions.must_staple = e.expect_bool(tag::MUST_STAPLE)?;
        e.finish()?;
        Ok(TbsCertificate {
            serial,
            issuer,
            subject,
            not_before,
            not_after,
            public_key,
            extensions,
        })
    }
}

/// A signed certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// The signed body.
    pub tbs: TbsCertificate,
    /// Signature algorithm marker.
    pub signature_algorithm: SignatureAlgorithm,
    /// RSA signature over [`TbsCertificate::to_bytes`].
    pub signature: Vec<u8>,
}

impl Certificate {
    /// Encodes the full certificate (TBS + algorithm + signature).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = TlvWriter::new();
        w.put(tag::TBS, &self.tbs.to_bytes());
        w.put_u64(tag::SIG_ALG, self.signature_algorithm.to_u64());
        w.put(tag::SIGNATURE, &self.signature);
        w.finish()
    }

    /// Decodes a certificate produced by [`Self::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, TlvError> {
        let mut r = TlvReader::new(bytes);
        let tbs_bytes = r.expect(tag::TBS)?;
        let mut tbs_reader = TlvReader::new(tbs_bytes);
        let tbs = TbsCertificate::decode(&mut tbs_reader)?;
        tbs_reader.finish()?;
        let signature_algorithm = SignatureAlgorithm::from_u64(r.expect_u64(tag::SIG_ALG)?)?;
        let signature = r.expect(tag::SIGNATURE)?.to_vec();
        r.finish()?;
        Ok(Certificate {
            tbs,
            signature_algorithm,
            signature,
        })
    }

    /// SHA-256 fingerprint of the encoded certificate.
    pub fn fingerprint(&self) -> [u8; 32] {
        sha256(&self.to_bytes())
    }

    /// True if `signer` (the issuer's public key) validates this
    /// certificate's signature.
    pub fn verify_signature(&self, signer: &RsaPublicKey) -> bool {
        signer.verify(&self.tbs.to_bytes(), &self.signature).is_ok()
    }

    /// True for self-signed certificates (subject == issuer and the
    /// embedded key validates the signature).
    pub fn is_self_signed(&self) -> bool {
        self.tbs.subject == self.tbs.issuer && self.verify_signature(&self.tbs.public_key)
    }

    /// True when `now` falls inside the validity window.
    pub fn is_time_valid(&self, now: Timestamp) -> bool {
        self.tbs.not_before <= now && now <= self.tbs.not_after
    }

    /// True when the certificate may act as a CA (BasicConstraints
    /// present with `ca = true`).
    pub fn is_ca(&self) -> bool {
        matches!(
            self.tbs.extensions.basic_constraints,
            Some(BasicConstraints { ca: true, .. })
        )
    }
}

/// A certificate bundled with its private key — the issuing side.
///
/// The attacker/MITM code in the reproduction is *only ever handed
/// [`Certificate`] values* for CAs it wants to spoof; `CertifiedKey`s
/// for trusted roots stay on the legitimate-infrastructure side, which
/// is what makes the signature-validity side channel real.
#[derive(Debug, Clone)]
pub struct CertifiedKey {
    /// The public certificate.
    pub cert: Certificate,
    /// The matching private key.
    pub key: RsaPrivateKey,
}

/// Parameters for issuing a certificate.
#[derive(Debug, Clone)]
pub struct IssueParams {
    /// Subject name.
    pub subject: DistinguishedName,
    /// Serial number.
    pub serial: u64,
    /// Validity window start.
    pub not_before: Timestamp,
    /// Validity window end.
    pub not_after: Timestamp,
    /// Extensions for the new certificate.
    pub extensions: Extensions,
    /// Signature algorithm marker to record.
    pub signature_algorithm: SignatureAlgorithm,
}

impl IssueParams {
    /// Sensible defaults for a server leaf certificate for `hostname`.
    pub fn leaf(hostname: &str, serial: u64, not_before: Timestamp, days: i64) -> Self {
        IssueParams {
            subject: DistinguishedName::cn(hostname),
            serial,
            not_before,
            not_after: not_before.plus_days(days),
            extensions: Extensions {
                basic_constraints: Some(BasicConstraints {
                    ca: false,
                    path_len: None,
                }),
                subject_alt_names: vec![hostname.to_string()],
                key_usage: KeyUsage::leaf_default(),
                ocsp_url: None,
                crl_url: None,
                must_staple: false,
            },
            signature_algorithm: SignatureAlgorithm::RsaSha256,
        }
    }

    /// Sensible defaults for a CA certificate.
    pub fn ca(name: DistinguishedName, serial: u64, not_before: Timestamp, days: i64) -> Self {
        IssueParams {
            subject: name,
            serial,
            not_before,
            not_after: not_before.plus_days(days),
            extensions: Extensions {
                basic_constraints: Some(BasicConstraints {
                    ca: true,
                    path_len: None,
                }),
                subject_alt_names: Vec::new(),
                key_usage: KeyUsage::ca_default(),
                ocsp_url: None,
                crl_url: None,
                must_staple: false,
            },
            signature_algorithm: SignatureAlgorithm::RsaSha256,
        }
    }
}

impl CertifiedKey {
    /// Creates a self-signed certificate (root CA or bare self-signed
    /// leaf, depending on `params.extensions`).
    pub fn self_signed(params: IssueParams, key: RsaPrivateKey) -> CertifiedKey {
        let tbs = TbsCertificate {
            serial: params.serial,
            issuer: params.subject.clone(),
            subject: params.subject,
            not_before: params.not_before,
            not_after: params.not_after,
            public_key: key.public_key().clone(),
            extensions: params.extensions,
        };
        let signature = key.sign(&tbs.to_bytes());
        CertifiedKey {
            cert: Certificate {
                tbs,
                signature_algorithm: params.signature_algorithm,
                signature,
            },
            key,
        }
    }

    /// Issues a certificate for `subject_key`'s public half, signed by
    /// this CA.
    pub fn issue(&self, params: IssueParams, subject_key: &RsaPrivateKey) -> Certificate {
        self.issue_for_public_key(params, subject_key.public_key().clone())
    }

    /// Issues a certificate binding an arbitrary public key.
    pub fn issue_for_public_key(
        &self,
        params: IssueParams,
        public_key: RsaPublicKey,
    ) -> Certificate {
        let tbs = TbsCertificate {
            serial: params.serial,
            issuer: self.cert.tbs.subject.clone(),
            subject: params.subject,
            not_before: params.not_before,
            not_after: params.not_after,
            public_key,
            extensions: params.extensions,
        };
        let signature = self.key.sign(&tbs.to_bytes());
        Certificate {
            tbs,
            signature_algorithm: params.signature_algorithm,
            signature,
        }
    }
}

/// TLV tags for certificate encoding.
mod tag {
    pub const TBS: u8 = 0x01;
    pub const SIG_ALG: u8 = 0x02;
    pub const SIGNATURE: u8 = 0x03;
    pub const SERIAL: u8 = 0x10;
    pub const NAME: u8 = 0x11;
    pub const CN: u8 = 0x12;
    pub const ORG: u8 = 0x13;
    pub const COUNTRY: u8 = 0x14;
    pub const NOT_BEFORE: u8 = 0x15;
    pub const NOT_AFTER: u8 = 0x16;
    pub const SPKI: u8 = 0x17;
    pub const EXTENSIONS: u8 = 0x18;
    pub const BASIC_CONSTRAINTS: u8 = 0x19;
    pub const BC_CA: u8 = 0x1a;
    pub const BC_PATHLEN: u8 = 0x1b;
    pub const SAN: u8 = 0x1c;
    pub const KEY_USAGE: u8 = 0x1d;
    pub const OCSP_URL: u8 = 0x1e;
    pub const CRL_URL: u8 = 0x1f;
    pub const MUST_STAPLE: u8 = 0x20;
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotls_crypto::drbg::Drbg;

    fn t(y: i32) -> Timestamp {
        Timestamp::from_ymd(y, 1, 1)
    }

    fn test_root() -> CertifiedKey {
        let key = RsaPrivateKey::generate(512, &mut Drbg::from_seed(100));
        CertifiedKey::self_signed(
            IssueParams::ca(DistinguishedName::new("Test Root", "TestOrg", "US"), 1, t(2015), 3650),
            key,
        )
    }

    #[test]
    fn self_signed_root_verifies() {
        let root = test_root();
        assert!(root.cert.is_self_signed());
        assert!(root.cert.is_ca());
        assert!(root.cert.verify_signature(&root.cert.tbs.public_key));
    }

    #[test]
    fn issued_leaf_verifies_against_issuer_only() {
        let root = test_root();
        let leaf_key = RsaPrivateKey::generate(512, &mut Drbg::from_seed(101));
        let leaf = root.issue(
            IssueParams::leaf("device.example.com", 42, t(2018), 365),
            &leaf_key,
        );
        assert!(leaf.verify_signature(&root.cert.tbs.public_key));
        assert!(!leaf.verify_signature(leaf_key.public_key()));
        assert!(!leaf.is_self_signed());
        assert!(!leaf.is_ca());
        assert_eq!(leaf.tbs.issuer, root.cert.tbs.subject);
    }

    #[test]
    fn encoding_roundtrip() {
        let root = test_root();
        let leaf_key = RsaPrivateKey::generate(512, &mut Drbg::from_seed(102));
        let mut params = IssueParams::leaf("a.example.com", 7, t(2019), 90);
        params.extensions.subject_alt_names.push("b.example.com".into());
        params.extensions.ocsp_url = Some("http://ocsp.example.com".into());
        params.extensions.crl_url = Some("http://crl.example.com".into());
        params.extensions.must_staple = true;
        let leaf = root.issue(params, &leaf_key);
        let decoded = Certificate::from_bytes(&leaf.to_bytes()).unwrap();
        assert_eq!(decoded, leaf);
    }

    #[test]
    fn tampered_tbs_breaks_signature() {
        let root = test_root();
        let leaf_key = RsaPrivateKey::generate(512, &mut Drbg::from_seed(103));
        let mut leaf = root.issue(
            IssueParams::leaf("device.example.com", 42, t(2018), 365),
            &leaf_key,
        );
        leaf.tbs.subject.common_name = "evil.example.com".into();
        assert!(!leaf.verify_signature(&root.cert.tbs.public_key));
    }

    #[test]
    fn time_validity_window() {
        let root = test_root();
        let c = &root.cert;
        assert!(c.is_time_valid(t(2016)));
        assert!(!c.is_time_valid(t(2014)));
        assert!(!c.is_time_valid(t(2030)));
    }

    #[test]
    fn spoofed_ca_matches_identity_but_not_signature() {
        // The heart of the IoTLS root-store probe: same subject,
        // issuer, and serial — different key, so leaves signed by the
        // spoofed CA fail signature validation against the real root.
        let real = test_root();
        let spoof_key = RsaPrivateKey::generate(512, &mut Drbg::from_seed(104));
        let spoof = CertifiedKey::self_signed(
            IssueParams {
                subject: real.cert.tbs.subject.clone(),
                serial: real.cert.tbs.serial,
                not_before: real.cert.tbs.not_before,
                not_after: real.cert.tbs.not_after,
                extensions: real.cert.tbs.extensions.clone(),
                signature_algorithm: real.cert.signature_algorithm,
            },
            spoof_key,
        );
        assert_eq!(spoof.cert.tbs.subject, real.cert.tbs.subject);
        assert_eq!(spoof.cert.tbs.serial, real.cert.tbs.serial);
        assert!(spoof.cert.is_self_signed());
        // A leaf issued by the spoof does not verify against the real root.
        let leaf_key = RsaPrivateKey::generate(512, &mut Drbg::from_seed(105));
        let leaf = spoof.issue(IssueParams::leaf("h.example.com", 9, t(2020), 30), &leaf_key);
        assert!(leaf.verify_signature(&spoof.cert.tbs.public_key));
        assert!(!leaf.verify_signature(&real.cert.tbs.public_key));
    }

    #[test]
    fn key_usage_flags() {
        let ku = KeyUsage::ca_default();
        assert!(ku.contains(KeyUsage::KEY_CERT_SIGN));
        assert!(!KeyUsage::leaf_default().contains(KeyUsage::KEY_CERT_SIGN));
    }

    #[test]
    fn fingerprints_differ_by_content() {
        let root = test_root();
        let k = RsaPrivateKey::generate(512, &mut Drbg::from_seed(106));
        let a = root.issue(IssueParams::leaf("a.com", 1, t(2020), 10), &k);
        let b = root.issue(IssueParams::leaf("b.com", 2, t(2020), 10), &k);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), a.fingerprint());
    }

    #[test]
    fn malformed_bytes_rejected() {
        assert!(Certificate::from_bytes(&[]).is_err());
        let root = test_root();
        let bytes = root.cert.to_bytes();
        assert!(Certificate::from_bytes(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn display_name_formats() {
        let dn = DistinguishedName::new("example.com", "Example Inc", "US");
        assert_eq!(dn.to_string(), "CN=example.com, O=Example Inc, C=US");
        assert_eq!(DistinguishedName::cn("x").to_string(), "CN=x");
    }
}
