//! Per-run memoization of chain-validation verdicts.
//!
//! A sweep re-presents the same few certificate chains to the same
//! client configurations thousands of times; the verdict only depends
//! on the chain bytes, the root store, the hostname, the validation
//! policy, and (at day granularity) the validation time. A
//! [`VerificationCache`] keys on exactly that tuple and memoizes the
//! full [`validate_chain`] result, including the error variant — the
//! alert side channel (§4.2) depends on *which* error comes back, so
//! the cache must preserve it bit-for-bit.
//!
//! The cache is scoped per lab run, never globally: hit/miss counters
//! are part of the experiment's reported output and must be identical
//! at any worker count, which holds exactly because each per-device
//! lab owns its own cache.

use crate::cert::Certificate;
use crate::store::RootStore;
use crate::time::Timestamp;
use crate::verify::{validate_chain, ValidationError, ValidationPolicy};
use iotls_crypto::sha256::sha256;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// (chain digest, store id, day bucket, hostname, policy bits).
type Key = ([u8; 32], [u8; 32], i64, String, u8);

/// Hit/miss counters, reported next to `FaultStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Verdicts served from the cache.
    pub hits: u64,
    /// Verdicts computed by a full validation.
    pub misses: u64,
}

impl CacheStats {
    /// Field-wise accumulation (for aggregating across labs).
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
    }

    /// Folds the counters into a metrics registry under
    /// `x509.cache.hits` / `x509.cache.misses`.
    pub fn export(&self, reg: &mut iotls_obs::Registry) {
        reg.add("x509.cache.hits", self.hits);
        reg.add("x509.cache.misses", self.misses);
    }
}

/// A memoizing front for [`validate_chain`].
#[derive(Debug, Default)]
pub struct VerificationCache {
    entries: Mutex<HashMap<Key, Result<(), ValidationError>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl VerificationCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// [`validate_chain`] with memoization. The first call for a key
    /// computes and stores the verdict; subsequent calls return it
    /// without touching the chain's signatures.
    pub fn validate(
        &self,
        chain: &[Certificate],
        roots: &RootStore,
        hostname: &str,
        now: Timestamp,
        policy: &ValidationPolicy,
    ) -> Result<(), ValidationError> {
        let key = (
            chain_digest(chain),
            roots.id(),
            now.0.div_euclid(86_400),
            hostname.to_string(),
            policy_bits(policy),
        );
        if let Some(hit) = self.entries.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return *hit;
        }
        let verdict = validate_chain(chain, roots, hostname, now, policy);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.entries.lock().unwrap().insert(key, verdict);
        verdict
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Snapshots the counters straight into a metrics registry (see
    /// [`CacheStats::export`]).
    pub fn export_metrics(&self, reg: &mut iotls_obs::Registry) {
        self.stats().export(reg);
    }
}

/// How an experiment context scopes verification caching for the labs
/// it spawns.
///
/// The default, [`CacheScope::PerLab`], hands every lab a fresh
/// cache: hit/miss counters stay a pure function of that lab's seed,
/// so parallel sweeps report identical numbers at any worker count.
/// [`CacheScope::Shared`] trades that determinism of the *counters*
/// (never of the verdicts — the cache memoizes a pure function) for
/// cross-lab reuse, and [`CacheScope::Disabled`] turns memoization
/// off entirely, which is the honest baseline for cache benchmarks.
#[derive(Debug, Clone, Default)]
pub enum CacheScope {
    /// A fresh cache per lab (deterministic counters; the default).
    #[default]
    PerLab,
    /// One cache shared by every lab the context spawns.
    Shared(std::sync::Arc<VerificationCache>),
    /// No memoization: every validation runs in full.
    Disabled,
}

impl CacheScope {
    /// The cache handle a newly constructed lab should install, or
    /// `None` when caching is disabled.
    pub fn lab_cache(&self) -> Option<std::sync::Arc<VerificationCache>> {
        match self {
            CacheScope::PerLab => Some(std::sync::Arc::default()),
            CacheScope::Shared(cache) => Some(cache.clone()),
            CacheScope::Disabled => None,
        }
    }
}

/// Digest of the chain as presented (order-sensitive).
fn chain_digest(chain: &[Certificate]) -> [u8; 32] {
    let mut buf = Vec::with_capacity(chain.len() * 32);
    for cert in chain {
        buf.extend_from_slice(&cert.fingerprint());
    }
    sha256(&buf)
}

/// Packs the five policy toggles into one byte.
fn policy_bits(p: &ValidationPolicy) -> u8 {
    (p.check_signatures as u8)
        | (p.check_validity as u8) << 1
        | (p.check_hostname as u8) << 2
        | (p.check_basic_constraints as u8) << 3
        | (p.check_key_usage as u8) << 4
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::{CertifiedKey, DistinguishedName, IssueParams};
    use iotls_crypto::drbg::Drbg;
    use iotls_crypto::rsa::RsaPrivateKey;

    fn ca_and_leaf() -> (CertifiedKey, Certificate) {
        let ca_key = RsaPrivateKey::generate(512, &mut Drbg::from_seed(0xCA));
        let ca = CertifiedKey::self_signed(
            IssueParams::ca(
                DistinguishedName::new("Test Root", "Org", "US"),
                1,
                Timestamp::from_ymd(2015, 1, 1),
                3650,
            ),
            ca_key,
        );
        let leaf_key = RsaPrivateKey::generate(512, &mut Drbg::from_seed(0x1EAF));
        let leaf = ca.issue(
            IssueParams::leaf("host.example", 2, Timestamp::from_ymd(2020, 1, 1), 825),
            &leaf_key,
        );
        (ca, leaf)
    }

    #[test]
    fn cached_verdict_matches_direct_validation_for_ok_and_err() {
        let (ca, leaf) = ca_and_leaf();
        let store = RootStore::from_certs([ca.cert.clone()]);
        let empty = RootStore::new();
        let now = Timestamp::from_ymd(2021, 3, 1);
        let policy = ValidationPolicy::strict();
        let cache = VerificationCache::new();
        let chain = vec![leaf.clone()];

        for _ in 0..3 {
            assert_eq!(
                cache.validate(&chain, &store, "host.example", now, &policy),
                validate_chain(&chain, &store, "host.example", now, &policy),
            );
            // Unknown-CA error variant must be preserved exactly.
            assert_eq!(
                cache.validate(&chain, &empty, "host.example", now, &policy),
                Err(ValidationError::UnknownIssuer),
            );
            // Hostname is part of the key, not collapsed.
            assert_eq!(
                cache.validate(&chain, &store, "other.example", now, &policy),
                Err(ValidationError::HostnameMismatch),
            );
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 6);
    }

    #[test]
    fn policy_and_day_bucket_discriminate() {
        let (ca, leaf) = ca_and_leaf();
        let store = RootStore::from_certs([ca.cert.clone()]);
        let cache = VerificationCache::new();
        let chain = vec![leaf];
        let noon = Timestamp::from_ymd_hms(2021, 3, 1, 12, 0, 0);
        let later_same_day = Timestamp::from_ymd_hms(2021, 3, 1, 18, 0, 0);
        let next_day = Timestamp::from_ymd(2021, 3, 2);

        let strict = ValidationPolicy::strict();
        let lax = ValidationPolicy::no_hostname_check();
        cache.validate(&chain, &store, "host.example", noon, &strict).unwrap();
        // Same day bucket → hit; different policy or day → miss.
        cache
            .validate(&chain, &store, "host.example", later_same_day, &strict)
            .unwrap();
        cache.validate(&chain, &store, "host.example", noon, &lax).unwrap();
        cache.validate(&chain, &store, "host.example", next_day, &strict).unwrap();
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 3));
    }

    #[test]
    fn store_id_distinguishes_stores() {
        let (ca, _) = ca_and_leaf();
        let other_key = RsaPrivateKey::generate(512, &mut Drbg::from_seed(0x0B));
        let other = CertifiedKey::self_signed(
            IssueParams::ca(
                DistinguishedName::new("Other Root", "Org", "US"),
                3,
                Timestamp::from_ymd(2015, 1, 1),
                3650,
            ),
            other_key,
        );
        let a = RootStore::from_certs([ca.cert.clone()]);
        let b = RootStore::from_certs([ca.cert.clone(), other.cert.clone()]);
        assert_ne!(a.id(), b.id());
        // Removing the extra root restores the original id.
        let mut b2 = b.clone();
        b2.remove(&other.cert.tbs.subject);
        assert_eq!(a.id(), b2.id());
        assert_eq!(RootStore::new().id(), [0u8; 32]);
    }
}
