//! Certificate revocation: CRLs, OCSP, and OCSP stapling.
//!
//! Table 8 of the paper classifies devices by which revocation
//! mechanism they ever exercise (CRL fetch, OCSP query, OCSP stapling
//! via the `status_request` extension). This module provides signed
//! CRL and OCSP message models so the passive analyzer can observe
//! revocation traffic exactly as the paper does.

use crate::cert::{Certificate, CertifiedKey, DistinguishedName};
use crate::time::Timestamp;
use crate::tlv::{TlvError, TlvReader, TlvWriter};
use std::collections::BTreeSet;

/// Revocation status of a single certificate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RevocationStatus {
    /// Not on any revocation list.
    Good,
    /// Revoked by the issuer.
    Revoked,
    /// The responder does not know the certificate.
    Unknown,
}

/// A certificate revocation list issued (and signed) by a CA.
#[derive(Debug, Clone)]
pub struct Crl {
    /// The issuing CA's subject name.
    pub issuer: DistinguishedName,
    /// Serial numbers of revoked certificates.
    pub revoked_serials: BTreeSet<u64>,
    /// When this list was produced.
    pub this_update: Timestamp,
    /// Signature by the issuer over the list body.
    pub signature: Vec<u8>,
}

impl Crl {
    /// Builds and signs a CRL.
    pub fn issue(
        issuer: &CertifiedKey,
        revoked_serials: impl IntoIterator<Item = u64>,
        this_update: Timestamp,
    ) -> Crl {
        let revoked: BTreeSet<u64> = revoked_serials.into_iter().collect();
        let body = Self::body_bytes(&issuer.cert.tbs.subject, &revoked, this_update);
        Crl {
            issuer: issuer.cert.tbs.subject.clone(),
            revoked_serials: revoked,
            this_update,
            signature: issuer.key.sign(&body),
        }
    }

    fn body_bytes(
        issuer: &DistinguishedName,
        revoked: &BTreeSet<u64>,
        this_update: Timestamp,
    ) -> Vec<u8> {
        let mut w = TlvWriter::new();
        w.put_str(1, &issuer.common_name);
        w.put_i64(2, this_update.0);
        for s in revoked {
            w.put_u64(3, *s);
        }
        w.finish()
    }

    /// Verifies the CRL signature against the issuing certificate.
    pub fn verify(&self, issuer_cert: &Certificate) -> bool {
        let body = Self::body_bytes(&self.issuer, &self.revoked_serials, self.this_update);
        issuer_cert
            .tbs
            .public_key
            .verify(&body, &self.signature)
            .is_ok()
    }

    /// Looks up a certificate's status on this list.
    pub fn status_of(&self, cert: &Certificate) -> RevocationStatus {
        if cert.tbs.issuer != self.issuer {
            return RevocationStatus::Unknown;
        }
        if self.revoked_serials.contains(&cert.tbs.serial) {
            RevocationStatus::Revoked
        } else {
            RevocationStatus::Good
        }
    }
}

/// A signed OCSP response for one certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OcspResponse {
    /// Serial of the certificate this response covers.
    pub serial: u64,
    /// Status asserted by the responder.
    pub status: RevocationStatus,
    /// When the response was produced.
    pub produced_at: Timestamp,
    /// Responses older than this should be refetched.
    pub next_update: Timestamp,
    /// Signature by the issuing CA.
    pub signature: Vec<u8>,
}

impl OcspResponse {
    /// Produces a signed response from the issuing CA.
    pub fn produce(
        issuer: &CertifiedKey,
        serial: u64,
        status: RevocationStatus,
        produced_at: Timestamp,
        validity_secs: i64,
    ) -> OcspResponse {
        let next_update = produced_at.plus_secs(validity_secs);
        let body = Self::body_bytes(serial, status, produced_at, next_update);
        OcspResponse {
            serial,
            status,
            produced_at,
            next_update,
            signature: issuer.key.sign(&body),
        }
    }

    fn body_bytes(
        serial: u64,
        status: RevocationStatus,
        produced_at: Timestamp,
        next_update: Timestamp,
    ) -> Vec<u8> {
        let mut w = TlvWriter::new();
        w.put_u64(1, serial);
        w.put(
            2,
            &[match status {
                RevocationStatus::Good => 0,
                RevocationStatus::Revoked => 1,
                RevocationStatus::Unknown => 2,
            }],
        );
        w.put_i64(3, produced_at.0);
        w.put_i64(4, next_update.0);
        w.finish()
    }

    /// Verifies the response signature and freshness at `now`.
    pub fn verify(&self, issuer_cert: &Certificate, now: Timestamp) -> bool {
        if now > self.next_update || now < self.produced_at {
            return false;
        }
        let body = Self::body_bytes(self.serial, self.status, self.produced_at, self.next_update);
        issuer_cert
            .tbs
            .public_key
            .verify(&body, &self.signature)
            .is_ok()
    }

    /// Serializes for transport as a TLS `status_request` staple.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = TlvWriter::new();
        w.put_u64(1, self.serial);
        w.put(
            2,
            &[match self.status {
                RevocationStatus::Good => 0,
                RevocationStatus::Revoked => 1,
                RevocationStatus::Unknown => 2,
            }],
        );
        w.put_i64(3, self.produced_at.0);
        w.put_i64(4, self.next_update.0);
        w.put(5, &self.signature);
        w.finish()
    }

    /// Parses a staple produced by [`Self::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<OcspResponse, TlvError> {
        let mut r = TlvReader::new(bytes);
        let serial = r.expect_u64(1)?;
        let status = match r.expect(2)? {
            [0] => RevocationStatus::Good,
            [1] => RevocationStatus::Revoked,
            [2] => RevocationStatus::Unknown,
            _ => return Err(TlvError::Malformed("ocsp status")),
        };
        let produced_at = Timestamp(r.expect_i64(3)?);
        let next_update = Timestamp(r.expect_i64(4)?);
        let signature = r.expect(5)?.to_vec();
        r.finish()?;
        Ok(OcspResponse {
            serial,
            status,
            produced_at,
            next_update,
            signature,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::IssueParams;
    use iotls_crypto::drbg::Drbg;
    use iotls_crypto::rsa::RsaPrivateKey;

    fn ca(seed: u64) -> CertifiedKey {
        let key = RsaPrivateKey::generate(512, &mut Drbg::from_seed(seed));
        CertifiedKey::self_signed(
            IssueParams::ca(
                DistinguishedName::new("Revocation CA", "SimCA", "US"),
                1,
                Timestamp::from_ymd(2015, 1, 1),
                7300,
            ),
            key,
        )
    }

    fn leaf(issuer: &CertifiedKey, serial: u64, seed: u64) -> Certificate {
        let k = RsaPrivateKey::generate(512, &mut Drbg::from_seed(seed));
        issuer.issue(
            IssueParams::leaf("svc.example.com", serial, Timestamp::from_ymd(2020, 1, 1), 365),
            &k,
        )
    }

    #[test]
    fn crl_status_lookup() {
        let issuer = ca(300);
        let good = leaf(&issuer, 10, 301);
        let bad = leaf(&issuer, 11, 302);
        let crl = Crl::issue(&issuer, [11, 99], Timestamp::from_ymd(2020, 6, 1));
        assert_eq!(crl.status_of(&good), RevocationStatus::Good);
        assert_eq!(crl.status_of(&bad), RevocationStatus::Revoked);
        assert!(crl.verify(&issuer.cert));
    }

    #[test]
    fn crl_from_other_issuer_is_unknown() {
        let issuer = ca(303);
        let other = {
            let key = RsaPrivateKey::generate(512, &mut Drbg::from_seed(304));
            CertifiedKey::self_signed(
                IssueParams::ca(
                    DistinguishedName::new("Different CA", "Org", "US"),
                    2,
                    Timestamp::from_ymd(2015, 1, 1),
                    7300,
                ),
                key,
            )
        };
        let cert = leaf(&other, 5, 305);
        let crl = Crl::issue(&issuer, [5], Timestamp::from_ymd(2020, 6, 1));
        assert_eq!(crl.status_of(&cert), RevocationStatus::Unknown);
    }

    #[test]
    fn tampered_crl_fails_verification() {
        let issuer = ca(306);
        let mut crl = Crl::issue(&issuer, [1, 2, 3], Timestamp::from_ymd(2020, 6, 1));
        crl.revoked_serials.insert(4);
        assert!(!crl.verify(&issuer.cert));
    }

    #[test]
    fn ocsp_roundtrip_and_verification() {
        let issuer = ca(307);
        let t0 = Timestamp::from_ymd(2020, 6, 1);
        let resp = OcspResponse::produce(&issuer, 42, RevocationStatus::Good, t0, 7 * 86_400);
        assert!(resp.verify(&issuer.cert, t0.plus_days(3)));
        let parsed = OcspResponse::from_bytes(&resp.to_bytes()).unwrap();
        assert_eq!(parsed, resp);
    }

    #[test]
    fn stale_ocsp_rejected() {
        let issuer = ca(308);
        let t0 = Timestamp::from_ymd(2020, 6, 1);
        let resp = OcspResponse::produce(&issuer, 42, RevocationStatus::Good, t0, 86_400);
        assert!(!resp.verify(&issuer.cert, t0.plus_days(2)));
        assert!(!resp.verify(&issuer.cert, t0.plus_secs(-10)));
    }

    #[test]
    fn forged_ocsp_rejected() {
        let issuer = ca(309);
        let mallory = ca(310); // different key, same CN
        let t0 = Timestamp::from_ymd(2020, 6, 1);
        let forged = OcspResponse::produce(&mallory, 42, RevocationStatus::Good, t0, 86_400);
        assert!(!forged.verify(&issuer.cert, t0));
    }

    #[test]
    fn ocsp_revoked_status_transported() {
        let issuer = ca(311);
        let t0 = Timestamp::from_ymd(2020, 6, 1);
        let resp = OcspResponse::produce(&issuer, 7, RevocationStatus::Revoked, t0, 86_400);
        let parsed = OcspResponse::from_bytes(&resp.to_bytes()).unwrap();
        assert_eq!(parsed.status, RevocationStatus::Revoked);
        assert!(parsed.verify(&issuer.cert, t0));
    }

    #[test]
    fn malformed_staple_rejected() {
        assert!(OcspResponse::from_bytes(&[1, 2, 3]).is_err());
    }
}
