//! Certificate chain (path) validation.
//!
//! Implements the RFC 5280 subset the IoTLS experiments exercise, with
//! a [`ValidationPolicy`] that lets the device emulation layer turn
//! individual checks off — reproducing the real-world validation bugs
//! in Table 7 (no validation at all, missing hostname checks, missing
//! BasicConstraints enforcement).
//!
//! The *order* of checks mirrors common TLS library behavior and is
//! load-bearing for the root-store side channel: the validator first
//! builds the path (failing with [`ValidationError::UnknownIssuer`]
//! when no trusted root matches the top-most issuer name) and only
//! then verifies signatures (failing with
//! [`ValidationError::BadSignature`]).

use crate::cert::Certificate;
use crate::hostname::cert_matches_hostname;
use crate::store::RootStore;
use crate::time::Timestamp;
use std::fmt;

/// Reasons path validation can fail, ordered roughly by discovery
/// order during validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValidationError {
    /// The presented chain was empty.
    EmptyChain,
    /// An intermediate's issuer does not match the next certificate's
    /// subject (broken chain).
    BrokenChain,
    /// No trusted root matches the chain's top-most issuer name.
    UnknownIssuer,
    /// An issuer was located but a signature failed to verify.
    BadSignature,
    /// A certificate's notAfter is in the past.
    Expired,
    /// A certificate's notBefore is in the future.
    NotYetValid,
    /// A non-leaf certificate is not a valid CA (BasicConstraints
    /// missing, or ca=false).
    InvalidBasicConstraints,
    /// The chain is longer than an issuer's pathLenConstraint allows.
    PathLenExceeded,
    /// A CA certificate lacks the keyCertSign usage.
    KeyUsageViolation,
    /// The leaf certificate does not match the requested hostname.
    HostnameMismatch,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValidationError::EmptyChain => "empty certificate chain",
            ValidationError::BrokenChain => "broken certificate chain",
            ValidationError::UnknownIssuer => "unknown certificate authority",
            ValidationError::BadSignature => "certificate signature verification failed",
            ValidationError::Expired => "certificate expired",
            ValidationError::NotYetValid => "certificate not yet valid",
            ValidationError::InvalidBasicConstraints => "invalid BasicConstraints",
            ValidationError::PathLenExceeded => "path length constraint exceeded",
            ValidationError::KeyUsageViolation => "key usage violation",
            ValidationError::HostnameMismatch => "hostname mismatch",
        };
        f.write_str(s)
    }
}

impl std::error::Error for ValidationError {}

/// Which checks a client actually performs.
///
/// A fully correct client uses [`ValidationPolicy::strict`]. The
/// broken policies model the vulnerable devices in the paper:
/// `no_validation` accepts anything (Zmodo Doorbell & co.), and
/// `no_hostname_check` validates the chain but ignores the hostname
/// (the four Amazon devices in Table 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValidationPolicy {
    /// Verify every signature in the path.
    pub check_signatures: bool,
    /// Enforce notBefore/notAfter on every certificate.
    pub check_validity: bool,
    /// Require the leaf to match the requested hostname.
    pub check_hostname: bool,
    /// Require CA certificates to carry BasicConstraints ca=true.
    pub check_basic_constraints: bool,
    /// Require CA certificates to carry keyCertSign.
    pub check_key_usage: bool,
}

impl ValidationPolicy {
    /// Everything on — a correct RFC 5280 validator.
    pub fn strict() -> Self {
        ValidationPolicy {
            check_signatures: true,
            check_validity: true,
            check_hostname: true,
            check_basic_constraints: true,
            check_key_usage: true,
        }
    }

    /// No validation whatsoever (accepts self-signed junk).
    pub fn no_validation() -> Self {
        ValidationPolicy {
            check_signatures: false,
            check_validity: false,
            check_hostname: false,
            check_basic_constraints: false,
            check_key_usage: false,
        }
    }

    /// Chain checks on, hostname check skipped.
    pub fn no_hostname_check() -> Self {
        ValidationPolicy {
            check_hostname: false,
            ..Self::strict()
        }
    }

    /// Chain + hostname on, BasicConstraints skipped — vulnerable to
    /// the InvalidBasicConstraints attack (a leaf used as a CA).
    pub fn no_basic_constraints() -> Self {
        ValidationPolicy {
            check_basic_constraints: false,
            check_key_usage: false,
            ..Self::strict()
        }
    }

    /// True when the policy performs no checks at all.
    pub fn is_no_validation(&self) -> bool {
        *self == Self::no_validation()
    }
}

/// Validates `chain` (leaf first) against `roots` for `hostname` at
/// time `now` under `policy`.
///
/// Returns the validation outcome a client with that policy would
/// reach. With [`ValidationPolicy::no_validation`] this always
/// succeeds for non-empty chains.
pub fn validate_chain(
    chain: &[Certificate],
    roots: &RootStore,
    hostname: &str,
    now: Timestamp,
    policy: &ValidationPolicy,
) -> Result<(), ValidationError> {
    let leaf = chain.first().ok_or(ValidationError::EmptyChain)?;
    if policy.is_no_validation() {
        return Ok(());
    }

    // 1. Structural chain building: each certificate's issuer must be
    //    the next certificate's subject.
    for window in chain.windows(2) {
        if window[0].tbs.issuer != window[1].tbs.subject {
            return Err(ValidationError::BrokenChain);
        }
    }

    // 2. Locate the trust anchor for the top-most certificate. When
    //    the top certificate *is* a trusted root (some servers send
    //    the root), anchor on it directly.
    let top = chain.last().expect("non-empty");
    let anchor = if roots.contains_subject(&top.tbs.subject)
        && roots.find_issuer(&top.tbs.subject).map(|c| &c.tbs.public_key)
            == Some(&top.tbs.public_key)
    {
        None // top of chain is itself the anchor
    } else {
        match roots.find_issuer(&top.tbs.issuer) {
            Some(root) => Some(root.clone()),
            None => return Err(ValidationError::UnknownIssuer),
        }
    };

    // 3. Signatures, bottom-up: each certificate must be signed by the
    //    key above it; the top by the anchor (or itself when the
    //    anchor is in-chain, i.e. self-signed root sent by server).
    if policy.check_signatures {
        for window in chain.windows(2) {
            if !window[0].verify_signature(&window[1].tbs.public_key) {
                return Err(ValidationError::BadSignature);
            }
        }
        match &anchor {
            Some(root) => {
                if !top.verify_signature(&root.tbs.public_key) {
                    return Err(ValidationError::BadSignature);
                }
            }
            None => {
                if !top.verify_signature(&top.tbs.public_key) {
                    return Err(ValidationError::BadSignature);
                }
            }
        }
    }

    // 4. Validity windows (every cert in the path plus the anchor).
    if policy.check_validity {
        for cert in chain.iter().chain(anchor.iter()) {
            if now < cert.tbs.not_before {
                return Err(ValidationError::NotYetValid);
            }
            if now > cert.tbs.not_after {
                return Err(ValidationError::Expired);
            }
        }
    }

    // 5. CA constraints on every issuing certificate (everything above
    //    the leaf, plus the anchor).
    if policy.check_basic_constraints {
        for (i, issuing) in chain.iter().enumerate().skip(1) {
            if !issuing.is_ca() {
                return Err(ValidationError::InvalidBasicConstraints);
            }
            // pathLen counts intermediates *below* this certificate.
            if let Some(bc) = issuing.tbs.extensions.basic_constraints {
                if let Some(max) = bc.path_len {
                    let below = i - 1; // intermediates between this cert and leaf
                    if below > max as usize {
                        return Err(ValidationError::PathLenExceeded);
                    }
                }
            }
        }
        if let Some(root) = &anchor {
            if !root.is_ca() {
                return Err(ValidationError::InvalidBasicConstraints);
            }
            if let Some(bc) = root.tbs.extensions.basic_constraints {
                if let Some(max) = bc.path_len {
                    if chain.len() - 1 > max as usize {
                        return Err(ValidationError::PathLenExceeded);
                    }
                }
            }
        }
    }

    if policy.check_key_usage {
        use crate::cert::KeyUsage;
        for issuing in chain.iter().skip(1).chain(anchor.iter()) {
            if !issuing.tbs.extensions.key_usage.contains(KeyUsage::KEY_CERT_SIGN) {
                return Err(ValidationError::KeyUsageViolation);
            }
        }
    }

    // 6. Hostname, last — mirrors libraries that verify the chain and
    //    then check identity.
    if policy.check_hostname && !cert_matches_hostname(leaf, hostname) {
        return Err(ValidationError::HostnameMismatch);
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::{
        BasicConstraints, CertifiedKey, DistinguishedName, Extensions, IssueParams, KeyUsage,
    };
    use iotls_crypto::drbg::Drbg;
    use iotls_crypto::rsa::RsaPrivateKey;

    struct Pki {
        root: CertifiedKey,
        roots: RootStore,
        now: Timestamp,
    }

    fn pki(seed: u64) -> Pki {
        let key = RsaPrivateKey::generate(512, &mut Drbg::from_seed(seed));
        let root = CertifiedKey::self_signed(
            IssueParams::ca(
                DistinguishedName::new("Sim Trust Root", "SimCA", "US"),
                1,
                Timestamp::from_ymd(2015, 1, 1),
                7300,
            ),
            key,
        );
        let roots = RootStore::from_certs([root.cert.clone()]);
        Pki {
            root,
            roots,
            now: Timestamp::from_ymd(2021, 3, 1),
        }
    }

    fn leaf_for(pki: &Pki, host: &str, seed: u64) -> Certificate {
        let k = RsaPrivateKey::generate(512, &mut Drbg::from_seed(seed));
        pki.root.issue(
            IssueParams::leaf(host, seed, Timestamp::from_ymd(2020, 6, 1), 398),
            &k,
        )
    }

    #[test]
    fn valid_leaf_passes_strict() {
        let p = pki(200);
        let leaf = leaf_for(&p, "cloud.example.com", 201);
        assert_eq!(
            validate_chain(&[leaf], &p.roots, "cloud.example.com", p.now, &ValidationPolicy::strict()),
            Ok(())
        );
    }

    #[test]
    fn empty_chain_fails() {
        let p = pki(202);
        assert_eq!(
            validate_chain(&[], &p.roots, "x", p.now, &ValidationPolicy::strict()),
            Err(ValidationError::EmptyChain)
        );
    }

    #[test]
    fn self_signed_is_unknown_issuer() {
        let p = pki(203);
        let k = RsaPrivateKey::generate(512, &mut Drbg::from_seed(204));
        let selfsigned =
            CertifiedKey::self_signed(IssueParams::leaf("evil.example.com", 9, Timestamp::from_ymd(2020, 1, 1), 365), k);
        assert_eq!(
            validate_chain(&[selfsigned.cert], &p.roots, "evil.example.com", p.now, &ValidationPolicy::strict()),
            Err(ValidationError::UnknownIssuer)
        );
    }

    #[test]
    fn spoofed_root_yields_bad_signature_not_unknown_issuer() {
        // The alert side channel in one test: a chain issued by a
        // spoofed CA whose name matches a trusted root fails with
        // BadSignature, distinguishable from UnknownIssuer.
        let p = pki(205);
        let spoof_key = RsaPrivateKey::generate(512, &mut Drbg::from_seed(206));
        let spoof = CertifiedKey::self_signed(
            IssueParams::ca(p.root.cert.tbs.subject.clone(), 1, Timestamp::from_ymd(2015, 1, 1), 7300),
            spoof_key,
        );
        let k = RsaPrivateKey::generate(512, &mut Drbg::from_seed(207));
        let leaf = spoof.issue(
            IssueParams::leaf("cloud.example.com", 10, Timestamp::from_ymd(2020, 6, 1), 365),
            &k,
        );
        assert_eq!(
            validate_chain(&[leaf], &p.roots, "cloud.example.com", p.now, &ValidationPolicy::strict()),
            Err(ValidationError::BadSignature)
        );
    }

    #[test]
    fn hostname_mismatch_detected_and_skippable() {
        let p = pki(208);
        let leaf = leaf_for(&p, "real.example.com", 209);
        assert_eq!(
            validate_chain(std::slice::from_ref(&leaf), &p.roots, "other.example.com", p.now, &ValidationPolicy::strict()),
            Err(ValidationError::HostnameMismatch)
        );
        assert_eq!(
            validate_chain(&[leaf], &p.roots, "other.example.com", p.now, &ValidationPolicy::no_hostname_check()),
            Ok(())
        );
    }

    #[test]
    fn expired_and_not_yet_valid() {
        let p = pki(210);
        let leaf = leaf_for(&p, "h.example.com", 211);
        assert_eq!(
            validate_chain(std::slice::from_ref(&leaf), &p.roots, "h.example.com", Timestamp::from_ymd(2029, 1, 1), &ValidationPolicy::strict()),
            Err(ValidationError::Expired)
        );
        assert_eq!(
            validate_chain(&[leaf], &p.roots, "h.example.com", Timestamp::from_ymd(2019, 1, 1), &ValidationPolicy::strict()),
            Err(ValidationError::NotYetValid)
        );
    }

    #[test]
    fn leaf_as_intermediate_violates_basic_constraints() {
        // The InvalidBasicConstraints attack: a leaf certificate (not a
        // CA) signs another leaf.
        let p = pki(212);
        let mid_key = RsaPrivateKey::generate(512, &mut Drbg::from_seed(213));
        let mid_cert = p.root.issue(
            IssueParams::leaf("attacker.example.net", 20, Timestamp::from_ymd(2020, 6, 1), 365),
            &mid_key,
        );
        let mid = CertifiedKey { cert: mid_cert, key: mid_key };
        let k = RsaPrivateKey::generate(512, &mut Drbg::from_seed(214));
        let forged = mid.issue(
            IssueParams::leaf("victim.example.com", 21, Timestamp::from_ymd(2020, 7, 1), 365),
            &k,
        );
        let chain = [forged, mid.cert.clone()];
        assert_eq!(
            validate_chain(&chain, &p.roots, "victim.example.com", p.now, &ValidationPolicy::strict()),
            Err(ValidationError::InvalidBasicConstraints)
        );
        // A client that skips the check accepts the forged chain.
        assert_eq!(
            validate_chain(&chain, &p.roots, "victim.example.com", p.now, &ValidationPolicy::no_basic_constraints()),
            Ok(())
        );
    }

    #[test]
    fn intermediate_chain_validates() {
        let p = pki(215);
        let int_key = RsaPrivateKey::generate(512, &mut Drbg::from_seed(216));
        let int_cert = p.root.issue(
            IssueParams::ca(DistinguishedName::new("Sim Intermediate", "SimCA", "US"), 30, Timestamp::from_ymd(2018, 1, 1), 3650),
            &int_key,
        );
        let intermediate = CertifiedKey { cert: int_cert.clone(), key: int_key };
        let k = RsaPrivateKey::generate(512, &mut Drbg::from_seed(217));
        let leaf = intermediate.issue(
            IssueParams::leaf("svc.example.com", 31, Timestamp::from_ymd(2020, 6, 1), 365),
            &k,
        );
        assert_eq!(
            validate_chain(&[leaf, int_cert], &p.roots, "svc.example.com", p.now, &ValidationPolicy::strict()),
            Ok(())
        );
    }

    #[test]
    fn path_len_constraint_enforced() {
        let p = pki(218);
        // Root allows zero intermediates below an intermediate with pathLen 0.
        let int_key = RsaPrivateKey::generate(512, &mut Drbg::from_seed(219));
        let mut int_params = IssueParams::ca(
            DistinguishedName::new("Constrained Intermediate", "SimCA", "US"),
            40,
            Timestamp::from_ymd(2018, 1, 1),
            3650,
        );
        int_params.extensions.basic_constraints = Some(BasicConstraints { ca: true, path_len: Some(0) });
        let int_cert = p.root.issue(int_params, &int_key);
        let intermediate = CertifiedKey { cert: int_cert.clone(), key: int_key };

        let sub_key = RsaPrivateKey::generate(512, &mut Drbg::from_seed(220));
        let sub_cert = intermediate.issue(
            IssueParams::ca(DistinguishedName::new("Sub CA", "SimCA", "US"), 41, Timestamp::from_ymd(2019, 1, 1), 3650),
            &sub_key,
        );
        let sub = CertifiedKey { cert: sub_cert.clone(), key: sub_key };
        let k = RsaPrivateKey::generate(512, &mut Drbg::from_seed(221));
        let leaf = sub.issue(
            IssueParams::leaf("deep.example.com", 42, Timestamp::from_ymd(2020, 6, 1), 365),
            &k,
        );
        assert_eq!(
            validate_chain(&[leaf, sub_cert, int_cert], &p.roots, "deep.example.com", p.now, &ValidationPolicy::strict()),
            Err(ValidationError::PathLenExceeded)
        );
    }

    #[test]
    fn key_usage_enforced_for_issuers() {
        let p = pki(222);
        let int_key = RsaPrivateKey::generate(512, &mut Drbg::from_seed(223));
        let mut params = IssueParams::ca(
            DistinguishedName::new("No-Sign CA", "SimCA", "US"),
            50,
            Timestamp::from_ymd(2018, 1, 1),
            3650,
        );
        params.extensions.key_usage = KeyUsage::DIGITAL_SIGNATURE; // missing keyCertSign
        let int_cert = p.root.issue(params, &int_key);
        let intermediate = CertifiedKey { cert: int_cert.clone(), key: int_key };
        let k = RsaPrivateKey::generate(512, &mut Drbg::from_seed(224));
        let leaf = intermediate.issue(
            IssueParams::leaf("ku.example.com", 51, Timestamp::from_ymd(2020, 6, 1), 365),
            &k,
        );
        assert_eq!(
            validate_chain(&[leaf, int_cert], &p.roots, "ku.example.com", p.now, &ValidationPolicy::strict()),
            Err(ValidationError::KeyUsageViolation)
        );
    }

    #[test]
    fn broken_chain_detected() {
        let p = pki(225);
        let other = pki(226);
        let leaf = leaf_for(&p, "a.example.com", 227);
        let unrelated = leaf_for(&other, "b.example.com", 228);
        assert_eq!(
            validate_chain(&[leaf, unrelated], &p.roots, "a.example.com", p.now, &ValidationPolicy::strict()),
            Err(ValidationError::BrokenChain)
        );
    }

    #[test]
    fn no_validation_accepts_anything() {
        let p = pki(229);
        let k = RsaPrivateKey::generate(512, &mut Drbg::from_seed(230));
        let junk = CertifiedKey::self_signed(
            IssueParams::leaf("whatever.example.com", 60, Timestamp::from_ymd(1999, 1, 1), 1),
            k,
        );
        assert_eq!(
            validate_chain(&[junk.cert], &p.roots, "completely.different.host", p.now, &ValidationPolicy::no_validation()),
            Ok(())
        );
    }

    #[test]
    fn server_sent_root_anchors_in_store() {
        // Some servers include the root; the validator anchors on the
        // in-store copy.
        let p = pki(231);
        let leaf = leaf_for(&p, "r.example.com", 232);
        assert_eq!(
            validate_chain(
                &[leaf, p.root.cert.clone()],
                &p.roots,
                "r.example.com",
                p.now,
                &ValidationPolicy::strict()
            ),
            Ok(())
        );
    }

    #[test]
    fn extensions_default_is_not_ca() {
        // A cert without BasicConstraints cannot issue.
        let p = pki(233);
        let mid_key = RsaPrivateKey::generate(512, &mut Drbg::from_seed(234));
        let mut params = IssueParams::leaf("noext.example.com", 70, Timestamp::from_ymd(2020, 1, 1), 900);
        params.extensions = Extensions::default();
        let mid_cert = p.root.issue(params, &mid_key);
        let mid = CertifiedKey { cert: mid_cert.clone(), key: mid_key };
        let k = RsaPrivateKey::generate(512, &mut Drbg::from_seed(235));
        let forged = mid.issue(
            IssueParams::leaf("victim2.example.com", 71, Timestamp::from_ymd(2020, 6, 1), 365),
            &k,
        );
        assert_eq!(
            validate_chain(&[forged, mid_cert], &p.roots, "victim2.example.com", p.now, &ValidationPolicy::strict()),
            Err(ValidationError::InvalidBasicConstraints)
        );
    }
}
