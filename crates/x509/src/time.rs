//! Civil time for the simulation.
//!
//! [`Timestamp`] is Unix seconds; conversions use Howard Hinnant's
//! `days_from_civil` / `civil_from_days` algorithms, implemented from
//! scratch (no chrono). The longitudinal analyses bucket connections
//! by `(year, month)`, so month arithmetic lives here too.

use std::fmt;

/// A point in simulated time (Unix seconds, always UTC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub i64);

/// A calendar month `(year, month)` used as the longitudinal bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Month {
    pub year: i32,
    pub month: u8,
}

/// Days since 1970-01-01 for a civil date (proleptic Gregorian).
fn days_from_civil(y: i32, m: u8, d: u8) -> i64 {
    let y = y as i64 - if m <= 2 { 1 } else { 0 };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (m as i64 + 9) % 12; // March = 0
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe - 719468
}

/// Civil date from days since 1970-01-01.
fn civil_from_days(z: i64) -> (i32, u8, u8) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u8; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u8; // [1, 12]
    (
        (y + if m <= 2 { 1 } else { 0 }) as i32,
        m,
        d,
    )
}

impl Timestamp {
    /// Builds a timestamp from a civil date at midnight UTC.
    pub fn from_ymd(year: i32, month: u8, day: u8) -> Self {
        assert!((1..=12).contains(&month), "month out of range");
        assert!((1..=31).contains(&day), "day out of range");
        Timestamp(days_from_civil(year, month, day) * 86_400)
    }

    /// Builds a timestamp from a civil date and time of day.
    pub fn from_ymd_hms(year: i32, month: u8, day: u8, h: u8, m: u8, s: u8) -> Self {
        Timestamp(Self::from_ymd(year, month, day).0 + h as i64 * 3600 + m as i64 * 60 + s as i64)
    }

    /// The civil `(year, month, day)` of this timestamp.
    pub fn ymd(&self) -> (i32, u8, u8) {
        civil_from_days(self.0.div_euclid(86_400))
    }

    /// The longitudinal bucket this instant falls in.
    pub fn month(&self) -> Month {
        let (y, m, _) = self.ymd();
        Month { year: y, month: m }
    }

    /// The calendar year.
    pub fn year(&self) -> i32 {
        self.ymd().0
    }

    /// Adds a duration in seconds.
    pub fn plus_secs(&self, secs: i64) -> Timestamp {
        Timestamp(self.0 + secs)
    }

    /// Adds whole days.
    pub fn plus_days(&self, days: i64) -> Timestamp {
        self.plus_secs(days * 86_400)
    }
}

impl Month {
    /// Constructs a month bucket; panics on out-of-range months.
    pub fn new(year: i32, month: u8) -> Self {
        assert!((1..=12).contains(&month), "month out of range");
        Month { year, month }
    }

    /// The next calendar month.
    pub fn next(&self) -> Month {
        if self.month == 12 {
            Month::new(self.year + 1, 1)
        } else {
            Month::new(self.year, self.month + 1)
        }
    }

    /// First instant of this month.
    pub fn start(&self) -> Timestamp {
        Timestamp::from_ymd(self.year, self.month, 1)
    }

    /// First instant of the following month (exclusive end).
    pub fn end(&self) -> Timestamp {
        self.next().start()
    }

    /// Inclusive iteration from `self` through `last`.
    pub fn through(&self, last: Month) -> Vec<Month> {
        let mut out = Vec::new();
        let mut cur = *self;
        while cur <= last {
            out.push(cur);
            cur = cur.next();
        }
        out
    }

    /// Number of months between buckets (self earlier ⇒ positive).
    pub fn months_until(&self, later: Month) -> i32 {
        (later.year - self.year) * 12 + later.month as i32 - self.month as i32
    }
}

impl fmt::Display for Month {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}", self.year, self.month)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.ymd();
        let rem = self.0.rem_euclid(86_400);
        write!(
            f,
            "{:04}-{:02}-{:02}T{:02}:{:02}:{:02}Z",
            y,
            m,
            d,
            rem / 3600,
            (rem % 3600) / 60,
            rem % 60
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_1970() {
        assert_eq!(Timestamp(0).ymd(), (1970, 1, 1));
        assert_eq!(Timestamp::from_ymd(1970, 1, 1).0, 0);
    }

    #[test]
    fn known_dates_roundtrip() {
        // 2018-01-01 = 1514764800, 2021-03-15 = 1615766400.
        assert_eq!(Timestamp::from_ymd(2018, 1, 1).0, 1_514_764_800);
        assert_eq!(Timestamp::from_ymd(2021, 3, 15).0, 1_615_766_400);
        assert_eq!(Timestamp(1_615_766_400).ymd(), (2021, 3, 15));
    }

    #[test]
    fn leap_year_handling() {
        assert_eq!(
            Timestamp::from_ymd(2020, 2, 29).plus_days(1).ymd(),
            (2020, 3, 1)
        );
        assert_eq!(
            Timestamp::from_ymd(2019, 2, 28).plus_days(1).ymd(),
            (2019, 3, 1)
        );
    }

    #[test]
    fn ymd_roundtrip_sweep() {
        // Every 13 days across 30 years.
        let mut t = Timestamp::from_ymd(1998, 1, 1);
        for _ in 0..800 {
            let (y, m, d) = t.ymd();
            assert_eq!(Timestamp::from_ymd(y, m, d), t);
            t = t.plus_days(13);
        }
    }

    #[test]
    fn month_arithmetic() {
        let m = Month::new(2019, 12);
        assert_eq!(m.next(), Month::new(2020, 1));
        assert_eq!(Month::new(2018, 1).months_until(Month::new(2020, 3)), 26);
        let span = Month::new(2018, 1).through(Month::new(2018, 4));
        assert_eq!(span.len(), 4);
        assert_eq!(span[3], Month::new(2018, 4));
    }

    #[test]
    fn month_bounds_contain_instants() {
        let m = Month::new(2020, 2);
        let inside = Timestamp::from_ymd_hms(2020, 2, 29, 23, 59, 59);
        assert!(m.start() <= inside && inside < m.end());
        assert_eq!(inside.month(), m);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Month::new(2018, 7).to_string(), "2018-07");
        assert_eq!(
            Timestamp::from_ymd_hms(2021, 3, 1, 4, 5, 6).to_string(),
            "2021-03-01T04:05:06Z"
        );
    }

    #[test]
    fn ordering_follows_time() {
        assert!(Timestamp::from_ymd(2018, 5, 1) < Timestamp::from_ymd(2018, 5, 2));
        assert!(Month::new(2018, 12) < Month::new(2019, 1));
    }
}
