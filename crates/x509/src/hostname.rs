//! Hostname verification per RFC 6125 / RFC 2818.
//!
//! The WrongHostname interception attack (Table 2 of the paper) hinges
//! on clients skipping exactly this check, so the rules are implemented
//! carefully: SANs take precedence over CN, wildcards match only one
//! left-most label, and IP-address-shaped names never match wildcards.

use crate::cert::Certificate;

/// Returns true when `pattern` (a dNSName entry or CN) matches
/// `hostname` under RFC 6125 rules.
pub fn matches_pattern(pattern: &str, hostname: &str) -> bool {
    let pattern = pattern.trim_end_matches('.').to_ascii_lowercase();
    let hostname = hostname.trim_end_matches('.').to_ascii_lowercase();
    if pattern.is_empty() || hostname.is_empty() {
        return false;
    }
    if !pattern.contains('*') {
        return pattern == hostname;
    }
    // Wildcard handling: allowed only as the complete left-most label.
    let mut p_labels = pattern.split('.');
    let first = p_labels.next().unwrap_or("");
    if first != "*" {
        // Partial-label wildcards (f*o.example.com) are rejected.
        return false;
    }
    let p_rest: Vec<&str> = p_labels.collect();
    if p_rest.is_empty() {
        // "*" alone never matches.
        return false;
    }
    // Wildcards never match IP addresses.
    if looks_like_ip(&hostname) {
        return false;
    }
    let h_labels: Vec<&str> = hostname.split('.').collect();
    // The wildcard covers exactly one label; the rest must match
    // exactly, and there must be at least two labels after the
    // wildcard (no "*.com").
    if h_labels.len() != p_rest.len() + 1 || p_rest.len() < 2 {
        return false;
    }
    if h_labels[0].is_empty() {
        return false;
    }
    h_labels[1..] == p_rest[..]
}

/// True when `host` is formatted like an IPv4 address.
fn looks_like_ip(host: &str) -> bool {
    let parts: Vec<&str> = host.split('.').collect();
    parts.len() == 4 && parts.iter().all(|p| !p.is_empty() && p.parse::<u8>().is_ok())
}

/// Verifies that `cert` is valid for `hostname`.
///
/// Follows RFC 6125: when subjectAltName dNSName entries are present
/// they are authoritative and CN is ignored; otherwise fall back to CN
/// (the legacy behavior many embedded clients still implement).
pub fn cert_matches_hostname(cert: &Certificate, hostname: &str) -> bool {
    let sans = &cert.tbs.extensions.subject_alt_names;
    if !sans.is_empty() {
        return sans.iter().any(|san| matches_pattern(san, hostname));
    }
    matches_pattern(&cert.tbs.subject.common_name, hostname)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::{CertifiedKey, DistinguishedName, IssueParams};
    use crate::time::Timestamp;
    use iotls_crypto::drbg::Drbg;
    use iotls_crypto::rsa::RsaPrivateKey;

    #[test]
    fn exact_match_case_insensitive() {
        assert!(matches_pattern("Example.COM", "example.com"));
        assert!(!matches_pattern("example.com", "example.org"));
        assert!(matches_pattern("example.com.", "example.com"));
    }

    #[test]
    fn wildcard_single_label() {
        assert!(matches_pattern("*.example.com", "api.example.com"));
        assert!(matches_pattern("*.example.com", "WWW.Example.Com"));
        assert!(!matches_pattern("*.example.com", "example.com"));
        assert!(!matches_pattern("*.example.com", "a.b.example.com"));
    }

    #[test]
    fn wildcard_not_partial_label() {
        assert!(!matches_pattern("f*o.example.com", "foo.example.com"));
        assert!(!matches_pattern("*oo.example.com", "foo.example.com"));
    }

    #[test]
    fn wildcard_needs_two_suffix_labels() {
        assert!(!matches_pattern("*.com", "example.com"));
        assert!(!matches_pattern("*", "example"));
    }

    #[test]
    fn wildcard_never_matches_ip() {
        assert!(!matches_pattern("*.1.2.3", "4.1.2.3"));
        assert!(matches_pattern("10.0.0.1", "10.0.0.1")); // exact IPs fine
    }

    #[test]
    fn empty_inputs_rejected() {
        assert!(!matches_pattern("", "example.com"));
        assert!(!matches_pattern("example.com", ""));
    }

    fn cert_with(sans: &[&str], cn: &str) -> Certificate {
        let key = RsaPrivateKey::generate(512, &mut Drbg::from_seed(77));
        let mut params = IssueParams::leaf(cn, 1, Timestamp::from_ymd(2020, 1, 1), 365);
        params.subject = DistinguishedName::cn(cn);
        params.extensions.subject_alt_names = sans.iter().map(|s| s.to_string()).collect();
        CertifiedKey::self_signed(params, key).cert
    }

    #[test]
    fn san_takes_precedence_over_cn() {
        // CN matches but SAN does not: must fail per RFC 6125.
        let cert = cert_with(&["other.example.com"], "target.example.com");
        assert!(!cert_matches_hostname(&cert, "target.example.com"));
        assert!(cert_matches_hostname(&cert, "other.example.com"));
    }

    #[test]
    fn cn_fallback_when_no_sans() {
        let cert = cert_with(&[], "legacy.example.com");
        assert!(cert_matches_hostname(&cert, "legacy.example.com"));
        assert!(!cert_matches_hostname(&cert, "nope.example.com"));
    }

    #[test]
    fn multiple_sans_any_match() {
        let cert = cert_with(&["a.example.com", "*.cdn.example.com"], "x");
        assert!(cert_matches_hostname(&cert, "a.example.com"));
        assert!(cert_matches_hostname(&cert, "edge1.cdn.example.com"));
        assert!(!cert_matches_hostname(&cert, "b.example.com"));
    }
}
