//! Trusted root certificate stores.
//!
//! A [`RootStore`] is the set of CA certificates a TLS client trusts.
//! Lookup is by *subject distinguished name* — exactly the behavior
//! the IoTLS alert side channel exploits: a spoofed CA with a matching
//! subject is *found* in the store (then fails signature checks),
//! while an arbitrary subject is *not found* (unknown CA).

use crate::cert::{Certificate, DistinguishedName};
use std::collections::BTreeMap;

/// A set of trusted root certificates, indexed by subject name.
#[derive(Debug, Clone, Default)]
pub struct RootStore {
    by_subject: BTreeMap<DistinguishedName, Certificate>,
    /// XOR of all member fingerprints — a cheap, order-independent
    /// content id maintained eagerly by `add`/`remove` so the
    /// verification cache can key on the store in O(1).
    id: [u8; 32],
}

impl RootStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a store from an iterator of certificates.
    pub fn from_certs(certs: impl IntoIterator<Item = Certificate>) -> Self {
        let mut s = Self::new();
        for c in certs {
            s.add(c);
        }
        s
    }

    /// Adds (or replaces, on equal subject) a trusted root.
    pub fn add(&mut self, cert: Certificate) {
        self.xor_id(&cert.fingerprint());
        if let Some(replaced) = self.by_subject.insert(cert.tbs.subject.clone(), cert) {
            self.xor_id(&replaced.fingerprint());
        }
    }

    /// Removes a root by subject; returns it if present.
    pub fn remove(&mut self, subject: &DistinguishedName) -> Option<Certificate> {
        let removed = self.by_subject.remove(subject);
        if let Some(cert) = &removed {
            self.xor_id(&cert.fingerprint());
        }
        removed
    }

    /// Content identifier: the XOR of every member's fingerprint.
    /// Equal sets of roots yield equal ids regardless of insertion
    /// order; the empty store's id is all zeros.
    pub fn id(&self) -> [u8; 32] {
        self.id
    }

    fn xor_id(&mut self, fp: &[u8; 32]) {
        for (b, f) in self.id.iter_mut().zip(fp) {
            *b ^= f;
        }
    }

    /// Looks up the trusted certificate whose subject matches
    /// `issuer` — the chain-building step of path validation.
    pub fn find_issuer(&self, issuer: &DistinguishedName) -> Option<&Certificate> {
        self.by_subject.get(issuer)
    }

    /// True when a root with this exact subject name is trusted.
    pub fn contains_subject(&self, subject: &DistinguishedName) -> bool {
        self.by_subject.contains_key(subject)
    }

    /// Number of trusted roots.
    pub fn len(&self) -> usize {
        self.by_subject.len()
    }

    /// True when no roots are trusted.
    pub fn is_empty(&self) -> bool {
        self.by_subject.is_empty()
    }

    /// Iterates the trusted roots in subject order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = &Certificate> {
        self.by_subject.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::{CertifiedKey, IssueParams};
    use crate::time::Timestamp;
    use iotls_crypto::drbg::Drbg;
    use iotls_crypto::rsa::RsaPrivateKey;

    fn root(seed: u64, cn: &str) -> CertifiedKey {
        let key = RsaPrivateKey::generate(512, &mut Drbg::from_seed(seed));
        CertifiedKey::self_signed(
            IssueParams::ca(
                DistinguishedName::new(cn, "Org", "US"),
                seed,
                Timestamp::from_ymd(2015, 1, 1),
                3650,
            ),
            key,
        )
    }

    #[test]
    fn add_find_remove() {
        let a = root(1, "Root A");
        let b = root(2, "Root B");
        let mut store = RootStore::new();
        assert!(store.is_empty());
        store.add(a.cert.clone());
        store.add(b.cert.clone());
        assert_eq!(store.len(), 2);
        assert!(store.contains_subject(&a.cert.tbs.subject));
        assert_eq!(
            store.find_issuer(&a.cert.tbs.subject).unwrap(),
            &a.cert
        );
        store.remove(&a.cert.tbs.subject);
        assert!(!store.contains_subject(&a.cert.tbs.subject));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn lookup_is_by_subject_name_not_key() {
        // A spoofed root (same subject, different key) is "found" —
        // this is the property the alert side channel relies on.
        let real = root(3, "Spoofable Root");
        let spoof_key = RsaPrivateKey::generate(512, &mut Drbg::from_seed(4));
        let spoof = CertifiedKey::self_signed(
            IssueParams::ca(
                real.cert.tbs.subject.clone(),
                real.cert.tbs.serial,
                Timestamp::from_ymd(2015, 1, 1),
                3650,
            ),
            spoof_key,
        );
        let store = RootStore::from_certs([real.cert.clone()]);
        let found = store.find_issuer(&spoof.cert.tbs.subject).unwrap();
        // Found by name, but it's the *real* certificate with the real key.
        assert_eq!(found, &real.cert);
        assert_ne!(found.tbs.public_key, spoof.cert.tbs.public_key);
    }

    #[test]
    fn deterministic_iteration_order() {
        let mut store = RootStore::new();
        store.add(root(5, "Zeta Root").cert);
        store.add(root(6, "Alpha Root").cert);
        let names: Vec<String> = store
            .iter()
            .map(|c| c.tbs.subject.common_name.clone())
            .collect();
        assert_eq!(names, vec!["Alpha Root", "Zeta Root"]);
    }

    #[test]
    fn duplicate_subject_replaces() {
        let a1 = root(7, "Dup Root");
        let a2 = root(8, "Dup Root");
        let mut store = RootStore::new();
        store.add(a1.cert.clone());
        store.add(a2.cert.clone());
        assert_eq!(store.len(), 1);
        assert_eq!(
            store.find_issuer(&a2.cert.tbs.subject).unwrap().tbs.serial,
            8
        );
    }
}
