//! A compact tag-length-value codec.
//!
//! Real X.509 uses DER; this substrate uses a deterministic TLV
//! encoding with one-byte tags and four-byte big-endian lengths. It
//! preserves the property the measurement methodology relies on — the
//! *to-be-signed* certificate bytes are a canonical serialization that
//! signatures cover — without the incidental complexity of ASN.1.

use std::fmt;

/// Errors raised while decoding TLV streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlvError {
    /// Input ended inside a header or value.
    Truncated,
    /// The decoder expected a specific tag and saw another.
    UnexpectedTag { expected: u8, found: u8 },
    /// A declared length exceeds the remaining input.
    LengthOverrun,
    /// Trailing bytes remained after a complete decode.
    TrailingData,
    /// A value failed domain-specific parsing (UTF-8, integer width…).
    Malformed(&'static str),
}

impl fmt::Display for TlvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TlvError::Truncated => write!(f, "TLV input truncated"),
            TlvError::UnexpectedTag { expected, found } => {
                write!(f, "expected tag 0x{expected:02x}, found 0x{found:02x}")
            }
            TlvError::LengthOverrun => write!(f, "TLV length exceeds input"),
            TlvError::TrailingData => write!(f, "trailing bytes after TLV decode"),
            TlvError::Malformed(what) => write!(f, "malformed TLV value: {what}"),
        }
    }
}

impl std::error::Error for TlvError {}

/// Append-only TLV writer.
#[derive(Default)]
pub struct TlvWriter {
    buf: Vec<u8>,
}

impl TlvWriter {
    /// A fresh writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes one element.
    pub fn put(&mut self, tag: u8, value: &[u8]) -> &mut Self {
        self.buf.push(tag);
        self.buf
            .extend_from_slice(&(value.len() as u32).to_be_bytes());
        self.buf.extend_from_slice(value);
        self
    }

    /// Writes a UTF-8 string element.
    pub fn put_str(&mut self, tag: u8, value: &str) -> &mut Self {
        self.put(tag, value.as_bytes())
    }

    /// Writes a u64 element (8 bytes, big-endian).
    pub fn put_u64(&mut self, tag: u8, value: u64) -> &mut Self {
        self.put(tag, &value.to_be_bytes())
    }

    /// Writes an i64 element (8 bytes, big-endian, two's complement).
    pub fn put_i64(&mut self, tag: u8, value: i64) -> &mut Self {
        self.put(tag, &value.to_be_bytes())
    }

    /// Writes a boolean element (one byte, 0/1).
    pub fn put_bool(&mut self, tag: u8, value: bool) -> &mut Self {
        self.put(tag, &[value as u8])
    }

    /// Writes a nested container built by `f`.
    pub fn put_nested(&mut self, tag: u8, f: impl FnOnce(&mut TlvWriter)) -> &mut Self {
        let mut inner = TlvWriter::new();
        f(&mut inner);
        let bytes = inner.finish();
        self.put(tag, &bytes)
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor-based TLV reader.
pub struct TlvReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> TlvReader<'a> {
    /// Wraps `data` for decoding.
    pub fn new(data: &'a [u8]) -> Self {
        TlvReader { data, pos: 0 }
    }

    /// True when all input is consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.data.len()
    }

    /// Peeks at the next tag without consuming.
    pub fn peek_tag(&self) -> Option<u8> {
        self.data.get(self.pos).copied()
    }

    /// Reads the next element as `(tag, value)`.
    #[allow(clippy::should_implement_trait)] // cursor API, not an Iterator
    pub fn next(&mut self) -> Result<(u8, &'a [u8]), TlvError> {
        let tag = *self.data.get(self.pos).ok_or(TlvError::Truncated)?;
        let len_bytes = self
            .data
            .get(self.pos + 1..self.pos + 5)
            .ok_or(TlvError::Truncated)?;
        let len = u32::from_be_bytes(len_bytes.try_into().unwrap()) as usize;
        let start = self.pos + 5;
        let value = self
            .data
            .get(start..start + len)
            .ok_or(TlvError::LengthOverrun)?;
        self.pos = start + len;
        Ok((tag, value))
    }

    /// Reads the next element and requires `tag`.
    pub fn expect(&mut self, tag: u8) -> Result<&'a [u8], TlvError> {
        let (found, value) = self.next()?;
        if found != tag {
            return Err(TlvError::UnexpectedTag {
                expected: tag,
                found,
            });
        }
        Ok(value)
    }

    /// Reads a UTF-8 string with the given tag.
    pub fn expect_str(&mut self, tag: u8) -> Result<String, TlvError> {
        let v = self.expect(tag)?;
        String::from_utf8(v.to_vec()).map_err(|_| TlvError::Malformed("utf-8"))
    }

    /// Reads a u64 with the given tag.
    pub fn expect_u64(&mut self, tag: u8) -> Result<u64, TlvError> {
        let v = self.expect(tag)?;
        Ok(u64::from_be_bytes(
            v.try_into().map_err(|_| TlvError::Malformed("u64 width"))?,
        ))
    }

    /// Reads an i64 with the given tag.
    pub fn expect_i64(&mut self, tag: u8) -> Result<i64, TlvError> {
        let v = self.expect(tag)?;
        Ok(i64::from_be_bytes(
            v.try_into().map_err(|_| TlvError::Malformed("i64 width"))?,
        ))
    }

    /// Reads a bool with the given tag.
    pub fn expect_bool(&mut self, tag: u8) -> Result<bool, TlvError> {
        let v = self.expect(tag)?;
        match v {
            [0] => Ok(false),
            [1] => Ok(true),
            _ => Err(TlvError::Malformed("bool")),
        }
    }

    /// Reads a nested container with the given tag.
    pub fn expect_nested(&mut self, tag: u8) -> Result<TlvReader<'a>, TlvError> {
        Ok(TlvReader::new(self.expect(tag)?))
    }

    /// If the next tag equals `tag`, consume and return it; otherwise
    /// leave the cursor untouched.
    pub fn take_optional(&mut self, tag: u8) -> Result<Option<&'a [u8]>, TlvError> {
        if self.peek_tag() == Some(tag) {
            Ok(Some(self.expect(tag)?))
        } else {
            Ok(None)
        }
    }

    /// Asserts the reader is fully consumed.
    pub fn finish(&self) -> Result<(), TlvError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(TlvError::TrailingData)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut w = TlvWriter::new();
        w.put_str(1, "hello")
            .put_u64(2, 0xdeadbeef)
            .put_bool(3, true)
            .put_i64(4, -42);
        let bytes = w.finish();
        let mut r = TlvReader::new(&bytes);
        assert_eq!(r.expect_str(1).unwrap(), "hello");
        assert_eq!(r.expect_u64(2).unwrap(), 0xdeadbeef);
        assert!(r.expect_bool(3).unwrap());
        assert_eq!(r.expect_i64(4).unwrap(), -42);
        r.finish().unwrap();
    }

    #[test]
    fn nested_containers() {
        let mut w = TlvWriter::new();
        w.put_nested(9, |inner| {
            inner.put_str(1, "a").put_str(1, "b");
        });
        let bytes = w.finish();
        let mut r = TlvReader::new(&bytes);
        let mut inner = r.expect_nested(9).unwrap();
        assert_eq!(inner.expect_str(1).unwrap(), "a");
        assert_eq!(inner.expect_str(1).unwrap(), "b");
        inner.finish().unwrap();
        r.finish().unwrap();
    }

    #[test]
    fn unexpected_tag_reported() {
        let mut w = TlvWriter::new();
        w.put_str(1, "x");
        let bytes = w.finish();
        let mut r = TlvReader::new(&bytes);
        assert_eq!(
            r.expect(2),
            Err(TlvError::UnexpectedTag {
                expected: 2,
                found: 1
            })
        );
    }

    #[test]
    fn truncation_detected() {
        let mut w = TlvWriter::new();
        w.put_str(1, "hello");
        let bytes = w.finish();
        for cut in 1..bytes.len() {
            let mut r = TlvReader::new(&bytes[..cut]);
            assert!(r.expect_str(1).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn length_overrun_detected() {
        // Tag 1, claimed length 100, only 2 bytes present.
        let bytes = [1u8, 0, 0, 0, 100, 0xaa, 0xbb];
        let mut r = TlvReader::new(&bytes);
        assert_eq!(r.next().unwrap_err(), TlvError::LengthOverrun);
    }

    #[test]
    fn trailing_data_detected() {
        let mut w = TlvWriter::new();
        w.put_str(1, "x").put_str(2, "y");
        let bytes = w.finish();
        let mut r = TlvReader::new(&bytes);
        r.expect_str(1).unwrap();
        assert_eq!(r.finish(), Err(TlvError::TrailingData));
    }

    #[test]
    fn optional_fields() {
        let mut w = TlvWriter::new();
        w.put_str(5, "present").put_str(7, "after");
        let bytes = w.finish();
        let mut r = TlvReader::new(&bytes);
        assert!(r.take_optional(6).unwrap().is_none());
        assert_eq!(r.take_optional(5).unwrap().unwrap(), b"present");
        assert_eq!(r.expect_str(7).unwrap(), "after");
    }

    #[test]
    fn invalid_bool_and_widths() {
        let mut w = TlvWriter::new();
        w.put(3, &[7]);
        let bytes = w.finish();
        assert!(TlvReader::new(&bytes).expect_bool(3).is_err());
        let mut w = TlvWriter::new();
        w.put(2, &[1, 2, 3]);
        let bytes = w.finish();
        assert!(TlvReader::new(&bytes).expect_u64(2).is_err());
    }
}
