//! # iotls-x509
//!
//! X.509-shaped PKI substrate for the IoTLS reproduction.
//!
//! Provides everything the TLS layer and the measurement core need
//! from a public-key infrastructure:
//!
//! * [`cert`] — certificates with the RFC 5280 fields the paper's
//!   attacks exercise, canonical TLV encoding, real RSA signatures,
//!   and issuing helpers (including spoofed-CA construction for the
//!   root-store probe);
//! * [`verify`] — chain/path validation with a granular
//!   [`verify::ValidationPolicy`] that models the broken validators of
//!   Table 7;
//! * [`hostname`] — RFC 6125 hostname matching (SAN precedence,
//!   single-label wildcards);
//! * [`store`] — root stores with subject-name lookup (the property
//!   the TLS-alert side channel exploits);
//! * [`cache`] — per-run memoization of validation verdicts keyed by
//!   (chain digest, store id, day bucket, hostname, policy), with
//!   hit/miss counters for the measurement reports;
//! * [`revocation`] — signed CRL and OCSP models for the Table 8
//!   analysis;
//! * [`time`] — civil time and the `(year, month)` buckets used by the
//!   longitudinal figures;
//! * [`tlv`] — the deterministic tag-length-value codec
//!   (DER stand-in; see DESIGN.md §2 for the substitution rationale).

pub mod cache;
pub mod cert;
pub mod hostname;
pub mod revocation;
pub mod store;
pub mod time;
pub mod tlv;
pub mod verify;

pub use cache::{CacheScope, CacheStats, VerificationCache};
pub use cert::{
    BasicConstraints, Certificate, CertifiedKey, DistinguishedName, Extensions, IssueParams,
    KeyUsage, SignatureAlgorithm, TbsCertificate,
};
pub use hostname::{cert_matches_hostname, matches_pattern};
pub use revocation::{Crl, OcspResponse, RevocationStatus};
pub use store::RootStore;
pub use time::{Month, Timestamp};
pub use verify::{validate_chain, ValidationError, ValidationPolicy};
