//! Byte-level encoding helpers for the TLS wire format.
//!
//! TLS framing uses big-endian integers of 1–3 bytes and
//! length-prefixed vectors; these helpers keep the message codecs in
//! [`crate::handshake`] and [`crate::record`] readable.

/// Errors from decoding TLS wire data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before a field was complete.
    Truncated,
    /// A length prefix exceeded the remaining input.
    LengthMismatch,
    /// A field held an illegal value.
    IllegalValue(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "message truncated"),
            CodecError::LengthMismatch => write!(f, "length prefix mismatch"),
            CodecError::IllegalValue(what) => write!(f, "illegal value: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Big-endian writer over a byte vector.
pub trait WriteExt {
    /// Appends a u8.
    fn put_u8(&mut self, v: u8);
    /// Appends a big-endian u16.
    fn put_u16(&mut self, v: u16);
    /// Appends a big-endian 24-bit length.
    fn put_u24(&mut self, v: u32);
    /// Appends raw bytes.
    fn put_slice(&mut self, v: &[u8]);
    /// Appends `body` prefixed by its u8 length.
    fn put_vec8(&mut self, body: &[u8]);
    /// Appends `body` prefixed by its u16 length.
    fn put_vec16(&mut self, body: &[u8]);
    /// Appends `body` prefixed by its u24 length.
    fn put_vec24(&mut self, body: &[u8]);
}

impl WriteExt for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_u16(&mut self, v: u16) {
        self.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u24(&mut self, v: u32) {
        debug_assert!(v < 1 << 24);
        self.extend_from_slice(&v.to_be_bytes()[1..]);
    }

    fn put_slice(&mut self, v: &[u8]) {
        self.extend_from_slice(v);
    }

    fn put_vec8(&mut self, body: &[u8]) {
        debug_assert!(body.len() <= u8::MAX as usize);
        self.put_u8(body.len() as u8);
        self.put_slice(body);
    }

    fn put_vec16(&mut self, body: &[u8]) {
        debug_assert!(body.len() <= u16::MAX as usize);
        self.put_u16(body.len() as u16);
        self.put_slice(body);
    }

    fn put_vec24(&mut self, body: &[u8]) {
        self.put_u24(body.len() as u32);
        self.put_slice(body);
    }
}

/// Reserves a u16 length prefix in `out`, returning the mark to hand
/// back to [`patch_u16`] once the prefixed content has been written.
/// Together they encode `put_vec16` without materializing the content
/// in a temporary vector first.
pub fn mark_u16(out: &mut Vec<u8>) -> usize {
    out.put_u16(0);
    out.len()
}

/// Backpatches the u16 length reserved by [`mark_u16`] with the number
/// of bytes written since.
pub fn patch_u16(out: &mut [u8], mark: usize) {
    let len = out.len() - mark;
    debug_assert!(len <= u16::MAX as usize);
    out[mark - 2..mark].copy_from_slice(&(len as u16).to_be_bytes());
}

/// Reserves a u24 length prefix in `out` (see [`mark_u16`]).
pub fn mark_u24(out: &mut Vec<u8>) -> usize {
    out.put_u24(0);
    out.len()
}

/// Backpatches the u24 length reserved by [`mark_u24`].
pub fn patch_u24(out: &mut [u8], mark: usize) {
    let len = out.len() - mark;
    debug_assert!(len < 1 << 24);
    out[mark - 3..mark].copy_from_slice(&(len as u32).to_be_bytes()[1..]);
}

/// Big-endian cursor over a byte slice.
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    /// Remaining unread bytes.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when fully consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Reads `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let out = self
            .data
            .get(self.pos..self.pos + n)
            .ok_or(CodecError::Truncated)?;
        self.pos += n;
        Ok(out)
    }

    /// Reads a u8.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian u16.
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    /// Reads a big-endian 24-bit value.
    pub fn u24(&mut self) -> Result<u32, CodecError> {
        let b = self.take(3)?;
        Ok(u32::from_be_bytes([0, b[0], b[1], b[2]]))
    }

    /// Reads a u8-length-prefixed vector.
    pub fn vec8(&mut self) -> Result<&'a [u8], CodecError> {
        let n = self.u8()? as usize;
        self.take(n).map_err(|_| CodecError::LengthMismatch)
    }

    /// Reads a u16-length-prefixed vector.
    pub fn vec16(&mut self) -> Result<&'a [u8], CodecError> {
        let n = self.u16()? as usize;
        self.take(n).map_err(|_| CodecError::LengthMismatch)
    }

    /// Reads a u24-length-prefixed vector.
    pub fn vec24(&mut self) -> Result<&'a [u8], CodecError> {
        let n = self.u24()? as usize;
        self.take(n).map_err(|_| CodecError::LengthMismatch)
    }

    /// Requires full consumption.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(CodecError::LengthMismatch)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_roundtrip() {
        let mut buf = Vec::new();
        buf.put_u8(0xab);
        buf.put_u16(0x1234);
        buf.put_u24(0x00dead);
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 0xab);
        assert_eq!(r.u16().unwrap(), 0x1234);
        assert_eq!(r.u24().unwrap(), 0x00dead);
        r.finish().unwrap();
    }

    #[test]
    fn vectors_roundtrip() {
        let mut buf = Vec::new();
        buf.put_vec8(b"abc");
        buf.put_vec16(b"defg");
        buf.put_vec24(b"hi");
        let mut r = Reader::new(&buf);
        assert_eq!(r.vec8().unwrap(), b"abc");
        assert_eq!(r.vec16().unwrap(), b"defg");
        assert_eq!(r.vec24().unwrap(), b"hi");
        r.finish().unwrap();
    }

    #[test]
    fn truncation_and_mismatch() {
        let mut r = Reader::new(&[0x00]);
        assert_eq!(r.u16().unwrap_err(), CodecError::Truncated);
        // Length prefix claims 5 bytes, only 2 present.
        let mut r = Reader::new(&[5, 1, 2]);
        assert_eq!(r.vec8().unwrap_err(), CodecError::LengthMismatch);
    }

    #[test]
    fn finish_catches_trailing() {
        let mut r = Reader::new(&[1, 2, 3]);
        r.u8().unwrap();
        assert_eq!(r.finish().unwrap_err(), CodecError::LengthMismatch);
    }

    #[test]
    fn u24_bounds() {
        let mut buf = Vec::new();
        buf.put_u24((1 << 24) - 1);
        let mut r = Reader::new(&buf);
        assert_eq!(r.u24().unwrap(), (1 << 24) - 1);
    }
}
