//! TLS client fingerprinting (JA3-shaped).
//!
//! §5.3 of the paper defines a *TLS instance* as the implementation +
//! configuration that together produce a fingerprint, and compares
//! device fingerprints against the labeled database of Kotzias et al.
//! This module extracts the same feature permutation JA3 uses from a
//! ClientHello: `(version, ciphers, extensions, groups, point
//! formats)`.
//!
//! Fingerprint identifiers are real JA3 values: the MD5 of the
//! feature string (RFC 1321 MD5 implemented in `iotls-crypto`).

use crate::extension::Extension;
use crate::handshake::ClientHello;
use iotls_crypto::md5::md5;
use std::fmt;

/// A TLS client fingerprint.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint {
    /// ClientHello legacy version (wire value).
    pub version: u16,
    /// Offered ciphersuites, in offer order.
    pub ciphers: Vec<u16>,
    /// Extension type code points, in offer order.
    pub extensions: Vec<u16>,
    /// supported_groups values.
    pub groups: Vec<u16>,
    /// ec_point_formats values.
    pub point_formats: Vec<u8>,
}

impl Fingerprint {
    /// Extracts the fingerprint from a ClientHello.
    pub fn from_client_hello(ch: &ClientHello) -> Fingerprint {
        let mut groups = Vec::new();
        let mut point_formats = Vec::new();
        for e in &ch.extensions {
            match e {
                Extension::SupportedGroups(g) => groups = g.clone(),
                Extension::EcPointFormats(p) => point_formats = p.clone(),
                _ => {}
            }
        }
        Fingerprint {
            version: ch.legacy_version.wire(),
            ciphers: ch.cipher_suites.clone(),
            extensions: ch.extensions.iter().map(|e| e.typ()).collect(),
            groups,
            point_formats,
        }
    }

    /// The JA3-style feature string:
    /// `version,c1-c2,e1-e2,g1-g2,p1-p2`.
    pub fn feature_string(&self) -> String {
        fn join<T: fmt::Display>(items: &[T]) -> String {
            items
                .iter()
                .map(|i| i.to_string())
                .collect::<Vec<_>>()
                .join("-")
        }
        format!(
            "{},{},{},{},{}",
            self.version,
            join(&self.ciphers),
            join(&self.extensions),
            join(&self.groups),
            join(&self.point_formats),
        )
    }

    /// The JA3 fingerprint: MD5 of the feature string.
    pub fn id(&self) -> FingerprintId {
        FingerprintId(md5(self.feature_string().as_bytes()))
    }
}

/// A JA3 fingerprint identifier (MD5 of the feature string).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FingerprintId(pub [u8; 16]);

impl fmt::Display for FingerprintId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::version::ProtocolVersion;

    fn hello(ciphers: Vec<u16>, extensions: Vec<Extension>) -> ClientHello {
        ClientHello {
            legacy_version: ProtocolVersion::Tls12,
            random: [0u8; 32],
            session_id: vec![],
            cipher_suites: ciphers,
            compression_methods: vec![0],
            extensions,
        }
    }

    #[test]
    fn feature_string_shape() {
        let ch = hello(
            vec![0xc02f, 0x009c],
            vec![
                Extension::ServerName("x.example.com".into()),
                Extension::SupportedGroups(vec![29, 23]),
                Extension::EcPointFormats(vec![0]),
            ],
        );
        let fp = Fingerprint::from_client_hello(&ch);
        assert_eq!(fp.feature_string(), "771,49199-156,0-10-11,29-23,0");
    }

    #[test]
    fn random_does_not_affect_fingerprint() {
        let mut a = hello(vec![0xc02f], vec![]);
        let mut b = hello(vec![0xc02f], vec![]);
        a.random = [1u8; 32];
        b.random = [2u8; 32];
        assert_eq!(
            Fingerprint::from_client_hello(&a).id(),
            Fingerprint::from_client_hello(&b).id()
        );
    }

    #[test]
    fn cipher_order_matters() {
        let a = hello(vec![0xc02f, 0x009c], vec![]);
        let b = hello(vec![0x009c, 0xc02f], vec![]);
        assert_ne!(
            Fingerprint::from_client_hello(&a).id(),
            Fingerprint::from_client_hello(&b).id()
        );
    }

    #[test]
    fn extension_set_matters() {
        let a = hello(vec![0xc02f], vec![Extension::SessionTicket]);
        let b = hello(vec![0xc02f], vec![]);
        assert_ne!(
            Fingerprint::from_client_hello(&a).id(),
            Fingerprint::from_client_hello(&b).id()
        );
    }

    #[test]
    fn sni_value_does_not_affect_fingerprint() {
        // Only the extension *type* is fingerprinted, not the hostname
        // — the same instance talking to two destinations matches.
        let a = hello(vec![0xc02f], vec![Extension::ServerName("a.com".into())]);
        let b = hello(vec![0xc02f], vec![Extension::ServerName("b.com".into())]);
        assert_eq!(
            Fingerprint::from_client_hello(&a).id(),
            Fingerprint::from_client_hello(&b).id()
        );
    }

    #[test]
    fn id_display_is_hex() {
        let fp = Fingerprint::from_client_hello(&hello(vec![1], vec![]));
        let s = fp.id().to_string();
        assert_eq!(s.len(), 32);
        assert!(s.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
