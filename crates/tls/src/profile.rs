//! TLS library behavior profiles.
//!
//! Table 4 of the paper tests six TLS libraries for the alert they
//! emit on (a) a known CA with an invalid signature and (b) an unknown
//! CA, and finds only the libraries that emit *different* alerts are
//! amenable to the root-store exploration technique. This module
//! encodes exactly those observable behaviors, so the reproduction's
//! probe discovers amenability the same way the paper does — from the
//! outside.

use crate::alert::AlertDescription;
use iotls_x509::ValidationError;
use std::fmt;

/// The TLS library a simulated client emulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LibraryProfile {
    /// MbedTLS v2.21.0 — bad cert / unknown CA distinguishable.
    MbedTls,
    /// OpenSSL v1.1.1i — decrypt_error / unknown CA distinguishable.
    OpenSsl,
    /// Oracle Java v18.0 — certificate_unknown for both.
    JavaJsse,
    /// WolfSSL v4.1.0 — bad_certificate for both.
    WolfSsl,
    /// GnuTLS v3.6.15 — sends no alert.
    GnuTls,
    /// Apple Secure Transport (macOS 11.3) — sends no alert.
    SecureTransport,
}

impl LibraryProfile {
    /// All profiles, in Table 4 order.
    pub const ALL: [LibraryProfile; 6] = [
        LibraryProfile::MbedTls,
        LibraryProfile::OpenSsl,
        LibraryProfile::JavaJsse,
        LibraryProfile::WolfSsl,
        LibraryProfile::GnuTls,
        LibraryProfile::SecureTransport,
    ];

    /// The alert (if any) this library sends when certificate
    /// validation fails with `err` — the observable side channel.
    ///
    /// Returns `None` for libraries that close the connection without
    /// an alert (GnuTLS, Secure Transport).
    pub fn alert_for(self, err: ValidationError) -> Option<AlertDescription> {
        use LibraryProfile::*;
        match self {
            GnuTls | SecureTransport => None,
            JavaJsse => Some(AlertDescription::CertificateUnknown),
            WolfSsl => Some(AlertDescription::BadCertificate),
            MbedTls => Some(match err {
                ValidationError::UnknownIssuer => AlertDescription::UnknownCa,
                ValidationError::BadSignature => AlertDescription::BadCertificate,
                ValidationError::Expired | ValidationError::NotYetValid => {
                    AlertDescription::CertificateExpired
                }
                ValidationError::HostnameMismatch => AlertDescription::BadCertificate,
                _ => AlertDescription::BadCertificate,
            }),
            OpenSsl => Some(match err {
                ValidationError::UnknownIssuer => AlertDescription::UnknownCa,
                ValidationError::BadSignature => AlertDescription::DecryptError,
                ValidationError::Expired | ValidationError::NotYetValid => {
                    AlertDescription::CertificateExpired
                }
                ValidationError::HostnameMismatch => AlertDescription::CertificateUnknown,
                _ => AlertDescription::BadCertificate,
            }),
        }
    }

    /// True when unknown-CA and bad-signature failures produce
    /// *different* alerts — the amenability criterion of §4.2.
    pub fn is_amenable_to_root_probe(self) -> bool {
        let unknown = self.alert_for(ValidationError::UnknownIssuer);
        let bad_sig = self.alert_for(ValidationError::BadSignature);
        match (unknown, bad_sig) {
            (Some(a), Some(b)) => a != b,
            _ => false,
        }
    }

    /// Human-readable name with the version the paper tested.
    pub fn display_name(self) -> &'static str {
        match self {
            LibraryProfile::MbedTls => "Mbedtls (v2.21.0)",
            LibraryProfile::OpenSsl => "OpenSSL (v1.1.1i)",
            LibraryProfile::JavaJsse => "Oracle Java (v18.0)",
            LibraryProfile::WolfSsl => "WolfSSL (v4.1.0)",
            LibraryProfile::GnuTls => "GNU TLS (v3.6.15)",
            LibraryProfile::SecureTransport => "Secure Transport (macOS v11.3)",
        }
    }
}

impl fmt::Display for LibraryProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.display_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_known_ca_invalid_signature_column() {
        assert_eq!(
            LibraryProfile::MbedTls.alert_for(ValidationError::BadSignature),
            Some(AlertDescription::BadCertificate)
        );
        assert_eq!(
            LibraryProfile::OpenSsl.alert_for(ValidationError::BadSignature),
            Some(AlertDescription::DecryptError)
        );
        assert_eq!(
            LibraryProfile::JavaJsse.alert_for(ValidationError::BadSignature),
            Some(AlertDescription::CertificateUnknown)
        );
        assert_eq!(
            LibraryProfile::WolfSsl.alert_for(ValidationError::BadSignature),
            Some(AlertDescription::BadCertificate)
        );
        assert_eq!(LibraryProfile::GnuTls.alert_for(ValidationError::BadSignature), None);
        assert_eq!(
            LibraryProfile::SecureTransport.alert_for(ValidationError::BadSignature),
            None
        );
    }

    #[test]
    fn table4_unknown_ca_column() {
        assert_eq!(
            LibraryProfile::MbedTls.alert_for(ValidationError::UnknownIssuer),
            Some(AlertDescription::UnknownCa)
        );
        assert_eq!(
            LibraryProfile::OpenSsl.alert_for(ValidationError::UnknownIssuer),
            Some(AlertDescription::UnknownCa)
        );
        assert_eq!(
            LibraryProfile::JavaJsse.alert_for(ValidationError::UnknownIssuer),
            Some(AlertDescription::CertificateUnknown)
        );
        assert_eq!(
            LibraryProfile::WolfSsl.alert_for(ValidationError::UnknownIssuer),
            Some(AlertDescription::BadCertificate)
        );
    }

    #[test]
    fn amenability_matches_table4() {
        // The paper finds exactly MbedTLS and OpenSSL amenable.
        let amenable: Vec<LibraryProfile> = LibraryProfile::ALL
            .into_iter()
            .filter(|p| p.is_amenable_to_root_probe())
            .collect();
        assert_eq!(
            amenable,
            vec![LibraryProfile::MbedTls, LibraryProfile::OpenSsl]
        );
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(LibraryProfile::MbedTls.to_string(), "Mbedtls (v2.21.0)");
        assert_eq!(
            LibraryProfile::SecureTransport.to_string(),
            "Secure Transport (macOS v11.3)"
        );
    }
}
