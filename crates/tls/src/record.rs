//! TLS record layer: framing and incremental deframing.

use crate::codec::{CodecError, WriteExt};
use crate::version::ProtocolVersion;

/// Record content types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContentType {
    /// change_cipher_spec (20).
    ChangeCipherSpec,
    /// alert (21).
    Alert,
    /// handshake (22).
    Handshake,
    /// application_data (23).
    ApplicationData,
}

impl ContentType {
    /// Wire code point.
    pub fn wire(self) -> u8 {
        match self {
            ContentType::ChangeCipherSpec => 20,
            ContentType::Alert => 21,
            ContentType::Handshake => 22,
            ContentType::ApplicationData => 23,
        }
    }

    /// Decodes a wire code point.
    pub fn from_wire(v: u8) -> Option<ContentType> {
        match v {
            20 => Some(ContentType::ChangeCipherSpec),
            21 => Some(ContentType::Alert),
            22 => Some(ContentType::Handshake),
            23 => Some(ContentType::ApplicationData),
            _ => None,
        }
    }
}

/// Maximum plaintext fragment length (RFC 5246 §6.2.1).
pub const MAX_FRAGMENT: usize = 16_384;

/// One TLS record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Content type.
    pub content_type: ContentType,
    /// Record-layer version field.
    pub version: ProtocolVersion,
    /// Fragment payload (possibly encrypted).
    pub payload: Vec<u8>,
}

impl Record {
    /// Builds a record; panics if the payload exceeds [`MAX_FRAGMENT`].
    pub fn new(content_type: ContentType, version: ProtocolVersion, payload: Vec<u8>) -> Record {
        assert!(payload.len() <= MAX_FRAGMENT, "fragment too large");
        Record {
            content_type,
            version,
            payload,
        }
    }

    /// Encodes to the 5-byte header plus payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(5 + self.payload.len());
        out.put_u8(self.content_type.wire());
        out.put_u16(self.version.wire());
        out.put_vec16(&self.payload);
        out
    }

    /// Appends the encoding of [`Record::encode`] to a caller-owned
    /// buffer — byte-identical output, no intermediate vector. The
    /// legacy `encode` is kept (independently implemented) as the
    /// byte-identity oracle for this path.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.reserve(5 + self.payload.len());
        out.put_u8(self.content_type.wire());
        out.put_u16(self.version.wire());
        out.put_vec16(&self.payload);
    }

    /// Splits an arbitrarily long payload into records of at most
    /// [`MAX_FRAGMENT`] bytes.
    pub fn fragment(
        content_type: ContentType,
        version: ProtocolVersion,
        payload: &[u8],
    ) -> Vec<Record> {
        if payload.is_empty() {
            return vec![Record::new(content_type, version, Vec::new())];
        }
        payload
            .chunks(MAX_FRAGMENT)
            .map(|c| Record::new(content_type, version, c.to_vec()))
            .collect()
    }
}

/// A caller-owned outgoing byte buffer: the write-side counterpart of
/// [`Deframer`]. The sans-IO state machines append encoded records
/// here via [`write_record`]; the driver hands the accumulated wire
/// bytes to the transport and [`SessionBuf::clear`]s for the next
/// round, so steady-state encoding reuses one allocation per
/// direction.
#[derive(Debug, Default)]
pub struct SessionBuf {
    buf: Vec<u8>,
}

impl SessionBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated wire bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Bytes currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no bytes are buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Discards the contents, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Takes the contents as an owned vector (legacy-shim path; the
    /// zero-allocation consumers use [`SessionBuf::as_slice`] +
    /// [`SessionBuf::clear`] instead).
    pub fn take_vec(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.buf)
    }

    /// Mutable access for in-place record protection: the cipher is
    /// applied to payload bytes after they are framed in place.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

// ALLOC-FREE: begin (record write path — tier1.sh greps this region
// for reintroduced allocating calls on the hot path).

/// Encodes `payload` as one or more records of at most
/// [`MAX_FRAGMENT`] bytes directly into `out` — the write-path mirror
/// of [`Deframer::pop_ref`]: no intermediate [`Record`], no payload
/// copy beyond the single append into the caller's buffer. An empty
/// payload still produces one empty record, exactly like
/// [`Record::fragment`]. Record protection happens *before* framing:
/// callers encrypt `payload` in their scratch buffer first (fragment
/// boundaries do not disturb the stream ciphers' keystream order).
pub fn write_record(
    content_type: ContentType,
    version: ProtocolVersion,
    payload: &[u8],
    out: &mut SessionBuf,
) {
    out.buf.reserve(5 + payload.len());
    if payload.is_empty() {
        out.buf.put_u8(content_type.wire());
        out.buf.put_u16(version.wire());
        out.buf.put_u16(0);
        return;
    }
    for chunk in payload.chunks(MAX_FRAGMENT) {
        out.buf.put_u8(content_type.wire());
        out.buf.put_u16(version.wire());
        out.buf.put_vec16(chunk);
    }
}

// ALLOC-FREE: end (record write path)

/// A record whose payload borrows the deframer's buffer — the
/// zero-copy counterpart of [`Record`], used on the passive parse
/// path where payloads are scanned once and never stored.
#[derive(Debug, PartialEq, Eq)]
pub struct RecordRef<'a> {
    /// Content type.
    pub content_type: ContentType,
    /// Record-layer version field.
    pub version: ProtocolVersion,
    /// Borrowed fragment payload.
    pub payload: &'a [u8],
}

/// Incremental record parser: feed bytes in any chunking, pop whole
/// records out.
///
/// Consumed records advance a cursor instead of draining the buffer;
/// the consumed prefix is reclaimed on the next [`Deframer::push`]
/// (usually a plain `clear`, since taps drain every complete record
/// between pushes), so steady-state popping does no per-record
/// allocation or memmove.
#[derive(Debug, Default)]
pub struct Deframer {
    buffer: Vec<u8>,
    start: usize,
}

impl Deframer {
    /// A fresh deframer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw transport bytes.
    pub fn push(&mut self, data: &[u8]) {
        if self.start == self.buffer.len() {
            // Everything consumed: reuse the allocation outright.
            self.buffer.clear();
        } else if self.start > 0 {
            self.buffer.drain(..self.start);
        }
        self.start = 0;
        self.buffer.extend_from_slice(data);
    }

    /// Bytes currently buffered (for diagnostics).
    pub fn buffered(&self) -> usize {
        self.buffer.len() - self.start
    }

    /// Discards all buffered bytes, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.buffer.clear();
        self.start = 0;
    }

    /// Pops the next complete record with a borrowed payload, or
    /// `None` if more bytes are needed. Malformed headers are an
    /// error and consume nothing.
    pub fn pop_ref(&mut self) -> Result<Option<RecordRef<'_>>, CodecError> {
        let buf = &self.buffer[self.start..];
        if buf.len() < 5 {
            return Ok(None);
        }
        let content_type =
            ContentType::from_wire(buf[0]).ok_or(CodecError::IllegalValue("content type"))?;
        let version = ProtocolVersion::from_wire(u16::from_be_bytes([buf[1], buf[2]]))
            .ok_or(CodecError::IllegalValue("record version"))?;
        let len = u16::from_be_bytes([buf[3], buf[4]]) as usize;
        if buf.len() < 5 + len {
            return Ok(None);
        }
        self.start += 5 + len;
        Ok(Some(RecordRef {
            content_type,
            version,
            payload: &self.buffer[self.start - len..self.start],
        }))
    }

    /// Pops the next complete record, or `None` if more bytes are
    /// needed. Malformed headers are an error.
    ///
    /// Allocates an owned payload per record: this is the *oracle*
    /// for the sans-IO path, kept for tests and one-shot callers.
    /// Production consumers (state machines, taps, drivers) use
    /// [`Deframer::pop_ref`], which borrows the payload instead.
    pub fn pop(&mut self) -> Result<Option<Record>, CodecError> {
        Ok(self.pop_ref()?.map(|r| Record {
            content_type: r.content_type,
            version: r.version,
            payload: r.payload.to_vec(),
        }))
    }

    /// Drains every complete record currently buffered.
    pub fn pop_all(&mut self) -> Result<Vec<Record>, CodecError> {
        let mut out = Vec::new();
        while let Some(rec) = self.pop()? {
            out.push(rec);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrip() {
        let rec = Record::new(
            ContentType::Handshake,
            ProtocolVersion::Tls12,
            vec![1, 2, 3],
        );
        let mut d = Deframer::new();
        d.push(&rec.encode());
        assert_eq!(d.pop().unwrap().unwrap(), rec);
        assert_eq!(d.pop().unwrap(), None);
    }

    #[test]
    fn deframer_handles_partial_delivery() {
        let rec = Record::new(ContentType::Alert, ProtocolVersion::Tls10, vec![2, 48]);
        let bytes = rec.encode();
        let mut d = Deframer::new();
        for b in &bytes[..bytes.len() - 1] {
            d.push(std::slice::from_ref(b));
            assert_eq!(d.pop().unwrap(), None);
        }
        d.push(&bytes[bytes.len() - 1..]);
        assert_eq!(d.pop().unwrap().unwrap(), rec);
    }

    #[test]
    fn deframer_handles_coalesced_records() {
        let a = Record::new(ContentType::Handshake, ProtocolVersion::Tls12, vec![1]);
        let b = Record::new(ContentType::ApplicationData, ProtocolVersion::Tls12, vec![2]);
        let mut bytes = a.encode();
        bytes.extend_from_slice(&b.encode());
        let mut d = Deframer::new();
        d.push(&bytes);
        let records = d.pop_all().unwrap();
        assert_eq!(records, vec![a, b]);
        assert_eq!(d.buffered(), 0);
    }

    #[test]
    fn bad_content_type_rejected() {
        let mut d = Deframer::new();
        d.push(&[99, 3, 3, 0, 0]);
        assert!(d.pop().is_err());
    }

    #[test]
    fn bad_version_rejected() {
        let mut d = Deframer::new();
        d.push(&[22, 9, 9, 0, 0]);
        assert!(d.pop().is_err());
    }

    #[test]
    fn fragmentation_respects_limit() {
        let big = vec![0xaa; MAX_FRAGMENT * 2 + 100];
        let frags = Record::fragment(ContentType::ApplicationData, ProtocolVersion::Tls12, &big);
        assert_eq!(frags.len(), 3);
        assert!(frags.iter().all(|f| f.payload.len() <= MAX_FRAGMENT));
        let total: usize = frags.iter().map(|f| f.payload.len()).sum();
        assert_eq!(total, big.len());
    }

    #[test]
    fn empty_payload_fragment() {
        let frags = Record::fragment(ContentType::Handshake, ProtocolVersion::Tls12, &[]);
        assert_eq!(frags.len(), 1);
        assert!(frags[0].payload.is_empty());
    }

    #[test]
    #[should_panic(expected = "fragment too large")]
    fn oversized_record_panics() {
        Record::new(
            ContentType::ApplicationData,
            ProtocolVersion::Tls12,
            vec![0; MAX_FRAGMENT + 1],
        );
    }

    #[test]
    fn encode_into_matches_encode_oracle() {
        for (ct, ver, len) in [
            (ContentType::Handshake, ProtocolVersion::Tls12, 0usize),
            (ContentType::Alert, ProtocolVersion::Tls10, 2),
            (ContentType::ApplicationData, ProtocolVersion::Tls13, 1337),
            (ContentType::ChangeCipherSpec, ProtocolVersion::Ssl30, 1),
        ] {
            let rec = Record::new(ct, ver, (0..len).map(|i| i as u8).collect());
            let mut out = Vec::new();
            rec.encode_into(&mut out);
            assert_eq!(out, rec.encode());
        }
    }

    #[test]
    fn write_record_matches_fragment_plus_encode() {
        for len in [0usize, 1, 100, MAX_FRAGMENT, MAX_FRAGMENT + 1, MAX_FRAGMENT * 2 + 7] {
            let payload: Vec<u8> = (0..len).map(|i| (i * 31) as u8).collect();
            let mut buf = SessionBuf::new();
            write_record(
                ContentType::ApplicationData,
                ProtocolVersion::Tls12,
                &payload,
                &mut buf,
            );
            let oracle: Vec<u8> =
                Record::fragment(ContentType::ApplicationData, ProtocolVersion::Tls12, &payload)
                    .iter()
                    .flat_map(Record::encode)
                    .collect();
            assert_eq!(buf.as_slice(), &oracle[..], "len {len}");
        }
    }

    #[test]
    fn session_buf_clear_keeps_capacity() {
        let mut buf = SessionBuf::new();
        write_record(
            ContentType::Handshake,
            ProtocolVersion::Tls12,
            &[1, 2, 3],
            &mut buf,
        );
        assert_eq!(buf.len(), 8);
        let cap_ptr = buf.as_slice().as_ptr();
        buf.clear();
        assert!(buf.is_empty());
        write_record(
            ContentType::Handshake,
            ProtocolVersion::Tls12,
            &[4, 5],
            &mut buf,
        );
        assert_eq!(buf.as_slice().as_ptr(), cap_ptr);
    }

    #[test]
    fn content_type_wire_roundtrip() {
        for ct in [
            ContentType::ChangeCipherSpec,
            ContentType::Alert,
            ContentType::Handshake,
            ContentType::ApplicationData,
        ] {
            assert_eq!(ContentType::from_wire(ct.wire()), Some(ct));
        }
        assert_eq!(ContentType::from_wire(0), None);
    }
}
