//! Ciphersuite registry with the paper's security classification.
//!
//! §2 of the paper classifies suites as *insecure* (DES, 3DES, RC4,
//! EXPORT — immediate remediation required), *null/anon* (no
//! encryption or no authentication), and *strong* (DHE/ECDHE forward
//! secrecy). This module carries a registry of real IANA ciphersuite
//! code points with enough structure to drive negotiation, the
//! longitudinal analyses (Figures 2–3), and fingerprinting.

use std::fmt;

/// Key exchange / authentication family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeyExchange {
    /// Static RSA key transport.
    Rsa,
    /// Ephemeral finite-field DH, RSA-authenticated.
    DheRsa,
    /// Ephemeral EC DH, RSA-authenticated.
    EcdheRsa,
    /// Ephemeral EC DH, ECDSA-authenticated.
    EcdheEcdsa,
    /// Anonymous DH — no authentication.
    DhAnon,
    /// TLS 1.3 (key exchange is negotiated via extensions).
    Tls13,
    /// No key exchange (NULL suites).
    Null,
}

/// Bulk cipher.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BulkCipher {
    /// No encryption.
    Null,
    /// RC4 with 40-bit export key.
    Rc4_40,
    /// RC4 with 128-bit key.
    Rc4_128,
    /// Single DES with 40-bit export key.
    Des40Cbc,
    /// Single DES.
    DesCbc,
    /// Triple DES EDE.
    TripleDesCbc,
    /// AES-128 in CBC mode.
    Aes128Cbc,
    /// AES-256 in CBC mode.
    Aes256Cbc,
    /// AES-128 in GCM mode.
    Aes128Gcm,
    /// AES-256 in GCM mode.
    Aes256Gcm,
    /// ChaCha20-Poly1305.
    ChaCha20Poly1305,
}

/// MAC / PRF hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MacAlgorithm {
    /// No integrity.
    Null,
    /// HMAC-MD5.
    Md5,
    /// HMAC-SHA1.
    Sha1,
    /// HMAC-SHA256 (or AEAD with SHA-256 PRF).
    Sha256,
    /// AEAD with SHA-384 PRF.
    Sha384,
}

/// A ciphersuite: IANA code point plus decomposed algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CipherSuite {
    /// IANA code point.
    pub id: u16,
    /// IANA name.
    pub name: &'static str,
    /// Key exchange family.
    pub kx: KeyExchange,
    /// Bulk cipher.
    pub cipher: BulkCipher,
    /// MAC algorithm.
    pub mac: MacAlgorithm,
    /// True for EXPORT-grade suites.
    pub export: bool,
}

impl CipherSuite {
    /// True for the paper's *insecure* class: DES, 3DES, RC4, EXPORT.
    pub fn is_insecure(&self) -> bool {
        self.export
            || matches!(
                self.cipher,
                BulkCipher::Rc4_40
                    | BulkCipher::Rc4_128
                    | BulkCipher::Des40Cbc
                    | BulkCipher::DesCbc
                    | BulkCipher::TripleDesCbc
            )
    }

    /// True for NULL/ANON suites (no encryption or no authentication).
    pub fn is_null_or_anon(&self) -> bool {
        matches!(self.kx, KeyExchange::DhAnon | KeyExchange::Null)
            || matches!(self.cipher, BulkCipher::Null)
    }

    /// True for the paper's *strong* class: authenticated (EC)DHE
    /// forward secrecy. All TLS 1.3 suites are forward-secret.
    pub fn is_forward_secret(&self) -> bool {
        matches!(
            self.kx,
            KeyExchange::DheRsa | KeyExchange::EcdheRsa | KeyExchange::EcdheEcdsa | KeyExchange::Tls13
        )
    }

    /// True when the suite is only usable with TLS 1.3.
    pub fn is_tls13(&self) -> bool {
        matches!(self.kx, KeyExchange::Tls13)
    }
}

impl fmt::Display for CipherSuite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name)
    }
}

macro_rules! suite {
    ($id:expr, $name:ident, $kx:ident, $cipher:ident, $mac:ident, $export:expr) => {
        CipherSuite {
            id: $id,
            name: stringify!($name),
            kx: KeyExchange::$kx,
            cipher: BulkCipher::$cipher,
            mac: MacAlgorithm::$mac,
            export: $export,
        }
    };
}

/// The full registry, ordered by code point.
pub const REGISTRY: &[CipherSuite] = &[
    suite!(0x0000, TLS_NULL_WITH_NULL_NULL, Null, Null, Null, false),
    suite!(0x0001, TLS_RSA_WITH_NULL_MD5, Rsa, Null, Md5, false),
    suite!(0x0002, TLS_RSA_WITH_NULL_SHA, Rsa, Null, Sha1, false),
    suite!(0x0003, TLS_RSA_EXPORT_WITH_RC4_40_MD5, Rsa, Rc4_40, Md5, true),
    suite!(0x0004, TLS_RSA_WITH_RC4_128_MD5, Rsa, Rc4_128, Md5, false),
    suite!(0x0005, TLS_RSA_WITH_RC4_128_SHA, Rsa, Rc4_128, Sha1, false),
    suite!(0x0008, TLS_RSA_EXPORT_WITH_DES40_CBC_SHA, Rsa, Des40Cbc, Sha1, true),
    suite!(0x0009, TLS_RSA_WITH_DES_CBC_SHA, Rsa, DesCbc, Sha1, false),
    suite!(0x000a, TLS_RSA_WITH_3DES_EDE_CBC_SHA, Rsa, TripleDesCbc, Sha1, false),
    suite!(0x0014, TLS_DHE_RSA_EXPORT_WITH_DES40_CBC_SHA, DheRsa, Des40Cbc, Sha1, true),
    suite!(0x0015, TLS_DHE_RSA_WITH_DES_CBC_SHA, DheRsa, DesCbc, Sha1, false),
    suite!(0x0016, TLS_DHE_RSA_WITH_3DES_EDE_CBC_SHA, DheRsa, TripleDesCbc, Sha1, false),
    suite!(0x0017, TLS_DH_anon_EXPORT_WITH_RC4_40_MD5, DhAnon, Rc4_40, Md5, true),
    suite!(0x0018, TLS_DH_anon_WITH_RC4_128_MD5, DhAnon, Rc4_128, Md5, false),
    suite!(0x001b, TLS_DH_anon_WITH_3DES_EDE_CBC_SHA, DhAnon, TripleDesCbc, Sha1, false),
    suite!(0x002f, TLS_RSA_WITH_AES_128_CBC_SHA, Rsa, Aes128Cbc, Sha1, false),
    suite!(0x0033, TLS_DHE_RSA_WITH_AES_128_CBC_SHA, DheRsa, Aes128Cbc, Sha1, false),
    suite!(0x0034, TLS_DH_anon_WITH_AES_128_CBC_SHA, DhAnon, Aes128Cbc, Sha1, false),
    suite!(0x0035, TLS_RSA_WITH_AES_256_CBC_SHA, Rsa, Aes256Cbc, Sha1, false),
    suite!(0x0039, TLS_DHE_RSA_WITH_AES_256_CBC_SHA, DheRsa, Aes256Cbc, Sha1, false),
    suite!(0x003a, TLS_DH_anon_WITH_AES_256_CBC_SHA, DhAnon, Aes256Cbc, Sha1, false),
    suite!(0x003c, TLS_RSA_WITH_AES_128_CBC_SHA256, Rsa, Aes128Cbc, Sha256, false),
    suite!(0x003d, TLS_RSA_WITH_AES_256_CBC_SHA256, Rsa, Aes256Cbc, Sha256, false),
    suite!(0x0067, TLS_DHE_RSA_WITH_AES_128_CBC_SHA256, DheRsa, Aes128Cbc, Sha256, false),
    suite!(0x006b, TLS_DHE_RSA_WITH_AES_256_CBC_SHA256, DheRsa, Aes256Cbc, Sha256, false),
    suite!(0x009c, TLS_RSA_WITH_AES_128_GCM_SHA256, Rsa, Aes128Gcm, Sha256, false),
    suite!(0x009d, TLS_RSA_WITH_AES_256_GCM_SHA384, Rsa, Aes256Gcm, Sha384, false),
    suite!(0x009e, TLS_DHE_RSA_WITH_AES_128_GCM_SHA256, DheRsa, Aes128Gcm, Sha256, false),
    suite!(0x009f, TLS_DHE_RSA_WITH_AES_256_GCM_SHA384, DheRsa, Aes256Gcm, Sha384, false),
    suite!(0x1301, TLS_AES_128_GCM_SHA256, Tls13, Aes128Gcm, Sha256, false),
    suite!(0x1302, TLS_AES_256_GCM_SHA384, Tls13, Aes256Gcm, Sha384, false),
    suite!(0x1303, TLS_CHACHA20_POLY1305_SHA256, Tls13, ChaCha20Poly1305, Sha256, false),
    suite!(0xc007, TLS_ECDHE_ECDSA_WITH_RC4_128_SHA, EcdheEcdsa, Rc4_128, Sha1, false),
    suite!(0xc008, TLS_ECDHE_ECDSA_WITH_3DES_EDE_CBC_SHA, EcdheEcdsa, TripleDesCbc, Sha1, false),
    suite!(0xc009, TLS_ECDHE_ECDSA_WITH_AES_128_CBC_SHA, EcdheEcdsa, Aes128Cbc, Sha1, false),
    suite!(0xc00a, TLS_ECDHE_ECDSA_WITH_AES_256_CBC_SHA, EcdheEcdsa, Aes256Cbc, Sha1, false),
    suite!(0xc011, TLS_ECDHE_RSA_WITH_RC4_128_SHA, EcdheRsa, Rc4_128, Sha1, false),
    suite!(0xc012, TLS_ECDHE_RSA_WITH_3DES_EDE_CBC_SHA, EcdheRsa, TripleDesCbc, Sha1, false),
    suite!(0xc013, TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA, EcdheRsa, Aes128Cbc, Sha1, false),
    suite!(0xc014, TLS_ECDHE_RSA_WITH_AES_256_CBC_SHA, EcdheRsa, Aes256Cbc, Sha1, false),
    suite!(0xc023, TLS_ECDHE_ECDSA_WITH_AES_128_CBC_SHA256, EcdheEcdsa, Aes128Cbc, Sha256, false),
    suite!(0xc024, TLS_ECDHE_ECDSA_WITH_AES_256_CBC_SHA384, EcdheEcdsa, Aes256Cbc, Sha384, false),
    suite!(0xc027, TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA256, EcdheRsa, Aes128Cbc, Sha256, false),
    suite!(0xc028, TLS_ECDHE_RSA_WITH_AES_256_CBC_SHA384, EcdheRsa, Aes256Cbc, Sha384, false),
    suite!(0xc02b, TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256, EcdheEcdsa, Aes128Gcm, Sha256, false),
    suite!(0xc02c, TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384, EcdheEcdsa, Aes256Gcm, Sha384, false),
    suite!(0xc02f, TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256, EcdheRsa, Aes128Gcm, Sha256, false),
    suite!(0xc030, TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384, EcdheRsa, Aes256Gcm, Sha384, false),
    suite!(0xcca8, TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305_SHA256, EcdheRsa, ChaCha20Poly1305, Sha256, false),
    suite!(0xcca9, TLS_ECDHE_ECDSA_WITH_CHACHA20_POLY1305_SHA256, EcdheEcdsa, ChaCha20Poly1305, Sha256, false),
    suite!(0xccaa, TLS_DHE_RSA_WITH_CHACHA20_POLY1305_SHA256, DheRsa, ChaCha20Poly1305, Sha256, false),
];

/// Looks up a suite by IANA code point.
pub fn by_id(id: u16) -> Option<&'static CipherSuite> {
    REGISTRY.iter().find(|s| s.id == id)
}

/// Looks up a suite by IANA name.
pub fn by_name(name: &str) -> Option<&'static CipherSuite> {
    REGISTRY.iter().find(|s| s.name == name)
}

/// True when the code point is in the *insecure* class (unknown code
/// points are treated as not-insecure).
pub fn id_is_insecure(id: u16) -> bool {
    by_id(id).is_some_and(|s| s.is_insecure())
}

/// True when the code point offers authenticated forward secrecy.
pub fn id_is_forward_secret(id: u16) -> bool {
    by_id(id).is_some_and(|s| s.is_forward_secret())
}

/// True for NULL/ANON code points.
pub fn id_is_null_or_anon(id: u16) -> bool {
    by_id(id).is_some_and(|s| s.is_null_or_anon())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_sorted_and_unique() {
        for w in REGISTRY.windows(2) {
            assert!(w[0].id < w[1].id, "{} !< {}", w[0].name, w[1].name);
        }
    }

    #[test]
    fn lookup_by_id_and_name() {
        let rc4 = by_id(0x0005).unwrap();
        assert_eq!(rc4.name, "TLS_RSA_WITH_RC4_128_SHA");
        assert_eq!(by_name("TLS_AES_128_GCM_SHA256").unwrap().id, 0x1301);
        assert!(by_id(0xffff).is_none());
        assert!(by_name("TLS_NOPE").is_none());
    }

    #[test]
    fn insecure_classification_matches_paper() {
        // RC4, DES, 3DES, EXPORT are insecure.
        for name in [
            "TLS_RSA_WITH_RC4_128_SHA",
            "TLS_RSA_WITH_DES_CBC_SHA",
            "TLS_RSA_WITH_3DES_EDE_CBC_SHA",
            "TLS_RSA_EXPORT_WITH_RC4_40_MD5",
            "TLS_DHE_RSA_EXPORT_WITH_DES40_CBC_SHA",
        ] {
            assert!(by_name(name).unwrap().is_insecure(), "{name}");
        }
        // Modern AES-GCM is not.
        assert!(!by_name("TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256").unwrap().is_insecure());
        assert!(!by_name("TLS_RSA_WITH_AES_128_CBC_SHA").unwrap().is_insecure());
    }

    #[test]
    fn null_anon_classification() {
        assert!(by_id(0x0000).unwrap().is_null_or_anon());
        assert!(by_name("TLS_RSA_WITH_NULL_SHA").unwrap().is_null_or_anon());
        assert!(by_name("TLS_DH_anon_WITH_AES_128_CBC_SHA").unwrap().is_null_or_anon());
        assert!(!by_name("TLS_RSA_WITH_AES_128_CBC_SHA").unwrap().is_null_or_anon());
    }

    #[test]
    fn forward_secrecy_classification() {
        assert!(by_name("TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256").unwrap().is_forward_secret());
        assert!(by_name("TLS_DHE_RSA_WITH_AES_128_CBC_SHA").unwrap().is_forward_secret());
        assert!(by_name("TLS_AES_128_GCM_SHA256").unwrap().is_forward_secret());
        assert!(!by_name("TLS_RSA_WITH_AES_128_GCM_SHA256").unwrap().is_forward_secret());
        // An insecure suite can still be forward-secret (3DES-DHE) —
        // the classes are orthogonal, as in the paper's analysis.
        let s = by_name("TLS_DHE_RSA_WITH_3DES_EDE_CBC_SHA").unwrap();
        assert!(s.is_forward_secret() && s.is_insecure());
    }

    #[test]
    fn tls13_suites_flagged() {
        assert!(by_id(0x1301).unwrap().is_tls13());
        assert!(by_id(0x1303).unwrap().is_tls13());
        assert!(!by_id(0xc030).unwrap().is_tls13());
    }

    #[test]
    fn id_helpers_handle_unknown_codepoints() {
        assert!(!id_is_insecure(0xeeee));
        assert!(!id_is_forward_secret(0xeeee));
        assert!(!id_is_null_or_anon(0xeeee));
        assert!(id_is_insecure(0x0005));
        assert!(id_is_forward_secret(0xc02f));
        assert!(id_is_null_or_anon(0x0001));
    }

    #[test]
    fn display_uses_iana_name() {
        assert_eq!(
            by_id(0x000a).unwrap().to_string(),
            "TLS_RSA_WITH_3DES_EDE_CBC_SHA"
        );
    }
}
