//! Shared session-level machinery for the client and server state
//! machines: key derivation, record protection, and handshake
//! transcript hashing.
//!
//! Key derivation is the real TLS 1.2 schedule (RFC 5246 PRF with
//! P_SHA256 — see [`crate::prf`]): a 48-byte master secret, a key
//! block seeded with server_random || client_random, and 12-byte
//! Finished verify data. Record protection uses the suite's real
//! cipher core — RC4, 3DES (OFB), AES-128 (CTR), or ChaCha20 — with
//! one documented substitution (DESIGN.md §2): stream/OFB/CTR modes
//! stand in for CBC padding and GCM tags, whose internals the
//! measurement methodology never observes.

use crate::ciphersuite::{by_id, BulkCipher};
use crate::prf;
use crate::record::{Deframer, SessionBuf};
use iotls_crypto::aes::Aes128Ctr;
use iotls_crypto::chacha20::ChaCha20;
use iotls_crypto::des::TripleDesOfb;
use iotls_crypto::rc4::Rc4;
use iotls_crypto::sha256::Sha256;

/// RFC 5246 master-secret derivation (48 bytes).
pub fn derive_master_secret(
    premaster: &[u8],
    client_random: &[u8; 32],
    server_random: &[u8; 32],
) -> [u8; 48] {
    prf::master_secret(premaster, client_random, server_random)
}

/// Directional write keys from the RFC 5246 key block: 32 bytes for
/// the client direction, 32 for the server.
pub fn derive_write_keys(
    master: &[u8; 48],
    client_random: &[u8; 32],
    server_random: &[u8; 32],
) -> ([u8; 32], [u8; 32]) {
    let block = prf::key_block(master, client_random, server_random, 64);
    (
        block[..32].try_into().expect("key block"),
        block[32..64].try_into().expect("key block"),
    )
}

/// RFC 5246 Finished verify-data over the transcript hash.
pub fn finished_verify_data(master: &[u8; 48], label: &str, transcript_hash: &[u8; 32]) -> Vec<u8> {
    prf::verify_data(master, label, transcript_hash)
}

/// Running hash of every handshake message exchanged.
#[derive(Clone)]
pub struct Transcript {
    hasher: Sha256,
}

impl Default for Transcript {
    fn default() -> Self {
        Self::new()
    }
}

impl Transcript {
    /// Empty transcript.
    pub fn new() -> Self {
        Transcript {
            hasher: Sha256::new(),
        }
    }

    /// Absorbs an encoded handshake message.
    pub fn absorb(&mut self, message_bytes: &[u8]) {
        self.hasher.update(message_bytes);
    }

    /// Current transcript hash (non-destructive).
    pub fn hash(&self) -> [u8; 32] {
        self.hasher.clone().finalize()
    }
}

/// Coarse connection status returned by the sans-IO
/// `process` loop on both state machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The handshake is still in flight; keep pumping bytes.
    Handshaking,
    /// The handshake completed; application data may flow.
    Established,
    /// The connection failed terminally (see the connection's
    /// `failure()` accessor for the cause).
    Failed,
    /// The peer closed the connection cleanly.
    Closed,
}

/// Per-session scratch memory for the sans-IO state machines: the
/// incoming deframer, the message-encode and record-payload buffers,
/// the decrypted application-data accumulator, and the pending-output
/// buffer backing the legacy buffered API.
///
/// A scratch outlives any one connection: construct connections with
/// `with_scratch`, and reclaim the (warm) scratch via `into_scratch`
/// when the session ends. Steady-state session loops therefore reuse
/// one set of allocations across every session in a lane instead of
/// allocating per connection.
#[derive(Debug, Default)]
pub struct SessionScratch {
    /// Incremental record parser over incoming transport bytes.
    pub(crate) deframer: Deframer,
    /// Outgoing message/payload encode buffer (cleared per message).
    pub(crate) tx: Vec<u8>,
    /// Incoming record-payload buffer (cleared per record; decrypted
    /// in place).
    pub(crate) rx: Vec<u8>,
    /// Decrypted application data awaiting the caller.
    pub(crate) app: Vec<u8>,
    /// Buffered wire output backing the legacy `take_output` API.
    pub(crate) pending: SessionBuf,
}

impl SessionScratch {
    /// A fresh (cold) scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empties every buffer, keeping the allocations for reuse.
    pub(crate) fn reset(&mut self) {
        self.deframer.clear();
        self.tx.clear();
        self.rx.clear();
        self.app.clear();
        self.pending.clear();
    }
}

/// A directional record cipher.
pub enum DirectionCipher {
    /// NULL cipher — plaintext records.
    Null,
    /// RC4 keystream (insecure suites).
    Rc4(Box<Rc4>),
    /// AES-128-CTR keystream (AES-class suites).
    Aes(Box<Aes128Ctr>),
    /// Triple-DES-OFB keystream (DES/3DES-class suites; single-DES
    /// suites run 3DES with a repeated key, which degenerates to DES).
    TripleDes(Box<TripleDesOfb>),
    /// ChaCha20 keystream (ChaCha20 suites).
    ChaCha(Box<ChaCha20>),
}

impl DirectionCipher {
    /// Instantiates the cipher a suite calls for, keyed with `key`.
    pub fn for_suite(suite_id: u16, key: &[u8; 32]) -> DirectionCipher {
        let Some(suite) = by_id(suite_id) else {
            return DirectionCipher::ChaCha(Box::new(ChaCha20::new(key, &[0u8; 12], 0)));
        };
        match suite.cipher {
            BulkCipher::Null => DirectionCipher::Null,
            BulkCipher::Rc4_40 | BulkCipher::Rc4_128 => {
                DirectionCipher::Rc4(Box::new(Rc4::new(key)))
            }
            BulkCipher::Aes128Cbc
            | BulkCipher::Aes256Cbc
            | BulkCipher::Aes128Gcm
            | BulkCipher::Aes256Gcm => {
                let k: [u8; 16] = key[..16].try_into().expect("32-byte key");
                let iv: [u8; 16] = key[16..32].try_into().expect("32-byte key");
                DirectionCipher::Aes(Box::new(Aes128Ctr::new(&k, &iv)))
            }
            BulkCipher::DesCbc | BulkCipher::Des40Cbc | BulkCipher::TripleDesCbc => {
                let mut bundle = [0u8; 24];
                bundle.copy_from_slice(&key[..24]);
                if matches!(suite.cipher, BulkCipher::DesCbc | BulkCipher::Des40Cbc) {
                    // Single-DES suites: repeat K1 so EDE degenerates
                    // to one DES pass, as the suite specifies.
                    let k1: [u8; 8] = key[..8].try_into().expect("32-byte key");
                    bundle[8..16].copy_from_slice(&k1);
                    bundle[16..24].copy_from_slice(&k1);
                }
                let iv: [u8; 8] = key[24..32].try_into().expect("32-byte key");
                DirectionCipher::TripleDes(Box::new(TripleDesOfb::new(&bundle, &iv)))
            }
            _ => DirectionCipher::ChaCha(Box::new(ChaCha20::new(key, &[0u8; 12], 0))),
        }
    }

    /// Applies the keystream in place (encrypt == decrypt for the
    /// stream ciphers used here).
    pub fn apply(&mut self, buf: &mut [u8]) {
        match self {
            DirectionCipher::Null => {}
            DirectionCipher::Rc4(c) => c.apply(buf),
            DirectionCipher::Aes(c) => c.apply(buf),
            DirectionCipher::TripleDes(c) => c.apply(buf),
            DirectionCipher::ChaCha(c) => c.apply(buf),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn master_secret_depends_on_all_inputs() {
        let pm = [1u8; 48];
        let cr = [2u8; 32];
        let sr = [3u8; 32];
        let m1 = derive_master_secret(&pm, &cr, &sr);
        assert_eq!(m1, derive_master_secret(&pm, &cr, &sr));
        assert_ne!(m1, derive_master_secret(&[9u8; 48], &cr, &sr));
        assert_ne!(m1, derive_master_secret(&pm, &[9u8; 32], &sr));
        assert_ne!(m1, derive_master_secret(&pm, &cr, &[9u8; 32]));
    }

    #[test]
    fn write_keys_are_directional() {
        let master = [5u8; 48];
        let (c, s) = derive_write_keys(&master, &[1u8; 32], &[2u8; 32]);
        assert_ne!(c, s);
        // Deterministic.
        assert_eq!((c, s), derive_write_keys(&master, &[1u8; 32], &[2u8; 32]));
    }

    #[test]
    fn finished_depends_on_transcript_and_role() {
        let master = [7u8; 48];
        let th1 = [1u8; 32];
        let th2 = [2u8; 32];
        let c = finished_verify_data(&master, "client finished", &th1);
        assert_eq!(c.len(), 12);
        assert_ne!(c, finished_verify_data(&master, "server finished", &th1));
        assert_ne!(c, finished_verify_data(&master, "client finished", &th2));
    }

    #[test]
    fn transcript_accumulates() {
        let mut t = Transcript::new();
        let h0 = t.hash();
        t.absorb(b"client hello bytes");
        let h1 = t.hash();
        assert_ne!(h0, h1);
        t.absorb(b"server hello bytes");
        assert_ne!(h1, t.hash());
        // Same sequence reproduces the same hash.
        let mut t2 = Transcript::new();
        t2.absorb(b"client hello bytes");
        t2.absorb(b"server hello bytes");
        assert_eq!(t.hash(), t2.hash());
    }

    #[test]
    fn direction_cipher_matches_suite_class() {
        let key = [3u8; 32];
        assert!(matches!(
            DirectionCipher::for_suite(0x0005, &key), // RC4_128_SHA
            DirectionCipher::Rc4(_)
        ));
        assert!(matches!(
            DirectionCipher::for_suite(0x0001, &key), // NULL_MD5
            DirectionCipher::Null
        ));
        assert!(matches!(
            DirectionCipher::for_suite(0xc02f, &key), // AES-GCM
            DirectionCipher::Aes(_)
        ));
        assert!(matches!(
            DirectionCipher::for_suite(0xcca8, &key), // ChaCha20
            DirectionCipher::ChaCha(_)
        ));
        assert!(matches!(
            DirectionCipher::for_suite(0x000a, &key), // 3DES
            DirectionCipher::TripleDes(_)
        ));
        assert!(matches!(
            DirectionCipher::for_suite(0x0009, &key), // single DES
            DirectionCipher::TripleDes(_)
        ));
    }

    #[test]
    fn stream_roundtrip_across_records() {
        let key = [4u8; 32];
        let mut enc = DirectionCipher::for_suite(0x0005, &key);
        let mut dec = DirectionCipher::for_suite(0x0005, &key);
        for msg in [b"first".as_slice(), b"second record", b"third"] {
            let mut buf = msg.to_vec();
            enc.apply(&mut buf);
            dec.apply(&mut buf);
            assert_eq!(buf, msg);
        }
    }
}
