//! The TLS client state machine (sans-IO).
//!
//! A [`ClientConnection`] is unbuffered in the smoltcp idiom: the
//! caller owns both sides of the byte exchange. Feed incoming
//! transport bytes and collect outgoing ones in a single call to
//! [`ClientConnection::process`], which appends every reply record to
//! a caller-owned [`SessionBuf`]; drive loops reuse one buffer per
//! direction (and one [`SessionScratch`] per lane, via
//! [`ClientConnection::with_scratch`]) so the steady state allocates
//! nothing per session. The older buffered API
//! ([`ClientConnection::read_tls`] / [`ClientConnection::take_output`])
//! remains as a thin shim over the same core for tests and one-shot
//! callers.
//!
//! Device emulations configure the client through [`ClientConfig`],
//! which captures everything the paper measures about a *TLS
//! instance*: offered versions and suites, extension set, validation
//! policy, root store, and the library behavior profile that decides
//! which alert (if any) is sent on validation failure.
//!
//! Handshake-flow substitutions relative to real TLS (DESIGN.md §2):
//! TLS 1.3 connections reuse the 1.2 message sequence, there is no
//! ChangeCipherSpec, and only application-data records are encrypted.
//! All measured behavior — negotiation metadata, alerts, certificate
//! handling, payload secrecy against a passive observer — is
//! preserved.

use crate::alert::{Alert, AlertDescription, AlertLevel};
use crate::ciphersuite::by_id;
use crate::codec::CodecError;
use crate::extension::{sig_scheme, Extension};
use crate::fingerprint::Fingerprint;
use crate::handshake::{ClientHello, HandshakeMessage, ServerKeyExchange};
use crate::profile::LibraryProfile;
use crate::record::{write_record, ContentType, Deframer, SessionBuf};
use crate::session::{
    derive_master_secret, derive_write_keys, finished_verify_data, DirectionCipher,
    SessionScratch, Status, Transcript,
};
use crate::version::ProtocolVersion;
use iotls_crypto::dh::{DhGroup, DhKeyPair};
use iotls_crypto::drbg::Drbg;
use iotls_x509::{validate_chain, Certificate, RootStore, Timestamp, ValidationError, ValidationPolicy};
use std::sync::Arc;

/// Certificate pinning (§6 of the paper).
///
/// Pinning mandates particular key material in the server's chain.
/// The paper's caveat is reproduced faithfully: pinning the *root*
/// only helps while that root's key is honest — against a compromised
/// root CA, only a *leaf* pin protects the connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PinPolicy {
    /// No pinning (the default).
    None,
    /// The leaf's public-key fingerprint must equal this value.
    PinLeafKey([u8; 32]),
    /// The trust anchor's public-key fingerprint must equal this
    /// value.
    PinRootKey([u8; 32]),
}

impl PinPolicy {
    /// Checks the pin against a presented chain (leaf first). The
    /// root pin checks the top-most certificate's key (chain-building
    /// already anchored it for validated connections).
    pub fn check(&self, chain: &[iotls_x509::Certificate], anchor: Option<&iotls_x509::Certificate>) -> bool {
        match self {
            PinPolicy::None => true,
            PinPolicy::PinLeafKey(pin) => chain
                .first()
                .is_some_and(|c| &c.tbs.public_key.fingerprint() == pin),
            PinPolicy::PinRootKey(pin) => {
                let top = anchor.or_else(|| chain.last());
                top.is_some_and(|c| &c.tbs.public_key.fingerprint() == pin)
            }
        }
    }
}

/// A cached TLS session for RFC 5246 session-ID resumption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedSession {
    /// The server-issued session id.
    pub session_id: Vec<u8>,
    /// The session's master secret.
    pub master: [u8; 48],
}

/// Client-side configuration: one *TLS instance* in the paper's sense.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Protocol versions the client supports (any order).
    pub versions: Vec<ProtocolVersion>,
    /// Ciphersuites offered, in offer order.
    pub cipher_suites: Vec<u16>,
    /// Certificate validation behavior.
    pub validation_policy: ValidationPolicy,
    /// Trusted roots, shared by reference: many configs (one per
    /// connection attempt) point at one immutable store, so cloning a
    /// config never deep-copies the root set.
    pub root_store: Arc<RootStore>,
    /// Library emulation (controls failure alerts).
    pub library: LibraryProfile,
    /// Send the SNI extension.
    pub send_sni: bool,
    /// Send status_request (OCSP stapling).
    pub request_ocsp: bool,
    /// Send an empty session_ticket extension.
    pub session_ticket: bool,
    /// supported_groups values.
    pub groups: Vec<u16>,
    /// ec_point_formats values.
    pub point_formats: Vec<u8>,
    /// signature_algorithms values.
    pub signature_algorithms: Vec<u16>,
    /// ALPN protocols (empty = extension omitted).
    pub alpn: Vec<String>,
    /// Certificate pinning (checked independently of, and in addition
    /// to, the validation policy).
    pub pin: PinPolicy,
    /// Verify received OCSP staples and honor Must-Staple: reject
    /// revoked staples, stale staples, and missing staples for
    /// Must-Staple leaves. Requires `request_ocsp`.
    pub verify_staple: bool,
    /// Optional memoization of chain-validation verdicts, shared by
    /// every handshake within one experiment run. `None` validates
    /// from scratch each time (identical verdicts, more work).
    pub verify_cache: Option<std::sync::Arc<iotls_x509::cache::VerificationCache>>,
}

impl ClientConfig {
    /// A modern, strict client: TLS 1.2/1.3, strong suites, full
    /// validation, OpenSSL-style alerts.
    pub fn modern(root_store: impl Into<Arc<RootStore>>) -> ClientConfig {
        ClientConfig {
            versions: vec![ProtocolVersion::Tls12, ProtocolVersion::Tls13],
            cipher_suites: vec![0x1301, 0x1303, 0xc02f, 0xc030, 0xcca8, 0x009e],
            validation_policy: ValidationPolicy::strict(),
            root_store: root_store.into(),
            library: LibraryProfile::OpenSsl,
            send_sni: true,
            request_ocsp: false,
            session_ticket: true,
            groups: vec![29, 23, 24],
            point_formats: vec![0],
            signature_algorithms: vec![
                sig_scheme::RSA_PKCS1_SHA256,
                sig_scheme::RSA_PSS_RSAE_SHA256,
            ],
            alpn: Vec::new(),
            pin: PinPolicy::None,
            verify_staple: false,
            verify_cache: None,
        }
    }

    /// Highest supported version.
    pub fn max_version(&self) -> ProtocolVersion {
        self.versions
            .iter()
            .copied()
            .max()
            .expect("client must support at least one version")
    }

    /// True when `v` is supported.
    pub fn supports_version(&self, v: ProtocolVersion) -> bool {
        self.versions.contains(&v)
    }
}

/// Why a handshake failed, from the client's perspective.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HandshakeFailure {
    /// Certificate validation failed.
    Validation(ValidationError),
    /// Server chose a version the client does not support.
    UnsupportedVersion(ProtocolVersion),
    /// Server chose a suite the client did not offer.
    UnsupportedSuite(u16),
    /// Peer sent a fatal alert.
    PeerAlert(Alert),
    /// Wire-format error.
    Codec,
    /// Key exchange failed (bad SKE signature, degenerate DH value,
    /// undecryptable premaster).
    KeyExchange,
    /// Finished verify-data mismatch.
    BadFinished,
    /// The presented chain violated the configured pin.
    PinMismatch,
    /// A verified OCSP staple said the certificate is revoked, the
    /// staple was stale/forged, or a Must-Staple leaf came without
    /// one.
    StapleFailure,
}

/// Client connection states.
#[derive(Debug, Clone, PartialEq, Eq)]
enum State {
    Start,
    AwaitServerHello,
    AwaitServerFlight,
    AwaitServerFinished,
    AwaitServerFinishedResumed,
    Established,
    Failed(HandshakeFailure),
    Closed,
}

/// Summary of a finished (or failed) handshake, the unit every IoTLS
/// analysis consumes.
#[derive(Debug, Clone)]
pub struct HandshakeSummary {
    /// The ClientHello sent (fingerprint source).
    pub client_hello: ClientHello,
    /// Negotiated version, when a ServerHello arrived.
    pub version: Option<ProtocolVersion>,
    /// Negotiated suite, when a ServerHello arrived.
    pub cipher_suite: Option<u16>,
    /// Whether the server stapled an OCSP response.
    pub ocsp_stapled: bool,
    /// The certificate chain the server presented.
    pub server_chain: Vec<Certificate>,
    /// Alerts this client sent.
    pub alerts_sent: Vec<Alert>,
    /// Alerts received from the peer.
    pub alerts_received: Vec<Alert>,
    /// Terminal failure, if the handshake did not complete.
    pub failure: Option<HandshakeFailure>,
}

/// A sans-IO TLS client connection.
pub struct ClientConnection {
    config: ClientConfig,
    hostname: String,
    now: Timestamp,
    rng: Drbg,
    state: State,
    scratch: SessionScratch,
    transcript: Transcript,
    hello: Option<ClientHello>,
    client_random: [u8; 32],
    server_random: [u8; 32],
    version: Option<ProtocolVersion>,
    suite: Option<u16>,
    server_chain: Vec<Certificate>,
    server_ske: Option<ServerKeyExchange>,
    ocsp_stapled: bool,
    alerts_sent: Vec<Alert>,
    alerts_received: Vec<Alert>,
    master: Option<[u8; 48]>,
    write_cipher: Option<DirectionCipher>,
    read_cipher: Option<DirectionCipher>,
    staple_bytes: Option<Vec<u8>>,
    resume: Option<CachedSession>,
    server_session_id: Vec<u8>,
    resumed: bool,
}

impl ClientConnection {
    /// Creates a connection to `hostname` at simulated time `now`.
    pub fn new(config: ClientConfig, hostname: &str, now: Timestamp, rng: Drbg) -> Self {
        Self::with_scratch(config, hostname, now, rng, SessionScratch::new())
    }

    /// Like [`ClientConnection::new`], but reusing a caller-owned
    /// [`SessionScratch`] (reset first) so steady-state session loops
    /// keep one warm set of buffers per lane instead of allocating per
    /// connection. Reclaim the scratch with
    /// [`ClientConnection::into_scratch`] when the session ends.
    pub fn with_scratch(
        config: ClientConfig,
        hostname: &str,
        now: Timestamp,
        mut rng: Drbg,
        mut scratch: SessionScratch,
    ) -> Self {
        scratch.reset();
        let mut client_random = [0u8; 32];
        rng.fill_bytes(&mut client_random);
        ClientConnection {
            config,
            hostname: hostname.to_string(),
            now,
            rng,
            state: State::Start,
            scratch,
            transcript: Transcript::new(),
            hello: None,
            client_random,
            server_random: [0u8; 32],
            version: None,
            suite: None,
            server_chain: Vec::new(),
            server_ske: None,
            ocsp_stapled: false,
            alerts_sent: Vec::new(),
            alerts_received: Vec::new(),
            master: None,
            write_cipher: None,
            read_cipher: None,
            staple_bytes: None,
            resume: None,
            server_session_id: Vec::new(),
            resumed: false,
        }
    }

    /// Consumes the connection, handing back its (warm) scratch for
    /// the next session in the lane.
    pub fn into_scratch(self) -> SessionScratch {
        self.scratch
    }

    /// Arms session resumption: the next [`Self::start`] offers the
    /// cached session id, and an echoing server short-circuits to the
    /// abbreviated handshake. Must be called before `start`.
    pub fn resume(&mut self, cached: CachedSession) {
        assert_eq!(self.state, State::Start, "resume() after start()");
        self.resume = Some(cached);
    }

    /// True when the handshake resumed a cached session.
    pub fn is_resumed(&self) -> bool {
        self.resumed
    }

    /// The session to cache for later resumption (full handshakes
    /// against resumption-enabled servers only).
    pub fn session_for_cache(&self) -> Option<CachedSession> {
        if self.is_established() && !self.resumed && !self.server_session_id.is_empty() {
            Some(CachedSession {
                session_id: self.server_session_id.clone(),
                master: self.master?,
            })
        } else {
            None
        }
    }

    /// Builds (but does not send) the ClientHello this configuration
    /// produces — also used standalone for fingerprint extraction.
    pub fn build_client_hello(&self) -> ClientHello {
        let max = self.config.max_version();
        let mut extensions = Vec::new();
        if self.config.send_sni {
            extensions.push(Extension::ServerName(self.hostname.clone()));
        }
        if self.config.request_ocsp {
            extensions.push(Extension::StatusRequest);
        }
        if !self.config.groups.is_empty() {
            extensions.push(Extension::SupportedGroups(self.config.groups.clone()));
        }
        if !self.config.point_formats.is_empty() {
            extensions.push(Extension::EcPointFormats(self.config.point_formats.clone()));
        }
        if !self.config.signature_algorithms.is_empty() {
            extensions.push(Extension::SignatureAlgorithms(
                self.config.signature_algorithms.clone(),
            ));
        }
        if !self.config.alpn.is_empty() {
            extensions.push(Extension::Alpn(self.config.alpn.clone()));
        }
        if self.config.session_ticket {
            extensions.push(Extension::SessionTicket);
        }
        if max >= ProtocolVersion::Tls13 {
            let mut versions: Vec<ProtocolVersion> = self.config.versions.clone();
            versions.sort();
            versions.reverse();
            extensions.push(Extension::SupportedVersions(versions));
        }
        ClientHello {
            // legacy_version caps at TLS 1.2 when 1.3 is offered via
            // the supported_versions extension, per RFC 8446.
            legacy_version: max.min(ProtocolVersion::Tls12),
            random: self.client_random,
            session_id: self
                .resume
                .as_ref()
                .map(|c| c.session_id.clone())
                .unwrap_or_default(),
            cipher_suites: self.config.cipher_suites.clone(),
            compression_methods: vec![0],
            extensions,
        }
    }

    /// Encodes the ClientHello into `out`. Must be called exactly
    /// once, first.
    pub fn start_into(&mut self, out: &mut SessionBuf) {
        assert_eq!(self.state, State::Start, "start() called twice");
        let hello = self.build_client_hello();
        let msg = HandshakeMessage::ClientHello(hello.clone());
        self.send_handshake(&msg, out);
        self.hello = Some(hello);
        self.state = State::AwaitServerHello;
    }

    /// Sends the ClientHello into the internal pending buffer
    /// (legacy buffered API; drain with
    /// [`ClientConnection::take_output`]).
    pub fn start(&mut self) {
        let mut pending = std::mem::take(&mut self.scratch.pending);
        self.start_into(&mut pending);
        self.scratch.pending = pending;
    }

    /// The fingerprint of this connection's ClientHello.
    pub fn fingerprint(&self) -> Fingerprint {
        match &self.hello {
            Some(h) => Fingerprint::from_client_hello(h),
            None => Fingerprint::from_client_hello(&self.build_client_hello()),
        }
    }

    /// Drains bytes destined for the transport (legacy buffered API;
    /// the unbuffered loop writes through [`ClientConnection::process`]
    /// instead).
    pub fn take_output(&mut self) -> Vec<u8> {
        self.scratch.pending.take_vec()
    }

    /// The connection's coarse status.
    pub fn status(&self) -> Status {
        match &self.state {
            State::Established => Status::Established,
            State::Failed(_) => Status::Failed,
            State::Closed => Status::Closed,
            _ => Status::Handshaking,
        }
    }

    /// True once the handshake completed successfully.
    pub fn is_established(&self) -> bool {
        self.state == State::Established
    }

    /// The terminal failure, if any.
    pub fn failure(&self) -> Option<&HandshakeFailure> {
        match &self.state {
            State::Failed(f) => Some(f),
            _ => None,
        }
    }

    /// True when the connection reached a terminal state
    /// (established, failed, or closed).
    pub fn is_terminal(&self) -> bool {
        matches!(
            self.state,
            State::Established | State::Failed(_) | State::Closed
        )
    }

    /// Post-handshake summary for analysis.
    pub fn summary(&self) -> HandshakeSummary {
        HandshakeSummary {
            client_hello: self
                .hello
                .clone()
                .unwrap_or_else(|| self.build_client_hello()),
            version: self.version,
            cipher_suite: self.suite,
            ocsp_stapled: self.ocsp_stapled,
            server_chain: self.server_chain.clone(),
            alerts_sent: self.alerts_sent.clone(),
            alerts_received: self.alerts_received.clone(),
            failure: self.failure().cloned(),
        }
    }

    /// The sans-IO pump: consumes `incoming` transport bytes (any
    /// chunking, possibly empty) and appends every reply record to the
    /// caller-owned `out`. Malformed input moves the connection to
    /// [`Status::Failed`]; the caller reads wire bytes from `out`
    /// regardless (a failing connection still sends its fatal alert).
    pub fn process(&mut self, incoming: &[u8], out: &mut SessionBuf) -> Status {
        let _ = self.process_bytes(incoming, out);
        self.status()
    }

    /// Feeds transport bytes into the connection, buffering replies
    /// internally (legacy buffered API over the same sans-IO core).
    pub fn read_tls(&mut self, data: &[u8]) -> Result<(), CodecError> {
        let mut pending = std::mem::take(&mut self.scratch.pending);
        let result = self.process_bytes(data, &mut pending);
        self.scratch.pending = pending;
        result
    }

    fn process_bytes(&mut self, incoming: &[u8], out: &mut SessionBuf) -> Result<(), CodecError> {
        self.scratch.deframer.push(incoming);
        // Disjoint-field dance: the deframer and the record-payload
        // scratch move out of `self` for the duration of the loop (a
        // Vec move, not an allocation) so records can borrow them
        // while the state machine borrows `self`.
        let mut deframer = std::mem::take(&mut self.scratch.deframer);
        let mut rx = std::mem::take(&mut self.scratch.rx);
        let result = self.process_deframed(&mut deframer, &mut rx, out);
        self.scratch.deframer = deframer;
        self.scratch.rx = rx;
        result
    }

    fn process_deframed(
        &mut self,
        deframer: &mut Deframer,
        rx: &mut Vec<u8>,
        out: &mut SessionBuf,
    ) -> Result<(), CodecError> {
        loop {
            let content_type = match deframer.pop_ref() {
                Ok(Some(rec)) => {
                    rx.clear();
                    rx.extend_from_slice(rec.payload);
                    rec.content_type
                }
                Ok(None) => return Ok(()),
                Err(e) => return Err(e),
            };
            self.process_record_ref(content_type, rx, out)?;
        }
    }

    /// Encodes application data into `out` (only valid once
    /// established). Record protection is applied in the tx scratch
    /// before framing; fragment boundaries do not disturb the stream
    /// ciphers' keystream order, so the wire bytes are identical to
    /// the legacy fragment-then-encrypt path.
    pub fn send_application_data_into(&mut self, data: &[u8], out: &mut SessionBuf) {
        assert!(self.is_established(), "connection not established");
        self.scratch.tx.clear();
        self.scratch.tx.extend_from_slice(data);
        if let Some(c) = &mut self.write_cipher {
            c.apply(&mut self.scratch.tx);
        }
        write_record(
            ContentType::ApplicationData,
            self.version.unwrap_or(ProtocolVersion::Tls12),
            &self.scratch.tx,
            out,
        );
    }

    /// Queues application data into the internal pending buffer
    /// (legacy buffered API).
    pub fn send_application_data(&mut self, data: &[u8]) {
        let mut pending = std::mem::take(&mut self.scratch.pending);
        self.send_application_data_into(data, &mut pending);
        self.scratch.pending = pending;
    }

    /// Appends decrypted application data received from the peer to
    /// `sink` and clears the internal accumulator (keeping its
    /// allocation).
    pub fn drain_application_data_into(&mut self, sink: &mut Vec<u8>) {
        sink.extend_from_slice(&self.scratch.app);
        self.scratch.app.clear();
    }

    /// Drains decrypted application data received from the peer.
    pub fn take_application_data(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.scratch.app)
    }

    fn send_handshake(&mut self, msg: &HandshakeMessage, out: &mut SessionBuf) {
        self.scratch.tx.clear();
        msg.encode_into(&mut self.scratch.tx);
        self.transcript.absorb(&self.scratch.tx);
        let version = self.version.unwrap_or_else(|| {
            self.config.max_version().min(ProtocolVersion::Tls12)
        });
        write_record(ContentType::Handshake, version, &self.scratch.tx, out);
    }

    fn send_alert(&mut self, alert: Alert, out: &mut SessionBuf) {
        self.alerts_sent.push(alert);
        let version = self.version.unwrap_or(ProtocolVersion::Tls12);
        write_record(ContentType::Alert, version, &alert.to_bytes(), out);
    }

    fn fail(&mut self, failure: HandshakeFailure, alert: Option<Alert>, out: &mut SessionBuf) {
        if let Some(a) = alert {
            self.send_alert(a, out);
        }
        self.state = State::Failed(failure);
    }

    /// Fails with the library-profile-specific alert for a validation
    /// error — the observable behavior Table 4 catalogs.
    fn fail_validation(&mut self, err: ValidationError, out: &mut SessionBuf) {
        let alert = self
            .config
            .library
            .alert_for(err)
            .map(Alert::fatal);
        self.fail(HandshakeFailure::Validation(err), alert, out);
    }

    fn process_record_ref(
        &mut self,
        content_type: ContentType,
        payload: &mut Vec<u8>,
        out: &mut SessionBuf,
    ) -> Result<(), CodecError> {
        match content_type {
            ContentType::Alert => {
                if let Some(alert) = Alert::from_bytes(payload) {
                    self.alerts_received.push(alert);
                    if alert.level == AlertLevel::Fatal {
                        self.state = State::Failed(HandshakeFailure::PeerAlert(alert));
                    } else if alert.description == AlertDescription::CloseNotify {
                        self.state = State::Closed;
                    }
                }
                Ok(())
            }
            ContentType::Handshake => {
                let mut buf: &[u8] = payload;
                while !buf.is_empty() {
                    let (msg, used) = match HandshakeMessage::decode(buf) {
                        Ok(ok) => ok,
                        Err(e) => {
                            self.fail(
                                HandshakeFailure::Codec,
                                Some(Alert::fatal(AlertDescription::UnexpectedMessage)),
                                out,
                            );
                            return Err(e);
                        }
                    };
                    let msg_bytes = &buf[..used];
                    buf = &buf[used..];
                    self.process_handshake(msg, msg_bytes, out);
                    if matches!(self.state, State::Failed(_)) {
                        break;
                    }
                }
                Ok(())
            }
            ContentType::ApplicationData => {
                if let Some(c) = &mut self.read_cipher {
                    c.apply(payload);
                }
                self.scratch.app.extend_from_slice(payload);
                Ok(())
            }
            ContentType::ChangeCipherSpec => Ok(()),
        }
    }

    fn process_handshake(&mut self, msg: HandshakeMessage, msg_bytes: &[u8], out: &mut SessionBuf) {
        match (&self.state, msg) {
            (State::AwaitServerHello, HandshakeMessage::ServerHello(sh)) => {
                self.transcript.absorb(msg_bytes);
                if !self.config.supports_version(sh.version) {
                    self.fail(
                        HandshakeFailure::UnsupportedVersion(sh.version),
                        Some(Alert::fatal(AlertDescription::ProtocolVersion)),
                        out,
                    );
                    return;
                }
                if !self.config.cipher_suites.contains(&sh.cipher_suite) {
                    self.fail(
                        HandshakeFailure::UnsupportedSuite(sh.cipher_suite),
                        Some(Alert::fatal(AlertDescription::HandshakeFailure)),
                        out,
                    );
                    return;
                }
                self.version = Some(sh.version);
                self.suite = Some(sh.cipher_suite);
                self.server_random = sh.random;
                self.server_session_id = sh.session_id.clone();
                // Resumption: the server echoing our cached session id
                // commits to the abbreviated handshake.
                if let Some(cached) = &self.resume {
                    if !cached.session_id.is_empty() && sh.session_id == cached.session_id {
                        let master = cached.master;
                        self.master = Some(master);
                        let (client_key, server_key) = crate::session::derive_write_keys(
                            &master,
                            &self.client_random,
                            &self.server_random,
                        );
                        self.write_cipher =
                            Some(DirectionCipher::for_suite(sh.cipher_suite, &client_key));
                        self.read_cipher =
                            Some(DirectionCipher::for_suite(sh.cipher_suite, &server_key));
                        self.resumed = true;
                        self.state = State::AwaitServerFinishedResumed;
                        return;
                    }
                }
                self.state = State::AwaitServerFlight;
            }
            (State::AwaitServerFlight, HandshakeMessage::Certificate(chain_bytes)) => {
                self.transcript.absorb(msg_bytes);
                let mut chain = Vec::with_capacity(chain_bytes.len());
                for cb in &chain_bytes {
                    match Certificate::from_bytes(cb) {
                        Ok(c) => chain.push(c),
                        Err(_) => {
                            self.fail(
                                HandshakeFailure::Codec,
                                Some(Alert::fatal(AlertDescription::BadCertificate)),
                                out,
                            );
                            return;
                        }
                    }
                }
                self.server_chain = chain;
            }
            (State::AwaitServerFlight, HandshakeMessage::CertificateStatus(staple)) => {
                self.transcript.absorb(msg_bytes);
                self.ocsp_stapled = true;
                self.staple_bytes = Some(staple);
            }
            (State::AwaitServerFlight, HandshakeMessage::ServerKeyExchange(ske)) => {
                self.transcript.absorb(msg_bytes);
                self.server_ske = Some(ske);
            }
            (State::AwaitServerFlight, HandshakeMessage::ServerHelloDone) => {
                self.transcript.absorb(msg_bytes);
                self.complete_client_flight(out);
            }
            (State::AwaitServerFinishedResumed, HandshakeMessage::Finished(verify_data)) => {
                let master = self.master.expect("resumed master set");
                let expected =
                    finished_verify_data(&master, "server finished", &self.transcript.hash());
                self.transcript.absorb(msg_bytes);
                if verify_data != expected {
                    self.fail(
                        HandshakeFailure::BadFinished,
                        Some(Alert::fatal(AlertDescription::DecryptError)),
                        out,
                    );
                    return;
                }
                let client_verify =
                    finished_verify_data(&master, "client finished", &self.transcript.hash());
                let finished = HandshakeMessage::Finished(client_verify);
                self.send_handshake(&finished, out);
                self.state = State::Established;
            }
            (State::AwaitServerFinished, HandshakeMessage::Finished(verify_data)) => {
                let master = self.master.expect("master set before server Finished");
                let expected =
                    finished_verify_data(&master, "server finished", &self.transcript.hash());
                self.transcript.absorb(msg_bytes);
                if verify_data == expected {
                    self.state = State::Established;
                } else {
                    self.fail(
                        HandshakeFailure::BadFinished,
                        Some(Alert::fatal(AlertDescription::DecryptError)),
                        out,
                    );
                }
            }
            (_, _other) => {
                self.fail(
                    HandshakeFailure::Codec,
                    Some(Alert::fatal(AlertDescription::UnexpectedMessage)),
                    out,
                );
            }
        }
    }

    /// Runs certificate validation and, on success, the key exchange
    /// and client's second flight.
    fn complete_client_flight(&mut self, out: &mut SessionBuf) {
        // Certificate validation — the decision Table 7 audits. With a
        // cache attached, repeat presentations of a chain within the
        // run skip straight to the memoized verdict.
        let result = match &self.config.verify_cache {
            Some(cache) => cache.validate(
                &self.server_chain,
                &self.config.root_store,
                &self.hostname,
                self.now,
                &self.config.validation_policy,
            ),
            None => validate_chain(
                &self.server_chain,
                &self.config.root_store,
                &self.hostname,
                self.now,
                &self.config.validation_policy,
            ),
        };
        if let Err(e) = result {
            self.fail_validation(e, out);
            return;
        }

        // Pinning runs independently of the validation policy: even a
        // broken validator with a leaf pin defeats interception (§6).
        let anchor = self
            .server_chain
            .last()
            .map(|top| self.config.root_store.find_issuer(&top.tbs.issuer))
            .unwrap_or(None)
            .cloned();
        if !self.config.pin.check(&self.server_chain, anchor.as_ref()) {
            self.fail(
                HandshakeFailure::PinMismatch,
                Some(Alert::fatal(AlertDescription::BadCertificate)),
                out,
            );
            return;
        }

        // OCSP staple verification and Must-Staple enforcement (§5.2's
        // revocation machinery, done right).
        if self.config.verify_staple {
            let leaf = self.server_chain.first();
            let must_staple =
                leaf.is_some_and(|l| l.tbs.extensions.must_staple);
            match (&self.staple_bytes, leaf) {
                (Some(bytes), Some(leaf_cert)) => {
                    let issuer = self
                        .server_chain
                        .get(1)
                        .cloned()
                        .or(anchor.clone());
                    let ok = match (iotls_x509::OcspResponse::from_bytes(bytes), issuer) {
                        (Ok(resp), Some(issuer_cert)) => {
                            resp.serial == leaf_cert.tbs.serial
                                && resp.verify(&issuer_cert, self.now)
                                && resp.status == iotls_x509::RevocationStatus::Good
                        }
                        _ => false,
                    };
                    if !ok {
                        self.fail(
                            HandshakeFailure::StapleFailure,
                            Some(Alert::fatal(AlertDescription::CertificateRevoked)),
                            out,
                        );
                        return;
                    }
                }
                (None, _) if must_staple => {
                    self.fail(
                        HandshakeFailure::StapleFailure,
                        Some(Alert::fatal(AlertDescription::BadCertificate)),
                        out,
                    );
                    return;
                }
                _ => {}
            }
        }

        let suite_id = self.suite.expect("suite negotiated");
        let forward_secret = by_id(suite_id).is_some_and(|s| s.is_forward_secret())
            || by_id(suite_id).is_some_and(|s| s.is_null_or_anon() && self.server_ske.is_some());

        let (premaster, cke_payload) = if forward_secret || self.server_ske.is_some() {
            // (EC)DHE-class: verify the SKE signature with the leaf
            // key (when validating), then run a real DH agreement.
            let Some(ske) = self.server_ske.clone() else {
                self.fail(
                    HandshakeFailure::KeyExchange,
                    Some(Alert::fatal(AlertDescription::HandshakeFailure)),
                    out,
                );
                return;
            };
            if self.config.validation_policy.check_signatures {
                let leaf = match self.server_chain.first() {
                    Some(l) => l,
                    None => {
                        self.fail(
                            HandshakeFailure::KeyExchange,
                            Some(Alert::fatal(AlertDescription::HandshakeFailure)),
                            out,
                        );
                        return;
                    }
                };
                let mut signed = Vec::new();
                signed.extend_from_slice(&self.client_random);
                signed.extend_from_slice(&self.server_random);
                signed.extend_from_slice(&ske.dh_public);
                if leaf.tbs.public_key.verify(&signed, &ske.signature).is_err() {
                    self.fail(
                        HandshakeFailure::KeyExchange,
                        Some(Alert::fatal(AlertDescription::DecryptError)),
                        out,
                    );
                    return;
                }
            }
            let group = DhGroup::oakley_group1();
            let keypair = DhKeyPair::generate(&group, &mut self.rng);
            let Some(shared) = keypair.agree(&ske.dh_public) else {
                self.fail(
                    HandshakeFailure::KeyExchange,
                    Some(Alert::fatal(AlertDescription::IllegalParameter)),
                    out,
                );
                return;
            };
            (shared.to_vec(), keypair.public_bytes())
        } else {
            // RSA key transport: encrypt a fresh premaster to the leaf.
            let leaf = match self.server_chain.first() {
                Some(l) => l,
                None => {
                    self.fail(
                        HandshakeFailure::KeyExchange,
                        Some(Alert::fatal(AlertDescription::HandshakeFailure)),
                        out,
                    );
                    return;
                }
            };
            let mut premaster = vec![0u8; 48];
            self.rng.fill_bytes(&mut premaster);
            match leaf.tbs.public_key.encrypt(&premaster, &mut self.rng) {
                Ok(ct) => (premaster, ct),
                Err(_) => {
                    self.fail(
                        HandshakeFailure::KeyExchange,
                        Some(Alert::fatal(AlertDescription::InternalError)),
                        out,
                    );
                    return;
                }
            }
        };

        let master = derive_master_secret(&premaster, &self.client_random, &self.server_random);
        self.master = Some(master);

        let cke = HandshakeMessage::ClientKeyExchange(cke_payload);
        self.send_handshake(&cke, out);
        let verify_data = finished_verify_data(&master, "client finished", &self.transcript.hash());
        let finished = HandshakeMessage::Finished(verify_data);
        self.send_handshake(&finished, out);

        // Directional record protection from the RFC 5246 key block.
        let (client_key, server_key) =
            derive_write_keys(&master, &self.client_random, &self.server_random);
        self.write_cipher = Some(DirectionCipher::for_suite(suite_id, &client_key));
        self.read_cipher = Some(DirectionCipher::for_suite(suite_id, &server_key));

        self.state = State::AwaitServerFinished;
    }
}
