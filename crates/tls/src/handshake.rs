//! Handshake message structures and wire codec (RFC 5246 §7.4 shape).

use crate::codec::{mark_u16, mark_u24, patch_u16, patch_u24, CodecError, Reader, WriteExt};
use crate::extension::{
    decode_extensions, encode_extensions, encode_extensions_into, skim_extensions, Extension,
};
use crate::version::ProtocolVersion;

/// Handshake message type code points.
pub mod msg_type {
    /// client_hello (1).
    pub const CLIENT_HELLO: u8 = 1;
    /// server_hello (2).
    pub const SERVER_HELLO: u8 = 2;
    /// certificate (11).
    pub const CERTIFICATE: u8 = 11;
    /// server_key_exchange (12).
    pub const SERVER_KEY_EXCHANGE: u8 = 12;
    /// server_hello_done (14).
    pub const SERVER_HELLO_DONE: u8 = 14;
    /// certificate_status (22).
    pub const CERTIFICATE_STATUS: u8 = 22;
    /// client_key_exchange (16).
    pub const CLIENT_KEY_EXCHANGE: u8 = 16;
    /// finished (20).
    pub const FINISHED: u8 = 20;
}

/// A ClientHello.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientHello {
    /// legacy_version field (maximum version for pre-1.3 stacks).
    pub legacy_version: ProtocolVersion,
    /// 32-byte client random.
    pub random: [u8; 32],
    /// Session id (unused by the simulator but carried on the wire).
    pub session_id: Vec<u8>,
    /// Offered ciphersuite code points, in preference order.
    pub cipher_suites: Vec<u16>,
    /// Compression methods (always `[0]` here).
    pub compression_methods: Vec<u8>,
    /// Extensions, in order.
    pub extensions: Vec<Extension>,
}

impl ClientHello {
    /// Decodes a ClientHello *body* (the bytes after the 4-byte
    /// handshake header), exactly as [`HandshakeMessage::decode`]
    /// would.
    pub fn decode_body(body: &[u8]) -> Result<ClientHello, CodecError> {
        let mut b = Reader::new(body);
        let legacy_version = ProtocolVersion::from_wire(b.u16()?)
            .ok_or(CodecError::IllegalValue("client version"))?;
        let mut random = [0u8; 32];
        random.copy_from_slice(b.take(32)?);
        let session_id = b.vec8()?.to_vec();
        let mut suites_reader = Reader::new(b.vec16()?);
        let mut cipher_suites = Vec::new();
        while !suites_reader.is_empty() {
            cipher_suites.push(suites_reader.u16()?);
        }
        let compression_methods = b.vec8()?.to_vec();
        let extensions = decode_extensions(&mut b)?;
        b.finish()?;
        Ok(ClientHello {
            legacy_version,
            random,
            session_id,
            cipher_suites,
            compression_methods,
            extensions,
        })
    }

    /// The SNI hostname, if present.
    pub fn server_name(&self) -> Option<&str> {
        self.extensions.iter().find_map(|e| match e {
            Extension::ServerName(h) => Some(h.as_str()),
            _ => None,
        })
    }

    /// All protocol versions this hello advertises: the
    /// supported_versions extension when present (TLS 1.3 style),
    /// otherwise every version up to `legacy_version`.
    pub fn advertised_versions(&self) -> Vec<ProtocolVersion> {
        for e in &self.extensions {
            if let Extension::SupportedVersions(vs) = e {
                return vs.clone();
            }
        }
        ProtocolVersion::ALL
            .into_iter()
            .filter(|v| *v <= self.legacy_version)
            .collect()
    }

    /// The maximum version advertised.
    pub fn max_version(&self) -> ProtocolVersion {
        self.advertised_versions()
            .into_iter()
            .max()
            .unwrap_or(self.legacy_version)
    }

    /// True when the hello requests an OCSP staple.
    pub fn requests_ocsp(&self) -> bool {
        self.extensions
            .iter()
            .any(|e| matches!(e, Extension::StatusRequest))
    }
}

/// A ServerHello.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerHello {
    /// Negotiated protocol version.
    pub version: ProtocolVersion,
    /// 32-byte server random.
    pub random: [u8; 32],
    /// Echoed session id.
    pub session_id: Vec<u8>,
    /// Selected ciphersuite.
    pub cipher_suite: u16,
    /// Selected compression (always 0).
    pub compression_method: u8,
    /// Extensions.
    pub extensions: Vec<Extension>,
}

/// Server key exchange (DHE parameters, signed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerKeyExchange {
    /// Ephemeral DH public value.
    pub dh_public: Vec<u8>,
    /// Signature over (client_random || server_random || dh_public).
    pub signature: Vec<u8>,
}

/// A handshake-layer message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HandshakeMessage {
    /// Client's opening flight.
    ClientHello(ClientHello),
    /// Server's parameter selection.
    ServerHello(ServerHello),
    /// Certificate chain, leaf first; entries are encoded certs.
    Certificate(Vec<Vec<u8>>),
    /// Signed ephemeral DH parameters.
    ServerKeyExchange(ServerKeyExchange),
    /// Stapled OCSP response bytes.
    CertificateStatus(Vec<u8>),
    /// End of the server's first flight.
    ServerHelloDone,
    /// RSA-encrypted premaster secret or client DH public.
    ClientKeyExchange(Vec<u8>),
    /// Verify data.
    Finished(Vec<u8>),
}

impl HandshakeMessage {
    fn type_code(&self) -> u8 {
        match self {
            HandshakeMessage::ClientHello(_) => msg_type::CLIENT_HELLO,
            HandshakeMessage::ServerHello(_) => msg_type::SERVER_HELLO,
            HandshakeMessage::Certificate(_) => msg_type::CERTIFICATE,
            HandshakeMessage::ServerKeyExchange(_) => msg_type::SERVER_KEY_EXCHANGE,
            HandshakeMessage::CertificateStatus(_) => msg_type::CERTIFICATE_STATUS,
            HandshakeMessage::ServerHelloDone => msg_type::SERVER_HELLO_DONE,
            HandshakeMessage::ClientKeyExchange(_) => msg_type::CLIENT_KEY_EXCHANGE,
            HandshakeMessage::Finished(_) => msg_type::FINISHED,
        }
    }

    fn body(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            HandshakeMessage::ClientHello(ch) => {
                out.put_u16(ch.legacy_version.wire());
                out.put_slice(&ch.random);
                out.put_vec8(&ch.session_id);
                let mut suites = Vec::new();
                for s in &ch.cipher_suites {
                    suites.put_u16(*s);
                }
                out.put_vec16(&suites);
                out.put_vec8(&ch.compression_methods);
                encode_extensions(&ch.extensions, &mut out);
            }
            HandshakeMessage::ServerHello(sh) => {
                out.put_u16(sh.version.wire());
                out.put_slice(&sh.random);
                out.put_vec8(&sh.session_id);
                out.put_u16(sh.cipher_suite);
                out.put_u8(sh.compression_method);
                encode_extensions(&sh.extensions, &mut out);
            }
            HandshakeMessage::Certificate(chain) => {
                let mut list = Vec::new();
                for cert in chain {
                    list.put_vec24(cert);
                }
                out.put_vec24(&list);
            }
            HandshakeMessage::ServerKeyExchange(ske) => {
                out.put_vec16(&ske.dh_public);
                out.put_vec16(&ske.signature);
            }
            HandshakeMessage::CertificateStatus(staple) => {
                out.put_u8(1); // status_type = ocsp
                out.put_vec24(staple);
            }
            HandshakeMessage::ServerHelloDone => {}
            HandshakeMessage::ClientKeyExchange(payload) => {
                out.put_vec16(payload);
            }
            HandshakeMessage::Finished(verify_data) => {
                out.put_slice(verify_data);
            }
        }
        out
    }

    /// Encodes with the 4-byte handshake header.
    pub fn encode(&self) -> Vec<u8> {
        let body = self.body();
        let mut out = Vec::with_capacity(body.len() + 4);
        out.put_u8(self.type_code());
        out.put_vec24(&body);
        out
    }

    /// Appends [`HandshakeMessage::encode`]'s bytes to a caller-owned
    /// buffer with no intermediate body vector: every length prefix
    /// (the u24 header and the nested list lengths) is reserved and
    /// backpatched once its content has been written in place. The
    /// legacy `encode`/`body` pair is kept as the byte-identity oracle.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.put_u8(self.type_code());
        let body_mark = mark_u24(out);
        match self {
            HandshakeMessage::ClientHello(ch) => {
                out.put_u16(ch.legacy_version.wire());
                out.put_slice(&ch.random);
                out.put_vec8(&ch.session_id);
                let suites_mark = mark_u16(out);
                for s in &ch.cipher_suites {
                    out.put_u16(*s);
                }
                patch_u16(out, suites_mark);
                out.put_vec8(&ch.compression_methods);
                encode_extensions_into(&ch.extensions, out);
            }
            HandshakeMessage::ServerHello(sh) => {
                out.put_u16(sh.version.wire());
                out.put_slice(&sh.random);
                out.put_vec8(&sh.session_id);
                out.put_u16(sh.cipher_suite);
                out.put_u8(sh.compression_method);
                encode_extensions_into(&sh.extensions, out);
            }
            HandshakeMessage::Certificate(chain) => {
                let list_mark = mark_u24(out);
                for cert in chain {
                    out.put_vec24(cert);
                }
                patch_u24(out, list_mark);
            }
            HandshakeMessage::ServerKeyExchange(ske) => {
                out.put_vec16(&ske.dh_public);
                out.put_vec16(&ske.signature);
            }
            HandshakeMessage::CertificateStatus(staple) => {
                out.put_u8(1); // status_type = ocsp
                out.put_vec24(staple);
            }
            HandshakeMessage::ServerHelloDone => {}
            HandshakeMessage::ClientKeyExchange(payload) => {
                out.put_vec16(payload);
            }
            HandshakeMessage::Finished(verify_data) => {
                out.put_slice(verify_data);
            }
        }
        patch_u24(out, body_mark);
    }

    /// Decodes one handshake message; returns the message and the
    /// number of bytes consumed.
    pub fn decode(data: &[u8]) -> Result<(HandshakeMessage, usize), CodecError> {
        let mut r = Reader::new(data);
        let typ = r.u8()?;
        let body = r.vec24()?;
        let consumed = data.len() - r.remaining();
        let mut b = Reader::new(body);
        let msg = match typ {
            msg_type::CLIENT_HELLO => {
                HandshakeMessage::ClientHello(ClientHello::decode_body(body)?)
            }
            msg_type::SERVER_HELLO => {
                let version = ProtocolVersion::from_wire(b.u16()?)
                    .ok_or(CodecError::IllegalValue("server version"))?;
                let mut random = [0u8; 32];
                random.copy_from_slice(b.take(32)?);
                let session_id = b.vec8()?.to_vec();
                let cipher_suite = b.u16()?;
                let compression_method = b.u8()?;
                let extensions = decode_extensions(&mut b)?;
                b.finish()?;
                HandshakeMessage::ServerHello(ServerHello {
                    version,
                    random,
                    session_id,
                    cipher_suite,
                    compression_method,
                    extensions,
                })
            }
            msg_type::CERTIFICATE => {
                let mut list = Reader::new(b.vec24()?);
                let mut chain = Vec::new();
                while !list.is_empty() {
                    chain.push(list.vec24()?.to_vec());
                }
                b.finish()?;
                HandshakeMessage::Certificate(chain)
            }
            msg_type::SERVER_KEY_EXCHANGE => {
                let dh_public = b.vec16()?.to_vec();
                let signature = b.vec16()?.to_vec();
                b.finish()?;
                HandshakeMessage::ServerKeyExchange(ServerKeyExchange {
                    dh_public,
                    signature,
                })
            }
            msg_type::CERTIFICATE_STATUS => {
                let status_type = b.u8()?;
                if status_type != 1 {
                    return Err(CodecError::IllegalValue("status_type"));
                }
                let staple = b.vec24()?.to_vec();
                b.finish()?;
                HandshakeMessage::CertificateStatus(staple)
            }
            msg_type::SERVER_HELLO_DONE => {
                b.finish()?;
                HandshakeMessage::ServerHelloDone
            }
            msg_type::CLIENT_KEY_EXCHANGE => {
                let payload = b.vec16()?.to_vec();
                b.finish()?;
                HandshakeMessage::ClientKeyExchange(payload)
            }
            msg_type::FINISHED => HandshakeMessage::Finished(body.to_vec()),
            _ => return Err(CodecError::IllegalValue("handshake type")),
        };
        Ok((msg, consumed))
    }
}

/// Splits the next handshake message off `data` without copying,
/// returning `(type code, borrowed body, bytes consumed)`.
///
/// Only the 4-byte header is parsed; pair with [`validate_body`] or a
/// typed extractor to get [`HandshakeMessage::decode`]'s full
/// validation without its allocations.
pub fn next_raw_message(data: &[u8]) -> Result<(u8, &[u8], usize), CodecError> {
    let mut r = Reader::new(data);
    let typ = r.u8()?;
    let body = r.vec24()?;
    Ok((typ, body, data.len() - r.remaining()))
}

/// Validates a handshake message body exactly as
/// [`HandshakeMessage::decode`] would — same error cases in the same
/// order — without building the owned message.
pub fn validate_body(typ: u8, body: &[u8]) -> Result<(), CodecError> {
    let mut b = Reader::new(body);
    match typ {
        msg_type::CLIENT_HELLO => {
            ProtocolVersion::from_wire(b.u16()?).ok_or(CodecError::IllegalValue("client version"))?;
            b.take(32)?;
            b.vec8()?;
            let mut suites = Reader::new(b.vec16()?);
            while !suites.is_empty() {
                suites.u16()?;
            }
            b.vec8()?;
            skim_extensions(&mut b)?;
            b.finish()
        }
        msg_type::SERVER_HELLO => {
            server_hello_fields(body)?;
            Ok(())
        }
        msg_type::CERTIFICATE => {
            first_certificate(body)?;
            Ok(())
        }
        msg_type::SERVER_KEY_EXCHANGE => {
            b.vec16()?;
            b.vec16()?;
            b.finish()
        }
        msg_type::CERTIFICATE_STATUS => {
            if b.u8()? != 1 {
                return Err(CodecError::IllegalValue("status_type"));
            }
            b.vec24()?;
            b.finish()
        }
        msg_type::SERVER_HELLO_DONE => b.finish(),
        msg_type::CLIENT_KEY_EXCHANGE => {
            b.vec16()?;
            b.finish()
        }
        msg_type::FINISHED => Ok(()),
        _ => Err(CodecError::IllegalValue("handshake type")),
    }
}

/// Validates a ServerHello body and returns `(version, cipher_suite)`
/// without allocating.
pub fn server_hello_fields(body: &[u8]) -> Result<(ProtocolVersion, u16), CodecError> {
    let mut b = Reader::new(body);
    let version =
        ProtocolVersion::from_wire(b.u16()?).ok_or(CodecError::IllegalValue("server version"))?;
    b.take(32)?;
    b.vec8()?;
    let cipher_suite = b.u16()?;
    b.u8()?;
    skim_extensions(&mut b)?;
    b.finish()?;
    Ok((version, cipher_suite))
}

/// Validates a Certificate body and returns the first (leaf) entry as
/// a borrowed slice, or `None` for an empty chain.
pub fn first_certificate(body: &[u8]) -> Result<Option<&[u8]>, CodecError> {
    let mut b = Reader::new(body);
    let mut list = Reader::new(b.vec24()?);
    let mut leaf = None;
    while !list.is_empty() {
        let cert = list.vec24()?;
        if leaf.is_none() {
            leaf = Some(cert);
        }
    }
    b.finish()?;
    Ok(leaf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extension::sig_scheme;

    fn sample_client_hello() -> ClientHello {
        ClientHello {
            legacy_version: ProtocolVersion::Tls12,
            random: [7u8; 32],
            session_id: vec![],
            cipher_suites: vec![0xc02f, 0xc030, 0x009c, 0x0005],
            compression_methods: vec![0],
            extensions: vec![
                Extension::ServerName("iot.example.com".into()),
                Extension::SupportedGroups(vec![29, 23, 24]),
                Extension::SignatureAlgorithms(vec![sig_scheme::RSA_PKCS1_SHA256]),
            ],
        }
    }

    fn roundtrip(msg: HandshakeMessage) -> HandshakeMessage {
        let encoded = msg.encode();
        let (decoded, consumed) = HandshakeMessage::decode(&encoded).unwrap();
        assert_eq!(consumed, encoded.len());
        assert_eq!(decoded, msg);
        decoded
    }

    #[test]
    fn client_hello_roundtrip() {
        roundtrip(HandshakeMessage::ClientHello(sample_client_hello()));
    }

    #[test]
    fn server_hello_roundtrip() {
        roundtrip(HandshakeMessage::ServerHello(ServerHello {
            version: ProtocolVersion::Tls12,
            random: [9u8; 32],
            session_id: vec![1, 2, 3],
            cipher_suite: 0xc02f,
            compression_method: 0,
            extensions: vec![Extension::RenegotiationInfo],
        }));
    }

    #[test]
    fn certificate_chain_roundtrip() {
        roundtrip(HandshakeMessage::Certificate(vec![
            vec![1; 100],
            vec![2; 200],
        ]));
        roundtrip(HandshakeMessage::Certificate(vec![]));
    }

    #[test]
    fn other_messages_roundtrip() {
        roundtrip(HandshakeMessage::ServerKeyExchange(ServerKeyExchange {
            dh_public: vec![5; 96],
            signature: vec![6; 64],
        }));
        roundtrip(HandshakeMessage::CertificateStatus(vec![8; 50]));
        roundtrip(HandshakeMessage::ServerHelloDone);
        roundtrip(HandshakeMessage::ClientKeyExchange(vec![3; 64]));
        roundtrip(HandshakeMessage::Finished(vec![4; 12]));
    }

    #[test]
    fn decode_reports_consumed_for_concatenated_messages() {
        let mut buf = HandshakeMessage::ServerHelloDone.encode();
        let second = HandshakeMessage::Finished(vec![1, 2, 3]).encode();
        buf.extend_from_slice(&second);
        let (msg1, used1) = HandshakeMessage::decode(&buf).unwrap();
        assert_eq!(msg1, HandshakeMessage::ServerHelloDone);
        let (msg2, used2) = HandshakeMessage::decode(&buf[used1..]).unwrap();
        assert_eq!(msg2, HandshakeMessage::Finished(vec![1, 2, 3]));
        assert_eq!(used1 + used2, buf.len());
    }

    #[test]
    fn truncated_messages_rejected() {
        let encoded = HandshakeMessage::ClientHello(sample_client_hello()).encode();
        for cut in 1..encoded.len().min(40) {
            assert!(HandshakeMessage::decode(&encoded[..cut]).is_err());
        }
    }

    #[test]
    fn unknown_type_rejected() {
        let mut buf = vec![99u8];
        buf.put_vec24(&[]);
        assert!(HandshakeMessage::decode(&buf).is_err());
    }

    fn sample_messages() -> Vec<HandshakeMessage> {
        vec![
            HandshakeMessage::ClientHello(sample_client_hello()),
            HandshakeMessage::ServerHello(ServerHello {
                version: ProtocolVersion::Tls12,
                random: [9u8; 32],
                session_id: vec![1, 2, 3],
                cipher_suite: 0xc02f,
                compression_method: 0,
                extensions: vec![Extension::RenegotiationInfo],
            }),
            HandshakeMessage::Certificate(vec![vec![1; 40], vec![2; 60]]),
            HandshakeMessage::ServerKeyExchange(ServerKeyExchange {
                dh_public: vec![5; 96],
                signature: vec![6; 64],
            }),
            HandshakeMessage::CertificateStatus(vec![8; 50]),
            HandshakeMessage::ServerHelloDone,
            HandshakeMessage::ClientKeyExchange(vec![3; 64]),
            HandshakeMessage::Finished(vec![4; 12]),
        ]
    }

    #[test]
    fn encode_into_matches_legacy_encode() {
        for msg in sample_messages() {
            let mut inplace = Vec::new();
            msg.encode_into(&mut inplace);
            assert_eq!(inplace, msg.encode(), "{msg:?}");
        }
        // Degenerate shapes the samples miss: empty chain, empty
        // session id with no extensions.
        for msg in [
            HandshakeMessage::Certificate(vec![]),
            HandshakeMessage::ClientHello(ClientHello {
                legacy_version: ProtocolVersion::Tls10,
                random: [0u8; 32],
                session_id: vec![],
                cipher_suites: vec![],
                compression_methods: vec![0],
                extensions: vec![],
            }),
        ] {
            let mut inplace = Vec::new();
            msg.encode_into(&mut inplace);
            assert_eq!(inplace, msg.encode(), "{msg:?}");
        }
    }

    #[test]
    fn raw_skim_agrees_with_decode() {
        for msg in sample_messages() {
            let encoded = msg.encode();
            // Valid encoding plus every single-byte corruption.
            let mut cases = vec![encoded.clone()];
            for i in 0..encoded.len() {
                for delta in [1u8, 0x80] {
                    let mut c = encoded.clone();
                    c[i] = c[i].wrapping_add(delta);
                    cases.push(c);
                }
            }
            for case in cases {
                let decoded = HandshakeMessage::decode(&case);
                let skimmed = next_raw_message(&case)
                    .and_then(|(typ, body, used)| validate_body(typ, body).map(|()| used));
                match (&decoded, &skimmed) {
                    (Ok((_, used_d)), Ok(used_s)) => assert_eq!(used_d, used_s),
                    (Err(de), Err(se)) => assert_eq!(de, se, "error mismatch on {case:02x?}"),
                    _ => panic!("decode/skim diverge on {case:02x?}: {decoded:?} vs {skimmed:?}"),
                }
            }
        }
    }

    #[test]
    fn typed_extractors_match_decoded_fields() {
        for msg in sample_messages() {
            let encoded = msg.encode();
            let (typ, body, _) = next_raw_message(&encoded).unwrap();
            match msg {
                HandshakeMessage::ClientHello(ch) => {
                    assert_eq!(ClientHello::decode_body(body).unwrap(), ch);
                }
                HandshakeMessage::ServerHello(sh) => {
                    assert_eq!(
                        server_hello_fields(body).unwrap(),
                        (sh.version, sh.cipher_suite)
                    );
                }
                HandshakeMessage::Certificate(chain) => {
                    assert_eq!(
                        first_certificate(body).unwrap(),
                        chain.first().map(Vec::as_slice)
                    );
                }
                _ => assert!(validate_body(typ, body).is_ok()),
            }
        }
        let empty_chain = HandshakeMessage::Certificate(vec![]).encode();
        let (_, body, _) = next_raw_message(&empty_chain).unwrap();
        assert_eq!(first_certificate(body).unwrap(), None);
    }

    #[test]
    fn advertised_versions_without_extension() {
        let ch = sample_client_hello();
        assert_eq!(
            ch.advertised_versions(),
            vec![
                ProtocolVersion::Ssl30,
                ProtocolVersion::Tls10,
                ProtocolVersion::Tls11,
                ProtocolVersion::Tls12
            ]
        );
        assert_eq!(ch.max_version(), ProtocolVersion::Tls12);
    }

    #[test]
    fn advertised_versions_with_extension() {
        let mut ch = sample_client_hello();
        ch.extensions.push(Extension::SupportedVersions(vec![
            ProtocolVersion::Tls13,
            ProtocolVersion::Tls12,
        ]));
        assert_eq!(
            ch.advertised_versions(),
            vec![ProtocolVersion::Tls13, ProtocolVersion::Tls12]
        );
        assert_eq!(ch.max_version(), ProtocolVersion::Tls13);
    }

    #[test]
    fn sni_and_ocsp_accessors() {
        let mut ch = sample_client_hello();
        assert_eq!(ch.server_name(), Some("iot.example.com"));
        assert!(!ch.requests_ocsp());
        ch.extensions.push(Extension::StatusRequest);
        assert!(ch.requests_ocsp());
    }
}
