//! The TLS server state machine (sans-IO).
//!
//! Used by the simulated cloud endpoints *and* by the MITM engine in
//! `iotls` (the attacker impersonates the server side of intercepted
//! connections, exactly as mitmproxy does in the paper). The
//! [`ServerConfig`] exposes the knobs the experiments need: the
//! certificate chain presented, supported versions/suites, an
//! optional forced (old) negotiated version for downgrade probing,
//! and a "mute" mode that never responds (IncompleteHandshake).
//!
//! Like [`crate::client::ClientConnection`], the connection is
//! unbuffered: [`ServerConnection::process`] consumes incoming bytes
//! and appends replies to a caller-owned
//! [`SessionBuf`], with per-session scratch
//! reusable across sessions via [`ServerConnection::with_scratch`].
//! A mute server performs all the same state transitions and
//! bookkeeping but writes no bytes.

use crate::alert::{Alert, AlertDescription, AlertLevel};
use crate::ciphersuite::by_id;
use crate::codec::CodecError;
use crate::handshake::{ClientHello, HandshakeMessage, ServerHello, ServerKeyExchange};
use crate::record::{write_record, ContentType, Deframer, SessionBuf};
use crate::session::{
    derive_master_secret, derive_write_keys, finished_verify_data, DirectionCipher,
    SessionScratch, Status, Transcript,
};
use crate::version::ProtocolVersion;
use iotls_crypto::dh::{DhGroup, DhKeyPair};
use iotls_crypto::drbg::Drbg;
use iotls_crypto::rsa::RsaPrivateKey;
use iotls_x509::Certificate;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// A shared session cache for RFC 5246 session-ID resumption:
/// session id → master secret. Clone the handle into every
/// [`ServerConfig`] that should share sessions.
#[derive(Debug, Clone, Default)]
pub struct SessionCache {
    inner: Arc<Mutex<HashMap<Vec<u8>, [u8; 48]>>>,
}

impl SessionCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores a session.
    pub fn insert(&self, session_id: Vec<u8>, master: [u8; 48]) {
        self.inner.lock().expect("session cache lock poisoned").insert(session_id, master);
    }

    /// Looks up a session's master secret.
    pub fn get(&self, session_id: &[u8]) -> Option<[u8; 48]> {
        self.inner.lock().expect("session cache lock poisoned").get(session_id).copied()
    }

    /// Number of cached sessions.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("session cache lock poisoned").len()
    }

    /// True when no sessions are cached.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().expect("session cache lock poisoned").is_empty()
    }
}

/// Server-side configuration.
#[derive(Clone)]
pub struct ServerConfig {
    /// Certificate chain presented to clients, leaf first.
    pub chain: Vec<Certificate>,
    /// Private key matching the leaf.
    pub key: RsaPrivateKey,
    /// Versions the server accepts.
    pub versions: Vec<ProtocolVersion>,
    /// Suites in server preference order.
    pub cipher_suites: Vec<u16>,
    /// Staple to send when the client requests one.
    pub ocsp_staple: Option<Vec<u8>>,
    /// When set, negotiate exactly this version if the client
    /// advertises it (downgrade-negotiation experiments); otherwise
    /// alert `protocol_version`.
    pub forced_version: Option<ProtocolVersion>,
    /// Never respond to anything (IncompleteHandshake experiments).
    pub mute: bool,
    /// When set, the server issues session IDs and accepts
    /// abbreviated (resumed) handshakes against this cache.
    pub session_cache: Option<SessionCache>,
}

impl ServerConfig {
    /// A typical cloud endpoint: TLS 1.0–1.3 accepted, modern and
    /// legacy RSA suites offered, preferring forward secrecy.
    pub fn typical(chain: Vec<Certificate>, key: RsaPrivateKey) -> ServerConfig {
        ServerConfig {
            chain,
            key,
            versions: vec![
                ProtocolVersion::Tls10,
                ProtocolVersion::Tls11,
                ProtocolVersion::Tls12,
                ProtocolVersion::Tls13,
            ],
            cipher_suites: vec![
                0x1301, 0x1303, 0xc02f, 0xc030, 0xcca8, 0x009e, 0x009c, 0x002f, 0x0035, 0x000a,
                0x0005,
            ],
            ocsp_staple: None,
            forced_version: None,
            mute: false,
            session_cache: None,
        }
    }
}

/// Why the server side ended a handshake.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerFailure {
    /// No common protocol version.
    NoCommonVersion,
    /// No common ciphersuite.
    NoCommonSuite,
    /// ClientKeyExchange could not be processed.
    KeyExchange,
    /// Client Finished did not verify.
    BadFinished,
    /// Wire-format error.
    Codec,
    /// Peer sent a fatal alert.
    PeerAlert(Alert),
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum State {
    AwaitClientHello,
    AwaitClientKeyExchange,
    AwaitClientFinished,
    Established,
    Failed(ServerFailure),
    Closed,
}

/// A sans-IO TLS server connection.
pub struct ServerConnection {
    config: ServerConfig,
    rng: Drbg,
    state: State,
    scratch: SessionScratch,
    transcript: Transcript,
    client_hello: Option<ClientHello>,
    client_random: [u8; 32],
    server_random: [u8; 32],
    version: Option<ProtocolVersion>,
    suite: Option<u16>,
    dh_keypair: Option<DhKeyPair>,
    master: Option<[u8; 48]>,
    session_id: Vec<u8>,
    resumed: bool,
    alerts_sent: Vec<Alert>,
    alerts_received: Vec<Alert>,
    write_cipher: Option<DirectionCipher>,
    read_cipher: Option<DirectionCipher>,
}

impl ServerConnection {
    /// Creates a server connection.
    pub fn new(config: ServerConfig, rng: Drbg) -> Self {
        Self::with_scratch(config, rng, SessionScratch::new())
    }

    /// Like [`ServerConnection::new`], but reusing a caller-owned
    /// [`SessionScratch`] (reset first); reclaim it with
    /// [`ServerConnection::into_scratch`] when the session ends.
    pub fn with_scratch(config: ServerConfig, mut rng: Drbg, mut scratch: SessionScratch) -> Self {
        scratch.reset();
        let mut server_random = [0u8; 32];
        rng.fill_bytes(&mut server_random);
        ServerConnection {
            config,
            rng,
            state: State::AwaitClientHello,
            scratch,
            transcript: Transcript::new(),
            client_hello: None,
            client_random: [0u8; 32],
            server_random,
            version: None,
            suite: None,
            dh_keypair: None,
            master: None,
            session_id: Vec::new(),
            resumed: false,
            alerts_sent: Vec::new(),
            alerts_received: Vec::new(),
            write_cipher: None,
            read_cipher: None,
        }
    }

    /// Consumes the connection, handing back its (warm) scratch for
    /// the next session in the lane.
    pub fn into_scratch(self) -> SessionScratch {
        self.scratch
    }

    /// Drains bytes destined for the transport (legacy buffered API).
    pub fn take_output(&mut self) -> Vec<u8> {
        if self.config.mute {
            self.scratch.pending.clear();
            return Vec::new();
        }
        self.scratch.pending.take_vec()
    }

    /// The connection's coarse status.
    pub fn status(&self) -> Status {
        match &self.state {
            State::Established => Status::Established,
            State::Failed(_) => Status::Failed,
            State::Closed => Status::Closed,
            _ => Status::Handshaking,
        }
    }

    /// True once the handshake completed.
    pub fn is_established(&self) -> bool {
        self.state == State::Established
    }

    /// The terminal failure, if any.
    pub fn failure(&self) -> Option<&ServerFailure> {
        match &self.state {
            State::Failed(f) => Some(f),
            _ => None,
        }
    }

    /// The ClientHello observed, once received — the MITM engine's
    /// fingerprinting input.
    pub fn observed_client_hello(&self) -> Option<&ClientHello> {
        self.client_hello.as_ref()
    }

    /// Alerts received from the client — the root-store probe's
    /// observable.
    pub fn alerts_received(&self) -> &[Alert] {
        &self.alerts_received
    }

    /// Negotiated version, once chosen.
    pub fn negotiated_version(&self) -> Option<ProtocolVersion> {
        self.version
    }

    /// Negotiated suite, once chosen.
    pub fn negotiated_suite(&self) -> Option<u16> {
        self.suite
    }

    /// True when this connection resumed a cached session.
    pub fn is_resumed(&self) -> bool {
        self.resumed
    }

    /// Encodes application data into `out` (only valid once
    /// established). Protection is applied in the tx scratch before
    /// framing; the stream ciphers' keystream order is unaffected by
    /// fragment boundaries, so wire bytes match the legacy
    /// fragment-then-encrypt path.
    pub fn send_application_data_into(&mut self, data: &[u8], out: &mut SessionBuf) {
        assert!(self.is_established(), "connection not established");
        self.scratch.tx.clear();
        self.scratch.tx.extend_from_slice(data);
        if let Some(c) = &mut self.write_cipher {
            c.apply(&mut self.scratch.tx);
        }
        if !self.config.mute {
            write_record(
                ContentType::ApplicationData,
                self.version.unwrap_or(ProtocolVersion::Tls12),
                &self.scratch.tx,
                out,
            );
        }
    }

    /// Queues application data into the internal pending buffer
    /// (legacy buffered API).
    pub fn send_application_data(&mut self, data: &[u8]) {
        let mut pending = std::mem::take(&mut self.scratch.pending);
        self.send_application_data_into(data, &mut pending);
        self.scratch.pending = pending;
    }

    /// Appends decrypted application data from the client to `sink`
    /// and clears the internal accumulator (keeping its allocation).
    pub fn drain_application_data_into(&mut self, sink: &mut Vec<u8>) {
        sink.extend_from_slice(&self.scratch.app);
        self.scratch.app.clear();
    }

    /// Drains decrypted application data from the client.
    pub fn take_application_data(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.scratch.app)
    }

    /// The sans-IO pump: consumes `incoming` transport bytes and
    /// appends every reply record to the caller-owned `out` (nothing,
    /// for a mute server).
    pub fn process(&mut self, incoming: &[u8], out: &mut SessionBuf) -> Status {
        let _ = self.process_bytes(incoming, out);
        self.status()
    }

    /// Feeds transport bytes into the connection, buffering replies
    /// internally (legacy buffered API over the same sans-IO core).
    pub fn read_tls(&mut self, data: &[u8]) -> Result<(), CodecError> {
        let mut pending = std::mem::take(&mut self.scratch.pending);
        let result = self.process_bytes(data, &mut pending);
        self.scratch.pending = pending;
        result
    }

    fn process_bytes(&mut self, incoming: &[u8], out: &mut SessionBuf) -> Result<(), CodecError> {
        self.scratch.deframer.push(incoming);
        // Disjoint-field dance mirroring the client: deframer and
        // record-payload scratch move out of `self` (Vec moves, no
        // allocation) so the loop can borrow both.
        let mut deframer = std::mem::take(&mut self.scratch.deframer);
        let mut rx = std::mem::take(&mut self.scratch.rx);
        let result = self.process_deframed(&mut deframer, &mut rx, out);
        self.scratch.deframer = deframer;
        self.scratch.rx = rx;
        result
    }

    fn process_deframed(
        &mut self,
        deframer: &mut Deframer,
        rx: &mut Vec<u8>,
        out: &mut SessionBuf,
    ) -> Result<(), CodecError> {
        loop {
            let content_type = match deframer.pop_ref() {
                Ok(Some(rec)) => {
                    rx.clear();
                    rx.extend_from_slice(rec.payload);
                    rec.content_type
                }
                Ok(None) => return Ok(()),
                Err(e) => return Err(e),
            };
            self.process_record_ref(content_type, rx, out)?;
        }
    }

    fn send_handshake(&mut self, msg: &HandshakeMessage, out: &mut SessionBuf) {
        self.scratch.tx.clear();
        msg.encode_into(&mut self.scratch.tx);
        self.transcript.absorb(&self.scratch.tx);
        if !self.config.mute {
            let version = self.version.unwrap_or(ProtocolVersion::Tls12);
            write_record(ContentType::Handshake, version, &self.scratch.tx, out);
        }
    }

    fn send_alert(&mut self, alert: Alert, out: &mut SessionBuf) {
        self.alerts_sent.push(alert);
        if !self.config.mute {
            let version = self.version.unwrap_or(ProtocolVersion::Tls12);
            write_record(ContentType::Alert, version, &alert.to_bytes(), out);
        }
    }

    fn fail(&mut self, failure: ServerFailure, alert: Option<Alert>, out: &mut SessionBuf) {
        if let Some(a) = alert {
            self.send_alert(a, out);
        }
        self.state = State::Failed(failure);
    }

    fn process_record_ref(
        &mut self,
        content_type: ContentType,
        payload: &mut Vec<u8>,
        out: &mut SessionBuf,
    ) -> Result<(), CodecError> {
        match content_type {
            ContentType::Alert => {
                if let Some(alert) = Alert::from_bytes(payload) {
                    self.alerts_received.push(alert);
                    if alert.level == AlertLevel::Fatal {
                        self.state = State::Failed(ServerFailure::PeerAlert(alert));
                    } else if alert.description == AlertDescription::CloseNotify {
                        self.state = State::Closed;
                    }
                }
                Ok(())
            }
            ContentType::Handshake => {
                let mut buf: &[u8] = payload;
                while !buf.is_empty() {
                    let (msg, used) = match HandshakeMessage::decode(buf) {
                        Ok(ok) => ok,
                        Err(e) => {
                            self.fail(
                                ServerFailure::Codec,
                                Some(Alert::fatal(AlertDescription::UnexpectedMessage)),
                                out,
                            );
                            return Err(e);
                        }
                    };
                    let msg_bytes = &buf[..used];
                    buf = &buf[used..];
                    self.process_handshake(msg, msg_bytes, out);
                    if matches!(self.state, State::Failed(_)) {
                        break;
                    }
                }
                Ok(())
            }
            ContentType::ApplicationData => {
                if let Some(c) = &mut self.read_cipher {
                    c.apply(payload);
                }
                self.scratch.app.extend_from_slice(payload);
                Ok(())
            }
            ContentType::ChangeCipherSpec => Ok(()),
        }
    }

    fn process_handshake(&mut self, msg: HandshakeMessage, msg_bytes: &[u8], out: &mut SessionBuf) {
        match (&self.state, msg) {
            (State::AwaitClientHello, HandshakeMessage::ClientHello(ch)) => {
                self.transcript.absorb(msg_bytes);
                self.client_random = ch.random;
                self.client_hello = Some(ch.clone());
                if self.config.mute {
                    // Swallow everything; the client sees silence.
                    return;
                }
                self.negotiate(&ch, out);
            }
            (State::AwaitClientKeyExchange, HandshakeMessage::ClientKeyExchange(payload)) => {
                self.transcript.absorb(msg_bytes);
                let premaster = if let Some(kp) = &self.dh_keypair {
                    match kp.agree(&payload) {
                        Some(shared) => shared.to_vec(),
                        None => {
                            self.fail(
                                ServerFailure::KeyExchange,
                                Some(Alert::fatal(AlertDescription::IllegalParameter)),
                                out,
                            );
                            return;
                        }
                    }
                } else {
                    match self.config.key.decrypt(&payload) {
                        Ok(pm) => pm,
                        Err(_) => {
                            self.fail(
                                ServerFailure::KeyExchange,
                                Some(Alert::fatal(AlertDescription::DecryptError)),
                                out,
                            );
                            return;
                        }
                    }
                };
                let master =
                    derive_master_secret(&premaster, &self.client_random, &self.server_random);
                self.master = Some(master);
                self.state = State::AwaitClientFinished;
            }
            (State::AwaitClientFinished, HandshakeMessage::Finished(verify_data)) => {
                let master = self.master.expect("master set before client Finished");
                let expected =
                    finished_verify_data(&master, "client finished", &self.transcript.hash());
                self.transcript.absorb(msg_bytes);
                if verify_data != expected {
                    self.fail(
                        ServerFailure::BadFinished,
                        Some(Alert::fatal(AlertDescription::DecryptError)),
                        out,
                    );
                    return;
                }
                if self.resumed {
                    // Abbreviated handshake: the server already sent
                    // its Finished; the client's closes the exchange.
                    self.state = State::Established;
                    return;
                }
                let server_verify =
                    finished_verify_data(&master, "server finished", &self.transcript.hash());
                let finished = HandshakeMessage::Finished(server_verify);
                self.send_handshake(&finished, out);
                let suite_id = self.suite.expect("suite negotiated");
                let (client_key, server_key) =
                    derive_write_keys(&master, &self.client_random, &self.server_random);
                self.write_cipher = Some(DirectionCipher::for_suite(suite_id, &server_key));
                self.read_cipher = Some(DirectionCipher::for_suite(suite_id, &client_key));
                if let Some(cache) = &self.config.session_cache {
                    if !self.session_id.is_empty() {
                        cache.insert(self.session_id.clone(), master);
                    }
                }
                self.state = State::Established;
            }
            (_, _other) => {
                self.fail(
                    ServerFailure::Codec,
                    Some(Alert::fatal(AlertDescription::UnexpectedMessage)),
                    out,
                );
            }
        }
    }

    /// Picks version and suite, then emits the server's first flight.
    fn negotiate(&mut self, ch: &ClientHello, out: &mut SessionBuf) {
        let advertised = ch.advertised_versions();
        let version = match self.config.forced_version {
            Some(forced) => {
                if advertised.contains(&forced) {
                    Some(forced)
                } else {
                    None
                }
            }
            None => advertised
                .iter()
                .copied()
                .filter(|v| self.config.versions.contains(v))
                .max(),
        };
        let Some(version) = version else {
            self.fail(
                ServerFailure::NoCommonVersion,
                Some(Alert::fatal(AlertDescription::ProtocolVersion)),
                out,
            );
            return;
        };

        let suite = self
            .config
            .cipher_suites
            .iter()
            .copied()
            .find(|s| {
                ch.cipher_suites.contains(s)
                    && by_id(*s).is_some_and(|info| {
                        if version == ProtocolVersion::Tls13 {
                            info.is_tls13()
                        } else {
                            !info.is_tls13()
                        }
                    })
            });
        let Some(suite) = suite else {
            self.fail(
                ServerFailure::NoCommonSuite,
                Some(Alert::fatal(AlertDescription::HandshakeFailure)),
                out,
            );
            return;
        };

        self.version = Some(version);
        self.suite = Some(suite);

        // Session resumption: a known session id short-circuits to the
        // abbreviated handshake (RFC 5246 §7.3).
        if let Some(cache) = &self.config.session_cache {
            if !ch.session_id.is_empty() {
                if let Some(master) = cache.get(&ch.session_id) {
                    self.resumed = true;
                    self.session_id = ch.session_id.clone();
                    self.master = Some(master);
                    let hello = HandshakeMessage::ServerHello(ServerHello {
                        version,
                        random: self.server_random,
                        session_id: ch.session_id.clone(),
                        cipher_suite: suite,
                        compression_method: 0,
                        extensions: Vec::new(),
                    });
                    self.send_handshake(&hello, out);
                    let server_verify = finished_verify_data(
                        &master,
                        "server finished",
                        &self.transcript.hash(),
                    );
                    self.send_handshake(&HandshakeMessage::Finished(server_verify), out);
                    let (client_key, server_key) =
                        derive_write_keys(&master, &self.client_random, &self.server_random);
                    self.write_cipher = Some(DirectionCipher::for_suite(suite, &server_key));
                    self.read_cipher = Some(DirectionCipher::for_suite(suite, &client_key));
                    self.state = State::AwaitClientFinished;
                    return;
                }
            }
        }

        // Full handshake; issue a session id when resumption is on.
        if self.config.session_cache.is_some() {
            let mut id = [0u8; 16];
            self.rng.fill_bytes(&mut id);
            self.session_id = id.to_vec();
        }
        let hello = HandshakeMessage::ServerHello(ServerHello {
            version,
            random: self.server_random,
            session_id: self.session_id.clone(),
            cipher_suite: suite,
            compression_method: 0,
            extensions: Vec::new(),
        });
        self.send_handshake(&hello, out);

        let chain_bytes: Vec<Vec<u8>> =
            self.config.chain.iter().map(|c| c.to_bytes()).collect();
        let cert_msg = HandshakeMessage::Certificate(chain_bytes);
        self.send_handshake(&cert_msg, out);

        if ch.requests_ocsp() {
            if let Some(staple) = self.config.ocsp_staple.clone() {
                let status = HandshakeMessage::CertificateStatus(staple);
                self.send_handshake(&status, out);
            }
        }

        let forward_secret = by_id(suite).is_some_and(|s| {
            s.is_forward_secret() || matches!(s.kx, crate::ciphersuite::KeyExchange::DhAnon)
        });
        if forward_secret {
            let group = DhGroup::oakley_group1();
            let keypair = DhKeyPair::generate(&group, &mut self.rng);
            let mut signed = Vec::new();
            signed.extend_from_slice(&self.client_random);
            signed.extend_from_slice(&self.server_random);
            signed.extend_from_slice(&keypair.public_bytes());
            let signature = self.config.key.sign(&signed);
            let ske = HandshakeMessage::ServerKeyExchange(ServerKeyExchange {
                dh_public: keypair.public_bytes(),
                signature,
            });
            self.dh_keypair = Some(keypair);
            self.send_handshake(&ske, out);
        }

        self.send_handshake(&HandshakeMessage::ServerHelloDone, out);
        self.state = State::AwaitClientKeyExchange;
    }
}
