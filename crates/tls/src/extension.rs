//! TLS hello extensions (subset the reproduction needs).
//!
//! The extension *set and order* in a ClientHello is a core input to
//! TLS fingerprinting (§5.3 of the paper), so the codec preserves
//! both; unknown extensions survive as [`Extension::Raw`].

use crate::codec::{mark_u16, patch_u16, CodecError, Reader, WriteExt};
use crate::version::ProtocolVersion;

/// Extension type code points (IANA).
pub mod ext_type {
    /// server_name (SNI).
    pub const SERVER_NAME: u16 = 0;
    /// status_request (OCSP stapling).
    pub const STATUS_REQUEST: u16 = 5;
    /// supported_groups (named curves / FFDHE groups).
    pub const SUPPORTED_GROUPS: u16 = 10;
    /// ec_point_formats.
    pub const EC_POINT_FORMATS: u16 = 11;
    /// signature_algorithms.
    pub const SIGNATURE_ALGORITHMS: u16 = 13;
    /// application_layer_protocol_negotiation.
    pub const ALPN: u16 = 16;
    /// session_ticket.
    pub const SESSION_TICKET: u16 = 35;
    /// supported_versions (TLS 1.3).
    pub const SUPPORTED_VERSIONS: u16 = 43;
    /// key_share (TLS 1.3).
    pub const KEY_SHARE: u16 = 51;
    /// renegotiation_info.
    pub const RENEGOTIATION_INFO: u16 = 0xff01;
}

/// Signature scheme code points (subset).
pub mod sig_scheme {
    /// rsa_pkcs1_sha1 — deprecated.
    pub const RSA_PKCS1_SHA1: u16 = 0x0201;
    /// rsa_pkcs1_sha256.
    pub const RSA_PKCS1_SHA256: u16 = 0x0401;
    /// rsa_pss_rsae_sha256.
    pub const RSA_PSS_RSAE_SHA256: u16 = 0x0804;
    /// ecdsa_secp256r1_sha256.
    pub const ECDSA_SECP256R1_SHA256: u16 = 0x0403;
}

/// A decoded hello extension.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Extension {
    /// SNI with a single DNS hostname.
    ServerName(String),
    /// OCSP stapling request (empty ocsp payload).
    StatusRequest,
    /// Named groups the client supports.
    SupportedGroups(Vec<u16>),
    /// EC point formats.
    EcPointFormats(Vec<u8>),
    /// Signature schemes the client accepts.
    SignatureAlgorithms(Vec<u16>),
    /// ALPN protocol names.
    Alpn(Vec<String>),
    /// Empty session ticket.
    SessionTicket,
    /// supported_versions list (client form).
    SupportedVersions(Vec<ProtocolVersion>),
    /// key_share (opaque in this reproduction).
    KeyShare(Vec<u8>),
    /// Empty renegotiation_info.
    RenegotiationInfo,
    /// Any extension the codec does not model.
    Raw {
        /// Extension type code point.
        typ: u16,
        /// Raw payload.
        data: Vec<u8>,
    },
}

impl Extension {
    /// The extension's type code point.
    pub fn typ(&self) -> u16 {
        match self {
            Extension::ServerName(_) => ext_type::SERVER_NAME,
            Extension::StatusRequest => ext_type::STATUS_REQUEST,
            Extension::SupportedGroups(_) => ext_type::SUPPORTED_GROUPS,
            Extension::EcPointFormats(_) => ext_type::EC_POINT_FORMATS,
            Extension::SignatureAlgorithms(_) => ext_type::SIGNATURE_ALGORITHMS,
            Extension::Alpn(_) => ext_type::ALPN,
            Extension::SessionTicket => ext_type::SESSION_TICKET,
            Extension::SupportedVersions(_) => ext_type::SUPPORTED_VERSIONS,
            Extension::KeyShare(_) => ext_type::KEY_SHARE,
            Extension::RenegotiationInfo => ext_type::RENEGOTIATION_INFO,
            Extension::Raw { typ, .. } => *typ,
        }
    }

    /// Encodes the extension payload (without the type/length header).
    pub fn payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Extension::ServerName(host) => {
                // server_name_list: one host_name entry.
                let mut entry = Vec::new();
                entry.put_u8(0); // name_type = host_name
                entry.put_vec16(host.as_bytes());
                out.put_vec16(&entry);
            }
            Extension::StatusRequest => {
                out.put_u8(1); // status_type = ocsp
                out.put_u16(0); // responder_id_list
                out.put_u16(0); // request_extensions
            }
            Extension::SupportedGroups(groups) => {
                let mut list = Vec::new();
                for g in groups {
                    list.put_u16(*g);
                }
                out.put_vec16(&list);
            }
            Extension::EcPointFormats(formats) => {
                out.put_vec8(formats);
            }
            Extension::SignatureAlgorithms(schemes) => {
                let mut list = Vec::new();
                for s in schemes {
                    list.put_u16(*s);
                }
                out.put_vec16(&list);
            }
            Extension::Alpn(protocols) => {
                let mut list = Vec::new();
                for p in protocols {
                    list.put_vec8(p.as_bytes());
                }
                out.put_vec16(&list);
            }
            Extension::SessionTicket => {}
            Extension::SupportedVersions(versions) => {
                let mut list = Vec::new();
                for v in versions {
                    list.put_u16(v.wire());
                }
                out.put_vec8(&list);
            }
            Extension::KeyShare(data) => out.put_slice(data),
            Extension::RenegotiationInfo => out.put_u8(0),
            Extension::Raw { data, .. } => out.put_slice(data),
        }
        out
    }

    /// Encodes with the `type(u16) length(u16) payload` header.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.put_u16(self.typ());
        out.put_vec16(&self.payload());
    }

    /// [`Extension::encode`] without materializing the payload in a
    /// temporary vector: length prefixes are reserved and backpatched
    /// after the content lands in place. Byte-identical to the legacy
    /// path (the roundtrip tests pin the agreement).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.put_u16(self.typ());
        let ext_mark = mark_u16(out);
        match self {
            Extension::ServerName(host) => {
                let list_mark = mark_u16(out);
                out.put_u8(0); // name_type = host_name
                out.put_vec16(host.as_bytes());
                patch_u16(out, list_mark);
            }
            Extension::StatusRequest => {
                out.put_u8(1); // status_type = ocsp
                out.put_u16(0); // responder_id_list
                out.put_u16(0); // request_extensions
            }
            Extension::SupportedGroups(groups) => {
                let list_mark = mark_u16(out);
                for g in groups {
                    out.put_u16(*g);
                }
                patch_u16(out, list_mark);
            }
            Extension::EcPointFormats(formats) => {
                out.put_vec8(formats);
            }
            Extension::SignatureAlgorithms(schemes) => {
                let list_mark = mark_u16(out);
                for s in schemes {
                    out.put_u16(*s);
                }
                patch_u16(out, list_mark);
            }
            Extension::Alpn(protocols) => {
                let list_mark = mark_u16(out);
                for p in protocols {
                    out.put_vec8(p.as_bytes());
                }
                patch_u16(out, list_mark);
            }
            Extension::SessionTicket => {}
            Extension::SupportedVersions(versions) => {
                out.put_u8((versions.len() * 2) as u8);
                for v in versions {
                    out.put_u16(v.wire());
                }
            }
            Extension::KeyShare(data) => out.put_slice(data),
            Extension::RenegotiationInfo => out.put_u8(0),
            Extension::Raw { data, .. } => out.put_slice(data),
        }
        patch_u16(out, ext_mark);
    }

    /// Decodes one extension from `(typ, payload)`.
    pub fn decode(typ: u16, payload: &[u8]) -> Result<Extension, CodecError> {
        let mut r = Reader::new(payload);
        let ext = match typ {
            ext_type::SERVER_NAME => {
                let mut list = Reader::new(r.vec16()?);
                let name_type = list.u8()?;
                if name_type != 0 {
                    return Err(CodecError::IllegalValue("sni name_type"));
                }
                let host = list.vec16()?;
                list.finish()?;
                Extension::ServerName(
                    String::from_utf8(host.to_vec())
                        .map_err(|_| CodecError::IllegalValue("sni utf-8"))?,
                )
            }
            ext_type::STATUS_REQUEST => {
                let status_type = r.u8()?;
                if status_type != 1 {
                    return Err(CodecError::IllegalValue("status_type"));
                }
                r.vec16()?;
                r.vec16()?;
                Extension::StatusRequest
            }
            ext_type::SUPPORTED_GROUPS => {
                let mut list = Reader::new(r.vec16()?);
                let mut groups = Vec::new();
                while !list.is_empty() {
                    groups.push(list.u16()?);
                }
                Extension::SupportedGroups(groups)
            }
            ext_type::EC_POINT_FORMATS => Extension::EcPointFormats(r.vec8()?.to_vec()),
            ext_type::SIGNATURE_ALGORITHMS => {
                let mut list = Reader::new(r.vec16()?);
                let mut schemes = Vec::new();
                while !list.is_empty() {
                    schemes.push(list.u16()?);
                }
                Extension::SignatureAlgorithms(schemes)
            }
            ext_type::ALPN => {
                let mut list = Reader::new(r.vec16()?);
                let mut protocols = Vec::new();
                while !list.is_empty() {
                    protocols.push(
                        String::from_utf8(list.vec8()?.to_vec())
                            .map_err(|_| CodecError::IllegalValue("alpn utf-8"))?,
                    );
                }
                Extension::Alpn(protocols)
            }
            ext_type::SESSION_TICKET if payload.is_empty() => Extension::SessionTicket,
            ext_type::SUPPORTED_VERSIONS => {
                let mut list = Reader::new(r.vec8()?);
                let mut versions = Vec::new();
                while !list.is_empty() {
                    if let Some(v) = ProtocolVersion::from_wire(list.u16()?) {
                        versions.push(v);
                    }
                    // GREASE / unknown values are skipped, as real
                    // parsers do.
                }
                Extension::SupportedVersions(versions)
            }
            ext_type::KEY_SHARE => Extension::KeyShare(payload.to_vec()),
            ext_type::RENEGOTIATION_INFO if payload == [0] => Extension::RenegotiationInfo,
            _ => Extension::Raw {
                typ,
                data: payload.to_vec(),
            },
        };
        Ok(ext)
    }
}

/// Encodes an extension block (u16 total length + entries).
pub fn encode_extensions(exts: &[Extension], out: &mut Vec<u8>) {
    if exts.is_empty() {
        return; // extensions block omitted entirely, as old stacks do
    }
    let mut block = Vec::new();
    for e in exts {
        e.encode(&mut block);
    }
    out.put_vec16(&block);
}

/// [`encode_extensions`] without the temporary block vector: the u16
/// total length is reserved up front and backpatched once every
/// extension has been written in place.
pub fn encode_extensions_into(exts: &[Extension], out: &mut Vec<u8>) {
    if exts.is_empty() {
        return; // extensions block omitted entirely, as old stacks do
    }
    let block_mark = mark_u16(out);
    for e in exts {
        e.encode_into(out);
    }
    patch_u16(out, block_mark);
}

/// Walks an extension block performing exactly the validation of
/// [`decode_extensions`] — same error cases, same order — without
/// building any [`Extension`] values. Used by the passive parse path.
pub fn skim_extensions(r: &mut Reader) -> Result<(), CodecError> {
    if r.is_empty() {
        return Ok(());
    }
    let mut block = Reader::new(r.vec16()?);
    while !block.is_empty() {
        let typ = block.u16()?;
        let payload = block.vec16()?;
        skim_extension(typ, payload)?;
    }
    Ok(())
}

/// Validation-only mirror of [`Extension::decode`]. Variants that
/// decode infallibly (session_ticket, key_share, renegotiation_info,
/// unknown-as-raw) are accepted without inspection, exactly as the
/// allocating path does.
fn skim_extension(typ: u16, payload: &[u8]) -> Result<(), CodecError> {
    let mut r = Reader::new(payload);
    match typ {
        ext_type::SERVER_NAME => {
            let mut list = Reader::new(r.vec16()?);
            if list.u8()? != 0 {
                return Err(CodecError::IllegalValue("sni name_type"));
            }
            let host = list.vec16()?;
            list.finish()?;
            std::str::from_utf8(host).map_err(|_| CodecError::IllegalValue("sni utf-8"))?;
        }
        ext_type::STATUS_REQUEST => {
            if r.u8()? != 1 {
                return Err(CodecError::IllegalValue("status_type"));
            }
            r.vec16()?;
            r.vec16()?;
        }
        ext_type::SUPPORTED_GROUPS | ext_type::SIGNATURE_ALGORITHMS => {
            let mut list = Reader::new(r.vec16()?);
            while !list.is_empty() {
                list.u16()?;
            }
        }
        ext_type::EC_POINT_FORMATS => {
            r.vec8()?;
        }
        ext_type::ALPN => {
            let mut list = Reader::new(r.vec16()?);
            while !list.is_empty() {
                std::str::from_utf8(list.vec8()?)
                    .map_err(|_| CodecError::IllegalValue("alpn utf-8"))?;
            }
        }
        ext_type::SUPPORTED_VERSIONS => {
            let mut list = Reader::new(r.vec8()?);
            while !list.is_empty() {
                list.u16()?;
            }
        }
        _ => {}
    }
    Ok(())
}

/// Decodes an extension block; `r` may be empty (no extensions).
pub fn decode_extensions(r: &mut Reader) -> Result<Vec<Extension>, CodecError> {
    if r.is_empty() {
        return Ok(Vec::new());
    }
    let mut block = Reader::new(r.vec16()?);
    let mut out = Vec::new();
    while !block.is_empty() {
        let typ = block.u16()?;
        let payload = block.vec16()?;
        out.push(Extension::decode(typ, payload)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(ext: Extension) {
        let mut buf = Vec::new();
        ext.encode(&mut buf);
        let mut r = Reader::new(&buf);
        let typ = r.u16().unwrap();
        let payload = r.vec16().unwrap();
        let decoded = Extension::decode(typ, payload).unwrap();
        assert_eq!(decoded, ext);
    }

    #[test]
    fn sni_roundtrip() {
        roundtrip(Extension::ServerName("device.cloud.example.com".into()));
    }

    #[test]
    fn status_request_roundtrip() {
        roundtrip(Extension::StatusRequest);
    }

    #[test]
    fn groups_and_formats_roundtrip() {
        roundtrip(Extension::SupportedGroups(vec![0x001d, 0x0017, 0x0018]));
        roundtrip(Extension::EcPointFormats(vec![0]));
    }

    #[test]
    fn signature_algorithms_roundtrip() {
        roundtrip(Extension::SignatureAlgorithms(vec![
            sig_scheme::RSA_PKCS1_SHA256,
            sig_scheme::RSA_PKCS1_SHA1,
        ]));
    }

    #[test]
    fn alpn_roundtrip() {
        roundtrip(Extension::Alpn(vec!["h2".into(), "http/1.1".into()]));
    }

    #[test]
    fn supported_versions_roundtrip() {
        roundtrip(Extension::SupportedVersions(vec![
            ProtocolVersion::Tls13,
            ProtocolVersion::Tls12,
        ]));
    }

    #[test]
    fn session_ticket_and_reneg_roundtrip() {
        roundtrip(Extension::SessionTicket);
        roundtrip(Extension::RenegotiationInfo);
    }

    #[test]
    fn raw_extension_preserved() {
        roundtrip(Extension::Raw {
            typ: 0x4a4a,
            data: vec![1, 2, 3],
        });
    }

    #[test]
    fn extension_block_roundtrip_preserves_order() {
        let exts = vec![
            Extension::ServerName("a.example.com".into()),
            Extension::SupportedGroups(vec![29, 23]),
            Extension::SignatureAlgorithms(vec![0x0401]),
            Extension::SupportedVersions(vec![ProtocolVersion::Tls12]),
        ];
        let mut buf = Vec::new();
        encode_extensions(&exts, &mut buf);
        let mut r = Reader::new(&buf);
        let decoded = decode_extensions(&mut r).unwrap();
        assert_eq!(decoded, exts);
    }

    #[test]
    fn empty_extension_block_roundtrip() {
        let mut buf = Vec::new();
        encode_extensions(&[], &mut buf);
        assert!(buf.is_empty());
        let mut r = Reader::new(&buf);
        assert!(decode_extensions(&mut r).unwrap().is_empty());
    }

    #[test]
    fn malformed_sni_rejected() {
        // name_type = 7 is illegal.
        let mut payload = Vec::new();
        let mut entry = Vec::new();
        entry.put_u8(7);
        entry.put_vec16(b"x");
        payload.put_vec16(&entry);
        assert!(Extension::decode(ext_type::SERVER_NAME, &payload).is_err());
    }

    #[test]
    fn skim_agrees_with_decode_on_valid_and_corrupted_blocks() {
        let exts = vec![
            Extension::ServerName("a.example.com".into()),
            Extension::StatusRequest,
            Extension::SupportedGroups(vec![29, 23]),
            Extension::EcPointFormats(vec![0]),
            Extension::SignatureAlgorithms(vec![0x0401]),
            Extension::Alpn(vec!["h2".into()]),
            Extension::SessionTicket,
            Extension::SupportedVersions(vec![ProtocolVersion::Tls13]),
            Extension::KeyShare(vec![1, 2, 3]),
            Extension::RenegotiationInfo,
            Extension::Raw {
                typ: 0x4a4a,
                data: vec![9],
            },
        ];
        let mut buf = Vec::new();
        encode_extensions(&exts, &mut buf);
        // Valid block and every byte-corrupted variant must agree.
        let mut cases = vec![buf.clone()];
        for i in 0..buf.len() {
            for delta in [1u8, 0x80] {
                let mut c = buf.clone();
                c[i] = c[i].wrapping_add(delta);
                cases.push(c);
            }
        }
        for case in cases {
            let decoded = decode_extensions(&mut Reader::new(&case));
            let skimmed = skim_extensions(&mut Reader::new(&case));
            assert_eq!(
                decoded.as_ref().err(),
                skimmed.as_ref().err(),
                "decode/skim diverge on {case:02x?}"
            );
        }
    }

    #[test]
    fn encode_into_matches_legacy_encode() {
        let exts = vec![
            Extension::ServerName("a.example.com".into()),
            Extension::StatusRequest,
            Extension::SupportedGroups(vec![29, 23, 24]),
            Extension::EcPointFormats(vec![0]),
            Extension::SignatureAlgorithms(vec![0x0401, 0x0201]),
            Extension::Alpn(vec!["h2".into(), "http/1.1".into()]),
            Extension::SessionTicket,
            Extension::SupportedVersions(vec![
                ProtocolVersion::Tls13,
                ProtocolVersion::Tls12,
            ]),
            Extension::KeyShare(vec![1, 2, 3]),
            Extension::RenegotiationInfo,
            Extension::Raw {
                typ: 0x4a4a,
                data: vec![9, 8],
            },
        ];
        for e in &exts {
            let mut legacy = Vec::new();
            e.encode(&mut legacy);
            let mut inplace = Vec::new();
            e.encode_into(&mut inplace);
            assert_eq!(inplace, legacy, "{e:?}");
        }
        let mut legacy = Vec::new();
        encode_extensions(&exts, &mut legacy);
        let mut inplace = Vec::new();
        encode_extensions_into(&exts, &mut inplace);
        assert_eq!(inplace, legacy);
    }

    #[test]
    fn unknown_supported_version_values_skipped() {
        // GREASE value 0x0a0a then TLS 1.2.
        let mut payload = Vec::new();
        payload.put_vec8(&{
            let mut l = Vec::new();
            l.put_u16(0x0a0a);
            l.put_u16(0x0303);
            l
        });
        let decoded = Extension::decode(ext_type::SUPPORTED_VERSIONS, &payload).unwrap();
        assert_eq!(
            decoded,
            Extension::SupportedVersions(vec![ProtocolVersion::Tls12])
        );
    }
}
