//! The TLS 1.2 pseudo-random function (RFC 5246 §5): P_SHA256 with
//! labeled seeds — the real key schedule, replacing the reproduction's
//! earlier ad-hoc HMAC derivation.

use iotls_crypto::hmac::hmac_sha256;

/// P_SHA256(secret, seed) expanded to `out_len` bytes (RFC 5246 §5).
pub fn p_sha256(secret: &[u8], seed: &[u8], out_len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(out_len + 32);
    let mut a = hmac_sha256(secret, seed); // A(1)
    while out.len() < out_len {
        let mut input = Vec::with_capacity(32 + seed.len());
        input.extend_from_slice(&a);
        input.extend_from_slice(seed);
        out.extend_from_slice(&hmac_sha256(secret, &input));
        a = hmac_sha256(secret, &a); // A(i+1)
    }
    out.truncate(out_len);
    out
}

/// PRF(secret, label, seed) = P_SHA256(secret, label || seed).
pub fn prf(secret: &[u8], label: &str, seed: &[u8], out_len: usize) -> Vec<u8> {
    let mut label_seed = Vec::with_capacity(label.len() + seed.len());
    label_seed.extend_from_slice(label.as_bytes());
    label_seed.extend_from_slice(seed);
    p_sha256(secret, &label_seed, out_len)
}

/// RFC 5246 §8.1: the 48-byte master secret.
pub fn master_secret(
    premaster: &[u8],
    client_random: &[u8; 32],
    server_random: &[u8; 32],
) -> [u8; 48] {
    let mut seed = [0u8; 64];
    seed[..32].copy_from_slice(client_random);
    seed[32..].copy_from_slice(server_random);
    prf(premaster, "master secret", &seed, 48)
        .try_into()
        .expect("48 bytes")
}

/// RFC 5246 §6.3: the key block (server_random || client_random seed).
pub fn key_block(
    master: &[u8; 48],
    client_random: &[u8; 32],
    server_random: &[u8; 32],
    out_len: usize,
) -> Vec<u8> {
    let mut seed = [0u8; 64];
    seed[..32].copy_from_slice(server_random);
    seed[32..].copy_from_slice(client_random);
    prf(master, "key expansion", &seed, out_len)
}

/// RFC 5246 §7.4.9: 12-byte Finished verify data.
pub fn verify_data(master: &[u8; 48], label: &str, transcript_hash: &[u8; 32]) -> Vec<u8> {
    prf(master, label, transcript_hash, 12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotls_crypto::sha256::hex;

    /// The widely-used community P_SHA256 test vector.
    #[test]
    fn p_sha256_reference_vector() {
        let secret = [
            0x9b, 0xbe, 0x43, 0x6b, 0xa9, 0x40, 0xf0, 0x17, 0xb1, 0x76, 0x52, 0x84, 0x9a, 0x71,
            0xdb, 0x35,
        ];
        let seed = [
            0xa0, 0xba, 0x9f, 0x93, 0x6c, 0xda, 0x31, 0x18, 0x27, 0xa6, 0xf7, 0x96, 0xff, 0xd5,
            0x19, 0x8c,
        ];
        let out = prf(&secret, "test label", &seed, 100);
        assert_eq!(
            hex(&out),
            "e3f229ba727be17b8d122620557cd453c2aab21d07c3d495329b52d4e61edb5a\
             6b301791e90d35c9c9a46b4e14baf9af0fa022f7077def17abfd3797c0564bab\
             4fbc91666e9def9b97fce34f796789baa48082d122ee42c5a72e5a5110fff701\
             87347b66"
        );
    }

    #[test]
    fn expansion_lengths() {
        let secret = b"secret";
        let seed = b"seed";
        for n in [0usize, 1, 31, 32, 33, 64, 100] {
            assert_eq!(p_sha256(secret, seed, n).len(), n);
        }
        // Prefix property: a longer expansion starts with the shorter.
        let long = p_sha256(secret, seed, 100);
        let short = p_sha256(secret, seed, 40);
        assert_eq!(&long[..40], &short[..]);
    }

    #[test]
    fn master_secret_shape() {
        let pm = [1u8; 48];
        let cr = [2u8; 32];
        let sr = [3u8; 32];
        let m1 = master_secret(&pm, &cr, &sr);
        assert_eq!(m1, master_secret(&pm, &cr, &sr));
        assert_ne!(m1, master_secret(&pm, &sr, &cr), "random order matters");
    }

    #[test]
    fn key_block_uses_server_then_client_random() {
        let master = [7u8; 48];
        let cr = [1u8; 32];
        let sr = [2u8; 32];
        let kb = key_block(&master, &cr, &sr, 64);
        // Manually build the same expansion.
        let mut seed = Vec::new();
        seed.extend_from_slice(&sr);
        seed.extend_from_slice(&cr);
        assert_eq!(kb, prf(&master, "key expansion", &seed, 64));
    }

    #[test]
    fn verify_data_is_12_bytes_and_label_sensitive() {
        let master = [9u8; 48];
        let th = [4u8; 32];
        let c = verify_data(&master, "client finished", &th);
        let s = verify_data(&master, "server finished", &th);
        assert_eq!(c.len(), 12);
        assert_ne!(c, s);
    }
}
