//! TLS protocol versions.

use std::fmt;

/// A TLS/SSL protocol version with its wire encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProtocolVersion {
    /// SSL 3.0 (1996) — broken (POODLE); deprecated by RFC 7568.
    Ssl30,
    /// TLS 1.0 (1999) — deprecated by RFC 8996.
    Tls10,
    /// TLS 1.1 (2006) — deprecated by RFC 8996.
    Tls11,
    /// TLS 1.2 (2008) — current baseline.
    Tls12,
    /// TLS 1.3 (2018) — current best practice.
    Tls13,
}

impl ProtocolVersion {
    /// All versions, oldest first.
    pub const ALL: [ProtocolVersion; 5] = [
        ProtocolVersion::Ssl30,
        ProtocolVersion::Tls10,
        ProtocolVersion::Tls11,
        ProtocolVersion::Tls12,
        ProtocolVersion::Tls13,
    ];

    /// Wire encoding (`major << 8 | minor`).
    pub fn wire(self) -> u16 {
        match self {
            ProtocolVersion::Ssl30 => 0x0300,
            ProtocolVersion::Tls10 => 0x0301,
            ProtocolVersion::Tls11 => 0x0302,
            ProtocolVersion::Tls12 => 0x0303,
            ProtocolVersion::Tls13 => 0x0304,
        }
    }

    /// Decodes a wire value.
    pub fn from_wire(v: u16) -> Option<ProtocolVersion> {
        match v {
            0x0300 => Some(ProtocolVersion::Ssl30),
            0x0301 => Some(ProtocolVersion::Tls10),
            0x0302 => Some(ProtocolVersion::Tls11),
            0x0303 => Some(ProtocolVersion::Tls12),
            0x0304 => Some(ProtocolVersion::Tls13),
            _ => None,
        }
    }

    /// True for versions deprecated for security reasons (everything
    /// below TLS 1.2) — the paper's "older versions" bucket in Fig. 1.
    pub fn is_deprecated(self) -> bool {
        self < ProtocolVersion::Tls12
    }

    /// The year the version was standardized (used in reports).
    pub fn year(self) -> i32 {
        match self {
            ProtocolVersion::Ssl30 => 1996,
            ProtocolVersion::Tls10 => 1999,
            ProtocolVersion::Tls11 => 2006,
            ProtocolVersion::Tls12 => 2008,
            ProtocolVersion::Tls13 => 2018,
        }
    }
}

impl fmt::Display for ProtocolVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProtocolVersion::Ssl30 => "SSL 3.0",
            ProtocolVersion::Tls10 => "TLS 1.0",
            ProtocolVersion::Tls11 => "TLS 1.1",
            ProtocolVersion::Tls12 => "TLS 1.2",
            ProtocolVersion::Tls13 => "TLS 1.3",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_roundtrip() {
        for v in ProtocolVersion::ALL {
            assert_eq!(ProtocolVersion::from_wire(v.wire()), Some(v));
        }
        assert_eq!(ProtocolVersion::from_wire(0x0305), None);
        assert_eq!(ProtocolVersion::from_wire(0x0200), None);
    }

    #[test]
    fn ordering_follows_chronology() {
        assert!(ProtocolVersion::Ssl30 < ProtocolVersion::Tls10);
        assert!(ProtocolVersion::Tls12 < ProtocolVersion::Tls13);
        let max = ProtocolVersion::ALL.iter().max().unwrap();
        assert_eq!(*max, ProtocolVersion::Tls13);
    }

    #[test]
    fn deprecation_boundary() {
        assert!(ProtocolVersion::Ssl30.is_deprecated());
        assert!(ProtocolVersion::Tls11.is_deprecated());
        assert!(!ProtocolVersion::Tls12.is_deprecated());
        assert!(!ProtocolVersion::Tls13.is_deprecated());
    }

    #[test]
    fn display_names() {
        assert_eq!(ProtocolVersion::Tls13.to_string(), "TLS 1.3");
        assert_eq!(ProtocolVersion::Ssl30.to_string(), "SSL 3.0");
    }
}
