//! TLS alert messages (RFC 5246 §7.2 / RFC 8446 §6).
//!
//! Alerts are the observable surface of the IoTLS root-store probe:
//! the distinction between `unknown_ca` (issuer not in the root store)
//! and `decrypt_error`/`bad_certificate` (issuer recognized, signature
//! invalid) is exactly the side channel §4.2 of the paper exploits.

use std::fmt;

/// Alert severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlertLevel {
    /// The connection may continue.
    Warning,
    /// The connection must be torn down.
    Fatal,
}

impl AlertLevel {
    /// Wire encoding.
    pub fn wire(self) -> u8 {
        match self {
            AlertLevel::Warning => 1,
            AlertLevel::Fatal => 2,
        }
    }

    /// Decodes a wire value.
    pub fn from_wire(v: u8) -> Option<AlertLevel> {
        match v {
            1 => Some(AlertLevel::Warning),
            2 => Some(AlertLevel::Fatal),
            _ => None,
        }
    }
}

/// Alert descriptions (subset used by the reproduction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlertDescription {
    /// Graceful closure.
    CloseNotify,
    /// An inappropriate message was received.
    UnexpectedMessage,
    /// Negotiation failed (no common parameters).
    HandshakeFailure,
    /// A certificate was corrupt or failed signature checks.
    BadCertificate,
    /// A certificate was of an unsupported type.
    UnsupportedCertificate,
    /// A certificate was revoked.
    CertificateRevoked,
    /// A certificate has expired.
    CertificateExpired,
    /// Some unspecified certificate issue.
    CertificateUnknown,
    /// A field in the handshake was out of range.
    IllegalParameter,
    /// No trusted CA could be located for the chain.
    UnknownCa,
    /// A signature or Finished check failed.
    DecryptError,
    /// The offered protocol version is unsupported.
    ProtocolVersion,
    /// Generic internal error.
    InternalError,
    /// Anything else seen on the wire.
    Other(u8),
}

impl AlertDescription {
    /// Wire encoding.
    pub fn wire(self) -> u8 {
        match self {
            AlertDescription::CloseNotify => 0,
            AlertDescription::UnexpectedMessage => 10,
            AlertDescription::HandshakeFailure => 40,
            AlertDescription::BadCertificate => 42,
            AlertDescription::UnsupportedCertificate => 43,
            AlertDescription::CertificateRevoked => 44,
            AlertDescription::CertificateExpired => 45,
            AlertDescription::CertificateUnknown => 46,
            AlertDescription::IllegalParameter => 47,
            AlertDescription::UnknownCa => 48,
            AlertDescription::DecryptError => 51,
            AlertDescription::ProtocolVersion => 70,
            AlertDescription::InternalError => 80,
            AlertDescription::Other(v) => v,
        }
    }

    /// Decodes a wire value (never fails; unknown codes map to
    /// [`AlertDescription::Other`]).
    pub fn from_wire(v: u8) -> AlertDescription {
        match v {
            0 => AlertDescription::CloseNotify,
            10 => AlertDescription::UnexpectedMessage,
            40 => AlertDescription::HandshakeFailure,
            42 => AlertDescription::BadCertificate,
            43 => AlertDescription::UnsupportedCertificate,
            44 => AlertDescription::CertificateRevoked,
            45 => AlertDescription::CertificateExpired,
            46 => AlertDescription::CertificateUnknown,
            47 => AlertDescription::IllegalParameter,
            48 => AlertDescription::UnknownCa,
            51 => AlertDescription::DecryptError,
            70 => AlertDescription::ProtocolVersion,
            80 => AlertDescription::InternalError,
            other => AlertDescription::Other(other),
        }
    }
}

impl fmt::Display for AlertDescription {
    /// Renders the RFC's lowercase alert naming (`unknown_ca`,
    /// `decrypt_error`, …) by snake-casing the variant name.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let AlertDescription::Other(v) = self {
            return write!(f, "alert({v})");
        }
        let dbg = format!("{self:?}");
        let mut out = String::new();
        for (i, ch) in dbg.chars().enumerate() {
            if ch.is_ascii_uppercase() {
                if i > 0 {
                    out.push('_');
                }
                out.push(ch.to_ascii_lowercase());
            } else {
                out.push(ch);
            }
        }
        f.write_str(&out)
    }
}

/// A complete alert message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Alert {
    /// Severity.
    pub level: AlertLevel,
    /// What went wrong.
    pub description: AlertDescription,
}

impl Alert {
    /// A fatal alert with the given description.
    pub fn fatal(description: AlertDescription) -> Alert {
        Alert {
            level: AlertLevel::Fatal,
            description,
        }
    }

    /// The warning-level close_notify.
    pub fn close_notify() -> Alert {
        Alert {
            level: AlertLevel::Warning,
            description: AlertDescription::CloseNotify,
        }
    }

    /// Two-byte wire encoding.
    pub fn to_bytes(self) -> [u8; 2] {
        [self.level.wire(), self.description.wire()]
    }

    /// Decodes the two-byte wire form.
    pub fn from_bytes(bytes: &[u8]) -> Option<Alert> {
        if bytes.len() != 2 {
            return None;
        }
        Some(Alert {
            level: AlertLevel::from_wire(bytes[0])?,
            description: AlertDescription::from_wire(bytes[1]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn side_channel_codes_match_rfc() {
        // RFC 5246: unknown_ca = 48, decrypt_error = 51,
        // bad_certificate = 42, certificate_unknown = 46.
        assert_eq!(AlertDescription::UnknownCa.wire(), 48);
        assert_eq!(AlertDescription::DecryptError.wire(), 51);
        assert_eq!(AlertDescription::BadCertificate.wire(), 42);
        assert_eq!(AlertDescription::CertificateUnknown.wire(), 46);
    }

    #[test]
    fn wire_roundtrip_known_and_unknown() {
        for code in 0u8..=255 {
            let d = AlertDescription::from_wire(code);
            assert_eq!(d.wire(), code);
        }
    }

    #[test]
    fn alert_bytes_roundtrip() {
        let a = Alert::fatal(AlertDescription::UnknownCa);
        assert_eq!(Alert::from_bytes(&a.to_bytes()), Some(a));
        assert_eq!(Alert::from_bytes(&[9, 9]), None); // bad level
        assert_eq!(Alert::from_bytes(&[1]), None); // truncated
    }

    #[test]
    fn display_is_rfc_style() {
        assert_eq!(AlertDescription::UnknownCa.to_string(), "unknown_ca");
        assert_eq!(AlertDescription::DecryptError.to_string(), "decrypt_error");
        assert_eq!(AlertDescription::Other(200).to_string(), "alert(200)");
    }

    #[test]
    fn close_notify_is_warning() {
        let a = Alert::close_notify();
        assert_eq!(a.level, AlertLevel::Warning);
        assert_eq!(a.to_bytes(), [1, 0]);
    }
}
