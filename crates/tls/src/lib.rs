//! # iotls-tls
//!
//! Sans-IO TLS substrate for the IoTLS reproduction (Paracha et al.,
//! IMC 2021).
//!
//! Everything the paper measures about TLS lives here:
//!
//! * [`version`] / [`ciphersuite`] — protocol versions and a registry
//!   of real IANA ciphersuite code points classified exactly as the
//!   paper classifies them (insecure / null-anon / forward-secret);
//! * [`record`], [`handshake`], [`extension`], [`alert`] — the wire
//!   format: record framing, handshake messages, hello extensions,
//!   and alert messages (the root-store side channel's carrier);
//! * [`client`] / [`server`] — event-driven state machines in the
//!   smoltcp style: bytes in, bytes out, no sockets, no clock of
//!   their own;
//! * [`fingerprint`] — JA3-shaped client fingerprinting (§5.3);
//! * [`profile`] — per-library alert behavior from Table 4, which
//!   determines amenability to the root-store probe;
//! * [`prf`] / [`session`] — the RFC 5246 key schedule and record
//!   protection.

pub mod alert;
pub mod ciphersuite;
pub mod client;
pub mod codec;
pub mod extension;
pub mod fingerprint;
pub mod handshake;
pub mod prf;
pub mod profile;
pub mod record;
pub mod server;
pub mod session;
pub mod version;

pub use alert::{Alert, AlertDescription, AlertLevel};
pub use ciphersuite::{by_id, by_name, BulkCipher, CipherSuite, KeyExchange, MacAlgorithm};
pub use client::{CachedSession, ClientConfig, ClientConnection, HandshakeFailure, HandshakeSummary};
pub use extension::Extension;
pub use fingerprint::{Fingerprint, FingerprintId};
pub use handshake::{
    first_certificate, next_raw_message, server_hello_fields, validate_body, ClientHello,
    HandshakeMessage, ServerHello,
};
pub use profile::LibraryProfile;
pub use record::{write_record, ContentType, Deframer, Record, RecordRef, SessionBuf};
pub use server::{ServerConfig, ServerConnection, ServerFailure, SessionCache};
pub use session::{SessionScratch, Status};
pub use version::ProtocolVersion;
