//! Property tests for the sans-IO record write/read pair:
//! [`write_record`] into a caller-owned [`SessionBuf`] must
//! round-trip through [`Deframer::pop_ref`] for arbitrary content
//! types, versions, payload sizes (including multi-fragment), and
//! arbitrary transport re-chunking — and must stay byte-identical to
//! the legacy `Record::fragment` + `Record::encode` oracle.
//!
//! Hand-rolled with the repo's deterministic [`Drbg`] (no external
//! property-testing crate): every case is a pure function of the
//! seed, so a failure names its iteration and reproduces exactly.

use iotls_crypto::drbg::Drbg;
use iotls_tls::record::MAX_FRAGMENT;
use iotls_tls::version::ProtocolVersion;
use iotls_tls::{write_record, ContentType, Deframer, Record, SessionBuf};

const CONTENT_TYPES: [ContentType; 4] = [
    ContentType::ChangeCipherSpec,
    ContentType::Alert,
    ContentType::Handshake,
    ContentType::ApplicationData,
];

const VERSIONS: [ProtocolVersion; 5] = [
    ProtocolVersion::Ssl30,
    ProtocolVersion::Tls10,
    ProtocolVersion::Tls11,
    ProtocolVersion::Tls12,
    ProtocolVersion::Tls13,
];

/// Draws one arbitrary (content type, version, payload) triple.
/// Payload lengths are biased toward the interesting boundaries:
/// empty, 1, around [`MAX_FRAGMENT`], and several fragments long.
fn arbitrary_case(rng: &mut Drbg) -> (ContentType, ProtocolVersion, Vec<u8>) {
    let ct = *rng.choose(&CONTENT_TYPES).unwrap();
    let version = *rng.choose(&VERSIONS).unwrap();
    let len = match rng.below(6) {
        0 => 0,
        1 => rng.below(8) as usize,
        2 => MAX_FRAGMENT - 1 + rng.below(3) as usize,
        3 => MAX_FRAGMENT * 2 + rng.below(5) as usize,
        _ => rng.below(3 * MAX_FRAGMENT as u64) as usize,
    };
    let mut payload = vec![0u8; len];
    rng.fill_bytes(&mut payload);
    (ct, version, payload)
}

/// Splits `wire` into arbitrary chunks and feeds them to a deframer,
/// popping every complete record as it appears. Returns the popped
/// records as owned (content type, version, payload) triples.
fn feed_in_splits(
    wire: &[u8],
    rng: &mut Drbg,
) -> Vec<(ContentType, ProtocolVersion, Vec<u8>)> {
    let mut deframer = Deframer::new();
    let mut popped = Vec::new();
    let mut offset = 0;
    while offset < wire.len() {
        // Chunk sizes from 1 byte (worst-case trickle) up past a
        // whole record, exercising every header/payload straddle.
        let take = (1 + rng.below(MAX_FRAGMENT as u64 + 64) as usize).min(wire.len() - offset);
        deframer.push(&wire[offset..offset + take]);
        offset += take;
        while let Some(rec) = deframer.pop_ref().expect("well-formed wire bytes") {
            popped.push((rec.content_type, rec.version, rec.payload.to_vec()));
        }
    }
    assert_eq!(deframer.buffered(), 0, "no trailing partial record");
    popped
}

#[test]
fn write_record_roundtrips_arbitrary_cases_through_pop_ref() {
    let mut rng = Drbg::from_seed(0x5EC0_4D5).fork("record-roundtrip");
    let mut out = SessionBuf::new();
    for iteration in 0..200 {
        let (ct, version, payload) = arbitrary_case(&mut rng);
        out.clear();
        write_record(ct, version, &payload, &mut out);

        let records = feed_in_splits(out.as_slice(), &mut rng);
        let expected_records = payload.len().div_ceil(MAX_FRAGMENT).max(1);
        assert_eq!(
            records.len(),
            expected_records,
            "iteration {iteration}: fragment count for {} payload bytes",
            payload.len()
        );
        let mut reassembled = Vec::new();
        for (rec_ct, rec_version, rec_payload) in &records {
            assert_eq!(*rec_ct, ct, "iteration {iteration}");
            assert_eq!(*rec_version, version, "iteration {iteration}");
            assert!(rec_payload.len() <= MAX_FRAGMENT, "iteration {iteration}");
            reassembled.extend_from_slice(rec_payload);
        }
        assert_eq!(reassembled, payload, "iteration {iteration}");
    }
}

#[test]
fn write_record_matches_fragment_encode_oracle() {
    // The legacy Record::fragment + Record::encode pair is kept as an
    // independently implemented oracle; the sans-IO writer must stay
    // byte-identical to it for every case, or golden wire fixtures
    // would shift.
    let mut rng = Drbg::from_seed(0x0_4AC1E).fork("record-oracle");
    let mut out = SessionBuf::new();
    for iteration in 0..200 {
        let (ct, version, payload) = arbitrary_case(&mut rng);
        out.clear();
        write_record(ct, version, &payload, &mut out);

        let legacy: Vec<u8> = Record::fragment(ct, version, &payload)
            .iter()
            .flat_map(|r| r.encode())
            .collect();
        assert_eq!(out.as_slice(), &legacy[..], "iteration {iteration}");
    }
}

#[test]
fn multiple_records_share_one_session_buf() {
    // Several write_record calls append; the deframer pops them back
    // in order. This is the exact shape of a pump round that batches
    // ServerHello..Finished into one flight.
    let mut out = SessionBuf::new();
    let payloads: [&[u8]; 3] = [b"alpha", b"", b"gamma-delta"];
    for p in payloads {
        write_record(ContentType::Handshake, ProtocolVersion::Tls12, p, &mut out);
    }
    let mut deframer = Deframer::new();
    deframer.push(out.as_slice());
    for p in payloads {
        let rec = deframer.pop_ref().unwrap().expect("one record per write");
        assert_eq!(rec.payload, p);
    }
    assert!(deframer.pop_ref().unwrap().is_none());
}
