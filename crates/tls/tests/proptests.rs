//! Property-based tests for the TLS wire codecs and fingerprinting.

use iotls_tls::alert::{Alert, AlertDescription, AlertLevel};
use iotls_tls::extension::{decode_extensions, encode_extensions, Extension};
use iotls_tls::fingerprint::Fingerprint;
use iotls_tls::handshake::{ClientHello, HandshakeMessage, ServerHello, ServerKeyExchange};
use iotls_tls::record::{ContentType, Deframer, Record};
use iotls_tls::version::ProtocolVersion;
use proptest::prelude::*;

fn version_strategy() -> impl Strategy<Value = ProtocolVersion> {
    prop_oneof![
        Just(ProtocolVersion::Ssl30),
        Just(ProtocolVersion::Tls10),
        Just(ProtocolVersion::Tls11),
        Just(ProtocolVersion::Tls12),
        Just(ProtocolVersion::Tls13),
    ]
}

fn hostname_strategy() -> impl Strategy<Value = String> {
    "[a-z]{1,12}(\\.[a-z]{1,10}){1,3}"
}

fn extension_strategy() -> impl Strategy<Value = Extension> {
    prop_oneof![
        hostname_strategy().prop_map(Extension::ServerName),
        Just(Extension::StatusRequest),
        proptest::collection::vec(any::<u16>(), 0..8).prop_map(Extension::SupportedGroups),
        proptest::collection::vec(any::<u8>(), 0..4).prop_map(Extension::EcPointFormats),
        proptest::collection::vec(any::<u16>(), 0..8).prop_map(Extension::SignatureAlgorithms),
        proptest::collection::vec("[a-z0-9/.]{1,12}", 0..4).prop_map(Extension::Alpn),
        Just(Extension::SessionTicket),
        proptest::collection::vec(version_strategy(), 0..5)
            .prop_map(Extension::SupportedVersions),
        Just(Extension::RenegotiationInfo),
        (any::<u16>(), proptest::collection::vec(any::<u8>(), 0..32)).prop_map(|(typ, data)| {
            Extension::Raw { typ, data }
        }),
    ]
}

/// Raw extensions whose type collides with a modeled extension decode
/// into the modeled variant, so exclude those types from roundtrips.
fn is_roundtrippable(e: &Extension) -> bool {
    match e {
        Extension::Raw { typ, .. } => ![0u16, 5, 10, 11, 13, 16, 35, 43, 51, 0xff01]
            .contains(typ),
        // An empty supported_versions list re-decodes fine, but an
        // empty ALPN/groups list is still fine — all modeled variants
        // roundtrip.
        _ => true,
    }
}

fn client_hello_strategy() -> impl Strategy<Value = ClientHello> {
    (
        version_strategy(),
        proptest::array::uniform32(any::<u8>()),
        proptest::collection::vec(any::<u8>(), 0..16),
        proptest::collection::vec(any::<u16>(), 1..40),
        proptest::collection::vec(extension_strategy(), 0..6),
    )
        .prop_map(|(v, random, session_id, suites, extensions)| ClientHello {
            legacy_version: v,
            random,
            session_id,
            cipher_suites: suites,
            compression_methods: vec![0],
            extensions: extensions
                .into_iter()
                .filter(is_roundtrippable)
                .collect(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn client_hello_roundtrips(ch in client_hello_strategy()) {
        let msg = HandshakeMessage::ClientHello(ch);
        let bytes = msg.encode();
        let (decoded, used) = HandshakeMessage::decode(&bytes).unwrap();
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn server_hello_roundtrips(
        v in version_strategy(),
        random in proptest::array::uniform32(any::<u8>()),
        suite in any::<u16>(),
        session in proptest::collection::vec(any::<u8>(), 0..8),
    ) {
        let msg = HandshakeMessage::ServerHello(ServerHello {
            version: v,
            random,
            session_id: session,
            cipher_suite: suite,
            compression_method: 0,
            extensions: vec![],
        });
        let bytes = msg.encode();
        let (decoded, _) = HandshakeMessage::decode(&bytes).unwrap();
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn certificate_and_kx_roundtrip(
        chain in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 0..4),
        dh in proptest::collection::vec(any::<u8>(), 0..96),
        sig in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        for msg in [
            HandshakeMessage::Certificate(chain.clone()),
            HandshakeMessage::ServerKeyExchange(ServerKeyExchange {
                dh_public: dh.clone(),
                signature: sig.clone(),
            }),
            HandshakeMessage::ClientKeyExchange(dh.clone()),
            HandshakeMessage::Finished(sig.clone()),
        ] {
            let bytes = msg.encode();
            let (decoded, used) = HandshakeMessage::decode(&bytes).unwrap();
            prop_assert_eq!(used, bytes.len());
            prop_assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn extension_blocks_roundtrip(exts in proptest::collection::vec(extension_strategy(), 0..8)) {
        let exts: Vec<Extension> = exts.into_iter().filter(is_roundtrippable).collect();
        let mut buf = Vec::new();
        encode_extensions(&exts, &mut buf);
        let mut r = iotls_tls::codec::Reader::new(&buf);
        let decoded = decode_extensions(&mut r).unwrap();
        prop_assert_eq!(decoded, exts);
    }

    #[test]
    fn truncated_hello_never_panics(ch in client_hello_strategy(), cut in 0usize..100) {
        let bytes = HandshakeMessage::ClientHello(ch).encode();
        let cut = cut.min(bytes.len());
        // Must error or succeed, never panic.
        let _ = HandshakeMessage::decode(&bytes[..cut]);
    }

    #[test]
    fn garbage_bytes_never_panic_decoder(data in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = HandshakeMessage::decode(&data);
        let mut d = Deframer::new();
        d.push(&data);
        while let Ok(Some(_)) = d.pop() {}
    }

    #[test]
    fn records_roundtrip_under_any_chunking(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..300), 1..5),
        chunk in 1usize..64,
    ) {
        let records: Vec<Record> = payloads
            .iter()
            .map(|p| Record::new(ContentType::ApplicationData, ProtocolVersion::Tls12, p.clone()))
            .collect();
        let mut wire = Vec::new();
        for r in &records {
            wire.extend_from_slice(&r.encode());
        }
        let mut d = Deframer::new();
        let mut out = Vec::new();
        for c in wire.chunks(chunk) {
            d.push(c);
            while let Some(r) = d.pop().unwrap() {
                out.push(r);
            }
        }
        prop_assert_eq!(out, records);
    }

    #[test]
    fn alerts_roundtrip(level in 1u8..=2, desc in any::<u8>()) {
        let alert = Alert {
            level: AlertLevel::from_wire(level).unwrap(),
            description: AlertDescription::from_wire(desc),
        };
        prop_assert_eq!(Alert::from_bytes(&alert.to_bytes()), Some(alert));
    }

    #[test]
    fn fingerprint_is_pure_function_of_features(ch in client_hello_strategy()) {
        let fp1 = Fingerprint::from_client_hello(&ch);
        let mut ch2 = ch.clone();
        ch2.random = [0xEE; 32];
        ch2.session_id = vec![9, 9, 9];
        let fp2 = Fingerprint::from_client_hello(&ch2);
        prop_assert_eq!(fp1.id(), fp2.id(), "random/session must not affect fingerprints");
    }

    #[test]
    fn fragmentation_reassembles(payload in proptest::collection::vec(any::<u8>(), 0..40_000)) {
        let frags = Record::fragment(ContentType::ApplicationData, ProtocolVersion::Tls12, &payload);
        let total: Vec<u8> = frags.iter().flat_map(|f| f.payload.clone()).collect();
        prop_assert_eq!(total, payload);
    }
}
