//! Property-style tests for the TLS wire codecs and fingerprinting.
//!
//! Inputs come from the workspace's deterministic DRBG instead of an
//! external property-testing framework, so the suite builds with no
//! registry access and failures reproduce from the fixed seed.

use iotls_crypto::drbg::Drbg;
use iotls_tls::alert::{Alert, AlertDescription, AlertLevel};
use iotls_tls::extension::{decode_extensions, encode_extensions, Extension};
use iotls_tls::fingerprint::Fingerprint;
use iotls_tls::handshake::{ClientHello, HandshakeMessage, ServerHello, ServerKeyExchange};
use iotls_tls::record::{ContentType, Deframer, Record};
use iotls_tls::version::ProtocolVersion;

fn cases(n: u64, label: &str, mut body: impl FnMut(&mut Drbg)) {
    let root = Drbg::from_seed(0x715_7E57).fork(label);
    for i in 0..n {
        let mut rng = root.fork(&format!("case-{i}"));
        body(&mut rng);
    }
}

fn random_bytes(rng: &mut Drbg, max_len: u64) -> Vec<u8> {
    let len = rng.below(max_len + 1) as usize;
    let mut out = vec![0u8; len];
    rng.fill_bytes(&mut out);
    out
}

fn random_u16s(rng: &mut Drbg, min: u64, max_len: u64) -> Vec<u16> {
    let len = rng.range(min, max_len) as usize;
    (0..len).map(|_| rng.next_u32() as u16).collect()
}

fn random_version(rng: &mut Drbg) -> ProtocolVersion {
    *rng.choose(&[
        ProtocolVersion::Ssl30,
        ProtocolVersion::Tls10,
        ProtocolVersion::Tls11,
        ProtocolVersion::Tls12,
        ProtocolVersion::Tls13,
    ])
    .unwrap()
}

fn random_label(rng: &mut Drbg, min: u64, max: u64) -> String {
    let len = rng.range(min, max) as usize;
    (0..len)
        .map(|_| (b'a' + rng.below(26) as u8) as char)
        .collect()
}

fn random_hostname(rng: &mut Drbg) -> String {
    let labels = rng.range(2, 5);
    let mut parts = vec![random_label(rng, 1, 13)];
    for _ in 1..labels {
        parts.push(random_label(rng, 1, 11));
    }
    parts.join(".")
}

/// Raw extensions whose type collides with a modeled extension decode
/// into the modeled variant, so exclude those types from roundtrips.
fn is_roundtrippable(e: &Extension) -> bool {
    match e {
        Extension::Raw { typ, .. } => {
            ![0u16, 5, 10, 11, 13, 16, 35, 43, 51, 0xff01].contains(typ)
        }
        _ => true,
    }
}

fn random_extension(rng: &mut Drbg) -> Extension {
    match rng.below(10) {
        0 => Extension::ServerName(random_hostname(rng)),
        1 => Extension::StatusRequest,
        2 => Extension::SupportedGroups(random_u16s(rng, 0, 8)),
        3 => Extension::EcPointFormats(random_bytes(rng, 3)),
        4 => Extension::SignatureAlgorithms(random_u16s(rng, 0, 8)),
        5 => {
            let n = rng.below(4);
            Extension::Alpn((0..n).map(|_| random_label(rng, 1, 12)).collect())
        }
        6 => Extension::SessionTicket,
        7 => {
            let n = rng.below(5);
            Extension::SupportedVersions((0..n).map(|_| random_version(rng)).collect())
        }
        8 => Extension::RenegotiationInfo,
        _ => Extension::Raw {
            typ: rng.next_u32() as u16,
            data: random_bytes(rng, 31),
        },
    }
}

fn random_client_hello(rng: &mut Drbg) -> ClientHello {
    let mut random = [0u8; 32];
    rng.fill_bytes(&mut random);
    let ext_count = rng.below(6);
    ClientHello {
        legacy_version: random_version(rng),
        random,
        session_id: random_bytes(rng, 15),
        cipher_suites: random_u16s(rng, 1, 40),
        compression_methods: vec![0],
        extensions: (0..ext_count)
            .map(|_| random_extension(rng))
            .filter(is_roundtrippable)
            .collect(),
    }
}

#[test]
fn client_hello_roundtrips() {
    cases(192, "client-hello", |rng| {
        let msg = HandshakeMessage::ClientHello(random_client_hello(rng));
        let bytes = msg.encode();
        let (decoded, used) = HandshakeMessage::decode(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(decoded, msg);
    });
}

#[test]
fn server_hello_roundtrips() {
    cases(192, "server-hello", |rng| {
        let mut random = [0u8; 32];
        rng.fill_bytes(&mut random);
        let msg = HandshakeMessage::ServerHello(ServerHello {
            version: random_version(rng),
            random,
            session_id: random_bytes(rng, 7),
            cipher_suite: rng.next_u32() as u16,
            compression_method: 0,
            extensions: vec![],
        });
        let bytes = msg.encode();
        let (decoded, _) = HandshakeMessage::decode(&bytes).unwrap();
        assert_eq!(decoded, msg);
    });
}

#[test]
fn certificate_and_kx_roundtrip() {
    cases(192, "cert-kx", |rng| {
        let chain_len = rng.below(4);
        let chain: Vec<Vec<u8>> = (0..chain_len).map(|_| random_bytes(rng, 63)).collect();
        let dh = random_bytes(rng, 95);
        let sig = random_bytes(rng, 63);
        for msg in [
            HandshakeMessage::Certificate(chain.clone()),
            HandshakeMessage::ServerKeyExchange(ServerKeyExchange {
                dh_public: dh.clone(),
                signature: sig.clone(),
            }),
            HandshakeMessage::ClientKeyExchange(dh.clone()),
            HandshakeMessage::Finished(sig.clone()),
        ] {
            let bytes = msg.encode();
            let (decoded, used) = HandshakeMessage::decode(&bytes).unwrap();
            assert_eq!(used, bytes.len());
            assert_eq!(decoded, msg);
        }
    });
}

#[test]
fn extension_blocks_roundtrip() {
    cases(192, "ext-blocks", |rng| {
        let n = rng.below(8);
        let exts: Vec<Extension> = (0..n)
            .map(|_| random_extension(rng))
            .filter(is_roundtrippable)
            .collect();
        let mut buf = Vec::new();
        encode_extensions(&exts, &mut buf);
        let mut r = iotls_tls::codec::Reader::new(&buf);
        let decoded = decode_extensions(&mut r).unwrap();
        assert_eq!(decoded, exts);
    });
}

#[test]
fn truncated_hello_never_panics() {
    cases(192, "truncated", |rng| {
        let bytes = HandshakeMessage::ClientHello(random_client_hello(rng)).encode();
        let cut = (rng.below(100) as usize).min(bytes.len());
        // Must error or succeed, never panic.
        let _ = HandshakeMessage::decode(&bytes[..cut]);
    });
}

#[test]
fn garbage_bytes_never_panic_decoder() {
    cases(192, "garbage", |rng| {
        let data = random_bytes(rng, 199);
        let _ = HandshakeMessage::decode(&data);
        let mut d = Deframer::new();
        d.push(&data);
        while let Ok(Some(_)) = d.pop() {}
    });
}

#[test]
fn records_roundtrip_under_any_chunking() {
    cases(96, "chunking", |rng| {
        let n = rng.range(1, 5);
        let records: Vec<Record> = (0..n)
            .map(|_| {
                Record::new(
                    ContentType::ApplicationData,
                    ProtocolVersion::Tls12,
                    random_bytes(rng, 299),
                )
            })
            .collect();
        let chunk = rng.range(1, 64) as usize;
        let mut wire = Vec::new();
        for r in &records {
            wire.extend_from_slice(&r.encode());
        }
        let mut d = Deframer::new();
        let mut out = Vec::new();
        for c in wire.chunks(chunk) {
            d.push(c);
            while let Some(r) = d.pop().unwrap() {
                out.push(r);
            }
        }
        assert_eq!(out, records);
    });
}

#[test]
fn alerts_roundtrip() {
    cases(192, "alerts", |rng| {
        let alert = Alert {
            level: AlertLevel::from_wire(rng.range(1, 2) as u8).unwrap(),
            description: AlertDescription::from_wire(rng.next_u32() as u8),
        };
        assert_eq!(Alert::from_bytes(&alert.to_bytes()), Some(alert));
    });
}

#[test]
fn fingerprint_is_pure_function_of_features() {
    cases(192, "fingerprint", |rng| {
        let ch = random_client_hello(rng);
        let fp1 = Fingerprint::from_client_hello(&ch);
        let mut ch2 = ch.clone();
        ch2.random = [0xEE; 32];
        ch2.session_id = vec![9, 9, 9];
        let fp2 = Fingerprint::from_client_hello(&ch2);
        assert_eq!(fp1.id(), fp2.id(), "random/session must not affect fingerprints");
    });
}

#[test]
fn fragmentation_reassembles() {
    cases(32, "fragmentation", |rng| {
        let payload = random_bytes(rng, 40_000);
        let frags =
            Record::fragment(ContentType::ApplicationData, ProtocolVersion::Tls12, &payload);
        let total: Vec<u8> = frags.iter().flat_map(|f| f.payload.clone()).collect();
        assert_eq!(total, payload);
    });
}
