//! §6 mitigation features: certificate pinning and OCSP staple
//! verification — including the paper's caveat that pinning the root
//! does not survive a compromised CA, while pinning the leaf does.

use iotls_crypto::drbg::Drbg;
use iotls_crypto::rsa::RsaPrivateKey;
use iotls_tls::client::{ClientConfig, ClientConnection, HandshakeFailure, PinPolicy};
use iotls_tls::server::{ServerConfig, ServerConnection};
use iotls_x509::{
    CertifiedKey, DistinguishedName, IssueParams, OcspResponse, RevocationStatus, RootStore,
    Timestamp, ValidationPolicy,
};

struct World {
    root: CertifiedKey,
    roots: RootStore,
    leaf: iotls_x509::Certificate,
    leaf_key: RsaPrivateKey,
}

fn world(seed: u64) -> World {
    let key = RsaPrivateKey::generate(512, &mut Drbg::from_seed(seed));
    let root = CertifiedKey::self_signed(
        IssueParams::ca(
            DistinguishedName::new("Mitigation Root", "Sim", "US"),
            1,
            Timestamp::from_ymd(2015, 1, 1),
            7300,
        ),
        key,
    );
    let leaf_key = RsaPrivateKey::generate(512, &mut Drbg::from_seed(seed + 1));
    let leaf = root.issue(
        IssueParams::leaf("pinned.example.com", 2, Timestamp::from_ymd(2020, 6, 1), 500),
        &leaf_key,
    );
    let roots = RootStore::from_certs([root.cert.clone()]);
    World {
        root,
        roots,
        leaf,
        leaf_key,
    }
}

fn now() -> Timestamp {
    Timestamp::from_ymd(2021, 3, 1)
}

fn run(cfg: ClientConfig, server_cfg: ServerConfig) -> ClientConnection {
    let mut client = ClientConnection::new(cfg, "pinned.example.com", now(), Drbg::from_seed(7));
    let mut server = ServerConnection::new(server_cfg, Drbg::from_seed(8));
    client.start();
    for _ in 0..16 {
        let c2s = client.take_output();
        if !c2s.is_empty() {
            server.read_tls(&c2s).ok();
        }
        let s2c = server.take_output();
        if !s2c.is_empty() {
            client.read_tls(&s2c).ok();
        }
        if c2s.is_empty() && s2c.is_empty() {
            break;
        }
    }
    client
}

#[test]
fn leaf_pin_accepts_the_pinned_server() {
    let w = world(100);
    let mut cfg = ClientConfig::modern(w.roots.clone());
    cfg.pin = PinPolicy::PinLeafKey(w.leaf.tbs.public_key.fingerprint());
    let client = run(cfg, ServerConfig::typical(vec![w.leaf.clone()], w.leaf_key.clone()));
    assert!(client.is_established(), "{:?}", client.failure());
}

#[test]
fn leaf_pin_defeats_interception_even_without_validation() {
    // A device with *no* certificate validation but a leaf pin still
    // rejects a MITM — §6's recommended defense-in-depth.
    let w = world(110);
    let attacker_key = RsaPrivateKey::generate(512, &mut Drbg::from_seed(1111));
    let forged = CertifiedKey::self_signed(
        IssueParams::leaf("pinned.example.com", 9, Timestamp::from_ymd(2021, 1, 1), 365),
        attacker_key,
    );
    let mut cfg = ClientConfig::modern(w.roots.clone());
    cfg.validation_policy = ValidationPolicy::no_validation();
    cfg.pin = PinPolicy::PinLeafKey(w.leaf.tbs.public_key.fingerprint());
    let client = run(cfg, ServerConfig::typical(vec![forged.cert.clone()], forged.key));
    assert_eq!(client.failure(), Some(&HandshakeFailure::PinMismatch));
}

#[test]
fn root_pin_fails_against_a_compromised_ca_but_leaf_pin_holds() {
    // The paper's caveat: "pinning can help only in cases of
    // compromised root stores if the leaf certificate is pinned
    // (rather than the root)."
    let w = world(120);
    // The attacker somehow obtained the CA's key (the WoSign-style
    // incident) and mints a fresh, perfectly valid leaf.
    let mallory_key = RsaPrivateKey::generate(512, &mut Drbg::from_seed(1211));
    let mallory_leaf = w.root.issue(
        IssueParams::leaf("pinned.example.com", 666, Timestamp::from_ymd(2021, 1, 1), 90),
        &mallory_key,
    );
    let mitm_server = ServerConfig::typical(vec![mallory_leaf], mallory_key);

    // Root pin: the chain anchors at the (compromised) pinned root —
    // the pin passes and the interception SUCCEEDS.
    let mut root_pinned = ClientConfig::modern(w.roots.clone());
    root_pinned.pin = PinPolicy::PinRootKey(w.root.cert.tbs.public_key.fingerprint());
    let client = run(root_pinned, mitm_server.clone());
    assert!(
        client.is_established(),
        "root pin should NOT stop a compromised-CA MITM: {:?}",
        client.failure()
    );

    // Leaf pin: the minted leaf's key differs — interception fails.
    let mut leaf_pinned = ClientConfig::modern(w.roots.clone());
    leaf_pinned.pin = PinPolicy::PinLeafKey(w.leaf.tbs.public_key.fingerprint());
    let client = run(leaf_pinned, mitm_server);
    assert_eq!(client.failure(), Some(&HandshakeFailure::PinMismatch));
}

#[test]
fn root_pin_accepts_the_honest_chain() {
    let w = world(130);
    let mut cfg = ClientConfig::modern(w.roots.clone());
    cfg.pin = PinPolicy::PinRootKey(w.root.cert.tbs.public_key.fingerprint());
    let client = run(cfg, ServerConfig::typical(vec![w.leaf.clone()], w.leaf_key.clone()));
    assert!(client.is_established(), "{:?}", client.failure());
}

fn staple_world(seed: u64, status: RevocationStatus, validity_secs: i64) -> (ClientConfig, ServerConfig) {
    let w = world(seed);
    let staple = OcspResponse::produce(
        &w.root,
        w.leaf.tbs.serial,
        status,
        Timestamp::from_ymd(2021, 2, 1),
        validity_secs,
    )
    .to_bytes();
    let mut server_cfg = ServerConfig::typical(vec![w.leaf.clone()], w.leaf_key.clone());
    server_cfg.ocsp_staple = Some(staple);
    let mut cfg = ClientConfig::modern(w.roots.clone());
    cfg.request_ocsp = true;
    cfg.verify_staple = true;
    (cfg, server_cfg)
}

#[test]
fn good_staple_accepted() {
    let (cfg, server_cfg) = staple_world(200, RevocationStatus::Good, 90 * 86_400);
    let client = run(cfg, server_cfg);
    assert!(client.is_established(), "{:?}", client.failure());
    assert!(client.summary().ocsp_stapled);
}

#[test]
fn revoked_staple_rejected() {
    let (cfg, server_cfg) = staple_world(210, RevocationStatus::Revoked, 90 * 86_400);
    let client = run(cfg, server_cfg);
    assert_eq!(client.failure(), Some(&HandshakeFailure::StapleFailure));
}

#[test]
fn stale_staple_rejected() {
    // Produced 2021-02-01, valid one day; handshake at 2021-03-01.
    let (cfg, server_cfg) = staple_world(220, RevocationStatus::Good, 86_400);
    let client = run(cfg, server_cfg);
    assert_eq!(client.failure(), Some(&HandshakeFailure::StapleFailure));
}

#[test]
fn forged_staple_rejected() {
    // The staple is signed by someone other than the issuer.
    let w = world(230);
    let mallory = CertifiedKey::self_signed(
        IssueParams::ca(
            DistinguishedName::new("Mallory CA", "Evil", "XX"),
            9,
            Timestamp::from_ymd(2015, 1, 1),
            7300,
        ),
        RsaPrivateKey::generate(512, &mut Drbg::from_seed(231)),
    );
    let forged = OcspResponse::produce(
        &mallory,
        w.leaf.tbs.serial,
        RevocationStatus::Good,
        Timestamp::from_ymd(2021, 2, 1),
        90 * 86_400,
    )
    .to_bytes();
    let mut server_cfg = ServerConfig::typical(vec![w.leaf.clone()], w.leaf_key.clone());
    server_cfg.ocsp_staple = Some(forged);
    let mut cfg = ClientConfig::modern(w.roots.clone());
    cfg.request_ocsp = true;
    cfg.verify_staple = true;
    let client = run(cfg, server_cfg);
    assert_eq!(client.failure(), Some(&HandshakeFailure::StapleFailure));
}

#[test]
fn must_staple_leaf_without_staple_rejected() {
    let key = RsaPrivateKey::generate(512, &mut Drbg::from_seed(240));
    let root = CertifiedKey::self_signed(
        IssueParams::ca(
            DistinguishedName::new("MS Root", "Sim", "US"),
            1,
            Timestamp::from_ymd(2015, 1, 1),
            7300,
        ),
        key,
    );
    let leaf_key = RsaPrivateKey::generate(512, &mut Drbg::from_seed(241));
    let mut params = IssueParams::leaf("pinned.example.com", 2, Timestamp::from_ymd(2020, 6, 1), 500);
    params.extensions.must_staple = true;
    let leaf = root.issue(params, &leaf_key);
    let roots = RootStore::from_certs([root.cert.clone()]);
    // Server has no staple to send.
    let server_cfg = ServerConfig::typical(vec![leaf], leaf_key);
    let mut cfg = ClientConfig::modern(roots);
    cfg.request_ocsp = true;
    cfg.verify_staple = true;
    let client = run(cfg, server_cfg);
    assert_eq!(client.failure(), Some(&HandshakeFailure::StapleFailure));
}

#[test]
fn staple_verification_off_accepts_revoked_staple() {
    // Matching the ecosystem the paper measures: devices that request
    // staples but never *verify* them accept even a revoked one.
    let (mut cfg, server_cfg) = staple_world(250, RevocationStatus::Revoked, 90 * 86_400);
    cfg.verify_staple = false;
    let client = run(cfg, server_cfg);
    assert!(client.is_established());
}
