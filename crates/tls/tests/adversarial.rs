//! Adversarial robustness: an on-path attacker can corrupt, truncate,
//! reorder, or replay anything. The state machines must never panic
//! and must fail closed.

use iotls_crypto::drbg::Drbg;
use iotls_crypto::rsa::RsaPrivateKey;
use iotls_tls::client::{ClientConfig, ClientConnection};
use iotls_tls::server::{ServerConfig, ServerConnection};
use iotls_x509::{CertifiedKey, DistinguishedName, IssueParams, RootStore, Timestamp};

fn setup(seed: u64) -> (RootStore, ServerConfig) {
    let key = RsaPrivateKey::generate(512, &mut Drbg::from_seed(seed));
    let root = CertifiedKey::self_signed(
        IssueParams::ca(
            DistinguishedName::new("Adv Root", "Sim", "US"),
            1,
            Timestamp::from_ymd(2015, 1, 1),
            7300,
        ),
        key,
    );
    let leaf_key = RsaPrivateKey::generate(512, &mut Drbg::from_seed(seed + 999));
    let leaf = root.issue(
        IssueParams::leaf("adv.example.com", 2, Timestamp::from_ymd(2020, 6, 1), 500),
        &leaf_key,
    );
    (
        RootStore::from_certs([root.cert.clone()]),
        ServerConfig::typical(vec![leaf], leaf_key),
    )
}

fn now() -> Timestamp {
    Timestamp::from_ymd(2021, 3, 1)
}

/// Captures the server's first flight for a fresh handshake.
fn first_flights(seed: u64) -> (Vec<u8>, Vec<u8>, RootStore, ServerConfig) {
    let (roots, server_cfg) = setup(seed);
    let mut client = ClientConnection::new(
        ClientConfig::modern(roots.clone()),
        "adv.example.com",
        now(),
        Drbg::from_seed(seed + 1),
    );
    let mut server = ServerConnection::new(server_cfg.clone(), Drbg::from_seed(seed + 2));
    client.start();
    let hello = client.take_output();
    server.read_tls(&hello).unwrap();
    let server_flight = server.take_output();
    (hello, server_flight, roots, server_cfg)
}

#[test]
fn client_survives_every_single_byte_flip_of_the_server_flight() {
    let (_, server_flight, roots, _) = first_flights(5000);
    for i in 0..server_flight.len() {
        let mut corrupted = server_flight.clone();
        corrupted[i] ^= 0xff;
        let mut client = ClientConnection::new(
            ClientConfig::modern(roots.clone()),
            "adv.example.com",
            now(),
            Drbg::from_seed(5001),
        );
        client.start();
        let _ = client.take_output();
        // Must not panic; outcome may be error or failure state.
        let _ = client.read_tls(&corrupted);
        assert!(
            !client.is_established(),
            "byte {i}: corrupted flight must never establish"
        );
    }
}

#[test]
fn client_survives_truncated_flights() {
    let (_, server_flight, roots, _) = first_flights(5010);
    for cut in (0..server_flight.len()).step_by(7) {
        let mut client = ClientConnection::new(
            ClientConfig::modern(roots.clone()),
            "adv.example.com",
            now(),
            Drbg::from_seed(5011),
        );
        client.start();
        let _ = client.take_output();
        let _ = client.read_tls(&server_flight[..cut]);
        assert!(!client.is_established(), "cut at {cut}");
    }
}

#[test]
fn server_survives_every_single_byte_flip_of_the_client_hello() {
    let (hello, _, _, server_cfg) = first_flights(5020);
    for i in 0..hello.len() {
        let mut corrupted = hello.clone();
        corrupted[i] ^= 0xff;
        let mut server = ServerConnection::new(server_cfg.clone(), Drbg::from_seed(5021));
        let _ = server.read_tls(&corrupted);
        assert!(!server.is_established(), "byte {i}");
    }
}

#[test]
fn replayed_server_flight_does_not_confuse_the_client() {
    let (_, server_flight, roots, _) = first_flights(5030);
    let mut client = ClientConnection::new(
        ClientConfig::modern(roots),
        "adv.example.com",
        now(),
        Drbg::from_seed(5031),
    );
    client.start();
    let _ = client.take_output();
    let _ = client.read_tls(&server_flight);
    // A replay of the same flight arrives again: unexpected messages
    // in the current state must fail the connection, not panic.
    let _ = client.read_tls(&server_flight);
    assert!(!client.is_established());
}

#[test]
fn random_garbage_never_panics_either_endpoint() {
    let (roots, server_cfg) = setup(5040);
    let mut rng = Drbg::from_seed(5041);
    for round in 0..50 {
        let len = 1 + (rng.below(400) as usize);
        let mut junk = vec![0u8; len];
        rng.fill_bytes(&mut junk);

        let mut client = ClientConnection::new(
            ClientConfig::modern(roots.clone()),
            "adv.example.com",
            now(),
            Drbg::from_seed(round),
        );
        client.start();
        let _ = client.take_output();
        let _ = client.read_tls(&junk);
        assert!(!client.is_established());

        let mut server = ServerConnection::new(server_cfg.clone(), Drbg::from_seed(round));
        let _ = server.read_tls(&junk);
        assert!(!server.is_established());
    }
}

#[test]
fn injected_flight_before_hello_poisons_the_connection() {
    // Deliver the server flight *before* the client ever sent a hello
    // (attacker-injected): the connection fails closed and stays
    // terminal (a real device opens a new connection instead).
    let (_, server_flight, roots, _) = first_flights(5050);
    let mut client = ClientConnection::new(
        ClientConfig::modern(roots),
        "adv.example.com",
        now(),
        Drbg::from_seed(5051),
    );
    let _ = client.read_tls(&server_flight);
    assert!(!client.is_established());
    assert!(client.is_terminal(), "unexpected message must fail closed");
    assert!(client.failure().is_some());
}

#[test]
fn cross_session_flight_splice_fails_the_finished_check() {
    // Splice: hello from session A answered with the (valid-looking)
    // flight of session B — randoms mismatch, so key exchange or
    // Finished must fail.
    let (_, flight_b, roots, server_cfg) = first_flights(5060);
    let mut client_a = ClientConnection::new(
        ClientConfig::modern(roots),
        "adv.example.com",
        now(),
        Drbg::from_seed(5061), // different randoms than session B's client
    );
    client_a.start();
    let _ = client_a.take_output();
    let _ = client_a.read_tls(&flight_b);
    // Client A may even send its second flight, but the server of
    // session B is gone; at minimum it is not established now, and a
    // fresh honest server cannot complete it either.
    assert!(!client_a.is_established());
    let mut server = ServerConnection::new(server_cfg, Drbg::from_seed(5062));
    let tail = client_a.take_output();
    let _ = server.read_tls(&tail);
    assert!(!server.is_established(), "spliced session must not complete");
}
