//! End-to-end client↔server handshakes pumped through in-memory byte
//! exchange — the same lockstep the network simulator performs.

use iotls_crypto::drbg::Drbg;
use iotls_crypto::rsa::RsaPrivateKey;
use iotls_tls::alert::AlertDescription;
use iotls_tls::client::{ClientConfig, ClientConnection, HandshakeFailure};
use iotls_tls::server::{ServerConfig, ServerConnection};
use iotls_tls::version::ProtocolVersion;
use iotls_x509::{
    CertifiedKey, DistinguishedName, IssueParams, RootStore, Timestamp, ValidationError,
    ValidationPolicy,
};

struct TestPki {
    root: CertifiedKey,
    roots: RootStore,
}

fn pki(seed: u64) -> TestPki {
    let key = RsaPrivateKey::generate(512, &mut Drbg::from_seed(seed));
    let root = CertifiedKey::self_signed(
        IssueParams::ca(
            DistinguishedName::new("E2E Root CA", "SimCA", "US"),
            1,
            Timestamp::from_ymd(2015, 1, 1),
            7300,
        ),
        key,
    );
    let roots = RootStore::from_certs([root.cert.clone()]);
    TestPki { root, roots }
}

fn server_for(pki: &TestPki, host: &str, seed: u64) -> ServerConfig {
    let key = RsaPrivateKey::generate(512, &mut Drbg::from_seed(seed));
    let leaf = pki.root.issue(
        IssueParams::leaf(host, seed, Timestamp::from_ymd(2020, 6, 1), 500),
        &key,
    );
    ServerConfig::typical(vec![leaf], key)
}

const NOW: fn() -> Timestamp = || Timestamp::from_ymd(2021, 3, 1);

/// Pumps bytes both ways until neither side produces output.
fn pump(client: &mut ClientConnection, server: &mut ServerConnection) {
    for _ in 0..20 {
        let c2s = client.take_output();
        if !c2s.is_empty() {
            server.read_tls(&c2s).ok();
        }
        let s2c = server.take_output();
        if !s2c.is_empty() {
            client.read_tls(&s2c).ok();
        }
        if c2s.is_empty() && s2c.is_empty() {
            break;
        }
    }
}

fn run(
    client_config: ClientConfig,
    server_config: ServerConfig,
    host: &str,
) -> (ClientConnection, ServerConnection) {
    let mut client = ClientConnection::new(client_config, host, NOW(), Drbg::from_seed(0xC11E));
    let mut server = ServerConnection::new(server_config, Drbg::from_seed(0x5E44));
    client.start();
    pump(&mut client, &mut server);
    (client, server)
}

#[test]
fn modern_handshake_establishes_tls13() {
    let p = pki(1000);
    let (client, server) = run(
        ClientConfig::modern(p.roots.clone()),
        server_for(&p, "cloud.example.com", 1001),
        "cloud.example.com",
    );
    assert!(client.is_established(), "client: {:?}", client.failure());
    assert!(server.is_established(), "server: {:?}", server.failure());
    let s = client.summary();
    assert_eq!(s.version, Some(ProtocolVersion::Tls13));
    assert_eq!(s.cipher_suite, Some(0x1301));
    assert!(s.failure.is_none());
}

#[test]
fn application_data_roundtrip_and_confidentiality() {
    let p = pki(1002);
    let (mut client, mut server) = run(
        ClientConfig::modern(p.roots.clone()),
        server_for(&p, "cloud.example.com", 1003),
        "cloud.example.com",
    );
    assert!(client.is_established() && server.is_established());

    client.send_application_data(b"deviceSecret=abc123");
    let wire = client.take_output();
    // Payload is encrypted on the wire.
    assert!(!wire
        .windows(12)
        .any(|w| w == b"deviceSecret"));
    server.read_tls(&wire).unwrap();
    assert_eq!(server.take_application_data(), b"deviceSecret=abc123");

    server.send_application_data(b"ok");
    let wire = server.take_output();
    client.read_tls(&wire).unwrap();
    assert_eq!(client.take_application_data(), b"ok");
}

#[test]
fn tls12_only_client_negotiates_tls12() {
    let p = pki(1004);
    let mut cfg = ClientConfig::modern(p.roots.clone());
    cfg.versions = vec![ProtocolVersion::Tls12];
    cfg.cipher_suites = vec![0xc02f, 0x009c];
    let (client, _server) = run(cfg, server_for(&p, "h.example.com", 1005), "h.example.com");
    assert!(client.is_established());
    assert_eq!(client.summary().version, Some(ProtocolVersion::Tls12));
    assert_eq!(client.summary().cipher_suite, Some(0xc02f));
}

#[test]
fn rsa_key_transport_suite_works() {
    let p = pki(1006);
    let mut cfg = ClientConfig::modern(p.roots.clone());
    cfg.versions = vec![ProtocolVersion::Tls12];
    cfg.cipher_suites = vec![0x009c]; // TLS_RSA_WITH_AES_128_GCM_SHA256
    let (mut client, mut server) = run(cfg, server_for(&p, "h.example.com", 1007), "h.example.com");
    assert!(client.is_established(), "{:?}", client.failure());
    client.send_application_data(b"ping");
    let wire = client.take_output();
    server.read_tls(&wire).unwrap();
    assert_eq!(server.take_application_data(), b"ping");
}

#[test]
fn rc4_suite_works_end_to_end() {
    // The Roku-TV fallback suite: TLS_RSA_WITH_RC4_128_SHA.
    let p = pki(1008);
    let mut cfg = ClientConfig::modern(p.roots.clone());
    cfg.versions = vec![ProtocolVersion::Tls10];
    cfg.cipher_suites = vec![0x0005];
    let (mut client, mut server) = run(cfg, server_for(&p, "h.example.com", 1009), "h.example.com");
    assert!(client.is_established(), "{:?}", client.failure());
    assert_eq!(client.summary().version, Some(ProtocolVersion::Tls10));
    client.send_application_data(b"legacy payload");
    let wire = client.take_output();
    assert!(!wire.windows(6).any(|w| w == b"legacy"));
    server.read_tls(&wire).unwrap();
    assert_eq!(server.take_application_data(), b"legacy payload");
}

#[test]
fn self_signed_cert_rejected_with_unknown_ca() {
    let p = pki(1010);
    // Server presents a self-signed cert not in the client's store —
    // the NoValidation attack against a *correct* client.
    let attacker_key = RsaPrivateKey::generate(512, &mut Drbg::from_seed(1011));
    let attacker = CertifiedKey::self_signed(
        IssueParams::leaf("cloud.example.com", 9, Timestamp::from_ymd(2020, 1, 1), 700),
        attacker_key,
    );
    let server_cfg = ServerConfig::typical(vec![attacker.cert.clone()], attacker.key.clone());
    let (client, server) = run(
        ClientConfig::modern(p.roots.clone()),
        server_cfg,
        "cloud.example.com",
    );
    assert!(!client.is_established());
    assert_eq!(
        client.failure(),
        Some(&HandshakeFailure::Validation(ValidationError::UnknownIssuer))
    );
    // OpenSSL profile: unknown_ca alert observable by the attacker.
    let alerts = server.alerts_received();
    assert!(
        alerts
            .iter()
            .any(|a| a.description == AlertDescription::UnknownCa),
        "alerts: {alerts:?}"
    );
}

#[test]
fn no_validation_client_accepts_self_signed() {
    let p = pki(1012);
    let attacker_key = RsaPrivateKey::generate(512, &mut Drbg::from_seed(1013));
    let attacker = CertifiedKey::self_signed(
        IssueParams::leaf("anything.example.com", 9, Timestamp::from_ymd(2020, 1, 1), 700),
        attacker_key,
    );
    let server_cfg = ServerConfig::typical(vec![attacker.cert.clone()], attacker.key.clone());
    let mut cfg = ClientConfig::modern(p.roots.clone());
    cfg.validation_policy = ValidationPolicy::no_validation();
    let (mut client, mut server) = run(cfg, server_cfg, "cloud.example.com");
    assert!(client.is_established(), "{:?}", client.failure());
    // The vulnerable device then leaks its payload to the attacker.
    client.send_application_data(b"encrypt_key=SECRET");
    let wire = client.take_output();
    server.read_tls(&wire).unwrap();
    assert_eq!(server.take_application_data(), b"encrypt_key=SECRET");
}

#[test]
fn wrong_hostname_rejected_only_with_hostname_check() {
    let p = pki(1014);
    // Legitimate chain for a domain the attacker controls.
    let server_cfg = server_for(&p, "attacker-owned.example.net", 1015);
    let (client, _s) = run(
        ClientConfig::modern(p.roots.clone()),
        server_cfg.clone(),
        "victim.example.com",
    );
    assert_eq!(
        client.failure(),
        Some(&HandshakeFailure::Validation(ValidationError::HostnameMismatch))
    );
    // The Amazon-family policy (no hostname check) accepts it.
    let mut cfg = ClientConfig::modern(p.roots.clone());
    cfg.validation_policy = ValidationPolicy::no_hostname_check();
    let (client, _s) = run(cfg, server_cfg, "victim.example.com");
    assert!(client.is_established());
}

#[test]
fn spoofed_ca_yields_decrypt_error_for_openssl_profile() {
    // The root-store probe's positive case: client recognizes the CA
    // name but the signature cannot verify → decrypt_error (OpenSSL).
    let p = pki(1016);
    let spoof_key = RsaPrivateKey::generate(512, &mut Drbg::from_seed(1017));
    let spoof = CertifiedKey::self_signed(
        IssueParams::ca(
            p.root.cert.tbs.subject.clone(),
            p.root.cert.tbs.serial,
            Timestamp::from_ymd(2015, 1, 1),
            7300,
        ),
        spoof_key,
    );
    let leaf_key = RsaPrivateKey::generate(512, &mut Drbg::from_seed(1018));
    let leaf = spoof.issue(
        IssueParams::leaf("cloud.example.com", 77, Timestamp::from_ymd(2020, 6, 1), 500),
        &leaf_key,
    );
    let server_cfg = ServerConfig::typical(vec![leaf], leaf_key);
    let (client, server) = run(
        ClientConfig::modern(p.roots.clone()),
        server_cfg,
        "cloud.example.com",
    );
    assert_eq!(
        client.failure(),
        Some(&HandshakeFailure::Validation(ValidationError::BadSignature))
    );
    assert!(server
        .alerts_received()
        .iter()
        .any(|a| a.description == AlertDescription::DecryptError));
}

#[test]
fn mute_server_leaves_client_waiting() {
    // IncompleteHandshake: no ServerHello ever arrives.
    let p = pki(1019);
    let mut server_cfg = server_for(&p, "h.example.com", 1020);
    server_cfg.mute = true;
    let (client, _server) = run(
        ClientConfig::modern(p.roots.clone()),
        server_cfg,
        "h.example.com",
    );
    assert!(!client.is_established());
    assert!(client.failure().is_none(), "no failure — just silence");
}

#[test]
fn forced_old_version_negotiated_when_client_allows() {
    let p = pki(1021);
    let mut server_cfg = server_for(&p, "h.example.com", 1022);
    server_cfg.forced_version = Some(ProtocolVersion::Tls10);
    let mut cfg = ClientConfig::modern(p.roots.clone());
    cfg.versions = vec![
        ProtocolVersion::Tls10,
        ProtocolVersion::Tls11,
        ProtocolVersion::Tls12,
    ];
    cfg.cipher_suites = vec![0xc02f, 0x002f];
    let (client, _s) = run(cfg, server_cfg, "h.example.com");
    assert!(client.is_established(), "{:?}", client.failure());
    assert_eq!(client.summary().version, Some(ProtocolVersion::Tls10));
}

#[test]
fn forced_old_version_rejected_when_client_refuses() {
    let p = pki(1023);
    let mut server_cfg = server_for(&p, "h.example.com", 1024);
    server_cfg.forced_version = Some(ProtocolVersion::Tls10);
    let mut cfg = ClientConfig::modern(p.roots.clone());
    cfg.versions = vec![ProtocolVersion::Tls12, ProtocolVersion::Tls13];
    let (client, _s) = run(cfg, server_cfg, "h.example.com");
    assert!(!client.is_established());
    assert!(matches!(
        client.failure(),
        Some(HandshakeFailure::UnsupportedVersion(ProtocolVersion::Tls10))
            | Some(HandshakeFailure::PeerAlert(_))
    ));
}

#[test]
fn no_common_suite_fails_handshake() {
    let p = pki(1025);
    let mut server_cfg = server_for(&p, "h.example.com", 1026);
    server_cfg.cipher_suites = vec![0x0005]; // RC4 only
    let mut cfg = ClientConfig::modern(p.roots.clone());
    cfg.versions = vec![ProtocolVersion::Tls12];
    cfg.cipher_suites = vec![0xc02f]; // ECDHE only
    let (client, server) = run(cfg, server_cfg, "h.example.com");
    assert!(!client.is_established());
    assert!(!server.is_established());
}

#[test]
fn ocsp_staple_delivered_when_requested() {
    let p = pki(1027);
    let mut server_cfg = server_for(&p, "h.example.com", 1028);
    server_cfg.ocsp_staple = Some(vec![1, 2, 3, 4]);
    let mut cfg = ClientConfig::modern(p.roots.clone());
    cfg.request_ocsp = true;
    let (client, _s) = run(cfg.clone(), server_cfg.clone(), "h.example.com");
    assert!(client.is_established());
    assert!(client.summary().ocsp_stapled);
    // Not stapled when the client does not ask.
    cfg.request_ocsp = false;
    let (client, _s) = run(cfg, server_cfg, "h.example.com");
    assert!(client.is_established());
    assert!(!client.summary().ocsp_stapled);
}

#[test]
fn expired_certificate_rejected() {
    let p = pki(1029);
    let key = RsaPrivateKey::generate(512, &mut Drbg::from_seed(1030));
    let leaf = p.root.issue(
        IssueParams::leaf("h.example.com", 5, Timestamp::from_ymd(2018, 1, 1), 90),
        &key,
    );
    let server_cfg = ServerConfig::typical(vec![leaf], key);
    let (client, _s) = run(
        ClientConfig::modern(p.roots.clone()),
        server_cfg,
        "h.example.com",
    );
    assert_eq!(
        client.failure(),
        Some(&HandshakeFailure::Validation(ValidationError::Expired))
    );
}

#[test]
fn handshake_is_deterministic_per_seed() {
    let p = pki(1031);
    let server_cfg = server_for(&p, "h.example.com", 1032);
    let mut out1 = Vec::new();
    let mut out2 = Vec::new();
    for out in [&mut out1, &mut out2] {
        let mut client = ClientConnection::new(
            ClientConfig::modern(p.roots.clone()),
            "h.example.com",
            NOW(),
            Drbg::from_seed(42),
        );
        let mut server = ServerConnection::new(server_cfg.clone(), Drbg::from_seed(43));
        client.start();
        pump(&mut client, &mut server);
        assert!(client.is_established());
        client.send_application_data(b"x");
        out.extend(client.take_output());
    }
    assert_eq!(out1, out2);
}

#[test]
fn triple_des_suite_works_end_to_end() {
    // The Wink Hub 2 / LG TV scenario: a 3DES-preferring server
    // negotiates TLS_RSA_WITH_3DES_EDE_CBC_SHA, protected by the real
    // Triple-DES core.
    let p = pki(1033);
    let mut server_cfg = server_for(&p, "h.example.com", 1034);
    server_cfg.cipher_suites = vec![0x000a, 0x009c];
    let mut cfg = ClientConfig::modern(p.roots.clone());
    cfg.versions = vec![ProtocolVersion::Tls12];
    cfg.cipher_suites = vec![0xc02f, 0x009c, 0x000a];
    let (mut client, mut server) = run(cfg, server_cfg, "h.example.com");
    assert!(client.is_established(), "{:?}", client.failure());
    assert_eq!(client.summary().cipher_suite, Some(0x000a));
    client.send_application_data(b"legacy 3des payload");
    let wire = client.take_output();
    assert!(!wire.windows(6).any(|w| w == b"legacy"));
    server.read_tls(&wire).unwrap();
    assert_eq!(server.take_application_data(), b"legacy 3des payload");
}
