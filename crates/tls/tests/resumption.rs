//! RFC 5246 session-ID resumption: full handshake issues a session,
//! the abbreviated handshake reuses it — shorter, certificate-free,
//! and still authenticated by the shared master secret.

use iotls_crypto::drbg::Drbg;
use iotls_crypto::rsa::RsaPrivateKey;
use iotls_tls::client::{CachedSession, ClientConfig, ClientConnection};
use iotls_tls::server::{ServerConfig, ServerConnection, SessionCache};
use iotls_x509::{CertifiedKey, DistinguishedName, IssueParams, RootStore, Timestamp};

struct World {
    roots: RootStore,
    server_cfg: ServerConfig,
    cache: SessionCache,
}

fn world(seed: u64) -> World {
    let key = RsaPrivateKey::generate(512, &mut Drbg::from_seed(seed));
    let root = CertifiedKey::self_signed(
        IssueParams::ca(
            DistinguishedName::new("Resume Root", "Sim", "US"),
            1,
            Timestamp::from_ymd(2015, 1, 1),
            7300,
        ),
        key,
    );
    let leaf_key = RsaPrivateKey::generate(512, &mut Drbg::from_seed(seed + 1000));
    let leaf = root.issue(
        IssueParams::leaf("resume.example.com", 2, Timestamp::from_ymd(2020, 6, 1), 500),
        &leaf_key,
    );
    let cache = SessionCache::new();
    let mut server_cfg = ServerConfig::typical(vec![leaf], leaf_key);
    server_cfg.session_cache = Some(cache.clone());
    World {
        roots: RootStore::from_certs([root.cert.clone()]),
        server_cfg,
        cache,
    }
}

fn now() -> Timestamp {
    Timestamp::from_ymd(2021, 3, 1)
}

/// Pumps to quiescence; returns (client, wire bytes server→client).
fn run(mut client: ClientConnection, server_cfg: ServerConfig, seed: u64) -> (ClientConnection, Vec<u8>) {
    let mut server = ServerConnection::new(server_cfg, Drbg::from_seed(seed));
    let mut s2c_total = Vec::new();
    client.start();
    for _ in 0..16 {
        let c2s = client.take_output();
        if !c2s.is_empty() {
            server.read_tls(&c2s).ok();
        }
        let s2c = server.take_output();
        if !s2c.is_empty() {
            s2c_total.extend_from_slice(&s2c);
            client.read_tls(&s2c).ok();
        }
        if c2s.is_empty() && s2c.is_empty() {
            break;
        }
    }
    (client, s2c_total)
}

fn full_handshake(w: &World, seed: u64) -> (CachedSession, usize) {
    let client = ClientConnection::new(
        ClientConfig::modern(w.roots.clone()),
        "resume.example.com",
        now(),
        Drbg::from_seed(seed),
    );
    let (client, s2c) = run(client, w.server_cfg.clone(), seed + 1);
    assert!(client.is_established(), "{:?}", client.failure());
    assert!(!client.is_resumed());
    let cached = client.session_for_cache().expect("session issued");
    assert_eq!(cached.session_id.len(), 16);
    (cached, s2c.len())
}

#[test]
fn full_then_resumed_handshake() {
    let w = world(3000);
    let (cached, full_bytes) = full_handshake(&w, 1);
    assert_eq!(w.cache.len(), 1);

    // Second connection resumes.
    let mut client = ClientConnection::new(
        ClientConfig::modern(w.roots.clone()),
        "resume.example.com",
        now(),
        Drbg::from_seed(2),
    );
    client.resume(cached);
    let (client, s2c) = run(client, w.server_cfg.clone(), 3);
    assert!(client.is_established(), "{:?}", client.failure());
    assert!(client.is_resumed());
    // Abbreviated: far fewer server bytes (no Certificate flight).
    assert!(
        s2c.len() * 3 < full_bytes,
        "resumed {} vs full {full_bytes} bytes",
        s2c.len()
    );
    // No certificate crossed the wire.
    assert!(client.summary().server_chain.is_empty());
}

#[test]
fn resumed_session_carries_application_data() {
    let w = world(3010);
    let (cached, _) = full_handshake(&w, 10);
    let mut client = ClientConnection::new(
        ClientConfig::modern(w.roots.clone()),
        "resume.example.com",
        now(),
        Drbg::from_seed(11),
    );
    client.resume(cached);
    let mut server = ServerConnection::new(w.server_cfg.clone(), Drbg::from_seed(12));
    client.start();
    for _ in 0..16 {
        let c2s = client.take_output();
        if !c2s.is_empty() {
            server.read_tls(&c2s).ok();
        }
        let s2c = server.take_output();
        if !s2c.is_empty() {
            client.read_tls(&s2c).ok();
        }
        if c2s.is_empty() && s2c.is_empty() {
            break;
        }
    }
    assert!(client.is_established() && server.is_established());
    assert!(server.is_resumed());
    client.send_application_data(b"resumed payload");
    let wire = client.take_output();
    assert!(!wire.windows(7).any(|w| w == b"resumed"), "encrypted");
    server.read_tls(&wire).unwrap();
    assert_eq!(server.take_application_data(), b"resumed payload");
}

#[test]
fn unknown_session_id_falls_back_to_full_handshake() {
    let w = world(3020);
    let mut client = ClientConnection::new(
        ClientConfig::modern(w.roots.clone()),
        "resume.example.com",
        now(),
        Drbg::from_seed(20),
    );
    client.resume(CachedSession {
        session_id: vec![0xEE; 16],
        master: [7u8; 48],
    });
    let (client, _) = run(client, w.server_cfg.clone(), 21);
    assert!(client.is_established(), "{:?}", client.failure());
    assert!(!client.is_resumed(), "unknown id must do a full handshake");
    assert!(!client.summary().server_chain.is_empty());
}

#[test]
fn server_without_cache_never_issues_sessions() {
    let mut w = world(3030);
    w.server_cfg.session_cache = None;
    let client = ClientConnection::new(
        ClientConfig::modern(w.roots.clone()),
        "resume.example.com",
        now(),
        Drbg::from_seed(30),
    );
    let (client, _) = run(client, w.server_cfg.clone(), 31);
    assert!(client.is_established());
    assert!(client.session_for_cache().is_none());
}

#[test]
fn sessions_are_shared_across_server_connections_via_the_cache() {
    let w = world(3040);
    let (cached1, _) = full_handshake(&w, 40);
    let (cached2, _) = full_handshake(&w, 50);
    assert_ne!(cached1.session_id, cached2.session_id);
    assert_eq!(w.cache.len(), 2);
    // Either session resumes against a *fresh* server connection.
    for (i, cached) in [cached1, cached2].into_iter().enumerate() {
        let mut client = ClientConnection::new(
            ClientConfig::modern(w.roots.clone()),
            "resume.example.com",
            now(),
            Drbg::from_seed(60 + i as u64),
        );
        client.resume(cached);
        let (client, _) = run(client, w.server_cfg.clone(), 70 + i as u64);
        assert!(client.is_resumed(), "session {i}");
    }
}

#[test]
fn resumed_handshake_with_wrong_master_fails() {
    let w = world(3050);
    let (mut cached, _) = full_handshake(&w, 80);
    cached.master[0] ^= 0xff; // corrupted cache entry
    let mut client = ClientConnection::new(
        ClientConfig::modern(w.roots.clone()),
        "resume.example.com",
        now(),
        Drbg::from_seed(81),
    );
    client.resume(cached);
    let (client, _) = run(client, w.server_cfg.clone(), 82);
    assert!(!client.is_established());
}
