//! Property-style tests for the crypto substrate.
//!
//! Inputs are generated from the crate's own deterministic DRBG
//! rather than an external property-testing framework, so the suite
//! builds and runs with no registry access and every failure
//! reproduces from the fixed seed.

use iotls_crypto::bigint::Uint;
use iotls_crypto::drbg::Drbg;
use iotls_crypto::rsa::RsaPrivateKey;
use iotls_crypto::sha256::sha256;
use iotls_crypto::{ChaCha20, Rc4};

/// Runs `body` for `n` generated cases, each with its own fork of a
/// fixed-seed DRBG (case index in the label keeps cases independent).
fn cases(n: u64, label: &str, mut body: impl FnMut(&mut Drbg)) {
    let root = Drbg::from_seed(0xC4_5E5).fork(label);
    for i in 0..n {
        let mut rng = root.fork(&format!("case-{i}"));
        body(&mut rng);
    }
}

fn random_bytes(rng: &mut Drbg, max_len: u64) -> Vec<u8> {
    let len = rng.below(max_len + 1) as usize;
    let mut out = vec![0u8; len];
    rng.fill_bytes(&mut out);
    out
}

fn random_uint(rng: &mut Drbg) -> Uint {
    Uint::from_be_bytes(&random_bytes(rng, 39))
}

#[test]
fn add_commutes() {
    cases(128, "add-commutes", |rng| {
        let (a, b) = (random_uint(rng), random_uint(rng));
        assert_eq!(a.add(&b), b.add(&a));
    });
}

#[test]
fn add_sub_roundtrip() {
    cases(128, "add-sub", |rng| {
        let (a, b) = (random_uint(rng), random_uint(rng));
        assert_eq!(a.add(&b).sub(&b), a);
    });
}

#[test]
fn mul_commutes_and_distributes() {
    cases(128, "mul", |rng| {
        let (a, b, c) = (random_uint(rng), random_uint(rng), random_uint(rng));
        assert_eq!(a.mul(&b), b.mul(&a));
        assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    });
}

#[test]
fn divrem_identity() {
    cases(128, "divrem", |rng| {
        let a = random_uint(rng);
        let b = random_uint(rng);
        if b.is_zero() {
            return;
        }
        let (q, r) = a.divrem(&b);
        assert!(r < b.clone());
        assert_eq!(q.mul(&b).add(&r), a);
    });
}

#[test]
fn shift_roundtrip() {
    cases(128, "shift", |rng| {
        let a = random_uint(rng);
        let s = rng.below(200) as usize;
        assert_eq!(a.shl(s).shr(s), a);
    });
}

#[test]
fn bytes_roundtrip() {
    cases(128, "bytes", |rng| {
        let a = random_uint(rng);
        assert_eq!(Uint::from_be_bytes(&a.to_be_bytes()), a);
    });
}

#[test]
fn hex_roundtrip() {
    cases(128, "hex", |rng| {
        let a = random_uint(rng);
        assert_eq!(Uint::from_hex(&a.to_hex()).unwrap(), a);
    });
}

#[test]
fn modpow_multiplicative() {
    cases(64, "modpow", |rng| {
        let (a, b, m) = (random_uint(rng), random_uint(rng), random_uint(rng));
        if m.is_zero() {
            return;
        }
        // (a*b)^e mod m == a^e * b^e mod m
        let e = Uint::from_u64(rng.below(50));
        let lhs = a.mul(&b).modpow(&e, &m);
        let rhs = a.modpow(&e, &m).modmul(&b.modpow(&e, &m), &m);
        assert_eq!(lhs, rhs);
    });
}

#[test]
fn modinv_inverts() {
    cases(128, "modinv", |rng| {
        let (a, m) = (random_uint(rng), random_uint(rng));
        if m.cmp_val(&Uint::from_u64(2)) != std::cmp::Ordering::Greater {
            return;
        }
        if let Some(inv) = a.modinv(&m) {
            assert!(a.modmul(&inv, &m).is_one());
        } else {
            assert!(!a.gcd(&m).is_one() || a.rem(&m).is_zero());
        }
    });
}

#[test]
fn montgomery_modpow_matches_generic_oracle() {
    // `Uint::modpow` dispatches to the Montgomery fast path for odd
    // moduli and to the schoolbook ladder otherwise; both must agree
    // with the ladder everywhere, including the dispatch boundary.
    cases(48, "mont-vs-generic", |rng| {
        let (a, e) = (random_uint(rng), random_uint(rng));
        let mut m = random_uint(rng);
        if m.is_zero() {
            return;
        }
        // Half the cases force an odd modulus (Montgomery path), the
        // other half keep whatever parity came out (even moduli take
        // the generic path and must stay bit-identical too).
        if rng.below(2) == 0 && m.is_even() {
            m = m.add(&Uint::one());
        }
        assert_eq!(a.modpow(&e, &m), a.modpow_generic(&e, &m), "m={}", m.to_hex());
    });
}

#[test]
fn montgomery_context_mul_matches_modmul() {
    use iotls_crypto::mont::MontCtx;
    cases(48, "mont-mul", |rng| {
        let mut m = random_uint(rng);
        if m.is_even() {
            m = m.add(&Uint::one());
        }
        if m.is_one() {
            return;
        }
        let ctx = MontCtx::new(&m).expect("odd modulus > 1 must build a context");
        let (a, b) = (random_uint(rng).rem(&m), random_uint(rng).rem(&m));
        let product = ctx.from_mont(&ctx.mont_mul(&ctx.to_mont(&a), &ctx.to_mont(&b)));
        assert_eq!(product, a.modmul(&b, &m));
    });
}

#[test]
fn montgomery_rejects_even_moduli() {
    use iotls_crypto::mont::MontCtx;
    cases(48, "mont-even", |rng| {
        let mut m = random_uint(rng);
        if !m.is_even() {
            m = m.add(&Uint::one());
        }
        assert!(MontCtx::new(&m).is_none());
    });
}

#[test]
fn sha256_deterministic_and_sensitive() {
    cases(128, "sha256", |rng| {
        let data = random_bytes(rng, 299);
        let d1 = sha256(&data);
        assert_eq!(d1, sha256(&data));
        if !data.is_empty() {
            let mut flipped = data.clone();
            flipped[0] ^= 1;
            assert_ne!(d1, sha256(&flipped));
        }
    });
}

#[test]
fn rc4_roundtrip() {
    cases(128, "rc4", |rng| {
        let mut key = vec![0u8; rng.range(1, 64) as usize];
        rng.fill_bytes(&mut key);
        let msg = random_bytes(rng, 199);
        let mut buf = msg.clone();
        Rc4::new(&key).apply(&mut buf);
        Rc4::new(&key).apply(&mut buf);
        assert_eq!(buf, msg);
    });
}

#[test]
fn chacha20_roundtrip() {
    cases(128, "chacha20", |rng| {
        let mut key = [0u8; 32];
        let mut nonce = [0u8; 12];
        rng.fill_bytes(&mut key);
        rng.fill_bytes(&mut nonce);
        let msg = random_bytes(rng, 199);
        let mut buf = msg.clone();
        ChaCha20::new(&key, &nonce, 0).apply(&mut buf);
        ChaCha20::new(&key, &nonce, 0).apply(&mut buf);
        assert_eq!(buf, msg);
    });
}

#[test]
fn drbg_below_in_bounds() {
    cases(128, "below", |rng| {
        let bound = rng.range(1, 10_000);
        let mut d = Drbg::from_seed(rng.next_u64());
        for _ in 0..20 {
            assert!(d.below(bound) < bound);
        }
    });
}

// RSA keygen is too slow to regenerate per case; use one key and vary
// the message instead.
fn shared_key() -> &'static RsaPrivateKey {
    use std::sync::OnceLock;
    static KEY: OnceLock<RsaPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| RsaPrivateKey::generate(512, &mut Drbg::from_seed(0xA11CE)))
}

#[test]
fn rsa_sign_verify_any_message() {
    cases(24, "rsa-sign", |rng| {
        let msg = random_bytes(rng, 199);
        let key = shared_key();
        let sig = key.sign(&msg);
        assert!(key.public_key().verify(&msg, &sig).is_ok());
        let mut other = msg.clone();
        other.push(0);
        assert!(key.public_key().verify(&other, &sig).is_err());
    });
}

#[test]
fn rsa_crt_signatures_match_full_exponentiation() {
    // The CRT fast path must be byte-identical to the plain c^d mod n
    // computation — certificate bytes across the whole testbed depend
    // on it.
    let crt_key = shared_key();
    let plain_key = crt_key.without_crt();
    cases(16, "rsa-crt", |rng| {
        let msg = random_bytes(rng, 199);
        assert_eq!(crt_key.sign(&msg), plain_key.sign(&msg));
    });
}

#[test]
fn rsa_encrypt_decrypt_any_message() {
    cases(24, "rsa-encrypt", |rng| {
        let msg = random_bytes(rng, 48);
        let key = shared_key();
        let ct = key.public_key().encrypt(&msg, rng).unwrap();
        assert_eq!(key.decrypt(&ct).unwrap(), msg);
    });
}
